#!/usr/bin/env python3
"""Numeric-workload study: the paper's order-of-magnitude claim, kernel by
kernel, across machine widths.

Sweeps the numeric and Livermore kernels on all three TRACE configurations
(7/200, 14/200, 28/200) and prints speedup over the scalar baseline — the
shape to look for: wide independent loops reach ~8-12x on the full machine,
reductions and recurrences are bounded by their serial chains, and width
scaling flattens once the loop's parallelism is exhausted.
"""

from repro.harness import measure, print_table
from repro.machine import TRACE_7_200, TRACE_14_200, TRACE_28_200
from repro.workloads import LIVERMORE_KERNELS, NUMERIC_KERNELS

KERNELS = ["daxpy", "vadd", "fir4", "stencil3", "copy", "dot",
           "ll1_hydro", "ll7_state", "ll12_diff", "ll5_tridiag"]
CONFIGS = [("7/200", TRACE_7_200), ("14/200", TRACE_14_200),
           ("28/200", TRACE_28_200)]


def main() -> None:
    rows = []
    for name in KERNELS:
        row = {"kernel": name}
        for label, config in CONFIGS:
            result = measure(name, n=96, config=config, unroll=8)
            row[f"speedup@{label}"] = round(result.vliw_speedup, 2)
        serial = "serial chain" if name in ("dot", "ll5_tridiag") else ""
        row["note"] = serial
        rows.append(row)
    print_table(rows, "Speedup over the sequential scalar baseline "
                      "(n=96, unroll 8)")
    print("Expected shape: independent loops scale with width and reach "
          "roughly an order of magnitude;\nreductions (dot) and "
          "recurrences (ll5) are pinned near their dependence-chain bound.")


if __name__ == "__main__":
    main()
