#!/usr/bin/env python3
"""Quickstart: compile one kernel for the TRACE and watch it win.

Builds the classic ``daxpy`` loop, runs it on

* the reference interpreter (ground truth),
* a sequential scalar machine of the same technology,
* a scoreboard machine (dynamic issue, basic-block window), and
* the TRACE 28/200 with the Trace Scheduling compiler,

then prints the schedule and the speedups — the paper's headline story in
thirty lines.
"""

from repro.harness import measure
from repro.machine import TRACE_28_200, format_compiled


def main() -> None:
    result = measure("daxpy", n=128, config=TRACE_28_200, unroll=8)

    print("=== compiled inner loop (first 14 long instructions) ===")
    text = format_compiled(result.program.function("main"))
    print("\n".join(text.splitlines()[:16]))
    print()

    print("=== timing (65 ns beats) ===")
    print(f"scalar baseline : {result.scalar.beats:6d} beats")
    print(f"scoreboard      : {result.scoreboard.beats:6d} beats "
          f"({result.scoreboard_speedup:.2f}x)   <- paper: 2-3x ceiling")
    print(f"TRACE 28/200    : {result.vliw.beats:6d} beats "
          f"({result.vliw_speedup:.2f}x)   <- trace scheduling")
    print()
    print(f"ops per long instruction: "
          f"{result.vliw.ops_per_instruction():.1f} "
          f"(peak {TRACE_28_200.ops_per_instruction})")
    if result.compile_stats is not None:
        stats = result.compile_stats
        print(f"traces: {stats.n_traces}, speculated loads: "
              f"{stats.n_speculated_loads}, compensation ops: "
              f"{stats.n_compensation_ops}")


if __name__ == "__main__":
    main()
