#!/usr/bin/env python3
"""Compile a TinyFlow (C-like) program through the whole stack.

Shows every stage a Multiflow user's C code went through: source -> IR ->
classical optimization + unrolling -> trace scheduling -> long-instruction
schedule -> beat-accurate execution, with the intermediate representations
printed along the way.
"""

from repro.frontend import compile_source
from repro.ir import format_module, run_module
from repro.machine import TRACE_28_200, format_compiled
from repro.opt import classical_pipeline
from repro.sim import run_compiled, run_scalar
from repro.trace import compile_module

SOURCE = """
array float samples[256];
array float smoothed[256];

void make_signal(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        samples[i] = (i % 17) * 0.25 - 1.0;
    }
}

// 3-point moving average with clamping at the edges
float smooth(int n) {
    make_signal(n);
    int i;
    for (i = 1; i < n - 1; i = i + 1) {
        smoothed[i] = (samples[i - 1] + samples[i] + samples[i + 1])
                      * 0.333333;
    }
    float peak = 0.0;
    for (i = 0; i < n; i = i + 1) {
        if (smoothed[i] > peak) { peak = smoothed[i]; }
    }
    return peak;
}
"""


def main() -> None:
    module = compile_source(SOURCE)
    print("=== IR after the front end (smooth, first 24 lines) ===")
    print("\n".join(format_module(module).splitlines()[:24]))
    print()

    reference = run_module(module, "smooth", [200]).value
    print(f"interpreter says: peak = {reference:.4f}\n")

    classical_pipeline(unroll_factor=8, inline_budget=64).run(module)
    program = compile_module(module, TRACE_28_200)
    print("=== trace schedule (smooth, first 12 instructions) ===")
    text = format_compiled(program.function("smooth"))
    print("\n".join(text.splitlines()[:14]))
    print()

    scalar = run_scalar(module, "smooth", [200])
    vliw = run_compiled(program, module, "smooth", [200])
    assert vliw.value == reference, "compiled code must match the interpreter"
    print(f"scalar: {scalar.stats.beats} beats;  "
          f"TRACE 28/200: {vliw.stats.beats} beats  "
          f"({scalar.stats.beats / vliw.stats.beats:.2f}x)")


if __name__ == "__main__":
    main()
