#!/usr/bin/env python3
"""Systems-code study: "grep doesn't know it's stretching the frontiers of
technology, it just greps along at a terrific rate."

Paper section 8.4: the authors expected trouble on UNIX-style code — small
basic blocks, pointers, many calls — and were surprised by how well the
compacting compiler did.  This example runs the systems-shaped workloads
(scanners, sorts, searches, call-heavy code) and shows the expected
pattern: real but modest speedups, far below the numeric loops, with the
serial pointer chase as the honest worst case.
"""

from repro.harness import measure, print_table
from repro.machine import TRACE_28_200
from repro.workloads import SYSTEMS_KERNELS


def main() -> None:
    rows = []
    for name in sorted(SYSTEMS_KERNELS):
        result = measure(name, n=64, config=TRACE_28_200, unroll=8)
        stats = result.compile_stats
        rows.append({
            "kernel": name,
            "scalar_beats": result.scalar.beats,
            "vliw_beats": result.vliw.beats,
            "speedup": round(result.vliw_speedup, 2),
            "traces": stats.n_traces if stats else "-",
            "comp_ops": stats.n_compensation_ops if stats else "-",
        })
    print_table(rows, "Systems code on the TRACE 28/200 (n=64)")
    print("Reading: speedups stay in the 1.3-2.5x range (vs ~10x on "
          "numeric loops), matching the paper's\nobservation that systems "
          "code benefits but does not dominate; compensation-code volume "
          "stays small.")


if __name__ == "__main__":
    main()
