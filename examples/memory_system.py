#!/usr/bin/env python3
"""The software-managed interleaved memory system in action.

Paper section 6.4 calls the compile-time-scheduled memory "an important
architectural breakthrough".  This example shows the three disambiguator
verdicts driving scheduling decisions, then measures a streaming kernel
with the bank-stall "gamble" enabled and disabled, and with the
disambiguator degraded (annotations stripped) so every pair is a "maybe".
"""

from repro.disambig import Answer, Disambiguator
from repro.harness import measure
from repro.ir import MemRef, Module
from repro.machine import TRACE_28_200
from repro.trace import SchedulingOptions


def show_disambiguation() -> None:
    module = Module()
    module.add_array("A", 1024, 8)
    dis = Disambiguator(module)
    banks = TRACE_28_200.total_banks

    def ref(const, coeffs=None, base="A", unknown=False):
        return MemRef.make(base, coeffs or {"i": 8}, const, 8,
                           base_unknown_mod=unknown)

    cases = [
        ("A[i] vs A[i+1]", ref(0), ref(8)),
        ("A[i] vs A[i+64] (same bank!)", ref(0), ref(8 * banks)),
        ("A[i] vs A[j]", ref(0), MemRef.make("A", {"j": 8}, 0, 8)),
        ("p[i] vs p[i+1] (unknown base)",
         ref(0, base="&p", unknown=True), ref(8, base="&p", unknown=True)),
    ]
    print("=== bank_equal answers (64 banks) ===")
    for label, a, b in cases:
        print(f"  {label:36s} -> {dis.bank_equal(a, b, banks).value}")
    print()


def build_pointer_vadd(n: int) -> Module:
    """dst[i] = p[i] + q[i] through pointer ARGUMENTS: the two source
    loads must issue close together, their bases are unknown at compile
    time, so their bank queries answer 'maybe' — the gamble's home turf."""
    from repro.ir import IRBuilder, RegClass, VReg, verify_module
    module = Module()
    module.add_array("P", n, 8, init=[float(k) for k in range(n)])
    module.add_array("Q", n, 8, init=[float(2 * k) for k in range(n)])
    module.add_array("DST", n, 8)
    b = IRBuilder(module)
    b.function("main", [("dst", RegClass.INT), ("p", RegClass.INT),
                        ("q", RegClass.INT), ("n", RegClass.INT)])
    i = VReg("i", RegClass.INT)
    b.block("entry")
    b.mov(0, dest=i)
    b.jmp("head")
    b.block("head")
    pred = b.cmplt(i, b.param("n"))
    b.br(pred, "body", "exit")
    b.block("body")
    off = b.shl(i, 3)
    left = b.fload(b.add(b.param("p"), off), 0)
    right = b.fload(b.add(b.param("q"), off), 0)
    b.fstore(b.fadd(left, right), b.add(b.param("dst"), off), 0)
    b.add(i, 1, dest=i)
    b.jmp("head")
    b.block("exit")
    b.ret()
    verify_module(module)
    return module


def measure_gamble() -> None:
    from repro.ir import run_module
    from repro.opt import classical_pipeline
    from repro.sim import run_compiled, run_scalar
    from repro.trace import compile_module

    print("=== bank-stall gamble: FORTRAN-style vadd through pointer "
          "arguments ===")
    n = 96
    args = ["DST", "P", "Q", n - 6]
    for gamble in (True, False):
        module = build_pointer_vadd(n)
        classical_pipeline(unroll_factor=8).run(module)
        # fortran_args: distinct pointer parameters cannot alias (language
        # rule), but their bank residues remain unknown -> pure "maybe"s
        options = SchedulingOptions(bank_gamble=gamble, fortran_args=True)
        program = compile_module(module, TRACE_28_200, options)
        result = run_compiled(program, module, "main", args)
        ref = run_module(build_pointer_vadd(n), "main", args)
        assert result.memory.read_array("DST", n, 8) == \
            ref.memory.read_array("DST", n, 8)
        print(f"  gamble={'on ' if gamble else 'off'}: "
              f"{result.stats.beats} beats, "
              f"{result.stats.bank_stall_beats} stall beats, "
              f"{result.stats.gamble_refs} gambled refs")
    print()
    print("With unknown bases the disambiguator answers 'maybe' across the "
          "two pointers; gambling packs\nthe references anyway and the "
          "hardware bank-stall absorbs the (rare) true conflicts — the "
          "paper's\n'rolling the dice can improve performance'.")


def main() -> None:
    show_disambiguation()
    measure_gamble()


if __name__ == "__main__":
    main()
