"""Ablations — each design choice DESIGN.md calls out, toggled in isolation.

Not a single paper table, but the study the paper promises as future work
(§10): "Our future work will concentrate on quantifying the speedups due
to trace scheduling vs. those achieved by more universal compiler
optimizations."
"""

import pytest

from repro.harness import measure
from repro.machine import TRACE_28_200
from repro.trace import SchedulingOptions

from .conftest import bench_once


def test_ablation_unrolling(show, benchmark):
    """Unrolling is the parallelism feedstock."""
    rows = []
    beats = {}
    for unroll in (0, 2, 4, 8):
        m = measure("daxpy", 96, unroll=unroll)
        beats[unroll] = m.vliw.beats
        rows.append({"unroll": unroll, "vliw_beats": m.vliw.beats,
                     "speedup": round(m.vliw_speedup, 2)})
    show(rows, "Ablation: unroll factor (daxpy)")
    assert beats[8] < beats[2] < beats[0]
    bench_once(benchmark, lambda: measure("daxpy", 96, unroll=2))


def test_ablation_speculation(show, benchmark):
    rows = []
    beats = {}
    for spec in (True, False):
        m = measure("vadd", 96, unroll=8,
                    options=SchedulingOptions(speculation=spec))
        beats[spec] = m.vliw.beats
        rows.append({"speculation": spec, "vliw_beats": m.vliw.beats})
    show(rows, "Ablation: speculation above splits (vadd)")
    assert beats[True] <= beats[False]
    bench_once(benchmark, lambda: None)


def test_ablation_join_motion(show, benchmark):
    rows = []
    beats = {}
    for jm in (True, False):
        m = measure("clamp", 96, unroll=8,
                    options=SchedulingOptions(join_motion=jm))
        beats[jm] = m.vliw.beats
        rows.append({"join_motion": jm, "vliw_beats": m.vliw.beats,
                     "comp_ops": m.compile_stats.n_compensation_ops})
    show(rows, "Ablation: motion above side entrances (clamp)")
    assert beats[True] <= beats[False]
    bench_once(benchmark, lambda: None)


def test_ablation_accumulator_splitting(show, benchmark):
    """The extension: integer reductions escape the serial chain."""
    from repro.ir import run_module
    from repro.machine import TRACE_28_200
    from repro.opt import (CopyPropagation, DeadCodeElimination, LocalCSE,
                           LoopUnroll, PassManager)
    from repro.sim import run_compiled, run_scalar
    from repro.trace import compile_module
    from repro.workloads import get_kernel

    kernel = get_kernel("int_sum")
    rows = []
    beats = {}
    for split in (True, False):
        module = kernel.build(96)
        PassManager([LoopUnroll(factor=8, split_accumulators=split),
                     CopyPropagation(), LocalCSE(),
                     DeadCodeElimination()]).run(module)
        program = compile_module(module, TRACE_28_200)
        result = run_compiled(program, module, "main", (90,))
        assert result.value == run_module(kernel.build(96), "main",
                                          (90,)).value
        beats[split] = result.stats.beats
        rows.append({"split_accumulators": split,
                     "vliw_beats": result.stats.beats})
    show(rows, "Ablation: integer accumulator splitting (int_sum)")
    # the integer chain is 1 beat per link, so the win is real but smaller
    # than the FP case (see tests/test_accumulator_split.py for that one)
    assert beats[True] < 0.75 * beats[False]
    bench_once(benchmark, lambda: None)


def test_ablation_profile_guidance(show, benchmark):
    rows = []
    for use_profile in (True, False):
        m = measure("count_matches", 96, unroll=8, use_profile=use_profile)
        rows.append({"profile": "measured" if use_profile else "heuristic",
                     "vliw_beats": m.vliw.beats})
    show(rows, "Ablation: profile-guided vs heuristic trace selection "
               "(count_matches)")
    bench_once(benchmark, lambda: None)
