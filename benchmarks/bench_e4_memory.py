"""E4 — The software-scheduled interleaved memory system (paper section 6.4).

Claims: four 64-bit references may start every beat (492 MB/s peak) with no
bank-scheduling hardware; when the disambiguator answers "maybe" the
compiler may gamble on the bank-stall and win ("this 'rolling the dice'
can improve performance"); fewer banks mean more conflicts.
"""

import pytest

from repro.harness import measure
from repro.ir import IRBuilder, Module, RegClass, VReg, run_module, \
    verify_module
from repro.machine import MachineConfig, TRACE_28_200
from repro.opt import classical_pipeline
from repro.sim import run_compiled
from repro.trace import SchedulingOptions, compile_module

from .conftest import bench_once


def build_pointer_vadd(n: int) -> Module:
    """dst[i] = p[i] + q[i] via pointer args: all cross-base bank queries
    answer 'maybe' (FORTRAN no-alias semantics assumed)."""
    module = Module()
    module.add_array("P", n, 8, init=[float(k) for k in range(n)])
    module.add_array("Q", n, 8, init=[float(2 * k) for k in range(n)])
    module.add_array("DST", n, 8)
    b = IRBuilder(module)
    b.function("main", [("dst", RegClass.INT), ("p", RegClass.INT),
                        ("q", RegClass.INT), ("n", RegClass.INT)])
    i = VReg("i", RegClass.INT)
    b.block("entry")
    b.mov(0, dest=i)
    b.jmp("head")
    b.block("head")
    pred = b.cmplt(i, b.param("n"))
    b.br(pred, "body", "exit")
    b.block("body")
    off = b.shl(i, 3)
    left = b.fload(b.add(b.param("p"), off), 0)
    right = b.fload(b.add(b.param("q"), off), 0)
    b.fstore(b.fadd(left, right), b.add(b.param("dst"), off), 0)
    b.add(i, 1, dest=i)
    b.jmp("head")
    b.block("exit")
    b.ret()
    verify_module(module)
    return module


def _run_pointer_vadd(gamble: bool, config=TRACE_28_200, n=96):
    module = build_pointer_vadd(n)
    classical_pipeline(unroll_factor=8).run(module)
    options = SchedulingOptions(bank_gamble=gamble, fortran_args=True)
    program = compile_module(module, config, options)
    args = ["DST", "P", "Q", n - 6]
    result = run_compiled(program, module, "main", args)
    ref = run_module(build_pointer_vadd(n), "main", args)
    assert result.memory.read_array("DST", n, 8) == \
        ref.memory.read_array("DST", n, 8)
    return result.stats


def test_e4_memory_bandwidth_through_streaming(show, benchmark):
    """copy sustains multiple refs/beat on the full machine."""
    m = measure("copy", 96, config=TRACE_28_200, unroll=8)
    refs = m.vliw.loads + m.vliw.stores
    refs_per_beat = refs / m.vliw.beats
    sustained_mb_s = refs_per_beat * 8 / (TRACE_28_200.beat_ns * 1e-3)
    show([{"refs": refs, "beats": m.vliw.beats,
           "refs_per_beat": round(refs_per_beat, 2),
           "sustained_MB_s": round(sustained_mb_s, 0),
           "peak_MB_s": round(TRACE_28_200.peak_memory_bandwidth_mb_s(), 0)}],
         "E4: sustained memory traffic on the copy kernel")
    assert refs_per_beat > 0.9      # ~1 64-bit ref/beat sustained
    bench_once(benchmark, lambda: measure("copy", 96, unroll=8))


def test_e4_bank_gamble_wins(show, benchmark):
    gamble_on = _run_pointer_vadd(True)
    gamble_off = _run_pointer_vadd(False)
    show([{"mode": "gamble on", "beats": gamble_on.beats,
           "stall_beats": gamble_on.bank_stall_beats,
           "gambled_refs": gamble_on.gamble_refs},
          {"mode": "gamble off", "beats": gamble_off.beats,
           "stall_beats": gamble_off.bank_stall_beats,
           "gambled_refs": gamble_off.gamble_refs}],
         "E4b: the bank-stall gamble (pointer-argument vadd, unroll 8)")
    assert gamble_on.gamble_refs > 0
    assert gamble_on.beats <= gamble_off.beats       # the dice pay off
    bench_once(benchmark, lambda: _run_pointer_vadd(True))


def test_e4_fewer_banks_more_stalls(show, benchmark):
    rows = []
    beats = {}
    for banks_per in (1, 8):
        config = MachineConfig(n_pairs=4, n_controllers=2,
                               banks_per_controller=banks_per)
        stats = _run_pointer_vadd(True, config)
        beats[banks_per] = stats.beats
        rows.append({"total_banks": config.total_banks,
                     "beats": stats.beats,
                     "stall_beats": stats.bank_stall_beats})
    show(rows, "E4c: bank-count sweep (2 controllers)")
    assert beats[1] >= beats[8]     # fewer banks can never be faster
    bench_once(benchmark, lambda: _run_pointer_vadd(
        True, MachineConfig(n_pairs=4, n_controllers=2,
                            banks_per_controller=1)))
