"""Recovery benchmarks: what a restart costs as the journal grows.

The durability layer's promise is that a crashed daemon comes back fast
and correct; this file puts numbers on "fast".  Results land in
``BENCH_recovery.json`` at the repository root:

1. **replay latency vs. journal size** — construct a
   :class:`~repro.serve.CompileServer` over synthetic journals holding
   8/32/128 finished jobs and time the replay (load + validate +
   rebuild the retained-result window).  Replay must scale roughly
   linearly and stay far under a second at the sizes one daemon
   retains (``keep_results`` defaults to 256);
2. **live restart round-trip** — a real server finishes a job, its
   journal is dropped crash-style (no cleanup), and a new server is
   timed from construction to the job's result being re-servable.  The
   recovered payload must be byte-identical to the pre-crash one.

Synthetic journals use the real record schema (written through
:class:`~repro.serve.JobJournal` itself), so replay exercises the same
validation path a genuine restart does.
"""

from __future__ import annotations

import json
import os
import platform
import time

from .conftest import bench_once

from repro.api import API_VERSION, MeasureRequest, dumps
from repro.serve import CompileServer, JobJournal, ServeConfig

REPORT_PATH = os.path.join(os.path.dirname(__file__), "..",
                           "BENCH_recovery.json")
REPLAY_SIZES = (8, 32, 128)

_report: dict = {
    "host": {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
    },
    "api_version": API_VERSION,
}


def _synthetic_journal(path: str, finished_jobs: int) -> None:
    """A journal of ``finished_jobs`` completed measure jobs, written
    through the real JobJournal so replay sees genuine records."""
    journal = JobJournal(path, fsync=False, keep_done=finished_jobs + 1)
    for i in range(1, finished_jobs + 1):
        job_id = f"job-{i:06d}"
        request = MeasureRequest(kernel="vadd", n=24 + i,
                                 unroll=4).to_json()
        journal.submitted(job_id, f"measure:check:key-{i}", f"key-{i}",
                          request, sync=False)
        journal.dispatched(job_id, 1, sync=False)
        journal.finished(job_id, {
            "job_id": job_id, "ok": True, "kind": "measure",
            "key": f"key-{i}",
            "result": {"kernel": "vadd", "n": 24 + i,
                       "results": {"vliw_speedup": 2.0}},
            "counters": {"cache.miss": 1}, "duration_s": 0.5,
            "cache_hit": False}, ok=True, sync=False)
    journal.close()


def test_replay_latency_scales(tmp_path):
    """Tier 1: replay time across journal sizes."""
    rows = []
    for size in REPLAY_SIZES:
        path = str(tmp_path / f"replay-{size}.journal")
        _synthetic_journal(path, size)
        config = ServeConfig(port=0, jobs=1, use_cache=False,
                             journal_path=path, journal_fsync=False,
                             keep_results=max(256, size))
        t0 = time.perf_counter()
        core = CompileServer(config)
        replay_s = time.perf_counter() - t0
        stats = core.stats()
        assert stats["counters"]["serve.replayed_done"] == size
        assert stats["retained_results"] == size
        core.shutdown()
        rows.append({"jobs_replayed": size,
                     "replay_s": round(replay_s, 4)})
    _report["replay_latency"] = rows
    # the whole retained window must replay well under a second
    assert all(row["replay_s"] < 1.0 for row in rows)


def test_live_restart_round_trip(tmp_path, benchmark):
    """Tier 2: crash a real server, time construction-to-re-serve."""
    config = ServeConfig(port=0, jobs=1,
                         cache_dir=str(tmp_path / "cache"),
                         journal_path=str(tmp_path / "serve.journal"))
    core = CompileServer(config).start()
    request = MeasureRequest(kernel="vadd", n=24, unroll=4)
    job_id = core.submit([request])[0].job_id
    before = core.result(job_id, wait_s=120)
    assert before is not None and before.ok
    core._journal.crash()                     # SIGKILL twin: no cleanup

    t0 = time.perf_counter()
    revived = CompileServer(config).start()
    after = revived.result(job_id, wait_s=0)
    restart_s = time.perf_counter() - t0
    try:
        assert after is not None and after.ok
        assert dumps(after.to_json()) == dumps(before.to_json())
        _report["live_restart"] = {
            "kernel": "vadd", "n": 24,
            "restart_s": round(restart_s, 4),
            "replayed_done":
                revived.tracer.counters.get("serve.replayed_done"),
        }
        assert restart_s < 5.0
        # clock a pure replay round on its own journal (the live one is
        # still flocked by `revived`)
        bench_path = str(tmp_path / "bench.journal")
        _synthetic_journal(bench_path, 32)
        bench_once(benchmark, lambda: CompileServer(ServeConfig(
            port=0, jobs=1, use_cache=False, journal_path=bench_path,
            journal_fsync=False)).shutdown())
    finally:
        revived.shutdown()


def test_write_report(show):
    """Last in file: persist the tiers measured above."""
    assert {"replay_latency", "live_restart"} <= set(_report)
    with open(REPORT_PATH, "w") as handle:
        json.dump(_report, handle, indent=2)
        handle.write("\n")
    show([{"jobs_replayed": row["jobs_replayed"],
           "replay_s": row["replay_s"],
           "gate": "< 1.0 s"} for row in _report["replay_latency"]]
         + [{"jobs_replayed": "live restart (1 job)",
             "replay_s": _report["live_restart"]["restart_s"],
             "gate": "< 5.0 s, byte-identical re-serve"}],
         "journal replay latency (BENCH_recovery.json)")
