"""E6 — Object-code size and the mask-word encoding (paper sections 6.5.1
and 9).

Claims: no-op fields cost no main memory; per-operation encoding is
roughly RISC-like (30-50% over a tight CISC); compaction/unrolling add
30-60%; large programs come out ~3x VAX object size overall; the
variable-length format costs only a few percent of mask overhead.
"""

import pytest

from repro.harness import (CISC_DENSITY, measure_code_size, prepare_modules,
                           scalar_code_bytes)
from repro.machine import TRACE_28_200, encode_function
from repro.trace import compile_module
from repro.workloads import get_kernel

from .conftest import bench_once

KERNELS = ["daxpy", "vadd", "fir4", "ll1_hydro", "ll7_state",
           "count_matches", "state_machine", "clamp"]


@pytest.fixture(scope="module")
def reports():
    out = {}
    for name in KERNELS:
        kernel = get_kernel(name)
        baseline, vliw_module = prepare_modules(kernel, 64, unroll=8)
        program = compile_module(vliw_module, TRACE_28_200)
        out[name] = measure_code_size(program.function(kernel.func),
                                      baseline, kernel.func)
    return out


def test_e6_mask_format_eliminates_noops(reports, show, benchmark):
    rows = [r.row() for r in reports.values()]
    show(rows, "E6: code size — packed (mask-word) vs unpacked vs scalar")
    for name, report in reports.items():
        # the packed form must be dramatically smaller than the full-width
        # cache image: most slots of most instructions are no-ops
        assert report.packing_ratio < 0.55, name
    bench_once(benchmark, lambda: None)


def test_e6_overall_vs_cisc_about_3x(reports, show, benchmark):
    """The paper's 3x was measured over 100-300K-line applications, where
    hot unrolled loops are a small fraction of the text; it also notes the
    optimizations "can increase the size of some small fragments of code by
    a large factor".  Our corpus is 100% hot loop — the fragment case — so
    we check both: the *rolled* ratio (conventional code) must sit near the
    per-op 30-50% expansion, and the unrolled hot fragments within the
    paper's large-factor bound."""
    hot_ratios = [r.vs_cisc for r in reports.values()]
    geo = 1.0
    for r in hot_ratios:
        geo *= r
    geo **= 1 / len(hot_ratios)

    # conventional (rolled) compilation of the same kernels
    from repro.harness import measure_code_size as mcs
    rolled = []
    for name in KERNELS:
        kernel = get_kernel(name)
        baseline, vliw_module = prepare_modules(kernel, 64, unroll=0,
                                                inline=0)
        program = compile_module(vliw_module, TRACE_28_200)
        rolled.append(mcs(program.function(kernel.func), baseline,
                          kernel.func).vs_cisc)
    rolled_geo = 1.0
    for r in rolled:
        rolled_geo *= r
    rolled_geo **= 1 / len(rolled)

    show([{"corpus": "rolled loops (conventional code)",
           "geomean_vs_cisc": round(rolled_geo, 2),
           "paper_claim": "30-50% per-op expansion + 5-10% masks"},
          {"corpus": "unrolled hot fragments",
           "geomean_vs_cisc": round(geo, 2),
           "paper_claim": "fragments grow 'by a large factor'; whole "
                          "programs ~3x"}],
         "E6b: object-size ratio vs modeled CISC")
    assert 1.2 <= rolled_geo <= 3.5
    assert geo <= 10.0
    bench_once(benchmark, lambda: None)


def test_e6_mask_overhead_small(show, benchmark):
    """Mask words add ~5-10% per the paper."""
    kernel = get_kernel("ll7_state")
    _, vliw_module = prepare_modules(kernel, 64, unroll=8)
    program = compile_module(vliw_module, TRACE_28_200)
    packed = encode_function(program.function("main"))
    overhead = packed.mask_words / max(1, packed.field_words)
    show([{"mask_words": packed.mask_words,
           "field_words": packed.field_words,
           "overhead": round(overhead, 3),
           "paper_claim": "5-10% encoding overhead"}],
         "E6c: mask-word overhead")
    assert overhead < 0.35
    bench_once(benchmark, lambda: encode_function(program.function("main")))


def test_e6_unroll_growth_band(show, benchmark):
    """Trace selection + unrolling grow code by a bounded factor."""
    kernel = get_kernel("daxpy")
    rows = []
    sizes = {}
    for unroll in (0, 4, 8):
        _, vliw_module = prepare_modules(kernel, 64, unroll=unroll)
        program = compile_module(vliw_module, TRACE_28_200)
        report = measure_code_size(program.function("main"),
                                   kernel.build(64))
        sizes[unroll] = report.packed_bytes
        rows.append({"unroll": unroll,
                     "packed_bytes": report.packed_bytes,
                     "growth_vs_rolled": round(
                         report.packed_bytes / sizes[0], 2)})
    show(rows, "E6d: code growth from unrolling (daxpy)")
    assert sizes[8] < 8 * sizes[0]      # far sublinear in the unroll factor
    bench_once(benchmark, lambda: None)
