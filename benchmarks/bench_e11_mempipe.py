"""E11 — The seven-beat memory pipeline (paper section 6.4.1).

Claim: "Software sees a seven beat memory reference pipeline" from address
generation to the loaded value being usable; the pipelines are
self-draining, which keeps interrupts and compensation simple.
"""

import pytest

from repro.ir import Imm, MemoryImage, Module, Opcode, Operation, RegClass
from repro.machine import (TRACE_28_200, BranchTest, CompiledFunction,
                           CompiledProgram, LongInstruction, ScheduledOp,
                           Unit, phys_reg)
from repro.sim import VliwSimulator

from .conftest import bench_once


def _program(instructions, param_regs):
    cf = CompiledFunction("f", TRACE_28_200, instructions, {"entry": 0},
                          param_regs)
    cf.meta["entry_label"] = "entry"
    program = CompiledProgram(config=TRACE_28_200)
    program.add(cf)
    return program


def _load_use_distance(gap_instructions: int):
    """Load at instruction 0; read the destination ``gap`` instructions
    later; returns the observed value."""
    m = Module()
    m.add_array("A", 2, 4, init=[1234, 0])
    addr_reg = phys_reg(RegClass.INT, 1)
    dest = phys_reg(RegClass.INT, 0)
    load = Operation(Opcode.LOAD, dest, [addr_reg, Imm(0)])
    instrs = [LongInstruction(ops=[ScheduledOp(load, 0, Unit.IALU0_E,
                                               "iload")])]
    for _ in range(gap_instructions - 1):
        instrs.append(LongInstruction())
    instrs.append(LongInstruction(special=("ret", dest)))
    program = _program(instrs, [addr_reg, dest])
    memory = MemoryImage(m)
    sim = VliwSimulator(program, memory)
    return sim.run("f", [memory.address_of("A"), -1]).value


def test_e11_seven_beat_load_to_use(show, benchmark):
    """The loaded value becomes visible exactly 7 beats after issue."""
    observed = {}
    for gap in (1, 2, 3, 4, 5):
        observed[gap] = _load_use_distance(gap)
    rows = [{"gap_instructions": g, "gap_beats": 2 * g,
             "value_read": v,
             "loaded_value_visible": v == 1234} for g, v in observed.items()]
    show(rows, "E11: load-to-use distance (7-beat pipeline, "
               "2 beats/instruction)")
    # visible from the instruction whose read beat >= issue + 7:
    # read beat = 2*gap, so gap >= 4 sees the new value
    assert observed[1] == -1 and observed[2] == -1 and observed[3] == -1
    assert observed[4] == 1234 and observed[5] == 1234
    bench_once(benchmark, lambda: _load_use_distance(4))


def test_e11_compiler_schedules_at_the_bound(show, benchmark):
    """The trace scheduler separates load and use by exactly the pipeline
    latency, not more."""
    from repro.ir import IRBuilder
    from repro.trace import compile_module

    b = IRBuilder()
    b.function("f", [("p", RegClass.INT)], ret_class=RegClass.INT)
    b.block("entry")
    x = b.load(b.param("p"), 0)
    b.ret(b.add(x, 1))
    m2 = Module()
    m2.add_array("A", 2, 4, init=[41, 0])
    m2.add_function(b.module.function("f"))
    program = compile_module(m2, TRACE_28_200)
    cf = program.function("f")
    placements = {}
    for index, li in enumerate(cf.instructions):
        for so in li.ops:
            placements[so.op.opcode] = (index, so.unit.beat_offset)
    load_beat = placements[Opcode.LOAD][0] * 2 + placements[Opcode.LOAD][1]
    add_beat = placements[Opcode.ADD][0] * 2 + placements[Opcode.ADD][1]
    show([{"load_issue_beat": load_beat, "add_issue_beat": add_beat,
           "separation": add_beat - load_beat, "required": 7}],
         "E11b: scheduled load-to-use separation")
    assert 7 <= add_beat - load_beat <= 8
    memory = MemoryImage(m2)
    sim = VliwSimulator(program, memory)
    assert sim.run("f", [memory.address_of("A")]).value == 42
    bench_once(benchmark, lambda: compile_module(m2, TRACE_28_200))
