"""E5 — Relative disambiguation succeeds where absolute fails
(paper section 6.4.4).

Claim: "the presence of a full crossbar between address generators and
memory controllers means that the disambiguator need only answer 'is
<exp1> ever equal <exp2> modulo N', and not 'what is the value of <exp1>
modulo N'.  This greatly improves the likelihood of successful
disambiguations, particularly in subprograms where array base addresses
cannot be known."

Reproduced: on argument-array references (base unknown), the *relative*
query still proves bank-distinctness for strided accesses; an
absolute-style disambiguator (one that refuses whenever the base is
unknown) gets zero proofs on the same queries.
"""

import pytest

from repro.disambig import Answer, Disambiguator
from repro.ir import MemRef, Module

from .conftest import bench_once

BANKS = 64


def _arg_ref(offset: int) -> MemRef:
    return MemRef.make("&arg", {"i": 8}, offset, 8, base_unknown_mod=True)


def _queries():
    """The pairwise bank queries an unrolled arg-array loop generates."""
    refs = [_arg_ref(8 * k) for k in range(8)]
    return [(refs[a], refs[b])
            for a in range(len(refs)) for b in range(a + 1, len(refs))]


def test_e5_relative_beats_absolute(show, benchmark):
    module = Module()
    relative = Disambiguator(module)
    queries = _queries()

    relative_no = sum(1 for a, b in queries
                      if relative.bank_equal(a, b, BANKS) is Answer.NO)

    # an "absolute" disambiguator must know base mod N: unknown base ->
    # every answer is maybe
    absolute_no = 0
    for a, b in queries:
        if a.base_unknown_mod or b.base_unknown_mod:
            continue            # absolute reasoning gives up
        absolute_no += 1

    show([{"scheme": "relative (TRACE)", "queries": len(queries),
           "proved_no": relative_no,
           "rate": round(relative_no / len(queries), 2)},
          {"scheme": "absolute (earlier VLIWs)", "queries": len(queries),
           "proved_no": absolute_no, "rate": 0.0}],
         "E5: bank disambiguation on argument arrays (unknown base)")
    assert relative_no == len(queries)     # stride 8 on 64 banks: all proven
    assert absolute_no == 0
    bench_once(benchmark,
               lambda: [relative.bank_equal(a, b, BANKS)
                        for a, b in queries])


def test_e5_disambiguation_rates_on_compiled_kernels(show, benchmark):
    """Measure live no/yes/maybe rates while compiling real kernels."""
    from repro.machine import TRACE_28_200
    from repro.opt import classical_pipeline
    from repro.trace import TraceCompiler
    from repro.workloads import get_kernel

    rows = []
    for name in ("daxpy", "fir4", "ll7_state"):
        kernel = get_kernel(name)
        module = kernel.build(64)
        classical_pipeline(unroll_factor=8).run(module)
        compiler = TraceCompiler(module, TRACE_28_200)
        compiler.compile_module()
        stats = compiler.disambiguator.stats
        total = sum(c for (k, _), c in stats.counts.items() if k == "bank")
        no = stats.counts.get(("bank", "no"), 0)
        rows.append({"kernel": name, "bank_queries": total,
                     "proved_no": no,
                     "no_rate": round(no / total, 2) if total else 0.0})
    show(rows, "E5b: disambiguator verdicts while compiling kernels")
    for row in rows:
        assert row["no_rate"] > 0.5, row
    bench_once(benchmark, lambda: None)
