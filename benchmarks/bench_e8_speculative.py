"""E8 — Dismissable (speculative) loads (paper section 7).

Claim: unrolled loops want LOADs hoisted above the exit test, which can
issue addresses "beyond the end of the program's current address space";
special LOAD opcodes suppress the fault and deliver a "funny number"
instead, because the data will never be used.  This "enables the compiler
to be much more aggressive in code motions involving memory references" —
and normal loads keep their Bus Error traps for fault isolation.
"""

import pytest

from repro.errors import TrapError
from repro.harness import measure
from repro.ir import (FUNNY_INT, IRBuilder, MemoryImage, Module, Opcode,
                      RegClass, VReg, run_module, verify_module)
from repro.machine import TRACE_28_200
from repro.opt import classical_pipeline
from repro.sim import run_compiled
from repro.trace import SchedulingOptions, TraceCompiler, compile_module

from .conftest import bench_once


def build_guarded_walk(n_elems: int) -> Module:
    """Sum v[i] while i < n, where v has exactly n_elems elements placed at
    the very end of the data segment — speculation past the exit test
    dereferences unmapped space."""
    module = Module()
    module.add_array("V", n_elems, 4, init=list(range(n_elems)))
    b = IRBuilder(module)
    b.function("main", [("n", RegClass.INT)], ret_class=RegClass.INT)
    s = VReg("s", RegClass.INT)
    i = VReg("i", RegClass.INT)
    b.block("entry")
    base = b.addr("V")
    b.mov(0, dest=s)
    b.mov(0, dest=i)
    b.jmp("head")
    b.block("head")
    pred = b.cmplt(i, b.param("n"))
    b.br(pred, "body", "exit")
    b.block("body")
    x = b.load(b.add(base, b.shl(i, 2)), 0)
    b.add(s, x, dest=s)
    b.add(i, 1, dest=i)
    b.jmp("head")
    b.block("exit")
    b.ret(s)
    verify_module(module)
    return module


def test_e8_speculation_enables_motion_and_speed(show, benchmark):
    rows = {}
    for speculation in (True, False):
        m = measure("vadd", 96, unroll=8,
                    options=SchedulingOptions(speculation=speculation))
        rows[speculation] = m
    show([{"speculation": "on", "beats": rows[True].vliw.beats,
           "speculated_loads": rows[True].compile_stats.n_speculated_loads},
          {"speculation": "off", "beats": rows[False].vliw.beats,
           "speculated_loads": 0}],
         "E8: speculation on/off (vadd, unroll 8)")
    assert rows[True].vliw.beats <= rows[False].vliw.beats
    bench_once(benchmark,
               lambda: measure("vadd", 64, unroll=8,
                               options=SchedulingOptions(speculation=True)))


def test_e8_dismissable_load_suppresses_fault(show, benchmark):
    """A compiled unrolled loop speculates loads past the array's end; the
    dismissable opcodes deliver funny numbers instead of trapping, and the
    result is still exactly right."""
    # the scratch region follows the arrays, so give the memory image no
    # slack: speculated addresses past V fall off the edge
    module = build_guarded_walk(16)
    reference = run_module(module, "main", [16]).value
    classical_pipeline(unroll_factor=8).run(module)
    compiler = TraceCompiler(module, TRACE_28_200, SchedulingOptions())
    program = compiler.compile_module()
    memory = MemoryImage(module, scratch_bytes=0)
    from repro.sim import VliwSimulator
    sim = VliwSimulator(program, memory)
    result = sim.run("main", [16])
    show([{"speculated_loads_compiled":
           compiler.stats["main"].n_speculated_loads,
           "dismissed_at_runtime": sim.stats.dismissed_loads,
           "result": result.value, "expected": reference}],
         "E8b: dismissable loads past the end of the array")
    assert result.value == reference
    bench_once(benchmark, lambda: None)


def test_e8_normal_load_still_traps(benchmark):
    """Without the special opcode the same access is a Bus Error."""
    module = build_guarded_walk(16)
    b_addr = MemoryImage(module, scratch_bytes=0)
    from repro.ir import Interpreter
    interp = Interpreter(module)
    with pytest.raises(TrapError):
        # walking past the array in the *architectural* program traps
        interp.run("main", [64], memory=b_addr)
    bench_once(benchmark, lambda: None)
