"""E2 — Basic-block dynamic issue saturates at 2-3x (paper section 3).

Claim (citing Acosta et al. on 360/91-class machines): "even with such
complex and costly hardware, only a factor of 2 or 3 speedup in
performance is possible ... the hardware cannot see past basic blocks."

Reproduced shape: the scoreboard simulator — same functional units and
latencies as the TRACE, out-of-order issue *within* each basic block,
perfect runtime memory disambiguation — averages in the 2-3x band over the
kernel suite and never approaches trace scheduling's numbers.
"""

import pytest

from repro.harness import measure
from repro.machine import TRACE_28_200

from .conftest import bench_once

KERNELS = ["daxpy", "vadd", "dot", "fir4", "stencil3", "ll1_hydro",
           "ll7_state", "ll12_diff", "count_matches", "state_machine"]


@pytest.fixture(scope="module")
def results():
    return {name: measure(name, n=96, config=TRACE_28_200, unroll=8)
            for name in KERNELS}


def test_e2_scoreboard_band(results, show, benchmark):
    rows = []
    for name in KERNELS:
        m = results[name]
        rows.append({"kernel": name,
                     "scoreboard_speedup": round(m.scoreboard_speedup, 2),
                     "vliw_speedup": round(m.vliw_speedup, 2),
                     "vliw/scoreboard": round(
                         m.vliw_speedup / m.scoreboard_speedup, 2)})
    show(rows, "E2: scoreboard (basic-block window) vs trace scheduling")
    speedups = [results[k].scoreboard_speedup for k in KERNELS]
    geo = 1.0
    for s in speedups:
        geo *= s
    geo **= 1 / len(speedups)
    # the paper's band: a factor of 2 or 3, never more
    assert 1.5 <= geo <= 3.5, geo
    assert max(speedups) < 5.0
    bench_once(benchmark, lambda: measure("fir4", 96, unroll=8))


def test_e2_trace_scheduling_beats_scoreboard_on_numeric(results, benchmark):
    for name in ["daxpy", "vadd", "fir4", "ll7_state"]:
        m = results[name]
        assert m.vliw_speedup > 2 * m.scoreboard_speedup, name
    bench_once(benchmark, lambda: measure("daxpy", 64, unroll=8))
