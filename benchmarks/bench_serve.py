"""Compile-service benchmarks: warm-vs-cold latency and dedup fan-out.

Like ``bench_throughput``, this measures the harness rather than the
paper: what the ``repro serve`` job queue adds on top of one-shot runs.
Results land in ``BENCH_serve.json`` at the repository root:

1. **warm vs. cold round-trip** — the same batch submitted twice to one
   live server.  The first round compiles; the second is served from
   the shared compile cache through job-level dedup.  Warm must be
   faster (>= 1.2x wall clock — the bar is modest because the HTTP +
   queue overhead is constant and simulation still runs), must report
   ``cache.hit`` telemetry, and must return byte-identical payloads;
2. **dedup fan-out** — N clients submitting the *same* job
   concurrently cost exactly one dispatch: wall clock stays near the
   single-job cost, and the server's ``serve.dispatched`` counter says
   1 while ``serve.submitted`` says N.

Both tiers cross-check payload identity against a direct in-process
:func:`repro.api.run_request` before any timing is trusted — the
service is a transport, not a second compiler.
"""

from __future__ import annotations

import json
import os
import platform
import time

from .conftest import bench_once

from repro.api import MeasureRequest, dumps, run_request
from repro.serve import Client, ServeConfig, start_server

REPORT_PATH = os.path.join(os.path.dirname(__file__), "..",
                           "BENCH_serve.json")
KERNELS = ("daxpy", "vadd", "dot", "fir4")
FANOUT = 6

_report: dict = {
    "host": {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
    },
}


def _requests(n=64):
    return [MeasureRequest(kernel=k, n=n, unroll=4) for k in KERNELS]


def _service(tmp_path, **overrides):
    kw = dict(port=0, jobs=1, max_queue=64, batch=8,
              cache_dir=str(tmp_path / "cache"))
    kw.update(overrides)
    core, httpd = start_server(ServeConfig(**kw))
    host, port = httpd.server_address[:2]
    return core, httpd, Client(f"{host}:{port}")


def test_warm_vs_cold_service_latency(tmp_path, benchmark):
    """Tier 1: the second identical batch rides the shared cache."""
    core, httpd, client = _service(tmp_path)
    try:
        batch = _requests()
        t0 = time.perf_counter()
        cold = client.submit_and_wait(batch, timeout_s=600)
        cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = client.submit_and_wait(batch, timeout_s=600)
        warm_s = time.perf_counter() - t0

        assert all(r.ok for r in cold + warm)
        # the transport changes nothing: server == direct, warm == cold
        direct = [run_request(request) for request in batch]
        assert [dumps(r.result) for r in cold] == [dumps(d) for d in direct]
        assert [dumps(r.result) for r in warm] \
            == [dumps(r.result) for r in cold]
        warm_hits = sum(r.counters.get("cache.hit", 0) for r in warm)
        assert warm_hits >= len(batch)
        assert all(r.cache_hit for r in warm)

        speedup = cold_s / warm_s
        _report["warm_vs_cold"] = {
            "kernels": list(KERNELS), "n": 64,
            "cold_s": round(cold_s, 3), "warm_s": round(warm_s, 3),
            "speedup": round(speedup, 2),
            "warm_cache_hits": warm_hits,
            "counters": {k: v for k, v
                         in core.tracer.counters.as_dict().items()
                         if k.startswith("serve.")},
        }
        assert speedup >= 1.2, f"warm service only {speedup:.2f}x vs cold"
        bench_once(benchmark, lambda: client.submit_and_wait(
            batch, timeout_s=600))
    finally:
        core.shutdown()
        httpd.shutdown()
        httpd.server_close()


def test_dedup_fanout(tmp_path):
    """Tier 2: N concurrent identical submissions, one compile."""
    import threading

    core, httpd, client = _service(tmp_path)
    try:
        request = MeasureRequest(kernel="stencil3", n=64, unroll=4)
        results: list = [None] * FANOUT

        def tenant(slot: int) -> None:
            mine = Client(f"{client.host}:{client.port}")
            results[slot] = mine.submit_and_wait(
                [request], timeout_s=600, busy_retries=10)[0]

        core.pause()                 # let every tenant land in one wave
        threads = [threading.Thread(target=tenant, args=(slot,))
                   for slot in range(FANOUT)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        core.resume()
        for t in threads:
            t.join()
        fanout_s = time.perf_counter() - t0

        assert all(r is not None and r.ok for r in results)
        payloads = {dumps(r.result) for r in results}
        assert len(payloads) == 1    # every tenant saw the same bytes
        counters = core.tracer.counters
        _report["dedup_fanout"] = {
            "kernel": "stencil3", "n": 64, "tenants": FANOUT,
            "wall_s": round(fanout_s, 3),
            "dispatched": counters.get("serve.dispatched"),
            "submitted": counters.get("serve.submitted"),
            "aliased": counters.get("serve.dedup_inflight", 0)
            + counters.get("serve.dedup_done", 0),
        }
        assert counters.get("serve.dispatched") == 1
        assert counters.get("serve.submitted") == FANOUT
    finally:
        core.shutdown()
        httpd.shutdown()
        httpd.server_close()


def test_write_report(show):
    """Last in file: persist the tiers measured above."""
    assert {"warm_vs_cold", "dedup_fanout"} <= set(_report)
    with open(REPORT_PATH, "w") as handle:
        json.dump(_report, handle, indent=2)
        handle.write("\n")
    show([{
        "tier": "warm service batch",
        "speedup": _report["warm_vs_cold"]["speedup"],
        "gate": ">=1.2x vs cold, cache.hit > 0",
    }, {
        "tier": "dedup fan-out",
        "speedup": f"{_report['dedup_fanout']['tenants']} tenants, "
                   f"{_report['dedup_fanout']['dispatched']} compile",
        "gate": "dispatched == 1",
    }], "compile service (BENCH_serve.json)")
