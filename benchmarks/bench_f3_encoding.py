"""F3 — Figure 3: the instruction word format for one I-F pair.

Reproduces the figure's structure: eight 32-bit words per pair — I ALU0
early, immediate (early), I ALU1 early, F adder control, I ALU0 late,
immediate (late), I ALU1 late, F multiplier control — and checks the
field-level encode/decode round trip plus the mask-word main-memory
packing built on top of it.
"""

import pytest

from repro.ir import Imm, Opcode, Operation, RegClass
from repro.machine import (TRACE_7_200, LongInstruction, ScheduledOp, Unit,
                           decode_op_word, encode_instruction, pack_program,
                           phys_reg, unpack_program)

from .conftest import bench_once

WORD_ROLES = ["I ALU0 early", "immediate (early)", "I ALU1 early",
              "F adder / ALU-A", "I ALU0 late", "immediate (late)",
              "I ALU1 late", "F multiplier / ALU-M"]

UNIT_FOR_WORD = {0: Unit.IALU0_E, 2: Unit.IALU1_E, 3: Unit.FALU,
                 4: Unit.IALU0_L, 6: Unit.IALU1_L, 7: Unit.FMUL}


def _op(kind="int"):
    if kind == "int":
        return Operation(Opcode.ADD, phys_reg(RegClass.INT, 3),
                         [phys_reg(RegClass.INT, 4),
                          phys_reg(RegClass.INT, 5)])
    return Operation(Opcode.FADD, phys_reg(RegClass.FLT, 3),
                     [phys_reg(RegClass.FLT, 4), phys_reg(RegClass.FLT, 5)])


def test_f3_word_positions(show, benchmark):
    """Each unit's control bits land in its Figure-3 word slot."""
    rows = []
    for word_index, role in enumerate(WORD_ROLES):
        unit = UNIT_FOR_WORD.get(word_index)
        if unit is None:
            rows.append({"word": word_index, "role": role,
                         "populated_by": "wide immediates"})
            continue
        kind = "flt" if unit in (Unit.FALU, Unit.FMUL) else "int"
        li = LongInstruction(ops=[ScheduledOp(_op(kind), 0, unit)])
        words = encode_instruction(li, TRACE_7_200)
        populated = [i for i, w in enumerate(words) if w]
        assert populated == [word_index], (role, populated)
        rows.append({"word": word_index, "role": role,
                     "populated_by": f"unit {unit.value}"})
    show(rows, "F3: 8-word instruction slice for one I-F pair")
    bench_once(benchmark, lambda: encode_instruction(
        LongInstruction(ops=[ScheduledOp(_op(), 0, Unit.IALU0_E)]),
        TRACE_7_200))


def test_f3_immediate_words(show, benchmark):
    """Wide immediates occupy word 1 (early) / word 5 (late), shared per
    beat as in the paper ('a 32-bit immediate field is flexibly shared')."""
    wide_early = Operation(Opcode.ADD, phys_reg(RegClass.INT, 1),
                           [phys_reg(RegClass.INT, 2), Imm(70000)])
    wide_late = Operation(Opcode.ADD, phys_reg(RegClass.INT, 3),
                          [phys_reg(RegClass.INT, 4), Imm(-90000)])
    li = LongInstruction(ops=[
        ScheduledOp(wide_early, 0, Unit.IALU0_E),
        ScheduledOp(wide_late, 0, Unit.IALU0_L)])
    words = encode_instruction(li, TRACE_7_200)
    assert words[1] == 70000
    assert words[5] == (-90000) & 0xFFFFFFFF
    show([{"word": 1, "holds": words[1]}, {"word": 5,
          "holds": words[5] - (1 << 32)}],
         "F3b: shared immediate words")
    bench_once(benchmark, lambda: None)


def test_f3_field_roundtrip(benchmark):
    so = ScheduledOp(_op(), 0, Unit.IALU1_L)
    li = LongInstruction(ops=[so])
    words = encode_instruction(li, TRACE_7_200)
    decoded = decode_op_word(words[6])
    assert decoded.opcode is Opcode.ADD
    assert decoded.dest_index == 3
    assert decoded.src1_index == 4
    assert decoded.src2_index == 5
    bench_once(benchmark, lambda: decode_op_word(words[6]))


def test_f3_mask_packing_roundtrip(benchmark):
    lis = []
    for k in range(9):
        ops = [ScheduledOp(_op(), 0, Unit.IALU0_E)]
        if k % 2:
            ops.append(ScheduledOp(_op("flt"), 0, Unit.FALU))
        lis.append(LongInstruction(ops=ops))
    words = [encode_instruction(li, TRACE_7_200) for li in lis]
    packed = pack_program(words, TRACE_7_200)
    assert unpack_program(packed) == words
    assert packed.packed_bytes < packed.unpacked_bytes
    bench_once(benchmark, lambda: unpack_program(packed))
