"""E7 — The multiway jump (paper section 6.5.2).

Claim: "Conditional branches occur every five to eight operations in
typical programs; if we try to compact many more than five operations
together, some mechanism will be required to pack more than one jump into
a single instruction."  The TRACE packs up to four prioritized tests per
instruction.

Reproduced: a dispatch chain compiles to instructions holding multiple
branch tests; restricting the machine to one pair (one test/instruction)
costs cycles on branch-dense code; priority resolves simultaneous truths
in original program order.
"""

import pytest

from repro.ir import IRBuilder, RegClass, run_module
from repro.machine import MachineConfig, TRACE_28_200
from repro.sim import run_compiled
from repro.trace import compile_module

from .conftest import bench_once


def build_dispatch(n_cases: int = 4):
    """if (a != 1) if (a != 2) ... else-return chain (branch-dense)."""
    b = IRBuilder()
    b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
    b.block("entry")
    for k in range(1, n_cases + 1):
        pred = b.cmpne(b.param("a"), k)
        b.br(pred, f"next{k}", f"case{k}")
        b.block(f"next{k}")
    b.ret(0)
    for k in range(1, n_cases + 1):
        b.block(f"case{k}")
        b.ret(100 * k)
    return b.module


def test_e7_multiway_packing(show, benchmark):
    module = build_dispatch(4)
    program = compile_module(module, TRACE_28_200)
    cf = program.function("f")
    per_instruction = [len(li.branches) for li in cf.instructions]
    show([{"instructions": len(cf.instructions),
           "max_tests_per_instruction": max(per_instruction),
           "total_tests": sum(per_instruction)}],
         "E7: branch tests per long instruction (4-way dispatch)")
    assert max(per_instruction) >= 2
    for a, expected in ((1, 100), (2, 200), (3, 300), (4, 400), (9, 0)):
        assert run_compiled(program, module, "f", [a]).value == expected
    bench_once(benchmark, lambda: compile_module(build_dispatch(4),
                                                 TRACE_28_200))


def test_e7_branch_slots_limit_dispatch_speed(show, benchmark):
    """With one I board (one test/instruction) the chain serializes."""
    rows = []
    beats = {}
    for pairs in (1, 4):
        config = MachineConfig(n_pairs=pairs, n_controllers=4)
        module = build_dispatch(4)
        program = compile_module(module, config)
        result = run_compiled(program, module, "f", [9])   # miss all
        beats[pairs] = result.stats.beats
        rows.append({"pairs": pairs, "beats_for_full_miss": result.stats.beats})
    show(rows, "E7b: dispatch cost vs number of branch slots")
    assert beats[1] >= beats[4]
    bench_once(benchmark, lambda: None)


def test_e7_priority_matches_sequential_semantics(benchmark):
    """All tests simultaneously true -> the first (in program order) wins."""
    b = IRBuilder()
    b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
    b.block("entry")
    # three overlapping range tests, written so the fallthrough chain is
    # the likely trace and all three tests pack together
    p1 = b.cmplt(b.param("a"), 10)
    b.br(p1, "under10", "chain2")
    b.block("chain2")
    p2 = b.cmplt(b.param("a"), 100)
    b.br(p2, "under100", "chain3")
    b.block("chain3")
    p3 = b.cmplt(b.param("a"), 1000)
    b.br(p3, "under1000", "big")
    b.block("under10")
    b.ret(10)
    b.block("under100")
    b.ret(100)
    b.block("under1000")
    b.ret(1000)
    b.block("big")
    b.ret(-1)
    module = b.module
    program = compile_module(module, TRACE_28_200)
    for a in (5, 50, 500, 5000):
        expected = run_module(module, "f", [a]).value
        assert run_compiled(program, module, "f", [a]).value == expected
    bench_once(benchmark, lambda: None)
