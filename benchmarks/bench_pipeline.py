"""E-pipeline — software pipelining vs unroll-and-trace-schedule.

The tentpole claim for the modulo scheduler: on pipelinable counted
loops, ``--strategy pipeline`` reaches a steady state of ``2 * II``
beats per kernel iteration, and because the shape matcher also accepts
the unroller's probe-guard loops, pipelining *composes* with unrolling —
an unroll-4 body retires four source iterations per II.  At its best
unroll factor the pipeline matches or beats the unroll-8 trace
schedule's per-iteration rate on nearly every kernel.

Two honest counterexamples are kept in the table:

* ll5_tridiag's carried FADD/FMUL chain pins II at the recurrence
  bound; no schedule beats the dependence height.
* code size: modulo variable expansion needs K kernel copies (and K
  epilogues) whenever a value's lifetime exceeds the II, so on this
  28-wide machine the *trace* schedule — which packs an unroll-8 body
  into a handful of very wide instructions — wins code size whenever
  K > 1.  Only the K == 1 loops come out smaller pipelined.

Steady-state rates are measured, not computed: beats at two problem
sizes, divided by the iteration delta, cancels every fixed cost (call,
guard, prologue, remainder loop).
"""

import pytest

from repro.harness import prepare_modules
from repro.machine import TRACE_28_200
from repro.sim import run_compiled
from repro.trace import TraceCompiler
from repro.workloads import get_kernel

from .conftest import bench_once

KERNELS = ["daxpy", "vadd", "dot", "fir4", "stencil3", "ll1_hydro",
           "ll3_inner", "ll12_diff", "ll5_tridiag"]
N_SMALL, N_LARGE = 192, 448
#: unroll factor for the pipeline-over-unrolled-body measurement
PIPE_UNROLL = 4


def _beats(name: str, n: int, strategy: str, unroll: int):
    kernel = get_kernel(name)
    _, module = prepare_modules(kernel, n, unroll=unroll, inline=48)
    compiler = TraceCompiler(module, TRACE_28_200, strategy=strategy)
    program = compiler.compile_module()
    result = run_compiled(program, module, kernel.func, kernel.make_args(n))
    return result.stats.beats, compiler.stats[kernel.func]


def _rate(name: str, strategy: str, unroll: int):
    small, stats = _beats(name, N_SMALL, strategy, unroll)
    large, _ = _beats(name, N_LARGE, strategy, unroll)
    return (large - small) / (N_LARGE - N_SMALL), stats


@pytest.fixture(scope="module")
def table():
    rows = []
    for name in KERNELS:
        pipe_rate, p_stats = _rate(name, "pipeline", 0)
        pipe_u_rate, _ = _rate(name, "pipeline", PIPE_UNROLL)
        trace_rate, t_stats = _rate(name, "trace", 8)
        loop = p_stats.pipelined_loops[0]
        best = min(pipe_rate, pipe_u_rate)
        rows.append({
            "kernel": name,
            "ii": loop.ii,
            "mii": loop.mii,
            "stages": loop.stages,
            "copies": loop.kernel_copies,
            "rec_bound": loop.rec_mii > loop.res_mii,
            "pipe_code": loop.n_instructions,
            "trace_code": t_stats.n_instructions,
            "pipe_rate": round(pipe_rate, 3),
            f"pipe_u{PIPE_UNROLL}_rate": round(pipe_u_rate, 3),
            "trace_rate": round(trace_rate, 3),
            "speedup": round(trace_rate / best, 2),
        })
    return rows


def test_pipeline_achieves_mii_mostly(table, show, benchmark):
    show(table, "E-pipeline: modulo schedule (rolled + unroll "
                f"{PIPE_UNROLL}) vs trace (unroll 8), marginal "
                f"beats/source-iteration over n={N_SMALL}->{N_LARGE}")
    # the iterative scheduler hits the lower bound on most loops; the
    # bank-conflict-heavy bodies (fir4, ll1) settle one II above it
    at_bound = sum(1 for r in table if r["ii"] == r["mii"])
    assert at_bound * 3 >= len(table) * 2, table
    assert all(r["ii"] <= r["mii"] + 1 for r in table), table
    bench_once(benchmark, lambda: _beats("daxpy", N_LARGE, "pipeline", 0))


def test_steady_state_matches_or_beats_trace(table, show):
    """Acceptance: >= half the loop kernels run at a per-iteration rate
    no worse than the unroll-8 trace schedule's, with ``--strategy
    pipeline`` at its better unroll factor (0 or PIPE_UNROLL)."""
    wins = [r["kernel"] for r in table
            if min(r["pipe_rate"], r[f"pipe_u{PIPE_UNROLL}_rate"])
            <= r["trace_rate"] + 1e-9]
    assert len(wins) * 2 >= len(table), (wins, table)


def test_unrolled_pipeline_compounds_on_streams(table):
    """On streaming loops (no carried chain and a split-friendly body)
    the probe-guard shape match lets unroll and pipeline compose:
    PIPE_UNROLL source iterations retire per II, so the unrolled
    pipeline rate beats the rolled one."""
    for name in ("daxpy", "vadd", "stencil3", "ll12_diff"):
        r = next(row for row in table if row["kernel"] == name)
        assert r[f"pipe_u{PIPE_UNROLL}_rate"] < r["pipe_rate"], r
        assert r[f"pipe_u{PIPE_UNROLL}_rate"] < r["trace_rate"], r


def test_steady_state_rate_is_2ii(table):
    """Measured marginal rate of the rolled pipeline equals the
    schedule's promise, 2*II beats per iteration (kernel rounds are II
    instructions of 2 beats)."""
    for r in table:
        assert abs(r["pipe_rate"] - 2 * r["ii"]) < 0.35, r


def test_code_size_tracks_kernel_copies(table):
    """Code size is the pipeline's honest cost on streaming loops: modulo
    variable expansion needs K kernel copies plus per-copy epilogues, so
    every K > 1 streaming loop emits more code than the packed unroll-8
    trace schedule (bounded at 5x).  The recurrence-bound loops win both
    ways — K stays small and the serial unroll-8 body can't pack."""
    for r in table:
        assert r["pipe_code"] <= 5 * r["trace_code"], r
        if r["rec_bound"]:
            assert r["pipe_code"] < r["trace_code"], r
        elif r["copies"] > 1:
            assert r["pipe_code"] > r["trace_code"], r


def test_recurrence_bound_loop_documented(table):
    """ll5's carried chain pins II above the resource bound — the modulo
    scheduler can't beat the dependence height, only match it."""
    ll5 = next(r for r in table if r["kernel"] == "ll5_tridiag")
    assert ll5["ii"] > 3
