"""Throughput layer benchmarks: parallel sweeps, compile cache, predecode.

Unlike the ``bench_eN`` files, which reproduce the *paper's* numbers,
this one measures the harness itself — the three tiers of the
throughput layer — and writes the results to ``BENCH_throughput.json``
at the repository root:

1. **parallel sweep** — the same kernel sweep at ``--jobs 1`` vs.
   ``--jobs 4`` through the work-queue executor.  The >=2.5x gate only
   applies on hosts with >= 4 CPUs (a single-core runner honestly
   records ~1x; the JSON carries ``cpu_count`` so readers can tell);
2. **compile cache** — the content-addressed compile stage cold vs.
   warm.  Warm must be >= 5x faster: a hit is one module hash plus one
   lookup, against classical optimization + profile training + trace
   scheduling;
3. **predecode** — the VLIW simulator's pre-decoded execute loop vs.
   the original interpretive loop (kept under ``predecode=False``) on
   E1 kernels.  The fast path must be >= 1.5x on simulated beats/sec;
4. **compiled** — the closure-compiled executor (``path="compiled"``)
   vs. the predecoded fast path, same kernels.  Must be >= 1.5x again
   on top of tier 3;
5. **batched sweep** — one lockstep :class:`BatchVliwSimulator` call
   over 12 lanes per kernel vs. 12 per-run executions each paying
   simulator construction and an unmemoized predecode (the pre-batching
   sweep shape).  Must be >= 5x.

Determinism sanity rides along: every tier cross-checks that the faster
configuration produced bit-identical results before timing is trusted.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import platform
import time

import pytest

from .conftest import bench_once

from repro.cache import CompileCache
from repro.harness import run_sweep
from repro.harness.measure import (MeasureSpec, _cached_compile_stage,
                                   _compile_stage)
from repro.ir import MemoryImage
from repro.obs import Tracer
from repro.sim import BatchLane, BatchVliwSimulator, VliwSimulator
from repro.sim.compile import compiled_exec
from repro.sim.decode import predecode_program
from repro.trace import SchedulingOptions
from repro.workloads import get_kernel

REPORT_PATH = os.path.join(os.path.dirname(__file__), "..",
                           "BENCH_throughput.json")
SWEEP_KERNELS = ("daxpy", "vadd", "dot", "fir4", "stencil3", "ll7_state",
                 "count_matches", "state_machine")
PREDECODE_KERNELS = ("daxpy", "vadd", "fir4", "dot", "ll7_state")
JOBS = 4
BATCH_LANES = 12

_report: dict = {
    "host": {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "fork": "fork" in multiprocessing.get_all_start_methods(),
    },
}

_multicore = pytest.mark.skipif(
    (os.cpu_count() or 1) < 4
    or "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel speedup gate needs >= 4 CPUs and fork")


def _specs(n=96):
    return [MeasureSpec(kernel=k, n=n) for k in SWEEP_KERNELS]


def test_parallel_sweep(tmp_path, benchmark):
    """Tier 1: the work-queue executor."""
    serial_tracer, parallel_tracer = Tracer(), Tracer()
    t0 = time.perf_counter()
    serial = run_sweep(_specs(), jobs=1, tracer=serial_tracer,
                       cache_dir=str(tmp_path / "serial"))
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_sweep(_specs(), jobs=JOBS, tracer=parallel_tracer,
                         cache_dir=str(tmp_path / "parallel"))
    parallel_s = time.perf_counter() - t0

    assert [m.row() for m in serial] == [m.row() for m in parallel]
    strip = lambda t: {k: v for k, v in t.counters.as_dict().items()
                       if not k.startswith("cache.")}
    assert strip(serial_tracer) == strip(parallel_tracer)

    cores = os.cpu_count() or 1
    can_scale = (cores >= 4
                 and "fork" in multiprocessing.get_all_start_methods())
    _report["parallel_sweep"] = {
        "kernels": list(SWEEP_KERNELS), "n": 96, "jobs": JOBS,
        "serial_s": round(serial_s, 3), "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2),
        # the >=2.5x gate never silently passes on small hosts: it is
        # recorded here and skipped (visibly) by the gate test below
        "gate_2_5x": ("applies" if can_scale else
                      f"skipped: {cores} CPU(s), need >= 4 with fork"),
    }
    bench_once(benchmark, lambda: run_sweep(_specs(48), jobs=1,
                                            use_cache=False))


@_multicore
def test_parallel_sweep_scales():
    """The >= 2.5x gate, applied only where the hardware can deliver."""
    assert _report["parallel_sweep"]["speedup"] >= 2.5


def test_compile_cache_warm_speedup(tmp_path, benchmark):
    """Tier 2: cold vs. warm content-addressed compile stage."""
    cache = CompileCache(directory=str(tmp_path))
    cold_s = warm_s = 0.0
    for name in SWEEP_KERNELS:
        spec = MeasureSpec(kernel=name, n=96)
        kernel = get_kernel(name)
        args = kernel.make_args(spec.n)
        options = spec.options or SchedulingOptions()

        t0 = time.perf_counter()
        cold = _cached_compile_stage(spec, kernel, args, options,
                                     Tracer(), cache)
        cold_s += time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = _cached_compile_stage(spec, kernel, args, options,
                                     Tracer(), cache)
        warm_s += time.perf_counter() - t0
        # hits must be byte-equivalent to the compile they replaced
        assert warm[2] is cold[2]            # same artifact object

    speedup = cold_s / warm_s
    _report["compile_cache"] = {
        "kernels": list(SWEEP_KERNELS), "n": 96,
        "cold_s": round(cold_s, 4), "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 1),
        "stats": cache.stats().row(),
    }
    assert speedup >= 5.0, f"warm cache only {speedup:.1f}x vs cold"
    bench_once(benchmark, lambda: _cached_compile_stage(
        MeasureSpec(kernel="daxpy", n=96), get_kernel("daxpy"),
        get_kernel("daxpy").make_args(96), SchedulingOptions(),
        Tracer(), cache))


def test_predecode_fast_path(benchmark):
    """Tier 3: pre-decoded execute loop vs. the interpretive original."""
    slow_s = fast_s = 0.0
    beats = 0
    for name in PREDECODE_KERNELS:
        kernel = get_kernel(name)
        spec = MeasureSpec(kernel=name, n=96)
        args = kernel.make_args(spec.n)
        _, module, program, _ = _compile_stage(
            spec, kernel, args, SchedulingOptions(), Tracer())
        runs = {}
        for predecode in (True, False):
            memory = MemoryImage(module)
            sim = VliwSimulator(program, memory, predecode=predecode)
            t0 = time.perf_counter()
            result = sim.run(kernel.func, args)
            elapsed = time.perf_counter() - t0
            if predecode:
                fast_s += elapsed
                beats += result.stats.beats
            else:
                slow_s += elapsed
            runs[predecode] = (result.value, bytes(memory.data),
                               vars(result.stats))
        assert runs[True] == runs[False], name     # timing != semantics

    speedup = slow_s / fast_s
    _report["predecode"] = {
        "kernels": list(PREDECODE_KERNELS), "n": 96,
        "interpretive_s": round(slow_s, 4), "predecoded_s": round(fast_s, 4),
        "speedup": round(speedup, 2),
        "beats_per_sec_fast": int(beats / fast_s),
    }
    assert speedup >= 1.5, f"fast path only {speedup:.2f}x"

    kernel = get_kernel("daxpy")
    spec = MeasureSpec(kernel="daxpy", n=96)
    args = kernel.make_args(96)
    _, module, program, _ = _compile_stage(spec, kernel, args,
                                           SchedulingOptions(), Tracer())
    bench_once(benchmark, lambda: VliwSimulator(
        program, MemoryImage(module)).run(kernel.func, args))


def test_compiled_fast_path(benchmark):
    """Tier 4: closure-compiled executor vs. the predecoded fast path."""
    fast_s = compiled_s = 0.0
    beats = 0
    for name in PREDECODE_KERNELS:
        kernel = get_kernel(name)
        spec = MeasureSpec(kernel=name, n=96)
        args = kernel.make_args(spec.n)
        _, module, program, _ = _compile_stage(
            spec, kernel, args, SchedulingOptions(), Tracer())
        # warm both memoized artifacts so timing sees pure execution,
        # the steady state of any sweep after its first point
        VliwSimulator(program, MemoryImage(module),
                      path="fast").run(kernel.func, args)
        VliwSimulator(program, MemoryImage(module),
                      path="compiled").run(kernel.func, args)
        runs = {}
        for path in ("fast", "compiled"):
            memory = MemoryImage(module)
            sim = VliwSimulator(program, memory, path=path)
            t0 = time.perf_counter()
            result = sim.run(kernel.func, args)
            elapsed = time.perf_counter() - t0
            if path == "compiled":
                compiled_s += elapsed
                beats += result.stats.beats
            else:
                fast_s += elapsed
            runs[path] = (result.value, bytes(memory.data),
                          vars(result.stats))
        assert runs["fast"] == runs["compiled"], name

    speedup = fast_s / compiled_s
    _report["compiled"] = {
        "kernels": list(PREDECODE_KERNELS), "n": 96,
        "predecoded_s": round(fast_s, 4),
        "compiled_s": round(compiled_s, 4),
        "speedup": round(speedup, 2),
        "beats_per_sec_compiled": int(beats / compiled_s),
    }
    assert speedup >= 1.5, f"compiled path only {speedup:.2f}x"

    kernel = get_kernel("daxpy")
    spec = MeasureSpec(kernel="daxpy", n=96)
    args = kernel.make_args(96)
    _, module, program, _ = _compile_stage(spec, kernel, args,
                                           SchedulingOptions(), Tracer())
    bench_once(benchmark, lambda: VliwSimulator(
        program, MemoryImage(module),
        path="compiled").run(kernel.func, args))


def test_batched_sweep(benchmark):
    """Tier 5: one lockstep batch call vs. per-run predecoded execution.

    The baseline is the sweep shape this repo had before batching: every
    point constructs its own simulator and pays a full (unmemoized)
    predecode before running the fast path.  The batch runs all lanes
    through the compiled tier in lockstep over cloned input images.
    Code generation (source + ``exec``) is warmed outside the timed
    region and recorded as ``codegen_s``: the generated source rides
    the compile cache with the program, and the per-process ``exec``
    happens once per kernel however many points the sweep has.
    """
    per_run_s = batch_s = codegen_s = 0.0
    beats = 0
    for name in SWEEP_KERNELS:
        kernel = get_kernel(name)
        spec = MeasureSpec(kernel=name, n=96)
        args = kernel.make_args(spec.n)
        _, module, program, _ = _compile_stage(
            spec, kernel, args, SchedulingOptions(), Tracer())

        serial = []
        t0 = time.perf_counter()
        for _ in range(BATCH_LANES):
            memory = MemoryImage(module)
            predecode_program(program, memory, memoize=False)
            sim = VliwSimulator(program, memory, path="fast")
            result = sim.run(kernel.func, args)
            serial.append((result.value, bytes(memory.data),
                           vars(result.stats)))
        per_run_s += time.perf_counter() - t0

        base_image = MemoryImage(module)
        t0 = time.perf_counter()
        compiled_exec(program, base_image)      # one-time codegen
        codegen_s += time.perf_counter() - t0

        lanes = [BatchLane(base_image.clone(), args)
                 for _ in range(BATCH_LANES)]
        t0 = time.perf_counter()
        results = BatchVliwSimulator(program).run(kernel.func, lanes)
        batch_s += time.perf_counter() - t0
        beats += sum(r.stats.beats for r in results)

        batched = [(r.value, bytes(lane.memory.data), vars(r.stats))
                   for r, lane in zip(results, lanes)]
        assert batched == serial, name             # timing != semantics

    speedup = per_run_s / batch_s
    _report["batched_sweep"] = {
        "kernels": list(SWEEP_KERNELS), "n": 96, "lanes": BATCH_LANES,
        "per_run_s": round(per_run_s, 4), "batched_s": round(batch_s, 4),
        "codegen_s": round(codegen_s, 4),
        "speedup": round(speedup, 2),
        "beats_per_sec_batched": int(beats / batch_s),
    }
    assert speedup >= 5.0, f"batched sweep only {speedup:.2f}x"

    kernel = get_kernel("daxpy")
    spec = MeasureSpec(kernel="daxpy", n=96)
    args = kernel.make_args(96)
    _, module, program, _ = _compile_stage(spec, kernel, args,
                                           SchedulingOptions(), Tracer())
    bench_once(benchmark, lambda: BatchVliwSimulator(program).run(
        kernel.func, [BatchLane(MemoryImage(module), args)
                      for _ in range(BATCH_LANES)]))


def test_write_report(show):
    """Last in file: persist the tiers measured above."""
    assert {"parallel_sweep", "compile_cache", "predecode", "compiled",
            "batched_sweep"} <= set(_report)
    with open(REPORT_PATH, "w") as handle:
        json.dump(_report, handle, indent=2)
        handle.write("\n")
    show([{
        "tier": "parallel sweep",
        "speedup": _report["parallel_sweep"]["speedup"],
        "gate": ">=2.5x on >=4 cores",
    }, {
        "tier": "compile cache (warm)",
        "speedup": _report["compile_cache"]["speedup"],
        "gate": ">=5x vs cold",
    }, {
        "tier": "predecoded VLIW sim",
        "speedup": _report["predecode"]["speedup"],
        "gate": ">=1.5x vs interpretive",
    }, {
        "tier": "compiled VLIW sim",
        "speedup": _report["compiled"]["speedup"],
        "gate": ">=1.5x vs predecoded",
    }, {
        "tier": "batched sweep",
        "speedup": _report["batched_sweep"]["speedup"],
        "gate": ">=5x vs per-run",
    }], "throughput layer (BENCH_throughput.json)")
