"""E9 — Fast-mode floating-point exceptions (paper section 7).

Claim: "It's very much in the interests of performance to move divides up
in the schedule; they take a long time.  But if we want to detect division
by zero, we must wait until the test has completed before initiating
division.  ...  In fast mode, floating exceptions cause traps only [at
consumption]; otherwise a NaN or infinity will result ... overall
execution speed will be higher."

Reproduced: the guarded-divide loop (IF A(i) <> 0 THEN C(i) = D(i)/A(i))
schedules the 25-beat divide above its guard only in fast mode, shortening
the loop; results agree with the reference semantics in both modes.
"""

import math

import pytest

from repro.ir import (IRBuilder, MemRef, Module, RegClass, VReg, run_module,
                      verify_module)
from repro.machine import TRACE_28_200
from repro.opt import classical_pipeline
from repro.sim import run_compiled
from repro.trace import SchedulingOptions, compile_module

from .conftest import bench_once


def build_guarded_divide(n: int) -> Module:
    """c[i] = d[i] / a[i] where a[i] != 0, else c[i] = 0."""
    module = Module()
    a_init = [0.0 if k % 5 == 0 else float(k) for k in range(n)]
    module.add_array("A", n, 8, init=a_init)
    module.add_array("D", n, 8, init=[float(3 * k + 1) for k in range(n)])
    module.add_array("C", n, 8)
    b = IRBuilder(module)
    b.function("main", [("n", RegClass.INT)])
    i = VReg("i", RegClass.INT)
    b.block("entry")
    a, d, c = b.addr("A"), b.addr("D"), b.addr("C")
    b.mov(0, dest=i)
    b.jmp("head")
    b.block("head")
    pred = b.cmplt(i, b.param("n"))
    b.br(pred, "body", "exit")
    b.block("body")
    off = b.shl(i, 3)
    av = b.fload(b.add(a, off), 0, memref=MemRef.make("A", {"i": 8}, size=8))
    dv = b.fload(b.add(d, off), 0, memref=MemRef.make("D", {"i": 8}, size=8))
    nonzero = b.fcmpne(av, 0.0)
    b.br(nonzero, "divide", "zero")
    b.block("divide")
    b.fstore(b.fdiv(dv, av), b.add(c, off), 0,
             memref=MemRef.make("C", {"i": 8}, size=8))
    b.jmp("next")
    b.block("zero")
    b.fstore(0.0, b.add(c, off), 0, memref=MemRef.make("C", {"i": 8}, size=8))
    b.jmp("next")
    b.block("next")
    b.add(i, 1, dest=i)
    b.jmp("head")
    b.block("exit")
    b.ret()
    verify_module(module)
    return module


def _compile_and_run(fast_fp: bool, n=60):
    # n=60, not 64: power-of-two array sizes put A[i] and D[i] in the same
    # bank every iteration (the classic interleaved-memory pathology), and
    # the resulting load serialization would mask the fast-mode effect
    # being measured here
    module = build_guarded_divide(n)
    reference = run_module(build_guarded_divide(n), "main", [n - 4])
    classical_pipeline(unroll_factor=0).run(module)
    options = SchedulingOptions(fast_fp=fast_fp)
    program = compile_module(module, TRACE_28_200, options)
    result = run_compiled(program, module, "main", [n - 4],
                          fp_mode="fast" if fast_fp else "precise")
    got = result.memory.read_array("C", n, 8)
    want = reference.memory.read_array("C", n, 8)
    assert all((math.isnan(x) and math.isnan(y)) or x == y
               for x, y in zip(got, want))
    return result.stats


def test_e9_fast_mode_speeds_guarded_divide(show, benchmark):
    fast = _compile_and_run(True)
    precise = _compile_and_run(False)
    show([{"fp_mode": "fast", "beats": fast.beats},
          {"fp_mode": "precise", "beats": precise.beats},
          {"fp_mode": "ratio",
           "beats": round(precise.beats / fast.beats, 2)}],
         "E9: guarded divide — fast vs precise exception mode")
    assert fast.beats < precise.beats
    bench_once(benchmark, lambda: _compile_and_run(True))


def test_e9_fast_mode_preserves_results(benchmark):
    """Both modes store the same values (NaN-for-NaN)."""
    _compile_and_run(True)
    _compile_and_run(False)
    bench_once(benchmark, lambda: None)
