"""Fault injection & recovery: the cost of precise interrupts.

Paper section 4: interrupts on the TRACE are precise because the machine
simply stops issuing and lets the self-draining pipelines empty — no
scoreboard or shadow state.  The price is the drain (bounded by the
deepest pipeline) plus handler service time, paid per interrupt.  This
bench sweeps the interrupt rate over one kernel and shows the overhead
is linear in the number of interrupts and architecturally invisible
(identical results), and that a checkpoint/resume round trip reproduces
the uninterrupted run bit-identically.
"""

from repro.faults import (FaultEvent, FaultInjector, INTERRUPT,
                          InjectionPlan, SERVICE_BEATS)
from repro.harness import prepare_modules
from repro.ir import MemoryImage
from repro.machine import TRACE_28_200
from repro.sim import VliwSimulator, run_compiled
from repro.trace import compile_module
from repro.workloads import get_kernel

from .conftest import bench_once

KERNEL, N, UNROLL = "daxpy", 64, 8


def _compiled():
    kernel = get_kernel(KERNEL)
    _, module = prepare_modules(kernel, N, unroll=UNROLL)
    program = compile_module(module, TRACE_28_200)
    return kernel, module, program


def test_interrupt_overhead_is_linear_and_invisible(show, benchmark):
    kernel, module, program = _compiled()
    args = kernel.make_args(N)
    clean = run_compiled(program, module, kernel.func, args)

    rows = []
    prev_beats = clean.stats.beats
    for count in (1, 4, 16):
        beats = clean.stats.beats
        plan = InjectionPlan([FaultEvent(i * beats // (count + 1), INTERRUPT)
                              for i in range(1, count + 1)])
        inj = FaultInjector(plan)
        res = run_compiled(program, module, kernel.func, args, injector=inj)
        assert res.value == clean.value
        assert res.memory.snapshot() == clean.memory.snapshot()
        assert res.stats.interrupts == count
        overhead = res.stats.beats - clean.stats.beats
        rows.append({"interrupts": count, "beats": res.stats.beats,
                     "overhead_beats": overhead,
                     "per_interrupt": round(overhead / count, 1)})
        # each interrupt costs at least its service time, and the run
        # never gets cheaper as the rate rises
        assert overhead >= count * SERVICE_BEATS
        assert res.stats.beats >= prev_beats
        prev_beats = res.stats.beats
    show([{"interrupts": 0, "beats": clean.stats.beats,
           "overhead_beats": 0, "per_interrupt": 0.0}] + rows,
         f"{KERNEL} n={N}: precise-interrupt overhead "
         f"(service {SERVICE_BEATS} beats + drain per event)")
    bench_once(benchmark,
               lambda: run_compiled(program, module, kernel.func, args,
                                    injector=FaultInjector(
                                        InjectionPlan.random(
                                            1, clean.stats.beats))))


def test_checkpoint_resume_round_trip(show, benchmark):
    kernel, module, program = _compiled()
    args = kernel.make_args(N)
    clean = run_compiled(program, module, kernel.func, args)

    def round_trip():
        inj = FaultInjector(InjectionPlan.interrupt_at(
            clean.stats.beats // 2, checkpoint=True))
        first = VliwSimulator(program, MemoryImage(module),
                              injector=inj).run(kernel.func, args)
        assert first.interrupted
        return first.checkpoint, VliwSimulator(
            program, MemoryImage(module)).resume(first.checkpoint)

    checkpoint, resumed = round_trip()
    assert resumed.value == clean.value
    assert resumed.memory.snapshot() == clean.memory.snapshot()
    show([{"run": "uninterrupted", "beats": clean.stats.beats},
          {"run": "checkpoint+resume", "beats": resumed.stats.beats},
          {"run": "drain cost", "beats": checkpoint.drain_beats}],
         f"{KERNEL} n={N}: checkpoint/resume reproduces the run "
         f"bit-identically (state = regs + PCs + memory)")
    bench_once(benchmark, round_trip)
