"""Overhead guard for the observability layer (``repro.obs``).

The tracing substrate promises to be free when disabled: every
instrumented module holds :data:`NULL_TRACER` and the simulator hot loops
gate per-beat work on one cached boolean.  This bench measures the whole
``measure()`` pipeline with telemetry off vs on and asserts the disabled
path costs < 5% over a pre-instrumentation baseline — which we
approximate by requiring disabled == default (they are literally the same
code path) and default vs phases-only telemetry within the budget.
"""

import time

import pytest

from repro.harness import measure
from repro.obs import NULL_TRACER, Tracer

from .conftest import bench_once

KERNEL, N, UNROLL = "daxpy", 64, 8
ROUNDS = 7


def _best_of(fn, rounds: int = ROUNDS) -> float:
    """Min-of-N wall time: robust against scheduler noise."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_obs_disabled_overhead_under_five_percent(show, benchmark):
    run_off = lambda: measure(KERNEL, N, unroll=UNROLL)
    run_on = lambda: measure(KERNEL, N, unroll=UNROLL, telemetry=True)
    run_off()                       # warm caches/imports before timing
    off = _best_of(run_off)
    on = _best_of(run_on)
    ratio = on / off
    show([{"mode": "telemetry off (NULL_TRACER)", "best_s": round(off, 4)},
          {"mode": "telemetry on (spans+counters)", "best_s": round(on, 4)},
          {"mode": "ratio on/off", "best_s": round(ratio, 3)}],
         "obs overhead: full measure() pipeline, best of "
         f"{ROUNDS} (budget: disabled run adds < 5%)")
    # The disabled path IS the default path (same null tracer), so the
    # <5% budget is enforced as: even *enabled* phase/counter telemetry
    # stays within 5% of disabled.  Generous noise floor for CI boxes.
    assert ratio < 1.05 or (on - off) < 0.010, (
        f"telemetry overhead {100 * (ratio - 1):.1f}% exceeds budget")
    bench_once(benchmark, run_off)


def test_null_tracer_primitives_are_cheap(benchmark):
    """The per-call cost of the null interface, the thing hot loops pay."""
    null = NULL_TRACER
    iters = 100_000

    def spin():
        for _ in range(iters):
            if null.enabled and null.collect_events:   # the sim-loop gate
                null.event("x", ts=0)

    spin()
    per_call = _best_of(spin, rounds=3) / iters
    # two attribute reads and a branch; anything near a microsecond means
    # the gate stopped being flat attribute access
    assert per_call < 1e-6, f"null gate costs {per_call * 1e9:.0f} ns"
    bench_once(benchmark, spin)


def test_events_mode_is_the_expensive_one(show, benchmark):
    """Sanity: the opt-in event log (not counters) is where cost lives —
    documents why events are off by default."""
    tracer = Tracer(events=True)
    measure(KERNEL, N, unroll=UNROLL, tracer=tracer, events=True)
    assert len(tracer.events) > 0
    show([{"collected": "span records", "count": len(tracer.spans)},
          {"collected": "instant events", "count": len(tracer.events)},
          {"collected": "counters", "count": len(tracer.counters)}],
         "obs: what events=True actually records")
    bench_once(benchmark, lambda: measure(KERNEL, N, unroll=UNROLL,
                                          telemetry=True, events=True))
