"""E10 — Context switching in 15 microseconds (paper section 8.1).

Claims: "the high available memory bandwidth in the system permits a
complete context switch in 15 microseconds.  This figure holds in any
machine configuration, because usable memory bandwidth increases as the
number of registers"; ASID tagging means "no purging of the instruction
cache or translation buffers is necessary on a context switch; caches must
be purged only every 255 address space mapping changes."
"""

import pytest

from repro.machine import MachineConfig, TRACE_28_200
from repro.sim import (ICacheModel, TlbModel, asid_purge_interval,
                       context_switch_cost, register_file_words)

from .conftest import bench_once

CONFIGS = [(f"{7 * pairs}/200", MachineConfig.from_pairs(pairs))
           for pairs in (1, 2, 4)]


def test_e10_fifteen_microseconds_every_config(show, benchmark):
    rows = []
    for label, config in CONFIGS:
        report = context_switch_cost(config)
        rows.append({
            "config": label,
            "register_words": report.register_words,
            "save_restore_beats": report.save_restore_beats,
            "total_beats": report.total_beats,
            "total_us": round(report.total_us(config), 1),
        })
    show(rows, "E10: context-switch cost (paper: ~15 us, "
               "configuration-independent)")
    times = [context_switch_cost(c).total_us(c) for _, c in CONFIGS]
    for t in times:
        assert t == pytest.approx(15, abs=1.5)
    assert max(times) - min(times) < 0.5    # config-independent
    bench_once(benchmark, lambda: [context_switch_cost(c)
                                   for _, c in CONFIGS])


def test_e10_asid_vs_flush(show, benchmark):
    tagged = context_switch_cost(TRACE_28_200, tagged=True)
    untagged = context_switch_cost(TRACE_28_200, tagged=False)
    show([{"scheme": "ASID-tagged (TRACE)",
           "total_us": round(tagged.total_us(TRACE_28_200), 1),
           "cold_start_beats": tagged.cold_start_beats},
          {"scheme": "flush-on-switch",
           "total_us": round(untagged.total_us(TRACE_28_200), 1),
           "cold_start_beats": untagged.cold_start_beats}],
         "E10b: process-tagged caches vs flushing")
    assert untagged.total_beats > 5 * tagged.total_beats
    assert asid_purge_interval() == 255
    bench_once(benchmark, lambda: None)


def test_e10_tagged_structures_survive_round_trip(show, benchmark):
    """Functional check: a process's TLB and icache entries are intact
    after other processes ran (until the ASID space wraps)."""
    tlb = TlbModel(TRACE_28_200, tagged=True)
    icache = ICacheModel(TRACE_28_200, tagged=True)
    tlb.access(0x8000)
    icache._lines[0] = (0, "f", 0)      # seed one line for asid 0
    for asid in range(1, 10):
        tlb.switch_process(asid)
        tlb.access(0x8000)
        icache.switch_process(asid)
    tlb.switch_process(0)
    icache.switch_process(0)
    assert tlb.access(0x8000)            # still a hit
    assert icache._lines[0] == (0, "f", 0)
    assert tlb.stats.flushes == 0 and icache.stats.flushes == 0
    bench_once(benchmark, lambda: None)
