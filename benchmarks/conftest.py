"""Shared helpers for the experiment benchmarks.

Each ``bench_eN_*.py`` regenerates one of the paper's quantitative claims
(see DESIGN.md's experiment index): it prints the table/series, asserts the
claim's *shape* (who wins, by roughly what factor), and clocks one
representative simulation through pytest-benchmark so ``--benchmark-only``
reports host-side costs too.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import pytest


def bench_once(benchmark, fn):
    """Record one timed round of ``fn`` (simulation work dominates)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def show():
    """Print a table so it lands in captured output and -s runs."""
    from repro.harness import format_table

    def _show(rows, title):
        text = format_table(rows, title)
        print("\n" + text + "\n")
        return text

    return _show
