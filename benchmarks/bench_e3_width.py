"""E3 — Configuration family and width scaling (paper section 6.3).

Claims: the instruction word is 256/512/1024 bits for 1/2/4 I-F pairs;
the full machine initiates 28 operations per instruction with peak rates
of 215 "VLIW MIPS" and 60 MFLOPS, and 492 MB/s of memory bandwidth
(section 6.4.1).  Wider configurations speed up parallel loops until the
loop's own parallelism is exhausted.
"""

import pytest

from repro.harness import measure
from repro.machine import MachineConfig, TRACE_7_200, TRACE_28_200

from .conftest import bench_once

CONFIGS = [(f"{7 * pairs}/200", MachineConfig.from_pairs(pairs))
           for pairs in (1, 2, 4)]


def test_e3_paper_peak_figures(show, benchmark):
    rows = []
    for label, cfg in CONFIGS:
        rows.append({
            "config": label,
            "instr_bits": cfg.instruction_bits,
            "ops/instr": cfg.ops_per_instruction,
            "VLIW MIPS": round(cfg.peak_vliw_mips(), 1),
            "MFLOPS": round(cfg.peak_mflops(), 1),
            "mem MB/s": round(cfg.peak_memory_bandwidth_mb_s(), 1),
        })
    show(rows, "E3: configuration family (paper: 1024 bits, 28 ops, "
               "215 MIPS, ~60 MFLOPS, 492 MB/s at 28/200)")
    full = TRACE_28_200
    assert full.instruction_bits == 1024
    assert full.ops_per_instruction == 28
    assert full.peak_vliw_mips() == pytest.approx(215, rel=0.01)
    assert full.peak_mflops() == pytest.approx(60, rel=0.05)
    assert full.peak_memory_bandwidth_mb_s() == pytest.approx(492, rel=0.01)
    bench_once(benchmark, lambda: [c.peak_vliw_mips() for _, c in CONFIGS])


def test_e3_width_scaling(show, benchmark):
    rows = []
    speedups = {}
    for kernel in ("vadd", "ll7_state", "dot"):
        row = {"kernel": kernel}
        for label, cfg in CONFIGS:
            m = measure(kernel, n=96, config=cfg, unroll=8)
            row[label] = round(m.vliw_speedup, 2)
            speedups[(kernel, label)] = m.vliw_speedup
        rows.append(row)
    show(rows, "E3b: speedup vs machine width (unroll 8, n=96)")
    # parallel loops gain from width; the serial reduction does not
    for kernel in ("vadd", "ll7_state"):
        assert speedups[(kernel, "28/200")] > \
            1.2 * speedups[(kernel, "7/200")], kernel
    assert speedups[("dot", "28/200")] < \
        1.5 * speedups[("dot", "7/200")]
    bench_once(benchmark, lambda: measure("vadd", 96, config=TRACE_7_200,
                                          unroll=8))
