"""E1 — Trace-scheduled VLIW speedups on numeric code (paper sections 1/4).

Claim: the compacting compiler achieves order-of-magnitude speedups on
numeric code over a conventional scalar machine of the same technology
("from ten to thirty times" was the promise; the product delivered
order-of-magnitude on suitable loops, bounded by each loop's dependence
structure).

Reproduced shape: independent-iteration loops (daxpy, vadd, fir4, ll7)
reach >= 6x at unroll 8 on the 28/200; serial reductions stay near their
chain bound (dot ~3-4x); nothing regresses below 1x.
"""

import pytest

from repro.harness import measure
from repro.machine import TRACE_28_200

from .conftest import bench_once

WIDE_KERNELS = ["daxpy", "vadd", "fir4", "stencil3", "ll1_hydro",
                "ll7_state", "ll12_diff", "copy"]
SERIAL_KERNELS = ["dot", "ll3_inner", "ll5_tridiag"]


@pytest.fixture(scope="module")
def results():
    rows = {}
    for name in WIDE_KERNELS + SERIAL_KERNELS:
        rows[name] = measure(name, n=96, config=TRACE_28_200, unroll=8)
    return rows


def test_e1_wide_loops_order_of_magnitude(results, show, benchmark):
    rows = [results[k].row() for k in WIDE_KERNELS]
    show(rows, "E1: independent-iteration numeric kernels "
               "(TRACE 28/200, unroll 8, n=96)")
    for name in WIDE_KERNELS:
        assert results[name].vliw_speedup >= 6.0, name
    geo = 1.0
    for name in WIDE_KERNELS:
        geo *= results[name].vliw_speedup
    geo **= 1 / len(WIDE_KERNELS)
    assert geo >= 8.0       # order-of-magnitude territory
    bench_once(benchmark, lambda: measure("daxpy", 96, unroll=8))


def test_e1_serial_chains_bounded(results, show, benchmark):
    rows = [results[k].row() for k in SERIAL_KERNELS]
    show(rows, "E1b: dependence-bound kernels (reduction/recurrence)")
    bench_once(benchmark, lambda: measure("dot", 96, unroll=8))
    for name in SERIAL_KERNELS:
        speedup = results[name].vliw_speedup
        assert 1.0 < speedup < 6.0, (name, speedup)


def test_e1_everything_correct_and_positive(results, benchmark):
    for name, result in results.items():
        assert result.vliw_speedup > 1.0, name
    bench_once(benchmark, lambda: measure("vadd", 96, unroll=8))
