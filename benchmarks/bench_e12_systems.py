"""E12 — Systems code on a VLIW (paper sections 8.4 and 9).

Claims: systems code (small basic blocks, pointers, many calls) still
speeds up — "this result surprised us somewhat" — with procedure-call
overhead the only real issue, addressed by inlining; and compensation
code, unrolling, and inlining together keep code growth bounded
("tuned to avoid undue code growth").
"""

import pytest

from repro.harness import measure, measure_code_size, prepare_modules
from repro.machine import TRACE_28_200
from repro.trace import SchedulingOptions, compile_module
from repro.workloads import SYSTEMS_KERNELS, get_kernel

from .conftest import bench_once

KERNELS = sorted(SYSTEMS_KERNELS)


@pytest.fixture(scope="module")
def results():
    return {name: measure(name, n=64, config=TRACE_28_200, unroll=8)
            for name in KERNELS}


def test_e12_systems_code_still_wins(results, show, benchmark):
    rows = []
    for name in KERNELS:
        m = results[name]
        stats = m.compile_stats
        rows.append({"kernel": name,
                     "vliw_speedup": round(m.vliw_speedup, 2),
                     "traces": stats.n_traces,
                     "comp_ops": stats.n_compensation_ops,
                     "spec_loads": stats.n_speculated_loads})
    show(rows, "E12: systems-style code on the TRACE 28/200")
    speedups = [results[k].vliw_speedup for k in KERNELS]
    assert all(s > 1.0 for s in speedups)          # everything improves
    assert max(speedups) < 6.0                     # but far below numeric
    bench_once(benchmark, lambda: measure("state_machine", 64, unroll=8))


def test_e12_inlining_rescues_call_heavy_code(show, benchmark):
    """The paper's answer to call overhead: 'rely on the compiler to be
    clever with ... procedure inlining'."""
    inlined = measure("call_heavy", 64, unroll=8, inline=48)
    not_inlined = measure("call_heavy", 64, unroll=8, inline=0)
    show([{"inlining": "on", "vliw_beats": inlined.vliw.beats,
           "calls_at_runtime": inlined.vliw.calls},
          {"inlining": "off", "vliw_beats": not_inlined.vliw.beats,
           "calls_at_runtime": not_inlined.vliw.calls}],
         "E12b: inlining on call-heavy code")
    assert inlined.vliw.calls < not_inlined.vliw.calls
    assert inlined.vliw.beats < not_inlined.vliw.beats
    bench_once(benchmark, lambda: measure("call_heavy", 64, inline=48))


def test_e12_compensation_growth_bounded(results, show, benchmark):
    """Compensation code exists but stays a small fraction of the program."""
    rows = []
    for name in KERNELS:
        stats = results[name].compile_stats
        fraction = stats.n_compensation_ops / max(1, stats.n_ops)
        rows.append({"kernel": name, "ops": stats.n_ops,
                     "comp_ops": stats.n_compensation_ops,
                     "fraction": round(fraction, 3)})
    show(rows, "E12c: compensation-code volume")
    for row in rows:
        assert row["fraction"] < 0.30, row
    bench_once(benchmark, lambda: None)


def test_e12_trace_scheduling_vs_basic_block_only(show, benchmark):
    """Paper section 8: when UNIX was first debugged, 'we restricted traces
    to basic blocks' — the ablation that shows inter-block compaction is
    where the win comes from."""
    rows = []
    for name in ("count_matches", "clamp", "daxpy"):
        full = measure(name, 64, unroll=8)
        restricted = measure(
            name, 64, unroll=8,
            options=SchedulingOptions(speculation=False, join_motion=False))
        rows.append({"kernel": name,
                     "full_trace_beats": full.vliw.beats,
                     "restricted_beats": restricted.vliw.beats,
                     "motion_gain": round(
                         restricted.vliw.beats / full.vliw.beats, 2)})
    show(rows, "E12d: inter-block code motion on vs off")
    assert all(r["restricted_beats"] >= r["full_trace_beats"] for r in rows)
    bench_once(benchmark, lambda: None)
