"""F1 — Figure 1: the "ideal VLIW" and why register files must partition.

Claim (section 5): the ideal machine gives every functional unit two read
ports and one write port into one central register file, but "any
reasonably large number of functional units requires an impossibly large
number of ports", forcing the partitioned I/F register files the TRACE
ships with.
"""

import pytest

from repro.machine import MachineConfig, TRACE_28_200

from .conftest import bench_once

CONFIGS = [(f"{7 * pairs}/200", MachineConfig.from_pairs(pairs))
           for pairs in (1, 2, 4)]


def _functional_units(config) -> int:
    # per pair: 2 integer ALUs + float adder + float multiplier
    return 4 * config.n_pairs


def test_f1_ideal_port_count_explodes(show, benchmark):
    rows = []
    for label, config in CONFIGS:
        fus = _functional_units(config)
        ideal_ports = 3 * fus              # 2 read + 1 write each
        partitioned = 12 * config.n_pairs  # paper: 12 datapaths per board
        rows.append({"config": label, "functional_units": fus,
                     "ideal_central_ports": ideal_ports,
                     "per_board_datapaths (actual)": 12,
                     "total_partitioned": partitioned})
    show(rows, "F1: central-file port demand vs the partitioned design")
    full = TRACE_28_200
    assert 3 * _functional_units(full) == 48   # impossibly many on one file
    bench_once(benchmark, lambda: [_functional_units(c)
                                   for _, c in CONFIGS])
