"""Unit tests for the trace-scheduling compiler's internals."""

import pytest

from repro.disambig import Disambiguator
from repro.ir import (IRBuilder, MemRef, Module, Opcode, RegClass, VReg,
                      run_module)
from repro.machine import (MachineConfig, TRACE_7_200, TRACE_28_200, Unit,
                           format_compiled)
from repro.sim import run_compiled
from repro.trace import (ListScheduler, SchedulingOptions, Trace,
                         TraceCompiler, TraceSelector, build_trace_graph,
                         compile_module, estimate_static, linearize)

from .conftest import build_diamond, build_sum_array


class TestEstimates:
    def test_loop_blocks_heavier(self, sum_array_module):
        func = sum_array_module.function("sumA")
        est = estimate_static(func)
        assert est.weight("body") > est.weight("entry")
        assert est.weight("head") > est.weight("exit")

    def test_loop_edge_probability(self, sum_array_module):
        func = sum_array_module.function("sumA")
        est = estimate_static(func)
        assert est.prob("head", "body") > est.prob("head", "exit")

    def test_plain_branch_is_even(self, diamond_module):
        func = diamond_module.function("absdiff")
        est = estimate_static(func)
        assert est.prob("entry", "ge") == pytest.approx(0.5)


class TestSelector:
    def test_first_trace_is_the_loop(self, sum_array_module):
        func = sum_array_module.function("sumA")
        selector = TraceSelector(func, estimate_static(func))
        trace = selector.next_trace()
        assert trace.blocks == ["head", "body"]

    def test_trace_does_not_cross_back_edge(self, sum_array_module):
        func = sum_array_module.function("sumA")
        selector = TraceSelector(func, estimate_static(func))
        trace = selector.next_trace()
        # body -> head is the back edge; the trace must not wrap
        assert len(trace.blocks) == len(set(trace.blocks))

    def test_all_blocks_eventually_selected(self, sum_array_module):
        func = sum_array_module.function("sumA")
        selector = TraceSelector(func, estimate_static(func))
        seen = set()
        while True:
            trace = selector.next_trace()
            if trace is None:
                break
            selector.mark_scheduled(trace)
            seen.update(trace.blocks)
            for name in trace.blocks:
                func.remove_block(name)
        assert seen == {"entry", "head", "body", "exit"}


class TestLinearize:
    def test_diamond_trace_has_split(self, diamond_module):
        func = diamond_module.function("absdiff")
        nodes = linearize(func, Trace(["entry", "ge", "join"]))
        kinds = [n.kind for n in nodes]
        assert "split" in kinds
        split = next(n for n in nodes if n.kind == "split")
        assert split.off_trace == "lt"
        assert split.on_trace == "ge"

    def test_join_detected_at_side_entrance(self, diamond_module):
        func = diamond_module.function("absdiff")
        nodes = linearize(func, Trace(["entry", "ge", "join"]))
        joins = [n for n in nodes if n.kind == "join"]
        assert len(joins) == 1
        assert joins[0].block == "join"

    def test_external_entry_label_forces_join(self, diamond_module):
        func = diamond_module.function("absdiff")
        nodes = linearize(func, Trace(["entry", "ge"]),
                          entry_labels={"ge"})
        assert any(n.kind == "join" and n.block == "ge" for n in nodes)

    def test_mem_generation_bumped_by_iv_defs(self, sum_array_module):
        func = sum_array_module.function("sumA")
        graph = build_trace_graph(func, Trace(["head", "body"]),
                                  Disambiguator(sum_array_module),
                                  MachineConfig())
        gens = [n.mem_gen for n in graph.nodes]
        assert gens == sorted(gens)            # monotone
        assert gens[-1] > gens[0]              # i redefined inside


class TestSchedulerMechanics:
    def _graph(self, module, blocks):
        func = module.function(next(iter(module.functions)))
        return func, build_trace_graph(func, Trace(blocks),
                                       Disambiguator(module),
                                       TRACE_28_200)

    def test_float_latency_respected(self):
        b = IRBuilder()
        b.function("f", [("x", RegClass.FLT)], ret_class=RegClass.FLT)
        b.block("entry")
        t1 = b.fadd(b.param("x"), 1.0)
        t2 = b.fmul(t1, 2.0)
        b.ret(t2)
        func, graph = self._graph(b.module, ["entry"])
        sched = ListScheduler(graph, TRACE_28_200,
                              Disambiguator(b.module)).run()
        place = {graph.nodes[i].op.opcode: p.instruction
                 for i, p in sched.placements.items()
                 if graph.nodes[i].op is not None
                 and graph.nodes[i].op.dest is not None}
        # fadd latency 6 beats = 3 instructions
        assert place[Opcode.FMUL] - place[Opcode.FADD] >= 3

    def test_independent_ops_packed_together(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        temps = [b.add(b.param("a"), k) for k in range(6)]
        total = temps[0]
        for t in temps[1:]:
            total = b.add(total, t)
        b.ret(total)
        func, graph = self._graph(b.module, ["entry"])
        sched = ListScheduler(graph, TRACE_28_200,
                              Disambiguator(b.module)).run()
        first = [i for i, p in sched.placements.items()
                 if p.instruction == 0 and graph.nodes[i].kind == "op"]
        assert len(first) >= 6       # all six independent adds in instr 0

    def test_narrow_machine_needs_more_instructions(self):
        def build():
            b = IRBuilder()
            b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
            b.block("entry")
            # 30 fully independent operations: width-limited, not
            # dependence-limited
            temps = [b.add(b.param("a"), k) for k in range(30)]
            b.ret(temps[0])
            return b.module

        lengths = {}
        for config in (TRACE_7_200, TRACE_28_200):
            module = build()
            func, graph = self._graph(module, ["entry"])
            sched = ListScheduler(graph, config,
                                  Disambiguator(module)).run()
            lengths[config.n_pairs] = sched.n_instructions
        assert lengths[1] > lengths[4]


class TestCompiledStructure:
    def test_multiway_branch_possible(self):
        """Two originally-sequential tests may pack into one instruction."""
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        # branches written so the fallthrough chain is the likely trace:
        # both tests then belong to one trace and can pack multiway
        p1 = b.cmpne(b.param("a"), 1)
        b.br(p1, "try2", "one")
        b.block("try2")
        p2 = b.cmpne(b.param("a"), 2)
        b.br(p2, "other", "two")
        b.block("one")
        b.ret(100)
        b.block("two")
        b.ret(200)
        b.block("other")
        b.ret(0)
        prog = compile_module(b.module, TRACE_28_200)
        cf = prog.function("f")
        max_branches = max(len(li.branches) for li in cf.instructions)
        assert max_branches >= 2     # the multiway jump in action
        for value, expected in ((1, 100), (2, 200), (7, 0)):
            assert run_compiled(prog, b.module, "f", [value]).value == expected

    def test_branch_priority_order(self):
        """When both tests are true, the originally-first must win."""
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        p1 = b.cmpgt(b.param("a"), 0)
        b.br(p1, "first", "try2")
        b.block("try2")
        p2 = b.cmpgt(b.param("a"), -10)
        b.br(p2, "second", "other")
        b.block("first")
        b.ret(1)
        b.block("second")
        b.ret(2)
        b.block("other")
        b.ret(3)
        prog = compile_module(b.module, TRACE_28_200)
        assert run_compiled(prog, b.module, "f", [5]).value == 1
        assert run_compiled(prog, b.module, "f", [-5]).value == 2
        assert run_compiled(prog, b.module, "f", [-50]).value == 3

    def test_speculative_load_conversion(self, sum_array_module):
        """A load hoisted above the loop-exit branch becomes dismissable."""
        compiler = TraceCompiler(sum_array_module, TRACE_28_200,
                                 SchedulingOptions())
        cf, stats = compiler.compile_function(
            sum_array_module.function("sumA"))
        assert stats is compiler.stats["sumA"]
        has_spec = any(so.op.is_speculative
                       for li in cf.instructions for so in li.ops)
        assert has_spec == (stats.n_speculated_loads > 0)

    def test_no_speculation_option(self, sum_array_module):
        compiler = TraceCompiler(sum_array_module, TRACE_28_200,
                                 SchedulingOptions(speculation=False))
        cf, stats = compiler.compile_function(
            sum_array_module.function("sumA"))
        assert stats.n_speculated_loads == 0
        assert not any(so.op.is_speculative
                       for li in cf.instructions for so in li.ops)

    def test_compensation_generated_for_diamond(self, diamond_module):
        """The off-trace arm enters mid-trace: join compensation appears."""
        compiler = TraceCompiler(diamond_module, TRACE_28_200,
                                 SchedulingOptions())
        cf, stats = compiler.compile_function(
            diamond_module.function("absdiff"))
        # the ret block's fadd-free ops move above the join; either
        # compensation was emitted or nothing moved — both paths must work
        assert run_compiled_program(cf, compiler, diamond_module)

    def test_fill_ratio_reported(self, sum_array_module):
        prog = compile_module(sum_array_module, TRACE_28_200)
        cf = prog.function("sumA")
        assert 0.0 < cf.fill_ratio() <= 1.0

    def test_format_compiled_readable(self, sum_array_module):
        prog = compile_module(sum_array_module, TRACE_28_200)
        text = format_compiled(prog.function("sumA"))
        assert "compiled sumA" in text
        assert "head" in text


def run_compiled_program(cf, compiler, module) -> bool:
    from repro.machine import CompiledProgram
    program = CompiledProgram(config=cf.config)
    program.add(cf)
    result = run_compiled(program, module, cf.name, [10, 3])
    return result.value == 7


class TestRegalloc:
    def test_distinct_live_values_get_distinct_registers(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        temps = [b.add(b.param("a"), k) for k in range(10)]
        total = temps[0]
        for t in temps[1:]:
            total = b.add(total, t)
        b.ret(total)
        prog = compile_module(b.module, TRACE_28_200)
        assert run_compiled(prog, b.module, "f", [1]).value == \
            run_module(b.module, "f", [1]).value

    def test_register_capacity_enforced(self):
        from repro.errors import RegAllocError
        b = IRBuilder()
        # 40 float parameters are simultaneously live on entry: that alone
        # exceeds one pair's 32 float registers, whatever the schedule does
        params = [(f"p{k}", RegClass.FLT) for k in range(40)]
        b.function("f", params, ret_class=RegClass.FLT)
        b.block("entry")
        total = b.param("p0")
        for k in range(1, 40):
            total = b.fadd(total, b.param(f"p{k}"))
        b.ret(total)
        with pytest.raises(RegAllocError, match="FLT"):
            compile_module(b.module, MachineConfig(n_pairs=1))

    def test_registers_used_metadata(self, sum_array_module):
        prog = compile_module(sum_array_module, TRACE_28_200)
        used = prog.function("sumA").meta["registers_used"]
        assert used["INT"] >= 2
        assert used["FLT"] >= 1
        assert used["PRED"] >= 1


class TestCalls:
    def test_call_compiles_and_runs(self):
        b = IRBuilder()
        b.function("double", [("x", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.shl(b.param("x"), 1))
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        r1 = b.call("double", [b.param("a")])
        r2 = b.call("double", [r1])
        b.ret(r2)
        prog = compile_module(b.module, TRACE_28_200)
        result = run_compiled(prog, b.module, "f", [5])
        assert result.value == 20
        assert result.stats.calls == 2
