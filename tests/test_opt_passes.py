"""Unit tests for the classical optimization passes."""

import pytest

from repro.analysis import find_loops
from repro.ir import (IRBuilder, Imm, MemRef, Module, Opcode, RegClass,
                      Symbol, VReg, run_module, verify_module)
from repro.opt import (ConstantFold, CopyPropagation, DeadCodeElimination,
                       Inliner, InductionVariableSimplify, LocalCSE,
                       LoopInvariantCodeMotion, PassManager)

from .conftest import build_sum_array


def _ops(module, fname="f"):
    return list(module.function(fname).operations())


class TestConstantFold:
    def _fold(self, module):
        changed = ConstantFold().run(module.function("f"), module)
        verify_module(module)
        return changed

    def test_folds_int_arith(self):
        b = IRBuilder()
        b.function("f", [], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.add(2, 3))
        assert self._fold(b.module)
        assert run_module(b.module, "f").value == 5
        movs = [op for op in _ops(b.module) if op.opcode is Opcode.MOV]
        assert movs and movs[0].srcs[0] == Imm(5)

    def test_folds_compare_to_pred_imm(self):
        b = IRBuilder()
        b.function("f", [], ret_class=RegClass.INT)
        b.block("entry")
        p = b.cmplt(1, 2)
        b.ret(b.select(p, 10, 20))
        self._fold(b.module)
        assert run_module(b.module, "f").value == 10

    def test_identity_add_zero(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.add(b.param("a"), 0))
        assert self._fold(b.module)
        assert any(op.opcode is Opcode.MOV for op in _ops(b.module))

    def test_mul_by_zero(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.mul(b.param("a"), 0))
        self._fold(b.module)
        assert run_module(b.module, "f", [123]).value == 0

    def test_never_folds_div_by_zero(self):
        b = IRBuilder()
        b.function("f", [], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.div(1, 0))
        changed = self._fold(b.module)
        # the op must survive so the trap still happens at runtime
        assert any(op.opcode is Opcode.DIV for op in _ops(b.module))

    def test_never_folds_fdiv(self):
        b = IRBuilder()
        b.function("f", [], ret_class=RegClass.FLT)
        b.block("entry")
        b.ret(b.fdiv(1.0, 0.0))
        self._fold(b.module)
        assert any(op.opcode is Opcode.FDIV for op in _ops(b.module))

    def test_constant_branch_becomes_jump(self):
        b = IRBuilder()
        b.function("f", [], ret_class=RegClass.INT)
        b.block("entry")
        b.br(Imm(1, RegClass.PRED), "yes", "no")
        b.block("yes")
        b.ret(1)
        b.block("no")
        b.ret(0)
        assert self._fold(b.module)
        func = b.module.function("f")
        assert func.block("entry").terminator.opcode is Opcode.JMP
        assert "no" not in func.blocks  # unreachable removed
        assert run_module(b.module, "f").value == 1

    def test_folding_wraps_32bit(self):
        b = IRBuilder()
        b.function("f", [], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.add(0x7FFFFFFF, 1))
        self._fold(b.module)
        assert run_module(b.module, "f").value == -(1 << 31)


class TestCopyPropagation:
    def test_local_chain(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        t1 = b.mov(b.param("a"))
        t2 = b.mov(t1)
        b.ret(b.add(t2, 1))
        assert CopyPropagation().run(b.module.function("f"), b.module)
        add = [op for op in _ops(b.module) if op.opcode is Opcode.ADD][0]
        assert add.srcs[0] == b.param("a")

    def test_kill_on_redefinition(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        x = VReg("x", RegClass.INT)
        b.block("entry")
        b.mov(b.param("a"), dest=x)
        y = b.mov(x)
        b.add(b.param("a"), 100, dest=x)   # x redefined: y != x now
        b.ret(b.add(y, x))
        CopyPropagation().run(b.module.function("f"), b.module)
        verify_module(b.module)
        assert run_module(b.module, "f", [1]).value == 1 + 101

    def test_global_constant_propagates_across_blocks(self):
        b = IRBuilder()
        b.function("f", [("p", RegClass.PRED)], ret_class=RegClass.INT)
        b.block("entry")
        c = b.mov(42)
        b.br(b.param("p"), "a", "bb")
        b.block("a")
        b.ret(b.add(c, 1))
        b.block("bb")
        b.ret(b.add(c, 2))
        CopyPropagation().run(b.module.function("f"), b.module)
        adds = [op for op in _ops(b.module) if op.opcode is Opcode.ADD]
        assert all(isinstance(op.srcs[0], Imm) for op in adds)

    def test_symbol_copy_propagates(self):
        m = Module()
        m.add_array("A", 2, 4, init=[7, 8])
        b = IRBuilder(m)
        b.function("f", [], ret_class=RegClass.INT)
        b.block("entry")
        base = b.addr("A")
        b.ret(b.load(base, 4))
        CopyPropagation().run(m.function("f"), m)
        load = [op for op in _ops(m) if op.is_load][0]
        assert isinstance(load.srcs[0], Symbol)
        assert run_module(m, "f").value == 8


class TestLocalCSE:
    def test_pure_duplicate_removed(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        x = b.add(b.param("a"), 3)
        y = b.add(b.param("a"), 3)
        b.ret(b.mul(x, y))
        assert LocalCSE().run(b.module.function("f"), b.module)
        adds = [op for op in _ops(b.module) if op.opcode is Opcode.ADD]
        assert len(adds) == 1
        assert run_module(b.module, "f", [2]).value == 25

    def test_commutative_match(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT), ("b", RegClass.INT)],
                   ret_class=RegClass.INT)
        b.block("entry")
        x = b.add(b.param("a"), b.param("b"))
        y = b.add(b.param("b"), b.param("a"))
        b.ret(b.sub(x, y))
        assert LocalCSE().run(b.module.function("f"), b.module)
        assert run_module(b.module, "f", [3, 9]).value == 0

    def test_redefined_operand_blocks_reuse(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        x = VReg("x", RegClass.INT)
        b.block("entry")
        b.mov(b.param("a"), dest=x)
        t1 = b.add(x, 1)
        b.mov(100, dest=x)
        t2 = b.add(x, 1)       # different x: must NOT be CSEd with t1
        b.ret(b.sub(t2, t1))
        LocalCSE().run(b.module.function("f"), b.module)
        assert run_module(b.module, "f", [5]).value == 101 - 6

    def test_load_reuse_without_store(self):
        m = Module()
        m.add_array("A", 1, 4, init=[9])
        b = IRBuilder(m)
        b.function("f", [], ret_class=RegClass.INT)
        b.block("entry")
        base = b.addr("A")
        x = b.load(base, 0)
        y = b.load(base, 0)
        b.ret(b.add(x, y))
        assert LocalCSE().run(m.function("f"), m)
        loads = [op for op in _ops(m) if op.is_load]
        assert len(loads) == 1
        assert run_module(m, "f").value == 18

    def test_store_invalidates_loads(self):
        m = Module()
        m.add_array("A", 1, 4, init=[9])
        b = IRBuilder(m)
        b.function("f", [], ret_class=RegClass.INT)
        b.block("entry")
        base = b.addr("A")
        x = b.load(base, 0)
        b.store(1, base, 0)
        y = b.load(base, 0)       # must reload: the store changed memory
        b.ret(b.add(x, y))
        LocalCSE().run(m.function("f"), m)
        loads = [op for op in _ops(m) if op.is_load]
        assert len(loads) == 2
        assert run_module(m, "f").value == 10

    def test_redefined_result_not_reused(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        t = VReg("t", RegClass.INT)
        b.block("entry")
        b.add(b.param("a"), 3, dest=t)
        b.mov(0, dest=t)                  # t clobbered
        u = b.add(b.param("a"), 3)        # must not become mov t
        b.ret(b.add(u, t))
        LocalCSE().run(b.module.function("f"), b.module)
        assert run_module(b.module, "f", [4]).value == 7


class TestDCE:
    def test_dead_chain_removed(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        t1 = b.add(b.param("a"), 1)
        t2 = b.mul(t1, 2)          # t2 unused -> whole chain dead
        b.ret(b.param("a"))
        assert DeadCodeElimination().run(b.module.function("f"), b.module)
        assert b.module.function("f").op_count() == 1  # just the ret

    def test_stores_never_removed(self):
        m = Module()
        m.add_array("A", 1, 4)
        b = IRBuilder(m)
        b.function("f", [])
        b.block("entry")
        b.store(5, b.addr("A"), 0)
        b.ret()
        DeadCodeElimination().run(m.function("f"), m)
        assert any(op.is_store for op in _ops(m))

    def test_trapping_op_kept_by_default(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        b.div(1, b.param("a"))     # result unused but may trap
        b.ret(b.param("a"))
        DeadCodeElimination().run(b.module.function("f"), b.module)
        assert any(op.opcode is Opcode.DIV for op in _ops(b.module))

    def test_trapping_op_removed_when_allowed(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        b.div(1, b.param("a"))
        b.ret(b.param("a"))
        DeadCodeElimination(remove_trapping=True).run(
            b.module.function("f"), b.module)
        assert not any(op.opcode is Opcode.DIV for op in _ops(b.module))


class TestLICM:
    def _loop_with_invariant(self):
        b = IRBuilder()
        b.function("f", [("n", RegClass.INT), ("k", RegClass.INT)],
                   ret_class=RegClass.INT)
        i = VReg("i", RegClass.INT)
        acc = VReg("acc", RegClass.INT)
        b.block("entry")
        b.mov(0, dest=i)
        b.mov(0, dest=acc)
        b.jmp("head")
        b.block("head")
        p = b.cmplt(i, b.param("n"))
        b.br(p, "body", "exit")
        b.block("body")
        inv = b.mul(b.param("k"), 3)        # loop-invariant
        b.add(acc, inv, dest=acc)
        b.add(i, 1, dest=i)
        b.jmp("head")
        b.block("exit")
        b.ret(acc)
        return b.module

    def test_invariant_hoisted(self):
        m = self._loop_with_invariant()
        ref = run_module(m, "f", [5, 2]).value
        assert LoopInvariantCodeMotion().run(m.function("f"), m)
        verify_module(m)
        func = m.function("f")
        loop = find_loops(func)[0]
        in_loop_muls = [op for bn in loop.body
                        for op in func.block(bn).ops
                        if op.opcode is Opcode.MUL]
        assert not in_loop_muls
        assert run_module(m, "f", [5, 2]).value == ref

    def test_zero_trip_loop_still_correct(self):
        m = self._loop_with_invariant()
        LoopInvariantCodeMotion().run(m.function("f"), m)
        assert run_module(m, "f", [0, 2]).value == 0

    def test_variant_op_not_hoisted(self):
        b = IRBuilder()
        b.function("f", [("n", RegClass.INT)], ret_class=RegClass.INT)
        i = VReg("i", RegClass.INT)
        acc = VReg("acc", RegClass.INT)
        b.block("entry")
        b.mov(0, dest=i)
        b.mov(0, dest=acc)
        b.jmp("head")
        b.block("head")
        p = b.cmplt(i, b.param("n"))
        b.br(p, "body", "exit")
        b.block("body")
        sq = b.mul(i, 2)          # depends on IV: not invariant
        b.add(acc, sq, dest=acc)
        b.add(i, 1, dest=i)
        b.jmp("head")
        b.block("exit")
        b.ret(acc)
        func = b.module.function("f")
        LoopInvariantCodeMotion().run(func, b.module)
        loop = find_loops(func)[0]
        in_loop_muls = [op for bn in loop.body
                        for op in func.block(bn).ops
                        if op.opcode is Opcode.MUL]
        assert in_loop_muls


class TestInductionVariableSimplify:
    def test_shl_reduced_and_semantics_kept(self):
        m = build_sum_array(16)
        ref = run_module(m, "sumA", [13]).value
        func = m.function("sumA")
        assert InductionVariableSimplify().run(func, m)
        verify_module(m)
        loop = next(lp for lp in find_loops(func) if lp.header == "head")
        shls = [op for bn in loop.body for op in func.block(bn).ops
                if op.opcode is Opcode.SHL]
        assert not shls
        assert run_module(m, "sumA", [13]).value == ref

    def test_zero_trips(self):
        m = build_sum_array(16)
        InductionVariableSimplify().run(m.function("sumA"), m)
        assert run_module(m, "sumA", [0]).value == 0.0


class TestInliner:
    def test_simple_inline(self):
        b = IRBuilder()
        b.function("sq", [("x", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.mul(b.param("x"), b.param("x")))
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        r = b.call("sq", [b.param("a")])
        b.ret(b.add(r, 1))
        assert Inliner().run(b.module.function("f"), b.module)
        verify_module(b.module)
        assert not any(op.is_call for op in _ops(b.module))
        assert run_module(b.module, "f", [5]).value == 26

    def test_inline_branchy_callee(self):
        b = IRBuilder()
        b.function("absv", [("x", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        p = b.cmplt(b.param("x"), 0)
        b.br(p, "neg", "pos")
        b.block("neg")
        b.ret(b.neg(b.param("x")))
        b.block("pos")
        b.ret(b.param("x"))
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        r1 = b.call("absv", [b.param("a")])
        r2 = b.call("absv", [b.neg(b.param("a"))])
        b.ret(b.add(r1, r2))
        Inliner().run(b.module.function("f"), b.module)
        verify_module(b.module)
        assert not any(op.is_call for op in _ops(b.module))
        assert run_module(b.module, "f", [-4]).value == 8
        assert run_module(b.module, "f", [4]).value == 8

    def test_recursive_callee_not_inlined(self):
        b = IRBuilder()
        b.function("fact", [("n", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        p = b.cmple(b.param("n"), 1)
        b.br(p, "base", "rec")
        b.block("base")
        b.ret(1)
        b.block("rec")
        r = b.call("fact", [b.sub(b.param("n"), 1)])
        b.ret(b.mul(b.param("n"), r))
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.call("fact", [b.param("a")]))
        changed = Inliner().run(b.module.function("f"), b.module)
        assert not changed
        assert run_module(b.module, "f", [5]).value == 120

    def test_large_callee_respects_threshold(self):
        b = IRBuilder()
        b.function("big", [("x", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        acc = b.param("x")
        for _ in range(60):
            acc = b.add(acc, 1)
        b.ret(acc)
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.call("big", [b.param("a")]))
        assert not Inliner(max_callee_ops=10).run(
            b.module.function("f"), b.module)
        assert Inliner(max_callee_ops=100).run(
            b.module.function("f"), b.module)
        assert run_module(b.module, "f", [0]).value == 60

    def test_void_callee(self):
        m = Module()
        m.add_array("A", 1, 4)
        b = IRBuilder(m)
        b.function("poke", [("v", RegClass.INT)])
        b.block("entry")
        b.store(b.param("v"), b.addr("A"), 0)
        b.ret()
        b.function("f", [], ret_class=RegClass.INT)
        b.block("entry")
        b.call("poke", [77])
        b.ret(b.load(b.addr("A"), 0))
        Inliner().run(m.function("f"), m)
        verify_module(m)
        assert run_module(m, "f").value == 77
