"""Tests for the memory disambiguator: affine algebra, diophantine tests,
derivation, and the no/yes/maybe query layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disambig import (Answer, Disambiguator, can_be_zero,
                            can_be_zero_mod, can_overlap, derive_memrefs,
                            distinct_objects, subtract)
from repro.ir import (IRBuilder, MemRef, MemoryImage, Module, RegClass,
                      VReg, run_module, verify_module)


def ref(base, coeffs=None, const=0, size=8, unknown=False) -> MemRef:
    return MemRef.make(base, coeffs, const, size, base_unknown_mod=unknown)


class TestAffine:
    def test_same_base_cancels(self):
        d = subtract(ref("A", {"i": 8}, 16), ref("A", {"i": 8}, 0))
        assert d.known and d.is_constant and d.const == 16

    def test_var_residual(self):
        d = subtract(ref("A", {"i": 8}), ref("A", {"j": 8}))
        assert d.known and dict(d.coeffs) == {"i": 8, "j": -8}

    def test_same_var_partial_cancel(self):
        d = subtract(ref("A", {"i": 16}), ref("A", {"i": 8}))
        assert dict(d.coeffs) == {"i": 8}

    def test_known_bases_use_layout(self):
        layout = {"A": 0x1000, "B": 0x2000}
        d = subtract(ref("A"), ref("B"), layout)
        assert d.known and d.const == -0x1000

    def test_unknown_base_pair(self):
        d = subtract(ref("&p", unknown=True), ref("&q", unknown=True),
                     {"&p": 0, "&q": 0})
        assert not d.known

    def test_same_unknown_base_is_relative(self):
        d = subtract(ref("&p", {"i": 8}, 8, unknown=True),
                     ref("&p", {"i": 8}, 0, unknown=True))
        assert d.known and d.const == 8

    def test_distinct_objects(self):
        assert distinct_objects(ref("A"), ref("B"))
        assert not distinct_objects(ref("A"), ref("A"))
        assert not distinct_objects(ref(None), ref("B"))


class TestDiophantine:
    def test_constant_zero(self):
        d = subtract(ref("A", {"i": 8}), ref("A", {"i": 8}))
        assert can_be_zero(d)

    def test_gcd_rules_out(self):
        # 8i - 8j = 4 has no integer solutions
        d = subtract(ref("A", {"i": 8}, 4), ref("A", {"j": 8}))
        assert not can_be_zero(d)

    def test_gcd_allows(self):
        # 8i - 8j = 16 solvable
        d = subtract(ref("A", {"i": 8}, 16), ref("A", {"j": 8}))
        assert can_be_zero(d)

    def test_overlap_window(self):
        d = subtract(ref("A", {}, 4, size=8), ref("A", {}, 0, size=8))
        assert can_overlap(d, 8, 8)
        d = subtract(ref("A", {}, 8, size=8), ref("A", {}, 0, size=8))
        assert not can_overlap(d, 8, 8)

    def test_mod_solvable(self):
        # 8i ≡ 0 mod 32: i = 4 works
        d = subtract(ref("A", {"i": 8}), ref("A"))
        assert can_be_zero_mod(d, 32)

    def test_mod_unsolvable(self):
        # 32i + 8 ≡ 0 mod 32 never (gcd(32,32)=32 does not divide 8)
        d = subtract(ref("A", {"i": 32}, 8), ref("A"))
        assert not can_be_zero_mod(d, 32)

    @given(st.integers(-64, 64), st.integers(1, 6))
    def test_mod_constant_exact(self, const, log_m):
        m = 1 << log_m
        d = subtract(ref("A", {}, const), ref("A"))
        assert can_be_zero_mod(d, m) == (const % m == 0)


class TestAliasQueries:
    def setup_method(self):
        m = Module()
        m.add_array("A", 64, 8)
        m.add_array("B", 64, 8)
        self.dis = Disambiguator(m)

    def test_distinct_arrays_no(self):
        assert self.dis.alias(ref("A", {"i": 8}), ref("B", {"i": 8})) \
            is Answer.NO

    def test_same_element_yes(self):
        assert self.dis.alias(ref("A", {"i": 8}), ref("A", {"i": 8})) \
            is Answer.YES

    def test_adjacent_elements_no(self):
        assert self.dis.alias(ref("A", {"i": 8}, 8), ref("A", {"i": 8})) \
            is Answer.NO

    def test_partial_overlap_yes(self):
        # a 4-byte ref 4 bytes into an 8-byte ref's range
        assert self.dis.alias(ref("A", {}, 4, size=4), ref("A", {}, 0, size=8)) \
            is Answer.YES

    def test_cross_iteration_maybe(self):
        # c(i) vs c(i+j): j unknown
        assert self.dis.alias(ref("C", {"i": 8}), ref("C", {"i": 8, "j": 8})) \
            is Answer.MAYBE

    def test_gcd_proves_no_across_vars(self):
        assert self.dis.alias(ref("A", {"i": 8}, 4, size=4),
                              ref("A", {"j": 8}, 0, size=4)) is Answer.NO

    def test_missing_memref_maybe(self):
        assert self.dis.alias(None, ref("A")) is Answer.MAYBE

    def test_relative_same_pointer_arg(self):
        a = ref("&p", {"i": 8}, 0, unknown=True)
        b = ref("&p", {"i": 8}, 8, unknown=True)
        assert self.dis.alias(a, b) is Answer.NO

    def test_two_pointer_args_maybe(self):
        a = ref("&p", {"i": 8}, 0, unknown=True)
        b = ref("&q", {"i": 8}, 0, unknown=True)
        assert self.dis.alias(a, b) is Answer.MAYBE


class TestBankQueries:
    def setup_method(self):
        m = Module()
        m.add_array("A", 1024, 8)
        self.dis = Disambiguator(m)

    def test_adjacent_words_different_bank(self):
        # 8 banks: A[i] and A[i+1] differ by one bank word
        assert self.dis.bank_equal(ref("A", {"i": 8}, 8),
                                   ref("A", {"i": 8}), 8) is Answer.NO

    def test_stride_equal_banks_yes(self):
        # A[i] and A[i+8] with 8 banks: same bank always
        assert self.dis.bank_equal(ref("A", {"i": 8}, 64),
                                   ref("A", {"i": 8}), 8) is Answer.YES

    def test_unknown_vars_maybe(self):
        assert self.dis.bank_equal(ref("A", {"i": 8}),
                                   ref("A", {"j": 8}), 8) is Answer.MAYBE

    def test_unknown_vars_no_when_gcd_blocks(self):
        # 64i + 8 ≡ 0 mod 64 unsolvable -> different banks, provably
        assert self.dis.bank_equal(ref("A", {"i": 64}, 8),
                                   ref("A"), 8) is Answer.NO

    def test_relative_disambiguation_on_unknown_base(self):
        # the paper's headline case: argument array, base unknown, but
        # A[i] vs A[i+1] still provably different banks
        a = ref("&arg", {"i": 8}, 0, unknown=True)
        b = ref("&arg", {"i": 8}, 8, unknown=True)
        assert self.dis.bank_equal(a, b, 8) is Answer.NO

    def test_distinct_unknown_bases_maybe(self):
        a = ref("&p", unknown=True)
        b = ref("&q", unknown=True)
        assert self.dis.bank_equal(a, b, 8) is Answer.MAYBE

    def test_misaligned_const_diff(self):
        # d = 4: same bank word possible (base at odd half-word) -> MAYBE
        assert self.dis.bank_equal(ref("A", {}, 4, size=4),
                                   ref("A", {}, 0, size=4), 8) is Answer.MAYBE

    def test_misaligned_but_provably_distinct(self):
        # d = 12: word delta is 1 or 2, neither ≡ 0 mod 8 -> NO
        assert self.dis.bank_equal(ref("A", {}, 12, size=4),
                                   ref("A", {}, 0, size=4), 8) is Answer.NO

    def test_controller_query(self):
        assert self.dis.controller_equal(ref("A", {"i": 8}, 8),
                                         ref("A", {"i": 8}), 4) is Answer.NO
        assert self.dis.controller_equal(ref("A", {"i": 8}, 32),
                                         ref("A", {"i": 8}), 4) is Answer.YES

    def test_stats_recorded(self):
        self.dis.bank_equal(ref("A", {"i": 8}, 8), ref("A", {"i": 8}), 8)
        assert self.dis.stats.counts[("bank", "no")] >= 1
        assert self.dis.stats.rate("bank", Answer.NO) > 0


class TestDerivation:
    def test_derives_simple_array_ref(self):
        m = Module()
        m.add_array("A", 32, 8)
        b = IRBuilder(m)
        b.function("f", [("n", RegClass.INT)], ret_class=RegClass.FLT)
        i = VReg("i", RegClass.INT)
        s = VReg("s", RegClass.FLT)
        b.block("entry")
        b.mov(0, dest=i)
        b.fmov(0.0, dest=s)
        b.jmp("head")
        b.block("head")
        p = b.cmplt(i, b.param("n"))
        b.br(p, "body", "exit")
        b.block("body")
        addr = b.add(b.addr("A"), b.shl(i, 3))
        x = b.fload(addr, 0)         # deliberately unannotated
        b.fadd(s, x, dest=s)
        b.add(i, 1, dest=i)
        b.jmp("head")
        b.block("exit")
        b.ret(s)
        verify_module(m)

        report = derive_memrefs(m.function("f"))
        assert report.derived == 1 and report.failed == 0
        load = next(op for op in m.function("f").operations() if op.is_load)
        assert load.memref.base == "A"
        assert load.memref.coeff_dict() == {"i": 8}
        assert load.memref.size == 8

    def test_pointer_param_becomes_unknown_base(self):
        b = IRBuilder()
        b.function("f", [("p", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.load(b.param("p"), 4))
        report = derive_memrefs(b.func)
        assert report.derived == 1
        load = next(op for op in b.func.operations() if op.is_load)
        assert load.memref.base == "&p"
        assert load.memref.base_unknown_mod
        assert load.memref.const == 4

    def test_two_base_sum_fails(self):
        m = Module()
        m.add_array("A", 8, 4)
        m.add_array("B", 8, 4)
        b = IRBuilder(m)
        b.function("f", [], ret_class=RegClass.INT)
        b.block("entry")
        weird = b.add(b.addr("A"), b.addr("B"))
        b.ret(b.load(weird, 0))
        report = derive_memrefs(b.func)
        assert report.failed == 1

    def test_existing_annotation_kept(self):
        m = Module()
        m.add_array("A", 8, 4)
        b = IRBuilder(m)
        b.function("f", [], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.load(b.addr("A"), 0,
                     memref=MemRef.make("A", {}, 0, size=4)))
        report = derive_memrefs(b.func)
        assert report.already_annotated == 1

    def test_store_derivation(self):
        m = Module()
        m.add_array("A", 8, 4)
        b = IRBuilder(m)
        b.function("f", [("v", RegClass.INT)])
        b.block("entry")
        b.store(b.param("v"), b.addr("A"), 8)
        b.ret()
        report = derive_memrefs(b.func)
        assert report.derived == 1
        store = next(op for op in b.func.operations() if op.is_store)
        assert store.memref.const == 8
        assert store.memref.size == 4

    def test_multi_def_non_iv_fails(self):
        m = Module()
        m.add_array("A", 8, 4)
        b = IRBuilder(m)
        b.function("f", [("p", RegClass.PRED)], ret_class=RegClass.INT)
        x = VReg("x", RegClass.INT)
        b.block("entry")
        b.mov(0, dest=x)
        b.br(b.param("p"), "a", "join")
        b.block("a")
        b.mov(4, dest=x)
        b.jmp("join")
        b.block("join")
        b.ret(b.load(b.add(b.addr("A"), x), 0))
        report = derive_memrefs(b.func)
        assert report.failed == 1

    @settings(max_examples=30, deadline=None)
    @given(offset=st.integers(0, 7), scale_log=st.integers(0, 3))
    def test_derived_matches_runtime_address(self, offset, scale_log):
        """The derived affine form must agree with the actual address."""
        m = Module()
        m.add_array("A", 256, 8)
        b = IRBuilder(m)
        b.function("f", [("i", RegClass.INT)], ret_class=RegClass.FLT)
        b.block("entry")
        addr = b.add(b.addr("A"), b.shl(b.param("i"), 3 + scale_log))
        b.ret(b.fload(addr, offset * 8))
        derive_memrefs(b.func)
        load = next(op for op in b.func.operations() if op.is_load)
        # evaluate the memref at i = 2 and compare to the interpreter
        img = MemoryImage(m)
        base = img.address_of("A")
        i_val = 2
        predicted = base + load.memref.const + sum(
            coeff * i_val for var, coeff in load.memref.coeffs)
        expected = base + (i_val << (3 + scale_log)) + offset * 8
        # the param is not an IV; coeffs should carry "&i"-free terms only
        # when derivable — accept either an exact match or a derivation fail
        if load.memref is not None and load.memref.base == "A":
            assert predicted == expected
