"""Tests for the textual IR printer/parser, including round-trip properties."""

import pytest

from repro.errors import ParseError
from repro.ir import (MemRef, Opcode, format_module, format_operation,
                      parse_module, parse_operation, run_module,
                      verify_module)
from repro.ir.parser import parse_memref
from repro.ir.printer import format_memref

from .conftest import build_diamond, build_sum_array


class TestOperationText:
    def test_simple_roundtrip(self):
        op = parse_operation("%x:i = add %a:i, 4")
        assert op.opcode is Opcode.ADD
        assert format_operation(op) == "%x:i = add %a:i, 4"

    def test_branch_roundtrip(self):
        op = parse_operation("br %p:p, @then, @else")
        assert op.labels[0].name == "then"
        assert format_operation(op) == "br %p:p, @then, @else"

    def test_call_roundtrip(self):
        op = parse_operation("%r:i = call $foo, %a:i, 3")
        assert op.callee == "foo"
        assert format_operation(op) == "%r:i = call $foo, %a:i, 3"

    def test_float_immediate(self):
        op = parse_operation("%x:f = fadd %y:f, 2.5")
        assert op.srcs[1].value == 2.5

    def test_int_literal_in_float_slot_coerced(self):
        op = parse_operation("%x:f = fmul %y:f, 2.5")
        assert isinstance(op.srcs[1].value, float)

    def test_unknown_opcode_raises(self):
        with pytest.raises(ParseError):
            parse_operation("frobnicate %a:i")

    def test_bad_register_raises(self):
        with pytest.raises(ParseError):
            parse_operation("%x = add %a:i, 1")


class TestMemRefText:
    def test_roundtrip_known_base(self):
        ref = MemRef.make("A", {"i": 8, "j": -4}, const=16, size=8)
        assert parse_memref(format_memref(ref)[5:-1]) == ref

    def test_roundtrip_unknown_base(self):
        ref = MemRef.make(None, {"i": 4})
        assert parse_memref(format_memref(ref)[5:-1]) == ref

    def test_roundtrip_unknown_mod(self):
        ref = MemRef.make("arg", {"i": 4}, base_unknown_mod=True)
        parsed = parse_memref(format_memref(ref)[5:-1])
        assert parsed.base_unknown_mod
        assert parsed == ref

    def test_operation_carries_memref(self):
        op = parse_operation("%x:f = fload %p:i, 0 !mem(A,8,16,i=8)")
        assert op.memref is not None
        assert op.memref.base == "A"
        assert op.memref.coeff_dict() == {"i": 8}
        assert op.memref.const == 16


class TestModuleText:
    @pytest.mark.parametrize("factory", [build_sum_array, build_diamond])
    def test_module_roundtrip_stable(self, factory):
        module = factory()
        text = format_module(module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert format_module(reparsed) == text

    def test_roundtrip_preserves_semantics(self):
        module = build_sum_array()
        reparsed = parse_module(format_module(module))
        assert run_module(reparsed, "sumA", [5]).value == \
            run_module(module, "sumA", [5]).value

    def test_data_init_roundtrip(self):
        module = build_sum_array()
        reparsed = parse_module(format_module(module))
        obj = reparsed.data["A"]
        assert obj.size == module.data["A"].size
        assert obj.init == module.data["A"].init

    def test_missing_module_header(self):
        with pytest.raises(ParseError):
            parse_module("func f() {\nentry:\n  ret\n}\n")

    def test_op_outside_block(self):
        with pytest.raises(ParseError):
            parse_module("module m\n\nfunc f() {\n  ret\n}\n")
