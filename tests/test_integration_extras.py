"""Cross-cutting integration tests: cache/TLB-augmented runs, encoding of
real compiled kernels, fortran_args safety, and end-to-end timing sanity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness import prepare_modules
from repro.ir import MemoryImage, run_module
from repro.machine import (TRACE_7_200, TRACE_28_200, encode_function,
                           encode_instruction, pack_program, unpack_program)
from repro.opt import classical_pipeline
from repro.sim import (ICacheModel, TlbModel, VliwSimulator, run_compiled)
from repro.trace import SchedulingOptions, compile_module
from repro.workloads import ALL_KERNELS, get_kernel


class TestEncodedKernels:
    @pytest.mark.parametrize("name", ["daxpy", "clamp", "ll7_state"])
    def test_every_compiled_kernel_encodes_and_roundtrips(self, name):
        kernel = get_kernel(name)
        _, module = prepare_modules(kernel, 32, unroll=4)
        program = compile_module(module, TRACE_28_200)
        cf = program.function(kernel.func)
        layout = MemoryImage(module).layout
        words = [encode_instruction(li, cf.config, layout) for li in cf]
        packed = pack_program(words, cf.config)
        assert unpack_program(packed) == words
        assert packed.packed_bytes < packed.unpacked_bytes

    def test_narrow_config_encodes_too(self):
        kernel = get_kernel("vadd")
        _, module = prepare_modules(kernel, 16, unroll=2)
        program = compile_module(module, TRACE_7_200)
        packed = encode_function(program.function("main"))
        assert packed.n_instructions == len(
            program.function("main").instructions)


class TestAugmentedSimulation:
    def _run(self, icache=None, tlb=None):
        kernel = get_kernel("daxpy")
        _, module = prepare_modules(kernel, 64, unroll=8)
        program = compile_module(module, TRACE_28_200)
        memory = MemoryImage(module)
        sim = VliwSimulator(program, memory, icache=icache, tlb=tlb)
        result = sim.run("main", kernel.make_args(60))
        return result, sim

    def test_models_add_time_but_not_much(self):
        bare, _ = self._run()
        augmented, sim = self._run(ICacheModel(TRACE_28_200),
                                   TlbModel(TRACE_28_200))
        assert augmented.stats.beats > bare.stats.beats
        # warm loops: the models must not dominate (paper: "instruction
        # fetch ... never stalls or restrains the processor, except on
        # cache misses")
        assert augmented.stats.beats < 2.0 * bare.stats.beats
        assert sim.icache.stats.miss_rate < 0.2
        assert sim.tlb.stats.miss_rate < 0.1

    def test_results_unchanged_by_timing_models(self):
        kernel = get_kernel("daxpy")
        bare, _ = self._run()
        augmented, _ = self._run(ICacheModel(TRACE_28_200),
                                 TlbModel(TRACE_28_200))
        base_module = kernel.build(64)
        ref = run_module(base_module, "main", kernel.make_args(60))
        assert augmented.memory.read_array("Y", 64, 8) == \
            ref.memory.read_array("Y", 64, 8)


class TestFortranArgs:
    def test_fortran_args_safe_on_named_arrays(self):
        """fortran_args only changes verdicts for unknown-base pairs, so
        every named-array kernel must compile and run identically."""
        for name in ("daxpy", "vadd", "insertion_pass"):
            kernel = get_kernel(name)
            args = kernel.make_args(24)
            ref = run_module(kernel.build(32), kernel.func, args)
            _, module = prepare_modules(kernel, 32, unroll=4)
            program = compile_module(module, TRACE_28_200,
                                     SchedulingOptions(fortran_args=True))
            result = run_compiled(program, module, kernel.func, args)
            if kernel.returns_value:
                assert result.value == ref.value, name
            for array, elem in kernel.outputs:
                size = module.data[array].size // elem
                assert result.memory.read_array(array, size, elem) == \
                    ref.memory.read_array(array, size, elem), name


class TestTimingSanity:
    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_vliw_never_slower_than_scalar(self, name):
        from repro.harness import measure
        n = 6 if name == "matmul" else 24
        m = measure(name, n, unroll=4)
        assert m.vliw.beats <= m.scalar.beats, name

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(4, 48))
    def test_beats_scale_with_problem_size(self, n):
        from repro.harness import measure
        small = measure("vadd", 8, unroll=0, use_profile=False)
        big = measure("vadd", 64, unroll=0, use_profile=False)
        assert big.vliw.beats > small.vliw.beats
