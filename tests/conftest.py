"""Shared fixtures: small IR programs used across the test suite."""

from __future__ import annotations

import pytest

from repro.ir import (IRBuilder, MemRef, Module, RegClass, VReg,
                      verify_module)


def build_sum_array(n_elems: int = 8) -> Module:
    """sumA(n) -> float: sums the first n elements of float array A."""
    m = Module("sum_array")
    m.add_array("A", n_elems, 8, init=[float(i) for i in range(n_elems)])
    b = IRBuilder(m)
    f = b.function("sumA", [("n", RegClass.INT)], ret_class=RegClass.FLT)
    i = VReg("i", RegClass.INT)
    s = VReg("s", RegClass.FLT)
    b.block("entry")
    base = b.addr("A")
    b.mov(0, dest=i)
    b.fmov(0.0, dest=s)
    b.jmp("head")
    b.block("head")
    p = b.cmplt(i, b.param("n"))
    b.br(p, "body", "exit")
    b.block("body")
    addr = b.add(base, b.shl(i, 3))
    x = b.fload(addr, 0, memref=MemRef.make("A", {"i": 8}, size=8))
    b.fadd(s, x, dest=s)
    b.add(i, 1, dest=i)
    b.jmp("head")
    b.block("exit")
    b.ret(s)
    verify_module(m)
    return m


def build_diamond() -> Module:
    """absdiff(a, b) -> int via a branch diamond: |a - b|."""
    m = Module("diamond")
    b = IRBuilder(m)
    b.function("absdiff", [("a", RegClass.INT), ("b", RegClass.INT)],
               ret_class=RegClass.INT)
    r = VReg("r", RegClass.INT)
    b.block("entry")
    p = b.cmpge(b.param("a"), b.param("b"))
    b.br(p, "ge", "lt")
    b.block("ge")
    b.sub(b.param("a"), b.param("b"), dest=r)
    b.jmp("join")
    b.block("lt")
    b.sub(b.param("b"), b.param("a"), dest=r)
    b.jmp("join")
    b.block("join")
    b.ret(r)
    verify_module(m)
    return m


@pytest.fixture
def sum_array_module() -> Module:
    return build_sum_array()


@pytest.fixture
def diamond_module() -> Module:
    return build_diamond()
