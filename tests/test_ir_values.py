"""Unit tests for IR value kinds and 32-bit wrapping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import Imm, Label, RegClass, Symbol, VReg, wrap32
from repro.ir.values import INT32_MAX, INT32_MIN


class TestVReg:
    def test_equality_by_name_and_class(self):
        assert VReg("x", RegClass.INT) == VReg("x", RegClass.INT)
        assert VReg("x", RegClass.INT) != VReg("x", RegClass.FLT)
        assert VReg("x", RegClass.INT) != VReg("y", RegClass.INT)

    def test_hashable(self):
        regs = {VReg("a", RegClass.INT), VReg("a", RegClass.INT)}
        assert len(regs) == 1

    def test_str(self):
        assert str(VReg("t.3", RegClass.FLT)) == "%t.3:f"


class TestImm:
    def test_float_class_coerces_value(self):
        imm = Imm(3, RegClass.FLT)
        assert imm.value == 3.0
        assert isinstance(imm.value, float)

    def test_int_default_class(self):
        assert Imm(7).cls is RegClass.INT


class TestLabelSymbol:
    def test_str(self):
        assert str(Label("loop")) == "@loop"
        assert str(Symbol("A")) == "$A"

    def test_frozen(self):
        with pytest.raises(Exception):
            Label("x").name = "y"  # type: ignore[misc]


class TestWrap32:
    def test_identity_in_range(self):
        assert wrap32(0) == 0
        assert wrap32(INT32_MAX) == INT32_MAX
        assert wrap32(INT32_MIN) == INT32_MIN

    def test_overflow_wraps(self):
        assert wrap32(INT32_MAX + 1) == INT32_MIN
        assert wrap32(INT32_MIN - 1) == INT32_MAX
        assert wrap32(1 << 32) == 0

    def test_unsigned_constant(self):
        assert wrap32(0xFFFFFFFF) == -1

    @given(st.integers(min_value=-(1 << 70), max_value=1 << 70))
    def test_always_in_range(self, x):
        w = wrap32(x)
        assert INT32_MIN <= w <= INT32_MAX

    @given(st.integers(), st.integers())
    def test_additive_homomorphism(self, a, b):
        assert wrap32(wrap32(a) + wrap32(b)) == wrap32(a + b)

    @given(st.integers(), st.integers())
    def test_multiplicative_homomorphism(self, a, b):
        assert wrap32(wrap32(a) * wrap32(b)) == wrap32(a * b)
