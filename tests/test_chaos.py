"""End-to-end crash-injection tests: a real ``repro serve`` subprocess
SIGKILLed at a seeded dispatcher point, restarted on its journal, and
differentially verified against an uninterrupted control run.

This is the acceptance test for the service's durability claim — the
in-process recovery tests in test_serve.py exercise the same state
machine, but only a genuine SIGKILL (no atexit, no flush, no finally)
proves the write-ahead ordering is what keeps jobs alive.
"""

import os
import signal

import pytest

from repro.api import MeasureRequest, dumps, run_request
from repro.harness.chaos import (KILL_POINTS, free_port, run_chaos,
                                 run_scenario, start_daemon, wait_ready)
from repro.serve import Client

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="needs POSIX signals")


def test_kill_points_match_server():
    from repro.serve.server import CHAOS_POINTS
    assert KILL_POINTS == CHAOS_POINTS
    assert set(KILL_POINTS) == {"pre-dispatch", "mid-wave", "pre-finish"}


def test_daemon_round_trip_without_chaos(tmp_path):
    """The harness's daemon plumbing itself: start, ready, submit,
    byte-identical result, graceful shutdown with exit 0."""
    port = free_port()
    journal = str(tmp_path / "serve.journal")
    proc = start_daemon(port, journal, str(tmp_path / "cache"), batch=1)
    client = Client(f"127.0.0.1:{port}", timeout_s=10.0)
    try:
        assert wait_ready(client, proc, timeout_s=30.0)
        request = MeasureRequest(kernel="vadd", n=24, unroll=4)
        result = client.submit_and_wait([request], timeout_s=120.0)[0]
        assert result.ok
        assert dumps(result.result) == dumps(run_request(request))
        reply = client.shutdown()
        assert reply.get("ok") and not reply.get("dispatcher_stuck")
        assert proc.wait(timeout=60) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_sigterm_drains_gracefully(tmp_path):
    """A supervisor-style SIGTERM exits 0 and leaves accepted work
    journaled: the restarted daemon still completes it."""
    port = free_port()
    journal = str(tmp_path / "serve.journal")
    cache = str(tmp_path / "cache")
    proc = start_daemon(port, journal, cache, batch=1)
    client = Client(f"127.0.0.1:{port}", timeout_s=10.0)
    request = MeasureRequest(kernel="vadd", n=24, unroll=4)
    try:
        wait_ready(client, proc, timeout_s=30.0)
        job_id = client.submit([request])[0].job_id
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    revived = start_daemon(port, journal, cache, batch=1)
    try:
        wait_ready(client, revived, timeout_s=30.0)
        result = client.result(job_id, timeout_s=120.0)
        assert result.ok
        assert dumps(result.result) == dumps(run_request(request))
        client.shutdown()
        revived.wait(timeout=60)
    finally:
        if revived.poll() is None:
            revived.kill()
            revived.wait(timeout=10)


def test_sigkill_recovery_differential(tmp_path):
    """The ISSUE's acceptance scenario: SIGKILL mid-wave and pre-finish,
    restart on the journal, and every job reaches a terminal payload
    byte-identical to the uninterrupted control — with work finished
    pre-crash recovered from the shared cache rather than redone, and
    no job exceeding its retry budget."""
    outcomes = run_chaos(["mid-wave", "pre-finish"], ["vadd", "dot"],
                         n=24, workdir=str(tmp_path), timeout_s=240.0)
    for outcome in outcomes:
        assert outcome.kill_exit == -signal.SIGKILL
        assert outcome.ok, f"{outcome.point}: {outcome.error}"
        assert outcome.identical == outcome.jobs == 2
        assert outcome.quarantined == 0
        assert outcome.max_attempts_seen <= 2     # the default budget
    # pre-finish killed the daemon after the wave ran: the recovered
    # re-execution must find the compile work in the shared store
    pre_finish = outcomes[1]
    assert pre_finish.point == "pre-finish"
    assert pre_finish.cache_hits > 0


def test_scenario_rejects_unfired_chaos_point(tmp_path, monkeypatch):
    """A scenario whose daemon exits normally (the armed point never
    fired) is a staging failure, not a vacuous pass."""
    monkeypatch.setattr(
        "repro.harness.chaos.start_daemon",
        lambda port, journal, cache_dir, **kw: start_daemon(
            port, journal, cache_dir,
            **{**kw, "chaos_point": None}))
    request = MeasureRequest(kernel="vadd", n=24, unroll=4)
    outcome = run_scenario("mid-wave", [request],
                           [run_request(request)], str(tmp_path),
                           timeout_s=10.0)
    assert not outcome.ok
    assert "never fired" in outcome.error
