"""The differential fuzzing harness and its CLI entry point."""

import json

from repro.__main__ import main
from repro.harness.fuzz import (FuzzCase, FuzzReport, _rename_vregs,
                                check_renaming_invariance, fuzz_one,
                                run_fuzz, verify_dismissal)
from repro.ir import run_module, verify_module
from repro.machine import TRACE_14_200
from repro.obs import Tracer
from repro.workloads.generator import generate_program


class TestFuzzOne:
    def test_clean_and_faulted_case_passes(self):
        case = fuzz_one(0)
        assert case.ok, case.failures
        assert case.checkpoint_verified
        assert case.faults_fired > 0

    def test_case_is_deterministic(self):
        a, b = fuzz_one(3), fuzz_one(3)
        assert a.ok and b.ok
        assert a.faults_fired == b.faults_fired

    def test_without_faults_only_differential(self):
        case = fuzz_one(1, check_faults=False)
        assert case.ok
        assert case.faults_fired == 0
        assert not case.checkpoint_verified

    def test_narrow_machine(self):
        case = fuzz_one(2, config=TRACE_14_200)
        assert case.ok, case.failures

    def test_renaming_invariance_folded_into_case(self):
        case = fuzz_one(4, check_faults=False)
        assert case.ok, case.failures
        assert case.renaming_verified


class TestRenamingMetamorphic:
    def test_rename_is_a_semantic_noop(self):
        """The renamed program verifies and computes the same answer."""
        baseline = run_module(generate_program(11), "main", (7, -3))
        renamed = generate_program(11)
        _rename_vregs(renamed, 11)
        verify_module(renamed)
        result = run_module(renamed, "main", (7, -3))
        assert result.value == baseline.value

    def test_rename_actually_renames(self):
        from repro.ir import VReg

        def all_names(module):
            names = set()
            for f in module.functions.values():
                names.update(p.name for p in f.params)
                for b in f.blocks.values():
                    for op in b.ops:
                        if op.dest is not None:
                            names.add(op.dest.name)
                        names.update(s.name for s in op.srcs
                                     if isinstance(s, VReg))
            return names

        def dest_names(module):
            return {op.dest.name for f in module.functions.values()
                    for b in f.blocks.values() for op in b.ops
                    if op.dest is not None}

        module = generate_program(11)
        universe, dests = all_names(module), dest_names(module)
        _rename_vregs(module, 11)
        assert all_names(module) == universe    # a permutation of the names
        assert dest_names(module) != dests      # ... that moved something
        moved = sum(1 for f in module.functions.values()
                    for b in f.blocks.values() for op in b.ops
                    if op.memref is None and op.is_memory)
        assert moved > 0                # annotations cleared for re-derive

    def test_invariance_across_seeds(self):
        for seed in range(5):
            ok, detail = check_renaming_invariance(seed)
            assert ok, f"seed {seed}: {detail}"


class TestRunFuzz:
    def test_small_run_passes_and_counts(self):
        tracer = Tracer()
        report = run_fuzz(seed=0, count=3, tracer=tracer)
        assert report.ok
        assert len(report.cases) == 3
        assert report.checkpoints_verified == 3
        assert report.faults_fired > 0
        assert report.dismissal_checked and report.dismissal_verified
        assert tracer.counters.get("fuzz.cases") == 3
        assert tracer.counters.get("fuzz.failures") == 0

    def test_progress_callback_sees_every_case(self):
        seen = []
        run_fuzz(seed=5, count=2, check_faults=False,
                 progress=seen.append)
        assert [c.seed for c in seen] == [5, 6]

    def test_summary_reports_failures(self):
        report = FuzzReport()
        bad = FuzzCase(9)
        bad.fail("clean run memory diverged from interpreter")
        report.cases.append(bad)
        assert not report.ok
        assert "seed 9" in report.summary()
        assert report.row()["failed"] == 1

    def test_dismissal_scenario(self):
        ok, detail = verify_dismissal()
        assert ok, detail


class TestFuzzCli:
    def test_fuzz_command(self, capsys):
        assert main(["fuzz", "--seed", "0", "--count", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 cases, 0 failed" in out
        assert "checkpoint/resume" in out
        assert "dismissed-load scenario: ok" in out

    def test_fuzz_json(self, capsys):
        assert main(["fuzz", "--seed", "0", "--count", "2", "--no-faults",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["cases"] == 2
        assert report["failed"] == 0
        assert report["failures"] == []
