"""Fault injection and precise interrupts.

The paper's self-draining-pipeline claim (section 4): at an instruction
boundary the machine can stop issuing, let the pipelines drain, and the
architectural state is *only* registers, PCs, and memory.  These tests
inject faults at arbitrary beats and verify (a) timing-only faults are
architecturally invisible, (b) a checkpointed run resumes bit-identically
on a fresh simulator, and (c) the compiler degrades gracefully instead of
failing on adversarial inputs.
"""

import pytest

from repro.errors import DisambigError, ScheduleError, TrapError
from repro.faults import (BANK_POISON, CHECKPOINT, FP_TRAP, INTERRUPT,
                          TLB_FLUSH, FaultEvent, FaultInjector, FrameState,
                          InjectionPlan, MachineCheckpoint, SERVICE_BEATS)
from repro.ir import IRBuilder, MemoryImage, Module, RegClass, VReg, \
    run_module, verify_module
from repro.machine import TRACE_28_200
from repro.sim import (ProcessTagTable, TlbModel, VliwSimulator,
                       run_compiled, run_scalar, run_scoreboard)
from repro.trace import TraceCompiler, compile_module

from .conftest import build_sum_array

ARGS = (8,)


@pytest.fixture(scope="module")
def sum_program():
    module = build_sum_array()
    return module, compile_module(module, TRACE_28_200)


def _clean(sum_program):
    module, program = sum_program
    return run_compiled(program, module, "sumA", ARGS)


# ----------------------------------------------------------------------
class TestInjectionPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(0, "meteor_strike")

    def test_events_sorted_by_beat(self):
        plan = InjectionPlan([FaultEvent(30, INTERRUPT),
                              FaultEvent(4, TLB_FLUSH)])
        assert [e.beat for e in plan] == [4, 30]

    def test_random_is_deterministic(self):
        a = InjectionPlan.random(42, horizon_beats=1000)
        b = InjectionPlan.random(42, horizon_beats=1000)
        assert a.events == b.events
        c = InjectionPlan.random(43, horizon_beats=1000)
        assert a.events != c.events

    def test_random_generates_only_invisible_faults(self):
        plan = InjectionPlan.random(7, horizon_beats=500, n_interrupts=3,
                                    n_tlb_flushes=2, n_bank_poisons=3)
        assert len(plan) == 8
        assert all(e.kind in (INTERRUPT, TLB_FLUSH, BANK_POISON)
                   for e in plan)

    def test_injector_hands_out_each_event_once(self):
        plan = InjectionPlan([FaultEvent(10, INTERRUPT),
                              FaultEvent(20, TLB_FLUSH)])
        inj = FaultInjector(plan)
        assert inj.pending == 2
        assert inj.due(5) == []
        first = inj.due(15)
        assert [e.kind for e in first] == [INTERRUPT]
        assert inj.due(15) == []
        assert [e.kind for e in inj.due(100)] == [TLB_FLUSH]
        assert inj.pending == 0
        assert [(b, e.kind) for b, e in inj.fired] == \
            [(15, INTERRUPT), (100, TLB_FLUSH)]

    def test_checkpoint_rejects_undrained_frames(self):
        frame = FrameState("f", {}, 0, 0, None, {}, pending=[(9, "r", 1)])
        with pytest.raises(ValueError):
            MachineCheckpoint(4, [frame], b"", stats=None)


# ----------------------------------------------------------------------
class TestPreciseInterrupts:
    def test_drain_and_resume_is_architecturally_invisible(
            self, sum_program):
        module, program = sum_program
        clean = _clean(sum_program)
        inj = FaultInjector(InjectionPlan.interrupt_at(
            clean.stats.beats // 2))
        res = run_compiled(program, module, "sumA", ARGS, injector=inj)
        assert res.value == clean.value
        assert res.memory.snapshot() == clean.memory.snapshot()
        assert res.stats.interrupts == 1
        assert res.stats.interrupt_service_beats == SERVICE_BEATS
        assert res.stats.beats >= clean.stats.beats + SERVICE_BEATS

    def test_checkpoint_resume_bit_identical(self, sum_program):
        module, program = sum_program
        clean = _clean(sum_program)
        inj = FaultInjector(InjectionPlan.interrupt_at(
            clean.stats.beats // 2, checkpoint=True))
        first = VliwSimulator(program, MemoryImage(module),
                              injector=inj).run("sumA", ARGS)
        assert first.interrupted
        ck = first.checkpoint
        assert ck is not None and ck.depth == 1
        assert all(not f.pending for f in ck.frames), "not drained"
        assert first.stats.checkpoints == 1

        resumed = VliwSimulator(program, MemoryImage(module)).resume(ck)
        assert not resumed.interrupted
        assert resumed.value == clean.value
        assert resumed.memory.snapshot() == clean.memory.snapshot()
        assert resumed.stats.resumes == 1
        # the resumed half reports whole-run totals exactly once
        assert resumed.stats.instructions >= clean.stats.instructions

    def test_checkpoint_at_every_boundary_resumes_identically(
            self, sum_program):
        """Sweep the checkpoint beat across the whole run: every
        instruction boundary must be a precise point."""
        module, program = sum_program
        clean = _clean(sum_program)
        for beat in range(0, clean.stats.beats, 7):
            inj = FaultInjector(InjectionPlan.interrupt_at(
                beat, checkpoint=True))
            first = VliwSimulator(program, MemoryImage(module),
                                  injector=inj).run("sumA", ARGS)
            if not first.interrupted:
                continue        # delivered past the last boundary
            resumed = VliwSimulator(program,
                                    MemoryImage(module)).resume(
                                        first.checkpoint)
            assert resumed.value == clean.value, f"beat {beat}"
            assert resumed.memory.snapshot() == clean.memory.snapshot(), \
                f"beat {beat}"

    def test_checkpoint_mid_call_chain(self):
        """A checkpoint taken while a callee is live captures and
        rebuilds the whole frame stack."""
        m = Module("calls")
        b = IRBuilder(m)
        b.function("square", [("x", RegClass.INT)],
                   ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.mul(b.param("x"), b.param("x")))
        b.function("main", [("n", RegClass.INT)], ret_class=RegClass.INT)
        i = VReg("i", RegClass.INT)
        acc = VReg("acc", RegClass.INT)
        b.block("entry")
        b.mov(0, dest=i)
        b.mov(0, dest=acc)
        b.jmp("head")
        b.block("head")
        p = b.cmplt(i, b.param("n"))
        b.br(p, "body", "exit")
        b.block("body")
        sq = b.call("square", [i], ret_class=RegClass.INT)
        b.add(acc, sq, dest=acc)
        b.add(i, 1, dest=i)
        b.jmp("head")
        b.block("exit")
        b.ret(acc)
        verify_module(m)

        program = compile_module(m, TRACE_28_200)
        clean = run_compiled(program, m, "main", (6,))
        assert clean.value == sum(x * x for x in range(6))

        saw_deep = False
        for beat in range(0, clean.stats.beats, 5):
            inj = FaultInjector(InjectionPlan.interrupt_at(
                beat, checkpoint=True))
            first = VliwSimulator(program, MemoryImage(m),
                                  injector=inj).run("main", (6,))
            if not first.interrupted:
                continue
            saw_deep = saw_deep or first.checkpoint.depth > 1
            resumed = VliwSimulator(program, MemoryImage(m)).resume(
                first.checkpoint)
            assert resumed.value == clean.value, f"beat {beat}"
        assert saw_deep, "no checkpoint ever landed inside the callee"

    def test_resume_rejects_wrong_memory_shape(self, sum_program):
        from repro.errors import SimError
        module, program = sum_program
        inj = FaultInjector(InjectionPlan.interrupt_at(4, checkpoint=True))
        first = VliwSimulator(program, MemoryImage(module),
                              injector=inj).run("sumA", ARGS)
        assert first.interrupted
        small = MemoryImage(module, scratch_bytes=16)
        with pytest.raises(SimError):
            VliwSimulator(program, small).resume(first.checkpoint)

    def test_checkpoint_carries_process_tag(self, sum_program):
        module, program = sum_program
        tags = ProcessTagTable()
        inj = FaultInjector(InjectionPlan.interrupt_at(6, checkpoint=True))
        sim = VliwSimulator(program, MemoryImage(module), injector=inj,
                            tags=tags, process_id=41)
        first = sim.run("sumA", ARGS)
        assert first.interrupted
        assert first.checkpoint.asid == 0
        assert 41 in tags and tags.assignments == 1


# ----------------------------------------------------------------------
class TestInvisibleFaults:
    def test_tlb_flush_costs_time_only(self, sum_program):
        module, program = sum_program
        tlb_clean = TlbModel(TRACE_28_200)
        clean = run_compiled(program, module, "sumA", ARGS, tlb=tlb_clean)

        tlb = TlbModel(TRACE_28_200)
        inj = FaultInjector(InjectionPlan(
            [FaultEvent(clean.stats.beats // 2, TLB_FLUSH)]))
        res = run_compiled(program, module, "sumA", ARGS, injector=inj,
                           tlb=tlb)
        assert res.value == clean.value
        assert res.memory.snapshot() == clean.memory.snapshot()
        assert res.stats.injected_tlb_flushes == 1
        assert tlb.stats.injected_flushes == 1
        assert res.stats.beats >= clean.stats.beats
        assert tlb.stats.misses > tlb_clean.stats.misses

    def test_bank_poison_costs_time_only(self, sum_program):
        module, program = sum_program
        clean = _clean(sum_program)
        inj = FaultInjector(InjectionPlan(
            [FaultEvent(2, BANK_POISON, bank=b, busy_beats=12)
             for b in range(TRACE_28_200.total_banks)]))
        res = run_compiled(program, module, "sumA", ARGS, injector=inj)
        assert res.value == clean.value
        assert res.memory.snapshot() == clean.memory.snapshot()
        assert res.stats.injected_bank_poisons == TRACE_28_200.total_banks
        assert res.stats.beats > clean.stats.beats

    def test_fp_trap_reports_beat_and_pc(self, sum_program):
        module, program = sum_program
        inj = FaultInjector(InjectionPlan(
            [FaultEvent(4, FP_TRAP, detail="injected")]))
        with pytest.raises(TrapError) as info:
            run_compiled(program, module, "sumA", ARGS, injector=inj)
        exc = info.value
        assert exc.kind == "injected_fp"
        assert exc.beat is not None and exc.beat >= 4
        assert "sumA" in str(exc.pc)
        assert "beat" in str(exc) and "pc=" in str(exc)


# ----------------------------------------------------------------------
class TestBaselineInjection:
    def test_scalar_interrupt_charges_time_only(self, sum_array_module):
        clean = run_scalar(sum_array_module, "sumA", ARGS)
        inj = FaultInjector(InjectionPlan.interrupt_at(
            clean.stats.beats // 2))
        res = run_scalar(sum_array_module, "sumA", ARGS, injector=inj)
        assert res.value == clean.value
        assert res.stats.interrupts == 1
        assert res.stats.cycles > clean.stats.cycles

    def test_scoreboard_interrupt_charges_time_only(self, sum_array_module):
        clean = run_scoreboard(sum_array_module, "sumA", ARGS)
        inj = FaultInjector(InjectionPlan.interrupt_at(
            clean.stats.beats // 2))
        res = run_scoreboard(sum_array_module, "sumA", ARGS, injector=inj)
        assert res.value == clean.value
        assert res.stats.interrupts == 1
        assert res.stats.cycles > clean.stats.cycles

    def test_scalar_fp_trap_located(self, sum_array_module):
        inj = FaultInjector(InjectionPlan([FaultEvent(0, FP_TRAP)]))
        with pytest.raises(TrapError) as info:
            run_scalar(sum_array_module, "sumA", ARGS, injector=inj)
        assert info.value.beat is not None
        assert "sumA" in str(info.value.pc)


# ----------------------------------------------------------------------
class TestTrapLocation:
    def test_locate_fills_once(self):
        exc = TrapError("bus_error", "addr=0x0")
        assert exc.beat is None and exc.pc is None
        exc.locate(beat=12, pc="f:3")
        assert exc.beat == 12 and exc.pc == "f:3"
        exc.locate(beat=99, pc="g:9")       # already known: unchanged
        assert exc.beat == 12 and exc.pc == "f:3"
        assert "at beat 12" in str(exc) and "pc=f:3" in str(exc)

    def test_interpreter_locates_traps(self):
        m = Module("oob")
        b = IRBuilder(m)
        b.function("main", [("p", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.load(b.param("p"), 0))
        verify_module(m)
        with pytest.raises(TrapError) as info:
            run_module(m, "main", (0,))
        assert info.value.kind == "bus_error"
        assert str(info.value.pc).startswith("main:entry:")


# ----------------------------------------------------------------------
class TestGracefulDegradation:
    @staticmethod
    def _store_load_module() -> Module:
        """A store/load pair forces pairwise disambiguation queries."""
        m = Module("memops")
        m.add_array("A", 8, 4, init=list(range(8)))
        b = IRBuilder(m)
        b.function("main", [("n", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        base = b.addr("A")
        b.store(b.param("n"), base, 0)
        x = b.load(base, 4)
        b.ret(b.add(x, b.load(base, 0)))
        verify_module(m)
        return m

    def test_disambig_budget_degrades_to_per_block(self):
        module = self._store_load_module()
        ref = run_module(module, "main", (9,))
        compiler = TraceCompiler(module, TRACE_28_200, disambig_budget=0)
        program = compiler.compile_module()
        stats = compiler.stats["main"]
        assert stats.degradations, "budget exhaustion must degrade"
        assert "DisambigError" in stats.degradations[0]
        res = run_compiled(program, module, "main", (9,))
        assert res.value == ref.value

    def test_schedule_error_degrades_to_per_block(self, sum_array_module,
                                                  monkeypatch):
        """An adversarial input (here: a scheduler that gives up on any
        speculative trace) downgrades to per-block scheduling instead of
        failing the compile."""
        from repro.trace import compiler as compiler_mod
        real = compiler_mod.ListScheduler

        class FlakyScheduler(real):
            def run(self):
                if self.options.speculation:
                    raise ScheduleError(
                        "scheduler made no progress for 10000 instructions",
                        trace_id=self.trace_id, ready=3, blocking="mul")
                return super().run()

        monkeypatch.setattr(compiler_mod, "ListScheduler", FlakyScheduler)
        ref = run_module(sum_array_module, "sumA", ARGS)
        compiler = TraceCompiler(sum_array_module, TRACE_28_200)
        program = compiler.compile_module()
        stats = compiler.stats["sumA"]
        assert len(stats.degradations) == 1
        assert "ScheduleError" in stats.degradations[0]
        res = run_compiled(program, sum_array_module, "sumA", ARGS)
        assert res.value == ref.value

    def test_no_progress_error_carries_diagnostics(self):
        exc = ScheduleError("no progress", trace_id="f#t2@head",
                            ready=5, blocking="node #3 mul at pos 7")
        assert exc.trace_id == "f#t2@head"
        assert exc.ready == 5
        assert "mul" in exc.blocking

    def test_disambig_error_message_names_budget(self):
        from repro.disambig import Disambiguator
        d = Disambiguator(query_budget=2)
        d.alias(None, None)
        d.alias(None, None)
        with pytest.raises(DisambigError) as info:
            d.alias(None, None)
        assert "2 pairwise queries" in str(info.value)

    def test_clean_compile_has_no_degradations(self, sum_array_module):
        compiler = TraceCompiler(sum_array_module, TRACE_28_200)
        compiler.compile_module()
        assert compiler.stats["sumA"].degradations == []


# ----------------------------------------------------------------------
class TestObservability:
    def test_interrupt_counters_folded_once(self, sum_program):
        from repro.obs import Tracer
        module, program = sum_program
        tracer = Tracer()
        clean = _clean(sum_program)
        inj = FaultInjector(InjectionPlan.interrupt_at(
            clean.stats.beats // 2, checkpoint=True))
        first = VliwSimulator(program, MemoryImage(module), injector=inj,
                              tracer=tracer).run("sumA", ARGS)
        assert first.interrupted
        # interrupted half must NOT fold (totals would double-count)
        assert tracer.counters.get("sim.vliw.checkpoints") == 0
        VliwSimulator(program, MemoryImage(module),
                      tracer=tracer).resume(first.checkpoint)
        assert tracer.counters.get("sim.vliw.checkpoints") == 1
        assert tracer.counters.get("sim.vliw.resumes") == 1
        assert tracer.counters.get("sim.vliw.interrupts") == 1
