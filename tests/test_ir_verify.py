"""Tests for the IR verifier."""

import pytest

from repro.errors import IRError
from repro.ir import (Function, IRBuilder, Imm, Module, Opcode, Operation,
                      RegClass, VReg, make_br, make_jmp, make_ret,
                      verify_function, verify_module, verify_operation)


def test_unterminated_block_rejected():
    m = Module()
    f = m.add_function(Function("f"))
    f.add_block("entry").append(Operation(Opcode.NOP))
    with pytest.raises(IRError, match="not terminated"):
        verify_function(f, m)


def test_wrong_operand_class_rejected():
    op = Operation(Opcode.ADD, VReg("x", RegClass.INT),
                   [VReg("a", RegClass.FLT), Imm(1)])
    with pytest.raises(IRError, match="wants INT"):
        verify_operation(op, "t")


def test_wrong_dest_class_rejected():
    op = Operation(Opcode.FADD, VReg("x", RegClass.INT),
                   [Imm(1.0, RegClass.FLT), Imm(2.0, RegClass.FLT)])
    with pytest.raises(IRError, match="dest"):
        verify_operation(op, "t")


def test_store_with_dest_rejected():
    op = Operation(Opcode.STORE, VReg("x", RegClass.INT),
                   [Imm(1), Imm(0x1000), Imm(0)])
    with pytest.raises(IRError, match="cannot define"):
        verify_operation(op, "t")


def test_branch_label_count():
    op = Operation(Opcode.BR, None, [VReg("p", RegClass.PRED)])
    with pytest.raises(IRError, match="labels"):
        verify_operation(op, "t")


def test_terminator_mid_block_rejected():
    m = Module()
    f = m.add_function(Function("f"))
    blk = f.add_block("entry")
    blk.ops.append(make_ret())          # bypass append() guard
    blk.ops.append(Operation(Opcode.NOP))
    blk.ops.append(make_ret())
    with pytest.raises(IRError, match="mid-block"):
        verify_function(f, m)


def test_unknown_branch_target_rejected():
    m = Module()
    f = m.add_function(Function("f"))
    f.add_block("entry").append(make_jmp("ghost"))
    with pytest.raises(IRError):
        verify_function(f, m)


def test_unknown_symbol_rejected():
    b = IRBuilder()
    b.function("f", [], ret_class=RegClass.INT)
    b.block("entry")
    b.ret(b.addr("nothere"))
    with pytest.raises(IRError, match="unknown symbol"):
        verify_module(b.module)


def test_call_arg_count_checked():
    b = IRBuilder()
    b.function("callee", [("x", RegClass.INT)], ret_class=RegClass.INT)
    b.block("entry")
    b.ret(b.param("x"))
    b.function("caller", [])
    b.block("entry")
    # hand-build a bad call with zero args
    from repro.ir import make_call
    b.cur.append(make_call(None, "callee", []))
    b.ret()
    with pytest.raises(IRError, match="wants 1 args"):
        verify_module(b.module)


def test_call_unknown_callee_rejected():
    b = IRBuilder()
    b.function("caller", [])
    b.block("entry")
    from repro.ir import make_call
    b.cur.append(make_call(None, "ghost", []))
    b.ret()
    with pytest.raises(IRError, match="unknown"):
        verify_module(b.module)


def test_ret_without_value_in_valued_function():
    m = Module()
    f = m.add_function(Function("f", [], RegClass.INT))
    f.add_block("entry").append(make_ret())
    with pytest.raises(IRError, match="without value"):
        verify_module(m)


def test_good_modules_pass(sum_array_module, diamond_module):
    verify_module(sum_array_module)
    verify_module(diamond_module)
