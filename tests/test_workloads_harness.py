"""Tests for the workload library and the measurement harness."""

import pytest

from repro.harness import (CodeSizeReport, format_table, measure,
                           measure_code_size, prepare_modules,
                           scalar_code_bytes, train_profile)
from repro.ir import run_module
from repro.machine import TRACE_7_200, TRACE_28_200
from repro.opt import classical_pipeline
from repro.trace import SchedulingOptions, compile_module
from repro.workloads import (ALL_KERNELS, LIVERMORE_KERNELS, NUMERIC_KERNELS,
                             SYSTEMS_KERNELS, get_kernel)


class TestKernelLibrary:
    def test_registry_complete(self):
        assert len(NUMERIC_KERNELS) >= 10
        assert len(LIVERMORE_KERNELS) >= 5
        assert len(SYSTEMS_KERNELS) >= 8
        assert set(ALL_KERNELS) == (set(NUMERIC_KERNELS)
                                    | set(LIVERMORE_KERNELS)
                                    | set(SYSTEMS_KERNELS))

    def test_unknown_kernel_message(self):
        with pytest.raises(KeyError, match="daxpy"):
            get_kernel("nope")

    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_kernel_builds_and_interprets(self, name):
        kernel = get_kernel(name)
        n = 8 if name == "matmul" else 16
        module = kernel.build(n)
        result = run_module(module, kernel.func, kernel.make_args(n))
        if kernel.returns_value:
            assert result.value is not None
        for array, elem in kernel.outputs:
            assert array in module.data

    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_kernel_survives_classical_pipeline(self, name):
        kernel = get_kernel(name)
        n = 6 if name == "matmul" else 16
        args = kernel.make_args(n)
        ref = run_module(kernel.build(n), kernel.func, args).value
        module = kernel.build(n)
        classical_pipeline(unroll_factor=4, inline_budget=48).run(module)
        got = run_module(module, kernel.func, args).value
        assert got == ref


class TestMeasure:
    def test_daxpy_measurement_shape(self):
        m = measure("daxpy", 32)
        assert m.vliw_speedup > 3.0
        assert m.scoreboard_speedup > 1.0
        assert m.vliw_speedup > m.scoreboard_speedup

    def test_systems_code_modest_speedup(self):
        m = measure("state_machine", 32)
        assert 1.0 < m.vliw_speedup < 5.0

    def test_row_fields(self):
        row = measure("vadd", 16).row()
        assert {"kernel", "vliw_speedup", "scoreboard_speedup"} <= set(row)

    def test_divergence_detected(self):
        # sanity: the checker runs (a passing kernel raises nothing)
        measure("clamp", 16, check=True)

    def test_profile_guided_vs_static(self):
        static = measure("count_matches", 32, use_profile=False)
        profiled = measure("count_matches", 32, use_profile=True)
        # both must be correct; profiled should not be slower by much
        assert profiled.vliw.beats <= static.vliw.beats * 1.5

    def test_narrow_config(self):
        m = measure("vadd", 16, config=TRACE_7_200, unroll=4)
        assert m.vliw_speedup > 1.0


class TestCodeSize:
    def test_report_fields(self):
        kernel = get_kernel("daxpy")
        baseline, vliw_module = prepare_modules(kernel, 32, unroll=8)
        prog = compile_module(vliw_module, TRACE_28_200)
        report = measure_code_size(prog.function("main"), baseline)
        assert report.packed_bytes > 0
        assert report.packed_bytes < report.unpacked_bytes
        assert 0 < report.packing_ratio < 1
        assert report.vs_scalar > 1.0       # unrolled code is bigger

    def test_scalar_bytes(self):
        kernel = get_kernel("vadd")
        module = kernel.build(16)
        assert scalar_code_bytes(module, "main") == \
            4 * module.function("main").op_count()

    def test_unroll_grows_code(self):
        kernel = get_kernel("daxpy")
        sizes = {}
        for unroll in (0, 8):
            _, vliw_module = prepare_modules(kernel, 32, unroll=unroll)
            prog = compile_module(vliw_module, TRACE_28_200)
            report = measure_code_size(prog.function("main"),
                                       kernel.build(32))
            sizes[unroll] = report.packed_bytes
        assert sizes[8] > sizes[0]


class TestReport:
    def test_table_alignment(self):
        rows = [{"a": 1, "bb": 2.5}, {"a": 100, "bb": 0.125}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_empty(self):
        assert "(no rows)" in format_table([])
