"""Tests for reduction accumulator splitting in the unroller.

Integer splitting is exact (associative) and on by default; float
reassociation changes last-bit results and hides behind an explicit flag —
the same trade the Multiflow compilers exposed as a switch.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import find_loops
from repro.harness import measure
from repro.ir import (IRBuilder, Opcode, RegClass, VReg, run_module,
                      verify_module)
from repro.opt import LoopUnroll, PassManager
from repro.workloads import get_kernel


def _unroll(module, factor=8, **kw):
    PassManager([LoopUnroll(factor=factor, **kw)]).run(module)
    verify_module(module)
    return module


class TestIntSplitting:
    @pytest.mark.parametrize("n", [0, 1, 7, 8, 9, 29, 64])
    def test_exact_across_trip_counts(self, n):
        kernel = get_kernel("int_sum")
        ref = run_module(kernel.build(64), "main", (n,)).value
        module = _unroll(kernel.build(64))
        assert run_module(module, "main", (n,)).value == ref

    def test_partials_created(self):
        kernel = get_kernel("int_sum")
        module = _unroll(kernel.build(64), factor=4)
        func = module.function("main")
        names = {r.name for r in func.all_vregs()}
        assert any(".acc" in name for name in names)
        # a combine block joins the partials on exit
        assert any(".u4c" in bname for bname in func.blocks)

    def test_splitting_can_be_disabled(self):
        kernel = get_kernel("int_sum")
        module = _unroll(kernel.build(64), factor=4,
                         split_accumulators=False)
        names = {r.name for r in module.function("main").all_vregs()}
        assert not any(".acc" in name for name in names)

    def test_breaks_the_serial_chain(self):
        """The point of the exercise: int reductions now scale."""
        m = measure("int_sum", 96, unroll=8)
        assert m.vliw_speedup > 6.0

    def test_wrapping_semantics_preserved(self):
        """Partial sums wrap at 32 bits exactly like the serial order."""
        b = IRBuilder()
        b.function("f", [("n", RegClass.INT)], ret_class=RegClass.INT)
        s = VReg("s", RegClass.INT)
        i = VReg("i", RegClass.INT)
        b.block("entry")
        b.mov(0, dest=s)
        b.mov(0, dest=i)
        b.jmp("head")
        b.block("head")
        p = b.cmplt(i, b.param("n"))
        b.br(p, "body", "exit")
        b.block("body")
        big = b.shl(i, 27)           # overflows quickly
        b.add(s, big, dest=s)
        b.add(i, 1, dest=i)
        b.jmp("head")
        b.block("exit")
        b.ret(s)
        module = b.module
        ref = run_module(module, "f", (37,)).value
        _unroll(module, factor=8)
        assert run_module(module, "f", (37,)).value == ref

    def test_accumulator_read_in_body_blocks_split(self):
        """An accumulator also *read* per iteration must stay serial."""
        kernel = get_kernel("int_sum")
        module = kernel.build(32)
        func = module.function("main")
        # add a second use of s inside the body (store-ish read)
        body = func.block("body")
        s = VReg("s", RegClass.INT)
        extra = None
        for op in body.body:
            if op.dest == s:
                extra = op
        assert extra is not None
        from repro.ir import Operation
        body.insert(len(body.ops) - 1,
                    Operation(Opcode.XOR, VReg("peek", RegClass.INT),
                              [s, s]))
        verify_module(module)
        ref = run_module(module, "main", (20,)).value
        _unroll(module, factor=4)
        assert run_module(module, "main", (20,)).value == ref
        names = {r.name for r in func.all_vregs()}
        assert not any("s.acc" in name for name in names)


class TestFloatReassociation:
    def test_off_by_default(self):
        kernel = get_kernel("dot")
        module = _unroll(kernel.build(32), factor=4)
        names = {r.name for r in module.function("main").all_vregs()}
        assert not any(".acc" in name for name in names)

    def test_flag_enables_and_stays_close(self):
        kernel = get_kernel("dot")
        ref = run_module(kernel.build(96), "main", (90,)).value
        module = _unroll(kernel.build(96), factor=8,
                         reassociate_float=True)
        got = run_module(module, "main", (90,)).value
        assert got == pytest.approx(ref, rel=1e-12)
        names = {r.name for r in module.function("main").all_vregs()}
        assert any(".acc" in name for name in names)

    def test_reassociated_reduction_gets_faster(self):
        """With partials, the FADD chain parallelises on the machine."""
        from repro.machine import TRACE_28_200
        from repro.opt import (ConstantFold, CopyPropagation,
                               DeadCodeElimination, LocalCSE)
        from repro.sim import run_compiled
        from repro.trace import compile_module

        kernel = get_kernel("dot")

        def beats(reassoc: bool) -> int:
            module = kernel.build(96)
            PassManager([LoopUnroll(factor=8,
                                    reassociate_float=reassoc),
                         CopyPropagation(), LocalCSE(),
                         DeadCodeElimination()]).run(module)
            program = compile_module(module, TRACE_28_200)
            return run_compiled(program, module, "main",
                                (90,)).stats.beats

        assert beats(True) < 0.7 * beats(False)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(0, 64), factor=st.sampled_from([2, 4, 8]))
    def test_property_int_sum_any_shape(self, n, factor):
        kernel = get_kernel("int_sum")
        ref = run_module(kernel.build(64), "main", (n,)).value
        module = _unroll(kernel.build(64), factor=factor)
        assert run_module(module, "main", (n,)).value == ref
