"""Tests for the observability layer (repro.obs) and its integration."""

import json

import pytest

from repro.harness import (MeasureSpec, Measurement, compare_kernel,
                           measure, measurement_report, run_measurement)
from repro.machine import (MachineConfig, TRACE_7_200, TRACE_14_200,
                           TRACE_28_200)
from repro.errors import MachineError
from repro.obs import (NULL_TRACER, Counters, NullTracer, Telemetry,
                       TraceEvent, Tracer, get_tracer)


class TestTracer:
    def test_span_nesting_depths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            assert tracer.current_span() == "outer"
            with tracer.span("inner"):
                assert tracer.current_span() == "inner"
        assert tracer.current_span() is None
        by_name = {ev.name: ev for ev in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        # the inner span closes first and nests inside the outer window
        assert by_name["inner"].ts >= by_name["outer"].ts
        assert by_name["inner"].dur <= by_name["outer"].dur

    def test_phase_times_accumulate(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("phase.a"):
                pass
        with tracer.span("phase.b"):
            pass
        times = tracer.phase_times()
        assert set(times) == {"phase.a", "phase.b"}
        assert all(t >= 0.0 for t in times.values())

    def test_span_monotonic_clock(self):
        ticks = iter(range(100))
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.span("a"):
            pass
        (span,) = tracer.spans
        assert span.dur > 0

    def test_counter_totals(self):
        c = Counters()
        c.inc("a.x")
        c.inc("a.x", 4)
        c.inc("a.y", 2)
        c.inc("b.z", 0)            # registers the key at zero
        assert c.get("a.x") == 5
        assert c.total("a.") == 7
        assert "b.z" in c and c.get("b.z") == 0
        other = Counters()
        other.inc("a.x", 10)
        c.merge(other)
        assert c.get("a.x") == 15
        assert list(c.as_dict()) == ["a.x", "a.y", "b.z"]

    def test_events_opt_in(self):
        silent = Tracer(events=False)
        silent.event("boom", ts=1)
        assert silent.events == []
        loud = Tracer(events=True)
        loud.event("boom", cat="sim", ts=7, pc=3)
        (ev,) = loud.events
        assert (ev.name, ev.ts, ev.args["pc"]) == ("boom", 7, 3)

    def test_chrome_trace_format(self):
        tracer = Tracer(events=True)
        with tracer.span("compile", cat="compile"):
            tracer.event("branch", cat="sim", ts=4, taken=True)
        trace = tracer.chrome_trace()
        assert json.loads(json.dumps(trace)) == trace
        phases = {ev["ph"] for ev in trace}
        assert phases == {"X", "i"}
        span = next(ev for ev in trace if ev["ph"] == "X")
        assert "dur" in span and span["pid"] == 1


class TestNullTracer:
    def test_null_tracer_is_noop(self):
        null = NullTracer()
        assert not null.enabled
        with null.span("anything", cat="x", arg=1):
            null.counters.inc("never", 100)
            null.event("never", ts=1)
        assert null.spans == [] and null.events == []
        assert null.phase_times() == {} and null.chrome_trace() == []
        assert null.counters.get("never") == 0
        assert len(null.counters) == 0

    def test_get_tracer_defaults_to_shared_null(self):
        assert get_tracer(None) is NULL_TRACER
        real = Tracer()
        assert get_tracer(real) is real


class TestTelemetryReport:
    def test_measure_telemetry_schema(self):
        m = measure("daxpy", 32, telemetry=True)
        t = m.telemetry
        assert isinstance(t, Telemetry)
        # per-phase wall-times for the compiler's inner phases
        for phase in ("trace.select", "trace.schedule", "trace.regalloc",
                      "sched.deps", "sim.vliw"):
            assert phase in t.phases and t.phases[phase] >= 0.0
        # per-simulator event counters, present even at zero
        for counter in ("sim.vliw.bank_stall_beats", "sim.vliw.nop_slots",
                        "sim.vliw.icache_misses", "sim.scalar.cycles",
                        "sim.scoreboard.cycles", "trace.traces",
                        "select.traces", "sched.instructions"):
            assert counter in t.counters, counter
        assert t.counter("sim.vliw.beats") == m.vliw.beats
        assert t.counter("trace.traces") == m.compile_stats.n_traces
        # disambiguator mirror: every alias/bank query is counted
        assert sum(v for k, v in t.counters.items()
                   if k.startswith("disambig.")) > 0

    def test_telemetry_round_trips_json(self):
        t = measure("vadd", 16, telemetry=True).telemetry
        blob = json.dumps(t.to_dict())
        assert json.loads(blob) == t.to_dict()
        assert json.loads(t.to_json()) == t.to_dict()

    def test_summary_readable(self):
        t = measure("vadd", 16, telemetry=True).telemetry
        text = t.summary()
        assert "phases (ms):" in text
        assert "VLIW simulator" in text
        assert "sim.vliw.nop_slots" in text

    def test_telemetry_off_by_default(self):
        assert measure("vadd", 16).telemetry is None

    def test_events_collected_on_request(self):
        t = measure("vadd", 16, events=True).telemetry
        assert t is not None
        cats = {ev["cat"] for ev in t.chrome_trace()}
        assert "sim" in cats        # per-beat simulator events present

    def test_write_events(self, tmp_path):
        t = measure("vadd", 16, events=True).telemetry
        path = tmp_path / "trace.json"
        count = t.write_events(path)
        assert count == len(json.loads(path.read_text())) > 0


class TestMeasureSpecApi:
    def test_spec_form(self):
        spec = MeasureSpec(kernel="vadd", n=16, config=TRACE_7_200,
                           unroll=4, telemetry=True)
        m = run_measurement(spec)
        assert isinstance(m, Measurement)
        assert m.config is TRACE_7_200
        assert m.telemetry is not None

    def test_old_positional_shapes_still_work(self):
        m = measure("vadd", 16, TRACE_7_200, None, 4)
        assert m.kernel == "vadd" and m.n == 16
        assert compare_kernel("vadd", 16).vliw_speedup > 1.0

    def test_compile_stats_typed(self):
        from repro.trace import TraceCompileStats
        m = measure("vadd", 16)
        assert isinstance(m.compile_stats, TraceCompileStats)

    def test_shared_tracer_across_runs(self):
        tracer = Tracer()
        measure("vadd", 16, tracer=tracer)
        beats_once = tracer.counters.get("sim.vliw.beats")
        measure("vadd", 16, tracer=tracer)
        assert tracer.counters.get("sim.vliw.beats") == 2 * beats_once

    def test_measurement_report_schema(self):
        m = measure("vadd", 16, telemetry=True)
        report = measurement_report(m)
        assert json.loads(json.dumps(report)) == report
        assert report["config"]["n_pairs"] == 4
        assert report["compile"]["n_traces"] == m.compile_stats.n_traces
        assert report["telemetry"]["counters"]["sim.vliw.beats"] \
            == m.vliw.beats

    def test_root_package_reexports(self):
        import repro
        assert repro.measure is measure
        assert repro.MeasureSpec is MeasureSpec
        assert repro.Measurement is Measurement


class TestFromPairs:
    def test_matches_product_line(self):
        assert MachineConfig.from_pairs(1) == TRACE_7_200
        assert MachineConfig.from_pairs(2) == TRACE_14_200
        assert MachineConfig.from_pairs(4) == TRACE_28_200

    def test_invalid_pairs_rejected(self):
        with pytest.raises(MachineError):
            MachineConfig.from_pairs(3)
