"""Unit tests for the reference interpreter and the memory image."""

import math

import pytest

from repro.errors import InterpError, TrapError
from repro.ir import (FUNNY_INT, IRBuilder, Interpreter, MemoryImage, Module,
                      Opcode, RegClass, VReg, run_module, verify_module)
from repro.ir.interp import DATA_BASE


def _expr_func(build_body):
    """Helper: single-block function returning build_body(builder)."""
    b = IRBuilder()
    b.function("f", [("a", RegClass.INT), ("b", RegClass.INT)],
               ret_class=RegClass.INT)
    b.block("entry")
    b.ret(build_body(b))
    verify_module(b.module)
    return b.module


class TestArithmetic:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 2, 3, 5),
        ("sub", 2, 3, -1),
        ("mul", -4, 6, -24),
        ("div", 7, 2, 3),
        ("div", -7, 2, -3),       # truncation toward zero
        ("rem", 7, 2, 1),
        ("rem", -7, 2, -1),       # sign follows dividend (C semantics)
        ("and_", 0b1100, 0b1010, 0b1000),
        ("or_", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
        ("shl", 1, 4, 16),
        ("shr", -16, 2, -4),      # arithmetic
        ("shru", -1, 28, 15),     # logical
    ])
    def test_binary(self, op, a, b, expected):
        m = _expr_func(lambda bld: getattr(bld, op)(
            bld.param("a"), bld.param("b")))
        assert run_module(m, "f", [a, b]).value == expected

    def test_add_wraps_32(self):
        m = _expr_func(lambda bld: bld.add(bld.param("a"), bld.param("b")))
        assert run_module(m, "f", [0x7FFFFFFF, 1]).value == -(1 << 31)

    def test_div_by_zero_traps(self):
        m = _expr_func(lambda bld: bld.div(bld.param("a"), bld.param("b")))
        with pytest.raises(TrapError):
            run_module(m, "f", [5, 0])

    def test_select(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT), ("b", RegClass.INT)],
                   ret_class=RegClass.INT)
        b.block("entry")
        p = b.cmplt(b.param("a"), b.param("b"))
        b.ret(b.select(p, 111, 222))
        assert run_module(b.module, "f", [1, 2]).value == 111
        assert run_module(b.module, "f", [2, 1]).value == 222

    def test_extract_merge(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT), ("b", RegClass.INT)],
                   ret_class=RegClass.INT)
        b.block("entry")
        e = b.emit(Opcode.EXTRACT, [b.param("a"), 8, 8]).dest
        r = b.emit(Opcode.MERGE, [b.param("b"), e, 0, 8]).dest
        b.ret(r)
        # extract byte 1 of a, merge into low byte of b
        assert run_module(b.module, "f", [0x00AB00, 0xFFFF00]).value == 0xFFFFAB


class TestFloat:
    def test_fdiv_precise_traps_on_zero(self):
        b = IRBuilder()
        b.function("f", [("x", RegClass.FLT)], ret_class=RegClass.FLT)
        b.block("entry")
        b.ret(b.fdiv(1.0, b.param("x")))
        with pytest.raises(TrapError):
            run_module(b.module, "f", [0.0])

    def test_fdiv_fast_mode_propagates_inf(self):
        b = IRBuilder()
        b.function("f", [("x", RegClass.FLT)], ret_class=RegClass.FLT)
        b.block("entry")
        b.ret(b.fdiv(1.0, b.param("x")))
        value = run_module(b.module, "f", [0.0], fp_mode="fast").value
        assert math.isinf(value) and value > 0

    def test_fast_mode_zero_over_zero_is_nan(self):
        b = IRBuilder()
        b.function("f", [("x", RegClass.FLT)], ret_class=RegClass.FLT)
        b.block("entry")
        b.ret(b.fdiv(0.0, b.param("x")))
        assert math.isnan(run_module(b.module, "f", [0.0],
                                     fp_mode="fast").value)

    def test_cvtfi_trunc_and_trap(self):
        b = IRBuilder()
        b.function("f", [("x", RegClass.FLT)], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.cvtfi(b.param("x")))
        assert run_module(b.module, "f", [3.9]).value == 3
        assert run_module(b.module, "f", [-3.9]).value == -3
        with pytest.raises(TrapError):
            run_module(b.module, "f", [float("nan")])
        # fast mode: a funny number instead of a trap
        assert run_module(b.module, "f", [float("nan")],
                          fp_mode="fast").value == FUNNY_INT

    def test_cvtif(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.FLT)
        b.block("entry")
        b.ret(b.cvtif(b.param("a")))
        assert run_module(b.module, "f", [-7]).value == -7.0


class TestMemory:
    def test_layout_respects_alignment(self):
        m = Module()
        m.add_array("A", 3, 4)          # 12 bytes
        m.add_array("B", 2, 8)          # needs 8-alignment
        img = MemoryImage(m)
        assert img.layout["A"] % 4 == 0
        assert img.layout["B"] % 8 == 0
        assert img.layout["B"] >= img.layout["A"] + 12

    def test_init_values_visible(self):
        m = Module()
        m.add_array("A", 4, 4, init=[10, 20, 30, 40])
        img = MemoryImage(m)
        assert img.read_array("A", 4) == [10, 20, 30, 40]

    def test_float_roundtrip(self):
        img = MemoryImage()
        img.store_float(img.scratch_base, 2.5)
        assert img.load_float(img.scratch_base) == 2.5

    def test_unaligned_access_traps(self):
        img = MemoryImage()
        with pytest.raises(TrapError):
            img.load_int(DATA_BASE + 1)

    def test_null_page_traps(self):
        img = MemoryImage()
        with pytest.raises(TrapError):
            img.load_int(0)

    def test_load_store_program(self):
        m = Module()
        m.add_array("A", 2, 4, init=[5, 7])
        b = IRBuilder(m)
        b.function("swap", [], ret_class=RegClass.INT)
        b.block("entry")
        base = b.addr("A")
        x = b.load(base, 0)
        y = b.load(base, 4)
        b.store(y, base, 0)
        b.store(x, base, 4)
        b.ret(b.sub(x, y))
        res = run_module(m, "swap")
        assert res.value == -2
        assert res.memory.read_array("A", 2) == [7, 5]

    def test_speculative_load_funny_number(self):
        b = IRBuilder()
        b.function("f", [("addr", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        v = b.emit(Opcode.LOADS, [b.param("addr"), 0]).dest
        b.ret(v)
        # invalid address: no trap, funny number instead
        assert run_module(b.module, "f", [0]).value == FUNNY_INT

    def test_normal_load_bad_address_traps(self):
        b = IRBuilder()
        b.function("f", [("addr", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.load(b.param("addr"), 0))
        with pytest.raises(TrapError):
            run_module(b.module, "f", [0])


class TestControlAndCalls:
    def test_loop_and_profile(self, sum_array_module):
        res = run_module(sum_array_module, "sumA", [8])
        assert res.value == 28.0
        prob = res.profile.edge_probability("sumA", "head", "body")
        assert prob == pytest.approx(8 / 9)

    def test_diamond_both_paths(self, diamond_module):
        assert run_module(diamond_module, "absdiff", [10, 3]).value == 7
        assert run_module(diamond_module, "absdiff", [3, 10]).value == 7

    def test_call_and_return(self):
        b = IRBuilder()
        b.function("sq", [("x", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.mul(b.param("x"), b.param("x")))
        b.function("f", [("a", RegClass.INT), ("b", RegClass.INT)],
                   ret_class=RegClass.INT)
        b.block("entry")
        s1 = b.call("sq", [b.param("a")])
        s2 = b.call("sq", [b.param("b")])
        b.ret(b.add(s1, s2))
        verify_module(b.module)
        res = run_module(b.module, "f", [3, 4])
        assert res.value == 25
        assert res.stats.calls == 2

    def test_recursion(self):
        b = IRBuilder()
        b.function("fact", [("n", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        p = b.cmple(b.param("n"), 1)
        b.br(p, "base", "rec")
        b.block("base")
        b.ret(1)
        b.block("rec")
        r = b.call("fact", [b.sub(b.param("n"), 1)])
        b.ret(b.mul(b.param("n"), r))
        assert run_module(b.module, "fact", [6]).value == 720

    def test_fuel_limit(self):
        b = IRBuilder()
        b.function("spin", [])
        b.block("entry")
        b.jmp("entry")
        interp = Interpreter(b.module, fuel=1000)
        with pytest.raises(InterpError):
            interp.run("spin")

    def test_use_of_undefined_register(self):
        b = IRBuilder()
        b.function("f", [], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(VReg("ghost", RegClass.INT))
        with pytest.raises(InterpError):
            run_module(b.module, "f")

    def test_string_arg_resolves_symbol(self):
        m = Module()
        m.add_array("A", 1, 4, init=[42])
        b = IRBuilder(m)
        b.function("deref", [("p", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.load(b.param("p"), 0))
        assert run_module(m, "deref", ["A"]).value == 42
