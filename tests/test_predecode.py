"""Differential tests for the pre-decoded VLIW fast path.

``VliwSimulator(predecode=False)`` keeps the original interpretive
execute loop alive as a reference; these tests pin the fast path to it
bit for bit — values, final memory, and every timing stat — across
kernels, strategies, device models, fault injection, and
checkpoint/resume (including resuming a fast-path checkpoint on a
slow-path simulator and vice versa).
"""

import pytest

from repro.faults import FaultInjector, InjectionPlan
from repro.harness.measure import prepare_modules, train_profile
from repro.ir import MemoryImage
from repro.machine import TRACE_28_200
from repro.sim import ICacheModel, TlbModel, VliwSimulator
from repro.sim.decode import predecode_program
from repro.trace import TraceCompiler
from repro.workloads import generate_program, get_kernel

KERNELS = ("daxpy", "fir4", "ll7_state", "state_machine", "call_heavy",
           "binary_search")


def _compiled(name, n=48, strategy="trace"):
    kernel = get_kernel(name)
    _, module = prepare_modules(kernel, n)
    profile = train_profile(module, kernel.func, kernel.make_args(n))
    program = TraceCompiler(module, profile=profile,
                            strategy=strategy).compile_module()
    return kernel, module, program


def _snapshot(sim, result, module, memory):
    return (result.value, bytes(memory.data), vars(result.stats))


def _run(program, module, func, args, predecode, **sim_kw):
    memory = MemoryImage(module)
    sim = VliwSimulator(program, memory, predecode=predecode, **sim_kw)
    result = sim.run(func, args)
    return _snapshot(sim, result, module, memory)


class TestFastPathEquivalence:
    @pytest.mark.parametrize("name", KERNELS)
    def test_kernels_bit_identical(self, name):
        kernel, module, program = _compiled(name)
        args = kernel.make_args(48)
        assert _run(program, module, kernel.func, args, True) \
            == _run(program, module, kernel.func, args, False)

    @pytest.mark.parametrize("name", ("daxpy", "ll7_state"))
    def test_pipeline_strategy_bit_identical(self, name):
        kernel, module, program = _compiled(name, strategy="pipeline")
        args = kernel.make_args(48)
        assert _run(program, module, kernel.func, args, True) \
            == _run(program, module, kernel.func, args, False)

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_programs_bit_identical(self, seed):
        module = generate_program(seed)
        program = TraceCompiler(module).compile_module()
        assert _run(program, module, "main", (7, -3), True) \
            == _run(program, module, "main", (7, -3), False)

    def test_device_models_bit_identical(self):
        kernel, module, program = _compiled("daxpy")
        args = kernel.make_args(48)
        runs = {}
        for predecode in (True, False):
            runs[predecode] = _run(
                program, module, kernel.func, args, predecode,
                icache=ICacheModel(TRACE_28_200, lines=2),
                tlb=TlbModel(TRACE_28_200, entries=2))
        assert runs[True] == runs[False]

    def test_fault_injection_bit_identical(self):
        module = generate_program(4)
        program = TraceCompiler(module).compile_module()
        clean = _run(program, module, "main", (7, -3), True)
        horizon = clean[2]["beats"]
        runs = {}
        for predecode in (True, False):
            plan = InjectionPlan.random(4, horizon_beats=horizon,
                                        total_banks=64)
            runs[predecode] = _run(program, module, "main", (7, -3),
                                   predecode,
                                   injector=FaultInjector(plan))
        assert runs[True] == runs[False]

    @pytest.mark.parametrize("first,second", [(True, False), (False, True)])
    def test_checkpoint_crosses_paths(self, first, second):
        """A checkpoint taken on either path resumes on the other: the
        snapshot is pure architectural state, so decode strategy cannot
        leak into it."""
        module = generate_program(2)
        program = TraceCompiler(module).compile_module()
        baseline = _run(program, module, "main", (7, -3), True)
        half = baseline[2]["beats"] // 2

        memory = MemoryImage(module)
        injector = FaultInjector(
            InjectionPlan.interrupt_at(half, checkpoint=True))
        start = VliwSimulator(program, memory, injector=injector,
                              predecode=first).run("main", (7, -3))
        assert start.interrupted
        resume_memory = MemoryImage(module)
        resumed = VliwSimulator(program, resume_memory,
                                predecode=second).resume(start.checkpoint)
        assert not resumed.interrupted
        assert resumed.value == baseline[0]
        assert bytes(resume_memory.data) == baseline[1]
        assert resumed.stats.beats == baseline[2]["beats"]


class TestPredecodeStructure:
    def test_predecode_resolves_branch_targets(self):
        kernel, module, program = _compiled("binary_search")
        decoded = predecode_program(program, MemoryImage(module))
        for dcf in decoded.values():
            assert len(dcf.insts) == len(dcf.cf.instructions)
            for _, _, branches, _, _, fall_pc in dcf.insts:
                assert 0 <= fall_pc
                for br in branches:
                    assert isinstance(br[4], int)   # target pre-resolved

    def test_fast_path_used_by_default(self):
        kernel, module, program = _compiled("daxpy")
        sim = VliwSimulator(program, MemoryImage(module))
        assert sim._predecoded is not None
        slow = VliwSimulator(program, MemoryImage(module), predecode=False)
        assert slow._predecoded is None
