"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "daxpy" in out and "state_machine" in out


def test_measure(capsys):
    assert main(["measure", "vadd", "-n", "32"]) == 0
    out = capsys.readouterr().out
    assert "vliw_speedup" in out
    assert "traces:" in out


def test_measure_narrow_machine(capsys):
    assert main(["measure", "vadd", "-n", "32", "--pairs", "1",
                 "--unroll", "4"]) == 0
    assert "7/200" in capsys.readouterr().out


def test_schedule(capsys):
    assert main(["schedule", "copy", "-n", "32", "--unroll", "4"]) == 0
    out = capsys.readouterr().out
    assert "compiled main" in out
    assert "fload" in out or "fstore" in out


def test_sweep(capsys):
    assert main(["sweep", "-n", "24", "--unroll", "4"]) == 0
    out = capsys.readouterr().out
    assert "kernel sweep" in out
    assert "daxpy" in out


def test_compile_and_run(tmp_path, capsys):
    source = tmp_path / "prog.tf"
    source.write_text("""
array int V[16];
int f(int n) {
    int s = 0; int i;
    for (i = 0; i < n; i = i + 1) { V[i] = i * 2; s = s + V[i]; }
    return s;
}
""")
    assert main(["compile", str(source), "--run", "f", "--args", "10"]) == 0
    out = capsys.readouterr().out
    assert "f(10) = 90" in out
    assert "beats" in out


def test_explain_deps(capsys):
    assert main(["explain-deps", "daxpy"]) == 0
    out = capsys.readouterr().out
    assert "unified dependence graphs" in out
    assert "trace 0:" in out
    assert "loop @" in out and "RecMII=" in out
    assert "dist=1" in out                  # modulo distance edges shown
    assert "[yes]" in out                   # disambiguator verdicts shown


def test_explain_deps_json(capsys):
    import json as _json
    assert main(["explain-deps", "daxpy", "--json"]) == 0
    report = _json.loads(capsys.readouterr().out)
    assert report["traces"] and report["loops"]
    loop = report["loops"][0]
    assert {"res_mii", "rec_mii", "mii", "edges"} <= set(loop)
    kinds = {e["kind"] for rec in report["traces"] for e in rec["edges"]}
    assert "beat" in kinds and "inst_ge" in kinds


def test_explain_deps_tf_file(tmp_path, capsys):
    source = tmp_path / "prog.tf"
    source.write_text("""
array int V[16];
int f(int n) {
    int s = 0; int i;
    for (i = 0; i < n; i = i + 1) { V[i] = i * 2; s = s + V[i]; }
    return s;
}
""")
    assert main(["explain-deps", str(source), "f"]) == 0
    out = capsys.readouterr().out
    assert "f: unified dependence graphs" in out


def test_stats(capsys):
    assert main(["stats", "vadd", "-n", "16", "--unroll", "4"]) == 0
    out = capsys.readouterr().out
    assert "phases (ms):" in out
    assert "trace.select" in out
    assert "sim.vliw.bank_stall_beats" in out


def test_stats_json(capsys):
    assert main(["stats", "vadd", "-n", "16", "--unroll", "4",
                 "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["kernel"] == "vadd"
    telemetry = report["telemetry"]
    assert "trace.schedule" in telemetry["phases"]
    assert "sim.vliw.nop_slots" in telemetry["counters"]


def test_measure_json(capsys):
    assert main(["measure", "vadd", "-n", "16", "--unroll", "4",
                 "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["results"]["vliw_speedup"] > 1.0
    assert report["compile"]["n_traces"] >= 1
    assert report["config"]["n_pairs"] == 4


def test_measure_events_out(tmp_path, capsys):
    trace_file = tmp_path / "events.json"
    assert main(["measure", "vadd", "-n", "16", "--unroll", "4",
                 "--events-out", str(trace_file)]) == 0
    events = json.loads(trace_file.read_text())
    assert events and {"name", "cat", "ph", "ts"} <= set(events[0])
    assert any(ev["cat"] == "sim" for ev in events)


def test_sweep_json(capsys):
    assert main(["sweep", "-n", "16", "--unroll", "2", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert "daxpy" in report["kernels"]
    assert len(report["rows"]) == len(report["kernels"])
    assert report["telemetry"]["counters"]["trace.traces"] >= \
        len(report["kernels"])


def test_unknown_kernel_rejected():
    with pytest.raises(SystemExit):
        main(["measure", "not_a_kernel"])


def test_options_plumbed(capsys):
    assert main(["measure", "vadd", "-n", "32", "--no-speculation",
                 "--no-join-motion"]) == 0
    assert "speculated loads: 0" in capsys.readouterr().out


def test_cache_prune_cli(tmp_path, capsys):
    from repro.cache import CompileCache

    store = CompileCache(directory=str(tmp_path))
    for i in range(4):
        store.put(f"cli{i}aa", b"p" * (256 * 1024))
    assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                 "--max-mb", "0.5", "--json"]) == 0
    out = capsys.readouterr().out
    assert "pruned" in out
    stats = json.loads(out[out.index("{"):])
    assert stats["disk_evictions"] >= 2
    assert stats["disk_entries"] >= 1     # not a clear: under-quota stays
    assert store.stats().disk_bytes <= 0.5 * 1024 * 1024


def test_cache_prune_requires_quota(tmp_path):
    with pytest.raises(SystemExit):
        main(["cache", "prune", "--cache-dir", str(tmp_path)])


def test_submit_cli_round_trip(tmp_path, capsys):
    from repro.serve import ServeConfig, start_server

    core, httpd = start_server(ServeConfig(
        port=0, jobs=1, cache_dir=str(tmp_path / "cache")))
    try:
        host, port = httpd.server_address[:2]
        server = f"{host}:{port}"
        assert main(["submit", "vadd", "--server", server, "-n", "24",
                     "--unroll", "4", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["server"] == server
        result = report["results"][0]
        assert result["ok"] and not result["cache_hit"]
        assert result["result"]["results"]["vliw_speedup"] > 1.0
        # second submission is served from the first one's work
        assert main(["submit", "vadd", "--server", server, "-n", "24",
                     "--unroll", "4", "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)["results"][0]
        assert warm["cache_hit"]
        assert warm["result"] == result["result"]
    finally:
        core.shutdown()
        httpd.shutdown()
        httpd.server_close()


def test_submit_cli_rejects_bad_request():
    with pytest.raises(SystemExit):
        main(["submit", "vadd", "--server", "127.0.0.1:1", "--pairs", "3"])


def test_submit_cli_unavailable_is_clean_error(capsys):
    """A dead daemon yields exit 2 and one clean stderr line, never a
    raw ConnectionRefusedError traceback."""
    assert main(["submit", "vadd", "--server", "127.0.0.1:1",
                 "-n", "24", "--timeout", "1"]) == 2
    err = capsys.readouterr().err
    assert "cannot reach" in err
    assert "Traceback" not in err


def test_submit_cli_stats_unavailable_is_clean_error(capsys):
    assert main(["submit", "--stats", "--server", "127.0.0.1:1",
                 "--timeout", "1"]) == 2
    assert "cannot reach" in capsys.readouterr().err


def test_chaos_cli_smoke(tmp_path, capsys):
    """One pre-dispatch scenario through the CLI: the daemon is
    SIGKILLed before any work ran, restarted, and every payload must
    match the uninterrupted control run."""
    assert main(["chaos", "vadd", "--point", "pre-dispatch", "-n", "24",
                 "--workdir", str(tmp_path), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    outcome = report["outcomes"][0]
    assert outcome["ok"] and outcome["kill_exit"] == -9
    assert outcome["identical"] == outcome["jobs"] == 1
