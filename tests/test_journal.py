"""Tests for the write-ahead job journal: record round-trips, torn-tail
tolerance, schema refusal, compaction/rotation, the single-writer lock,
and concurrent append isolation."""

import json
import threading

import pytest

from repro.api import API_VERSION
from repro.serve import JobJournal, JournalError


def _request_json(i: int = 0) -> dict:
    return {"kind": "measure", "v": API_VERSION, "kernel": "vadd",
            "n": 24 + i, "unroll": 4}


def _submit_n(journal: JobJournal, count: int, start: int = 1) -> None:
    for i in range(count):
        journal.submitted(f"job-{start + i:06d}", f"ident-{start + i}",
                          f"key-{start + i}", _request_json(i))


class TestRoundTrip:
    def test_lifecycle_replays(self, tmp_path):
        path = str(tmp_path / "serve.journal")
        journal = JobJournal(path)
        journal.submitted("job-000001", "ident-a", "key-a",
                          _request_json())
        journal.dispatched("job-000001", 1)
        journal.finished("job-000001", {"job_id": "job-000001",
                                        "ok": True, "kind": "measure",
                                        "key": "key-a",
                                        "result": {"x": 1}}, ok=True)
        journal.submitted("job-000002", "ident-b", "key-b",
                          _request_json(1))
        journal.dispatched("job-000002", 2)
        journal.close()

        replay = JobJournal(path)
        assert len(replay.jobs) == 2
        done = replay.jobs["job-000001"]
        assert done.finished and done.ok and done.attempts == 1
        assert done.result["result"] == {"x": 1}
        pending = replay.pending()
        assert [j.job_id for j in pending] == ["job-000002"]
        assert pending[0].attempts == 2
        assert pending[0].request == _request_json(1)
        assert not replay.torn_tail
        replay.close()

    def test_failed_terminal_replays(self, tmp_path):
        path = str(tmp_path / "serve.journal")
        journal = JobJournal(path)
        journal.submitted("job-000001", "i", "k", _request_json())
        journal.finished("job-000001", {"job_id": "job-000001",
                                        "ok": False, "kind": "measure",
                                        "key": "k", "error": "boom"},
                         ok=False)
        journal.close()
        replay = JobJournal(path)
        job = replay.jobs["job-000001"]
        assert job.finished and not job.ok
        assert replay.pending() == []
        replay.close()

    def test_attempt_high_water_mark(self, tmp_path):
        path = str(tmp_path / "serve.journal")
        journal = JobJournal(path)
        journal.submitted("job-000001", "i", "k", _request_json())
        journal.dispatched("job-000001", 1)
        journal.dispatched("job-000001", 2)
        journal.close()
        replay = JobJournal(path)
        assert replay.jobs["job-000001"].attempts == 2
        replay.close()

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j"))
        journal.close()
        assert journal.closed
        with pytest.raises(JournalError):
            journal.submitted("job-000001", "i", "k", _request_json())


class TestCrashTolerance:
    def test_torn_tail_truncated(self, tmp_path):
        """A record torn mid-write by a crash is dropped; everything
        before it survives and new appends extend a clean file."""
        path = str(tmp_path / "serve.journal")
        journal = JobJournal(path)
        _submit_n(journal, 2)
        journal.crash()
        with open(path, "ab") as handle:
            handle.write(b'{"v": 1, "event": "submitted", "job_id": "jo')
        replay = JobJournal(path)
        assert replay.torn_tail
        assert sorted(replay.jobs) == ["job-000001", "job-000002"]
        replay.submitted("job-000003", "i3", "k3", _request_json(2))
        replay.close()
        clean = JobJournal(path)
        assert not clean.torn_tail
        assert sorted(clean.jobs) == ["job-000001", "job-000002",
                                      "job-000003"]
        clean.close()

    def test_midfile_corruption_is_an_error(self, tmp_path):
        """Corruption anywhere but the tail is not crash debris — it is
        a broken journal, and replaying around it would drop jobs."""
        path = str(tmp_path / "serve.journal")
        journal = JobJournal(path)
        _submit_n(journal, 1)
        journal.close()
        with open(path, "ab") as handle:
            handle.write(b"#### not json ####\n")
            record = {"v": API_VERSION, "event": "submitted",
                      "job_id": "job-000002", "ident": "i", "key": "k",
                      "request": _request_json(1), "ts": 0.0}
            handle.write((json.dumps(record) + "\n").encode())
        with pytest.raises(JournalError, match="corrupt journal record"):
            JobJournal(path)

    def test_crash_skips_cleanup(self, tmp_path):
        """crash() releases the handle with no compaction bookkeeping —
        the on-disk bytes are exactly what the appends left behind."""
        path = str(tmp_path / "serve.journal")
        journal = JobJournal(path)
        _submit_n(journal, 3)
        before = open(path, "rb").read()
        journal.crash()
        assert journal.closed
        assert open(path, "rb").read() == before


class TestSchemaValidation:
    def _write_record(self, path, record):
        with open(path, "ab") as handle:
            handle.write((json.dumps(record, sort_keys=True)
                          + "\n").encode())

    def test_future_schema_refused(self, tmp_path):
        path = str(tmp_path / "serve.journal")
        self._write_record(path, {"v": API_VERSION + 98,
                                  "event": "submitted",
                                  "job_id": "job-000001", "ident": "i",
                                  "key": "k",
                                  "request": _request_json(), "ts": 0.0})
        with pytest.raises(JournalError, match="unknown schema"):
            JobJournal(path)

    def test_missing_version_refused(self, tmp_path):
        path = str(tmp_path / "serve.journal")
        self._write_record(path, {"event": "submitted",
                                  "job_id": "job-000001", "ident": "i",
                                  "key": "k",
                                  "request": _request_json(), "ts": 0.0})
        with pytest.raises(JournalError, match="unknown schema"):
            JobJournal(path)

    def test_unknown_event_refused(self, tmp_path):
        path = str(tmp_path / "serve.journal")
        self._write_record(path, {"v": API_VERSION, "event": "teleported",
                                  "job_id": "job-000001", "ts": 0.0})
        with pytest.raises(JournalError, match="unknown event"):
            JobJournal(path)

    def test_duplicate_submitted_refused(self, tmp_path):
        path = str(tmp_path / "serve.journal")
        for _ in range(2):
            self._write_record(path, {"v": API_VERSION,
                                      "event": "submitted",
                                      "job_id": "job-000001",
                                      "ident": "i", "key": "k",
                                      "request": _request_json(),
                                      "ts": 0.0})
        with pytest.raises(JournalError, match="duplicate submitted"):
            JobJournal(path)

    def test_orphan_terminal_refused(self, tmp_path):
        path = str(tmp_path / "serve.journal")
        self._write_record(path, {"v": API_VERSION, "event": "done",
                                  "job_id": "job-000042",
                                  "result": {"ok": True}, "ts": 0.0})
        with pytest.raises(JournalError, match="unknown job"):
            JobJournal(path)


class TestCompaction:
    def test_compact_drops_oldest_finished(self, tmp_path):
        path = str(tmp_path / "serve.journal")
        journal = JobJournal(path, keep_done=2)
        for i in range(1, 5):
            job_id = f"job-{i:06d}"
            journal.submitted(job_id, f"i{i}", f"k{i}", _request_json(i))
            if i <= 3:                       # three finished, one pending
                journal.finished(job_id, {"job_id": job_id, "ok": True,
                                          "kind": "measure",
                                          "key": f"k{i}", "result": {}},
                                 ok=True)
        journal.compact()
        journal.close()
        replay = JobJournal(path, keep_done=2)
        # oldest finished (job 1) dropped; pending job always kept
        assert sorted(replay.jobs) == ["job-000002", "job-000003",
                                       "job-000004"]
        assert [j.job_id for j in replay.pending()] == ["job-000004"]
        replay.close()

    def test_rotation_bounds_file_size(self, tmp_path):
        """Appends past max_bytes trigger an in-place rewrite: a daemon
        finishing jobs forever keeps a bounded journal."""
        path = str(tmp_path / "serve.journal")
        journal = JobJournal(path, max_bytes=4096, keep_done=2)
        for i in range(1, 60):
            job_id = f"job-{i:06d}"
            journal.submitted(job_id, f"i{i}", f"k{i}", _request_json(i),
                              sync=False)
            journal.finished(job_id, {"job_id": job_id, "ok": True,
                                      "kind": "measure", "key": f"k{i}",
                                      "result": {"pad": "x" * 64}},
                             ok=True, sync=False)
        assert journal.compactions >= 1
        assert journal.stats()["bytes"] <= 4096 + 1024  # one record slop
        journal.compact()
        assert len(journal.jobs) == 2        # keep_done survivors only
        journal.close()
        replay = JobJournal(path)            # the rotated file replays
        assert "job-000059" in replay.jobs
        replay.close()

    @pytest.mark.parametrize("trigger", ["submitted", "dispatched",
                                         "done", "failed"])
    def test_rotation_keeps_the_triggering_record(self, tmp_path, trigger):
        """The append that crosses max_bytes survives the rotation it
        triggers, whatever its event type: compaction rewrites the file
        from the jobs map, which must already hold the record being
        written.  (A dropped 'submitted' loses an acknowledged-durable
        job and poisons the journal once its 'dispatched' lands; a
        dropped 'done' re-runs finished work on replay.)"""
        path = str(tmp_path / "serve.journal")
        journal = JobJournal(path, max_bytes=1 << 20)
        journal.submitted("job-000001", "i1", "k1", _request_json())
        if trigger != "submitted":
            journal.submitted("job-000002", "i2", "k2", _request_json(1))
        # arm the rotation: the very next append crosses the bound
        journal.max_bytes = journal.stats()["bytes"]
        if trigger == "submitted":
            journal.submitted("job-000002", "i2", "k2", _request_json(1))
        elif trigger == "dispatched":
            journal.dispatched("job-000002", 1)
        else:
            journal.finished("job-000002",
                             {"job_id": "job-000002",
                              "ok": trigger == "done", "kind": "measure",
                              "key": "k2", "result": {"x": 2}},
                             ok=trigger == "done")
        assert journal.compactions == 1
        journal.close()
        replay = JobJournal(path)            # must not raise
        job = replay.jobs["job-000002"]
        if trigger == "submitted":
            assert not job.finished
        elif trigger == "dispatched":
            assert job.attempts == 1 and not job.finished
        else:
            assert job.finished and job.ok == (trigger == "done")
            assert job.result["result"] == {"x": 2}
        replay.close()

    def test_rotation_mid_lifecycle_journal_stays_replayable(self,
                                                             tmp_path):
        """Every single append rotating (max_bytes=1): the worst case
        for record-dropping bugs — submitted/dispatched/done for the
        same job each trigger their own compaction, and the journal
        must still replay the full lifecycle."""
        path = str(tmp_path / "serve.journal")
        journal = JobJournal(path, max_bytes=1)
        journal.submitted("job-000001", "i1", "k1", _request_json())
        journal.dispatched("job-000001", 1)
        journal.finished("job-000001", {"job_id": "job-000001",
                                        "ok": True, "kind": "measure",
                                        "key": "k1", "result": {}},
                         ok=True)
        journal.submitted("job-000002", "i2", "k2", _request_json(1))
        assert journal.compactions >= 4
        journal.close()
        replay = JobJournal(path)
        assert replay.jobs["job-000001"].finished
        assert [j.job_id for j in replay.pending()] == ["job-000002"]
        replay.close()

    def test_compaction_preserves_submitted_ts(self, tmp_path):
        """Compaction re-stamps each kept 'submitted' record from the
        jobs map, which must carry the original submission time — not
        0.0, which _write_job would paper over with time.time()."""
        path = str(tmp_path / "serve.journal")
        journal = JobJournal(path)
        journal.submitted("job-000001", "i1", "k1", _request_json())
        original = journal.jobs["job-000001"].submitted_ts
        assert original > 0.0
        journal.compact()
        journal.close()
        replay = JobJournal(path)
        assert replay.jobs["job-000001"].submitted_ts == original
        replay.close()

    def test_compacted_file_is_flocked(self, tmp_path):
        """After rotation the *new* inode holds the single-writer lock —
        a second daemon still cannot open the journal."""
        path = str(tmp_path / "serve.journal")
        journal = JobJournal(path)
        _submit_n(journal, 1)
        journal.compact()
        with pytest.raises(JournalError, match="locked by another"):
            JobJournal(path)
        journal.close()


class TestIsolation:
    def test_single_writer_flock(self, tmp_path):
        path = str(tmp_path / "serve.journal")
        journal = JobJournal(path)
        with pytest.raises(JournalError, match="locked by another"):
            JobJournal(path)
        journal.close()
        second = JobJournal(path)            # released on close
        second.close()

    def test_concurrent_appends_stay_line_atomic(self, tmp_path):
        """Many threads appending through one journal: every record
        lands whole (the journal's internal lock serializes writes) and
        the file replays with nothing torn or interleaved."""
        path = str(tmp_path / "serve.journal")
        journal = JobJournal(path, fsync=False)
        threads, per_thread = 8, 25

        def worker(tid: int) -> None:
            for i in range(per_thread):
                seq = tid * per_thread + i + 1
                journal.submitted(f"job-{seq:06d}", f"i{seq}", f"k{seq}",
                                  _request_json(seq), sync=False)

        pool = [threading.Thread(target=worker, args=(tid,))
                for tid in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        journal.close()
        replay = JobJournal(path)
        assert len(replay.jobs) == threads * per_thread
        assert not replay.torn_tail
        assert replay.records_loaded == threads * per_thread
        replay.close()

    def test_concurrent_appends_during_rotation(self, tmp_path):
        """Submits racing size-triggered compactions: the jobs map is
        only ever mutated under the journal lock, so a rotation's
        iteration over jobs.values() can never see a concurrent insert
        ('dictionary changed size during iteration')."""
        path = str(tmp_path / "serve.journal")
        journal = JobJournal(path, fsync=False, max_bytes=512)
        threads, per_thread = 8, 25
        errors: list[BaseException] = []

        def worker(tid: int) -> None:
            try:
                for i in range(per_thread):
                    seq = tid * per_thread + i + 1
                    journal.submitted(f"job-{seq:06d}", f"i{seq}",
                                      f"k{seq}", _request_json(seq),
                                      sync=False)
            except BaseException as exc:
                errors.append(exc)

        pool = [threading.Thread(target=worker, args=(tid,))
                for tid in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert errors == []
        assert journal.compactions >= 1
        # every submit is pending, so rotation may drop none of them
        assert len(journal.jobs) == threads * per_thread
        journal.close()
        replay = JobJournal(path)
        assert len(replay.jobs) == threads * per_thread
        replay.close()
