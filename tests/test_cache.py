"""Tests for the content-addressed compile cache: keys, the two-tier
store, and the cached compile stage inside ``run_measurement``."""

import os
import pickle
from pathlib import Path

import pytest

from repro.cache import (CACHE_SCHEMA, CompileCache, compile_key,
                         module_fingerprint)
from repro.harness.measure import MeasureSpec, run_measurement
from repro.machine import TRACE_7_200, TRACE_28_200
from repro.obs import Tracer
from repro.trace import SchedulingOptions
from repro.workloads import get_kernel


def _key(module, **overrides):
    kw = dict(config=TRACE_28_200, options=SchedulingOptions(),
              strategy="trace", unroll=8, inline=48, use_profile=True)
    kw.update(overrides)
    return compile_key(module, kw.pop("config"), kw.pop("options"), **kw)


class TestCompileKey:
    def test_same_inputs_same_key(self):
        kernel = get_kernel("daxpy")
        assert _key(kernel.build(64)) == _key(kernel.build(64))

    def test_source_edit_changes_key(self):
        kernel = get_kernel("daxpy")
        base = _key(kernel.build(64))
        # a different problem size changes init data and layout -> the
        # module text -> the key
        assert _key(kernel.build(65)) != base
        assert _key(get_kernel("vadd").build(64)) != base

    def test_config_change_changes_key(self):
        module = get_kernel("daxpy").build(64)
        assert _key(module, config=TRACE_7_200) != _key(module)

    def test_options_change_changes_key(self):
        module = get_kernel("daxpy").build(64)
        assert _key(module, options=SchedulingOptions(speculation=False)) \
            != _key(module)

    def test_strategy_and_knob_changes_change_key(self):
        module = get_kernel("daxpy").build(64)
        base = _key(module)
        assert _key(module, strategy="pipeline") != base
        assert _key(module, unroll=4) != base
        assert _key(module, inline=0) != base
        assert _key(module, use_profile=False) != base

    def test_fingerprint_tracks_module_text(self):
        kernel = get_kernel("daxpy")
        assert module_fingerprint(kernel.build(64)) \
            == module_fingerprint(kernel.build(64))
        assert module_fingerprint(kernel.build(64)) \
            != module_fingerprint(kernel.build(65))

    def test_schema_version_present(self):
        assert isinstance(CACHE_SCHEMA, int)


class TestCompileCacheStore:
    def test_memory_hit_and_miss_counters(self):
        cache = CompileCache()
        tracer = Tracer()
        assert cache.get("k1", tracer.counters) is None
        cache.put("k1", {"x": 1})
        assert cache.get("k1", tracer.counters) == {"x": 1}
        assert tracer.counters.get("cache.miss") == 1
        assert tracer.counters.get("cache.hit") == 1

    def test_disk_tier_round_trip(self, tmp_path):
        first = CompileCache(directory=str(tmp_path))
        first.put("k", [1, 2, 3])
        second = CompileCache(directory=str(tmp_path))
        tracer = Tracer()
        assert second.get("k", tracer.counters) == [1, 2, 3]
        assert tracer.counters.get("cache.hit_disk") == 1
        # promoted into memory: the next get does not touch disk
        assert second.get("k", tracer.counters) == [1, 2, 3]
        assert tracer.counters.get("cache.hit_disk") == 1

    def test_lru_eviction_keeps_disk_copy(self, tmp_path):
        cache = CompileCache(max_entries=2, directory=str(tmp_path))
        for i in range(3):
            cache.put(f"k{i}", i)
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.memory_entries == 2
        assert cache.get("k0") == 0          # served from disk
        assert cache.stats().hits_disk == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = CompileCache(directory=str(tmp_path))
        cache.put("k", 42)
        path = Path(cache._path("k"))
        assert path.exists()
        path.write_bytes(b"not a pickle")
        fresh = CompileCache(directory=str(tmp_path))
        assert fresh.get("k") is None
        assert not path.exists()             # dropped, not retried forever

    def test_entries_shard_by_key_prefix(self, tmp_path):
        cache = CompileCache(directory=str(tmp_path))
        cache.put("abcd", 1)
        cache.put("abzz", 2)
        cache.put("cdef", 3)
        assert (tmp_path / "ab" / "abcd.pkl").exists()
        assert (tmp_path / "ab" / "abzz.pkl").exists()
        assert (tmp_path / "cd" / "cdef.pkl").exists()
        assert cache.stats().disk_entries == 3

    def test_legacy_flat_entry_still_readable(self, tmp_path):
        (tmp_path / "oldkey.pkl").write_bytes(pickle.dumps("legacy"))
        cache = CompileCache(directory=str(tmp_path))
        assert cache.get("oldkey") == "legacy"
        assert cache.stats().disk_entries == 1
        assert cache.clear() >= 1            # clear sweeps flat files too
        assert not (tmp_path / "oldkey.pkl").exists()

    def test_clear_empties_both_tiers(self, tmp_path):
        cache = CompileCache(directory=str(tmp_path))
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() >= 2
        assert cache.get("a") is None
        assert cache.stats().disk_entries == 0

    def test_prune_evicts_lru_by_mtime_first(self, tmp_path):
        """Quota eviction is least-recently-used first: the oldest
        mtimes go, the most recent survive, and the tier ends under
        quota."""
        cache = CompileCache(directory=str(tmp_path))
        blob = b"x" * (256 * 1024)
        for i, age in enumerate((100, 200, 300, 400)):
            key = f"k{i}aa"
            cache.put(key, blob)
            os.utime(cache._path(key), (age, age))
        # four ~256 KiB pickles; quota 0.6 MB keeps only the two newest
        removed, freed = cache.prune(max_mb=0.6)
        assert removed == 2 and freed > 0
        survivors = {p for p in (f"k{i}aa" for i in range(4))
                     if os.path.exists(cache._path(p))}
        assert survivors == {"k2aa", "k3aa"}  # oldest mtimes evicted
        assert cache.stats().disk_bytes <= 0.6 * 1024 * 1024
        assert cache.stats().disk_evictions == 2

    def test_disk_hit_refreshes_recency(self, tmp_path):
        """A disk read touches mtime, so hot entries survive pruning."""
        cache = CompileCache(max_entries=1, directory=str(tmp_path))
        blob = b"y" * (256 * 1024)
        for i in range(3):
            key = f"h{i}aa"
            cache.put(key, blob)
            os.utime(cache._path(key), (100 + i, 100 + i))
        fresh = CompileCache(max_entries=1, directory=str(tmp_path))
        assert fresh.get("h0aa") == blob     # disk hit: now most recent
        removed, _ = fresh.prune(max_mb=0.3)
        assert removed == 2
        assert os.path.exists(fresh._path("h0aa"))

    def test_quota_enforced_on_put(self, tmp_path):
        cache = CompileCache(directory=str(tmp_path), max_disk_mb=0.3)
        for i in range(4):
            cache.put(f"q{i}aa", b"z" * (256 * 1024))
        assert cache.stats().disk_bytes <= 0.3 * 1024 * 1024

    def test_prune_tolerates_vanishing_entries(self, tmp_path,
                                               monkeypatch):
        """A concurrent clear racing the prune scan is not an error."""
        cache = CompileCache(directory=str(tmp_path))
        for i in range(3):
            key = f"v{i}aa"
            cache.put(key, b"w" * (64 * 1024))
            os.utime(cache._path(key), (100 + i, 100 + i))
        real_unlink = os.unlink
        raced = []

        def racing_unlink(path, *args, **kwargs):
            if not raced and str(path).endswith(".pkl"):
                raced.append(path)
                real_unlink(path)            # someone else got it first
                raise FileNotFoundError(path)
            return real_unlink(path, *args, **kwargs)

        monkeypatch.setattr("repro.cache.store.os.unlink", racing_unlink)
        removed, _ = cache.prune(max_mb=0.0)
        assert raced                          # the race actually fired
        assert cache.stats().disk_entries == 0

    def test_clear_tolerates_vanishing_entries(self, tmp_path,
                                               monkeypatch):
        cache = CompileCache(directory=str(tmp_path))
        cache.put("c0aa", 1)
        cache.put("c1aa", 2)
        real_unlink = os.unlink
        raced = []

        def racing_unlink(path, *args, **kwargs):
            if not raced and str(path).endswith(".pkl"):
                raced.append(path)
                real_unlink(path)
                raise FileNotFoundError(path)
            return real_unlink(path, *args, **kwargs)

        monkeypatch.setattr("repro.cache.store.os.unlink", racing_unlink)
        assert cache.clear() >= 2            # raced file still counted
        assert cache.stats().disk_entries == 0

    def test_eviction_scans_take_the_lock_writes_do_not(self, tmp_path):
        cache = CompileCache(directory=str(tmp_path))
        # entry writes rely on atomic replace alone — no lock file
        cache.put("lkaa", 1)
        assert not (tmp_path / ".lock").exists()
        # the eviction scan is what serializes cross-process
        cache.prune(max_mb=1000)
        assert (tmp_path / ".lock").exists()

    def test_put_prunes_on_write_cadence_not_every_put(self, tmp_path,
                                                       monkeypatch):
        """With a roomy quota, puts accumulate toward a threshold
        instead of rescanning the store each time: only the initial
        footprint-learning prune runs."""
        cache = CompileCache(directory=str(tmp_path), max_disk_mb=10.0)
        prunes = []
        real_prune = CompileCache.prune

        def counting_prune(self, max_mb=None):
            prunes.append(max_mb)
            return real_prune(self, max_mb)

        monkeypatch.setattr(CompileCache, "prune", counting_prune)
        for i in range(16):
            cache.put(f"t{i:02d}aa", b"y" * 1024)   # ~16 KiB vs 10 MB
        assert len(prunes) == 1

    def test_concurrent_writers_one_directory(self, tmp_path):
        """Many threads over distinct caches sharing one directory:
        every entry lands whole and readable."""
        import threading

        def writer(worker: int) -> None:
            mine = CompileCache(directory=str(tmp_path))
            for i in range(8):
                mine.put(f"w{worker}k{i}", {"worker": worker, "i": i})

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        reader = CompileCache(directory=str(tmp_path))
        assert reader.stats().disk_entries == 32
        for w in range(4):
            for i in range(8):
                assert reader.get(f"w{w}k{i}") == {"worker": w, "i": i}


class TestCachedMeasurement:
    def _run(self, cache, **spec_kw):
        tracer = Tracer()
        spec = MeasureSpec(kernel="daxpy", n=48, **spec_kw)
        result = run_measurement(spec, tracer=tracer, cache=cache)
        return result, tracer.counters.as_dict()

    @staticmethod
    def _non_cache(counters):
        return {k: v for k, v in counters.items()
                if not k.startswith("cache.")}

    def test_warm_measurement_identical_to_cold(self, tmp_path):
        cache = CompileCache(directory=str(tmp_path))
        cold, cold_counters = self._run(cache)
        warm, warm_counters = self._run(cache)
        assert warm.row() == cold.row()
        # counter replay: a hit reports the same compiler counters a
        # cold compile would, so aggregates don't depend on cache state
        assert self._non_cache(warm_counters) \
            == self._non_cache(cold_counters)
        assert cold_counters.get("cache.miss") == 1
        assert warm_counters.get("cache.hit") == 1

    def test_config_change_misses(self, tmp_path):
        cache = CompileCache(directory=str(tmp_path))
        self._run(cache)
        _, counters = self._run(cache, config=TRACE_7_200)
        assert counters.get("cache.miss") == 1

    def test_options_change_misses(self, tmp_path):
        cache = CompileCache(directory=str(tmp_path))
        self._run(cache)
        _, counters = self._run(
            cache, options=SchedulingOptions(join_motion=False))
        assert counters.get("cache.miss") == 1

    def test_strategy_change_misses(self, tmp_path):
        cache = CompileCache(directory=str(tmp_path))
        self._run(cache)
        _, counters = self._run(cache, strategy="pipeline", unroll=0)
        assert counters.get("cache.miss") == 1

    def test_source_change_misses(self, tmp_path):
        cache = CompileCache(directory=str(tmp_path))
        self._run(cache)
        tracer = Tracer()
        run_measurement(MeasureSpec(kernel="daxpy", n=49), tracer=tracer,
                        cache=cache)
        assert tracer.counters.get("cache.miss") == 1

    def test_artifact_survives_process_restart(self, tmp_path):
        """A fresh cache instance over the same directory hits on disk
        (the cross-process story the CLI and CI rely on)."""
        cold = CompileCache(directory=str(tmp_path))
        first, _ = self._run(cold)
        fresh = CompileCache(directory=str(tmp_path))
        second, counters = self._run(fresh)
        assert second.row() == first.row()
        assert counters.get("cache.hit_disk") == 1
