"""Tests for the content-addressed compile cache: keys, the two-tier
store, and the cached compile stage inside ``run_measurement``."""

import os
import pickle

import pytest

from repro.cache import (CACHE_SCHEMA, CompileCache, compile_key,
                         module_fingerprint)
from repro.harness.measure import MeasureSpec, run_measurement
from repro.machine import TRACE_7_200, TRACE_28_200
from repro.obs import Tracer
from repro.trace import SchedulingOptions
from repro.workloads import get_kernel


def _key(module, **overrides):
    kw = dict(config=TRACE_28_200, options=SchedulingOptions(),
              strategy="trace", unroll=8, inline=48, use_profile=True)
    kw.update(overrides)
    return compile_key(module, kw.pop("config"), kw.pop("options"), **kw)


class TestCompileKey:
    def test_same_inputs_same_key(self):
        kernel = get_kernel("daxpy")
        assert _key(kernel.build(64)) == _key(kernel.build(64))

    def test_source_edit_changes_key(self):
        kernel = get_kernel("daxpy")
        base = _key(kernel.build(64))
        # a different problem size changes init data and layout -> the
        # module text -> the key
        assert _key(kernel.build(65)) != base
        assert _key(get_kernel("vadd").build(64)) != base

    def test_config_change_changes_key(self):
        module = get_kernel("daxpy").build(64)
        assert _key(module, config=TRACE_7_200) != _key(module)

    def test_options_change_changes_key(self):
        module = get_kernel("daxpy").build(64)
        assert _key(module, options=SchedulingOptions(speculation=False)) \
            != _key(module)

    def test_strategy_and_knob_changes_change_key(self):
        module = get_kernel("daxpy").build(64)
        base = _key(module)
        assert _key(module, strategy="pipeline") != base
        assert _key(module, unroll=4) != base
        assert _key(module, inline=0) != base
        assert _key(module, use_profile=False) != base

    def test_fingerprint_tracks_module_text(self):
        kernel = get_kernel("daxpy")
        assert module_fingerprint(kernel.build(64)) \
            == module_fingerprint(kernel.build(64))
        assert module_fingerprint(kernel.build(64)) \
            != module_fingerprint(kernel.build(65))

    def test_schema_version_present(self):
        assert isinstance(CACHE_SCHEMA, int)


class TestCompileCacheStore:
    def test_memory_hit_and_miss_counters(self):
        cache = CompileCache()
        tracer = Tracer()
        assert cache.get("k1", tracer.counters) is None
        cache.put("k1", {"x": 1})
        assert cache.get("k1", tracer.counters) == {"x": 1}
        assert tracer.counters.get("cache.miss") == 1
        assert tracer.counters.get("cache.hit") == 1

    def test_disk_tier_round_trip(self, tmp_path):
        first = CompileCache(directory=str(tmp_path))
        first.put("k", [1, 2, 3])
        second = CompileCache(directory=str(tmp_path))
        tracer = Tracer()
        assert second.get("k", tracer.counters) == [1, 2, 3]
        assert tracer.counters.get("cache.hit_disk") == 1
        # promoted into memory: the next get does not touch disk
        assert second.get("k", tracer.counters) == [1, 2, 3]
        assert tracer.counters.get("cache.hit_disk") == 1

    def test_lru_eviction_keeps_disk_copy(self, tmp_path):
        cache = CompileCache(max_entries=2, directory=str(tmp_path))
        for i in range(3):
            cache.put(f"k{i}", i)
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.memory_entries == 2
        assert cache.get("k0") == 0          # served from disk
        assert cache.stats().hits_disk == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = CompileCache(directory=str(tmp_path))
        cache.put("k", 42)
        path = tmp_path / "k.pkl"
        path.write_bytes(b"not a pickle")
        fresh = CompileCache(directory=str(tmp_path))
        assert fresh.get("k") is None
        assert not path.exists()             # dropped, not retried forever

    def test_clear_empties_both_tiers(self, tmp_path):
        cache = CompileCache(directory=str(tmp_path))
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() >= 2
        assert cache.get("a") is None
        assert cache.stats().disk_entries == 0


class TestCachedMeasurement:
    def _run(self, cache, **spec_kw):
        tracer = Tracer()
        spec = MeasureSpec(kernel="daxpy", n=48, **spec_kw)
        result = run_measurement(spec, tracer=tracer, cache=cache)
        return result, tracer.counters.as_dict()

    @staticmethod
    def _non_cache(counters):
        return {k: v for k, v in counters.items()
                if not k.startswith("cache.")}

    def test_warm_measurement_identical_to_cold(self, tmp_path):
        cache = CompileCache(directory=str(tmp_path))
        cold, cold_counters = self._run(cache)
        warm, warm_counters = self._run(cache)
        assert warm.row() == cold.row()
        # counter replay: a hit reports the same compiler counters a
        # cold compile would, so aggregates don't depend on cache state
        assert self._non_cache(warm_counters) \
            == self._non_cache(cold_counters)
        assert cold_counters.get("cache.miss") == 1
        assert warm_counters.get("cache.hit") == 1

    def test_config_change_misses(self, tmp_path):
        cache = CompileCache(directory=str(tmp_path))
        self._run(cache)
        _, counters = self._run(cache, config=TRACE_7_200)
        assert counters.get("cache.miss") == 1

    def test_options_change_misses(self, tmp_path):
        cache = CompileCache(directory=str(tmp_path))
        self._run(cache)
        _, counters = self._run(
            cache, options=SchedulingOptions(join_motion=False))
        assert counters.get("cache.miss") == 1

    def test_strategy_change_misses(self, tmp_path):
        cache = CompileCache(directory=str(tmp_path))
        self._run(cache)
        _, counters = self._run(cache, strategy="pipeline", unroll=0)
        assert counters.get("cache.miss") == 1

    def test_source_change_misses(self, tmp_path):
        cache = CompileCache(directory=str(tmp_path))
        self._run(cache)
        tracer = Tracer()
        run_measurement(MeasureSpec(kernel="daxpy", n=49), tracer=tracer,
                        cache=cache)
        assert tracer.counters.get("cache.miss") == 1

    def test_artifact_survives_process_restart(self, tmp_path):
        """A fresh cache instance over the same directory hits on disk
        (the cross-process story the CLI and CI rely on)."""
        cold = CompileCache(directory=str(tmp_path))
        first, _ = self._run(cold)
        fresh = CompileCache(directory=str(tmp_path))
        second, counters = self._run(fresh)
        assert second.row() == first.row()
        assert counters.get("cache.hit_disk") == 1
