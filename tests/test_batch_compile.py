"""Differential tests for the compiled execution tier and the batched
lockstep executor.

The interpretive loop (``predecode=False``) stays the reference; these
tests pin the closure-compiled tier to it bit for bit — values, final
memory, and every timing stat — across kernels, strategies, generated
programs, device models, fault injection, and checkpoint/resume
crossing every pair of execution tiers.  The batch executor is pinned
to N serial runs the same way, including telemetry totals.
"""

import pytest

from repro.faults import FaultInjector, InjectionPlan
from repro.harness.measure import prepare_modules, train_profile
from repro.harness.runner import default_chunk
from repro.ir import MemoryImage
from repro.machine import TRACE_28_200
from repro.obs import Tracer
from repro.sim import (BatchLane, BatchVliwSimulator, ICacheModel,
                       TlbModel, VliwSimulator)
from repro.sim.compile import compiled_exec
from repro.sim.decode import predecode_program
from repro.sim.vliw import SIM_PATHS
from repro.trace import TraceCompiler
from repro.workloads import generate_program, get_kernel

KERNELS = ("daxpy", "fir4", "ll7_state", "state_machine", "call_heavy",
           "binary_search")


def _compiled(name, n=48, strategy="trace"):
    kernel = get_kernel(name)
    _, module = prepare_modules(kernel, n)
    profile = train_profile(module, kernel.func, kernel.make_args(n))
    program = TraceCompiler(module, profile=profile,
                            strategy=strategy).compile_module()
    return kernel, module, program


def _run(program, module, func, args, **sim_kw):
    memory = MemoryImage(module)
    sim = VliwSimulator(program, memory, **sim_kw)
    result = sim.run(func, args)
    return (result.value, bytes(memory.data), vars(result.stats))


class TestCompiledPathEquivalence:
    @pytest.mark.parametrize("name", KERNELS)
    def test_kernels_bit_identical(self, name):
        kernel, module, program = _compiled(name)
        args = kernel.make_args(48)
        assert _run(program, module, kernel.func, args, path="compiled") \
            == _run(program, module, kernel.func, args, predecode=False)

    @pytest.mark.parametrize("name", ("daxpy", "ll7_state"))
    def test_pipeline_strategy_bit_identical(self, name):
        kernel, module, program = _compiled(name, strategy="pipeline")
        args = kernel.make_args(48)
        assert _run(program, module, kernel.func, args, path="compiled") \
            == _run(program, module, kernel.func, args, predecode=False)

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_programs_bit_identical(self, seed):
        module = generate_program(seed)
        program = TraceCompiler(module).compile_module()
        assert _run(program, module, "main", (7, -3), path="compiled") \
            == _run(program, module, "main", (7, -3), predecode=False)

    def test_device_models_bit_identical(self):
        kernel, module, program = _compiled("daxpy")
        args = kernel.make_args(48)
        runs = {}
        for kw in ({"path": "compiled"}, {"predecode": False}):
            runs[str(kw)] = _run(
                program, module, kernel.func, args,
                icache=ICacheModel(TRACE_28_200, lines=2),
                tlb=TlbModel(TRACE_28_200, entries=2), **kw)
        assert runs["{'path': 'compiled'}"] \
            == runs["{'predecode': False}"]

    def test_fault_injection_bit_identical(self):
        module = generate_program(4)
        program = TraceCompiler(module).compile_module()
        clean = _run(program, module, "main", (7, -3), path="compiled")
        horizon = clean[2]["beats"]
        runs = {}
        for kw in ({"path": "compiled"}, {"predecode": False}):
            plan = InjectionPlan.random(4, horizon_beats=horizon,
                                        total_banks=64)
            runs[str(kw)] = _run(program, module, "main", (7, -3),
                                 injector=FaultInjector(plan), **kw)
        assert runs["{'path': 'compiled'}"] \
            == runs["{'predecode': False}"]

    @pytest.mark.parametrize("first", SIM_PATHS)
    @pytest.mark.parametrize("second", SIM_PATHS)
    def test_checkpoint_crosses_paths(self, first, second):
        """A checkpoint taken on any tier resumes on any other: the
        snapshot is pure architectural state, so neither decode strategy
        nor register-file layout can leak into it."""
        module = generate_program(2)
        program = TraceCompiler(module).compile_module()
        baseline = _run(program, module, "main", (7, -3), path="interp")
        half = baseline[2]["beats"] // 2

        memory = MemoryImage(module)
        injector = FaultInjector(
            InjectionPlan.interrupt_at(half, checkpoint=True))
        start = VliwSimulator(program, memory, injector=injector,
                              path=first).run("main", (7, -3))
        assert start.interrupted
        resume_memory = MemoryImage(module)
        resumed = VliwSimulator(program, resume_memory,
                                path=second).resume(start.checkpoint)
        assert not resumed.interrupted
        assert resumed.value == baseline[0]
        assert bytes(resume_memory.data) == baseline[1]
        assert resumed.stats.beats == baseline[2]["beats"]

    def test_event_tracer_steps_down_to_fast(self):
        """Per-beat event emission needs the instrumented executors; a
        compiled-tier request with an event-collecting tracer degrades
        to the fast tier rather than silently dropping events."""
        kernel, module, program = _compiled("daxpy")
        sim = VliwSimulator(program, MemoryImage(module),
                            tracer=Tracer(events=True), path="compiled")
        assert sim.path == "fast"


class TestBatchExecutor:
    def test_batch_matches_serial_runs(self):
        """A 6-lane batch is bit-identical, lane for lane, to 6 serial
        compiled runs over the same memories and arguments."""
        kernel, module, program = _compiled("binary_search")
        args = kernel.make_args(48)
        serial = [_run(program, module, kernel.func, args,
                       path="compiled") for _ in range(6)]
        lanes = [BatchLane(MemoryImage(module), args) for _ in range(6)]
        results = BatchVliwSimulator(program).run(kernel.func, lanes)
        for lane, result, ref in zip(lanes, results, serial):
            assert result.value == ref[0]
            assert bytes(lane.memory.data) == ref[1]
            assert vars(result.stats) == ref[2]

    def test_lanes_diverge_and_exit_early(self):
        """Lanes with different arguments take different control paths
        and finish in different beat counts; each still matches its own
        serial run exactly."""
        module = generate_program(3)
        program = TraceCompiler(module).compile_module()
        arg_sets = [(7, -3), (1, 1), (-9, 5), (0, 100)]
        lanes = [BatchLane(MemoryImage(module), args)
                 for args in arg_sets]
        results = BatchVliwSimulator(program).run("main", lanes)
        for lane, result, args in zip(lanes, results, arg_sets):
            assert (result.value, bytes(lane.memory.data),
                    vars(result.stats)) \
                == _run(program, module, "main", args, path="compiled")
        assert len({r.stats.beats for r in results}) > 1

    def test_per_lane_injector_and_checkpoint_resume(self):
        """One lane checkpoints mid-run while its neighbours finish
        clean, on a non-default tier; the checkpoint resumes to the
        clean lanes' exact result."""
        module = generate_program(2)
        program = TraceCompiler(module).compile_module()
        clean = _run(program, module, "main", (7, -3), path="interp")
        half = clean[2]["beats"] // 2

        injector = FaultInjector(
            InjectionPlan.interrupt_at(half, checkpoint=True))
        lanes = [BatchLane(MemoryImage(module), (7, -3)),
                 BatchLane(MemoryImage(module), (7, -3), injector),
                 BatchLane(MemoryImage(module), (7, -3))]
        results = BatchVliwSimulator(program, path="fast").run(
            "main", lanes)
        assert not results[0].interrupted
        assert results[1].interrupted
        assert not results[2].interrupted
        assert results[0].value == clean[0]

        resumed = VliwSimulator(program, lanes[1].memory,
                                path="compiled").resume(
                                    results[1].checkpoint)
        assert not resumed.interrupted
        assert resumed.value == clean[0]
        assert bytes(lanes[1].memory.data) == clean[1]
        assert resumed.stats.beats == clean[2]["beats"]

    def test_telemetry_matches_serial_runs(self):
        """Batched counter totals equal the N-serial-run totals exactly,
        modulo the batch's own ``sim.batch.*`` markers."""
        kernel, module, program = _compiled("fir4")
        args = kernel.make_args(48)
        serial = Tracer()
        for _ in range(4):
            VliwSimulator(program, MemoryImage(module), tracer=serial,
                          path="compiled").run(kernel.func, args)

        batched = Tracer()
        lanes = [BatchLane(MemoryImage(module), args) for _ in range(4)]
        BatchVliwSimulator(program, tracer=batched).run(kernel.func,
                                                        lanes)
        got = batched.counters.as_dict()
        assert got.pop("sim.batch.calls") == 1
        assert got.pop("sim.batch.lanes") == 4
        assert got == serial.counters.as_dict()
        assert got["sim.path.compiled"] == 4


class TestPathSelection:
    def test_env_var_selects_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_PATH", "interp")
        kernel, module, program = _compiled("daxpy")
        trc = Tracer()
        sim = VliwSimulator(program, MemoryImage(module), tracer=trc)
        assert sim.path == "interp"
        sim.run(kernel.func, kernel.make_args(48))
        assert trc.counters.get("sim.path.interp") == 1

    def test_env_var_rejects_unknown_path(self, monkeypatch):
        from repro.errors import SimError
        monkeypatch.setenv("REPRO_SIM_PATH", "turbo")
        kernel, module, program = _compiled("daxpy")
        with pytest.raises(SimError):
            VliwSimulator(program, MemoryImage(module))

    def test_explicit_path_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_PATH", "interp")
        kernel, module, program = _compiled("daxpy")
        sim = VliwSimulator(program, MemoryImage(module),
                            path="compiled")
        assert sim.path == "compiled"

    def test_predecode_false_pins_interp(self, monkeypatch):
        """``predecode=False`` is the differential reference; the env
        escape hatch must never silently re-route it."""
        monkeypatch.setenv("REPRO_SIM_PATH", "compiled")
        kernel, module, program = _compiled("daxpy")
        sim = VliwSimulator(program, MemoryImage(module),
                            predecode=False)
        assert sim.path == "interp"

    def test_batch_default_is_compiled(self, monkeypatch):
        kernel, module, program = _compiled("daxpy")
        assert BatchVliwSimulator(program).path == "compiled"
        monkeypatch.setenv("REPRO_SIM_PATH", "fast")
        assert BatchVliwSimulator(program).path == "fast"


class TestArtifactMemoization:
    def test_predecode_memoized_per_program_and_layout(self):
        kernel, module, program = _compiled("daxpy")
        a = predecode_program(program, MemoryImage(module))
        b = predecode_program(program, MemoryImage(module))
        assert a is b
        assert predecode_program(program, MemoryImage(module),
                                 memoize=False) is not a

    def test_compiled_exec_memoized_per_program_and_layout(self):
        kernel, module, program = _compiled("daxpy")
        a = compiled_exec(program, MemoryImage(module))
        b = compiled_exec(program, MemoryImage(module))
        assert a is b

    def test_memo_keyed_by_program_identity(self):
        _, module_a, program_a = _compiled("daxpy")
        _, module_b, program_b = _compiled("vadd")
        a = predecode_program(program_a, MemoryImage(module_a))
        b = predecode_program(program_b, MemoryImage(module_b))
        assert a is not b


class TestRunnerChunking:
    def test_default_chunk_math(self):
        assert default_chunk(32, 4) == 2
        assert default_chunk(3, 8) == 1
        assert default_chunk(100, 2) == 12

    def test_chunked_parallel_sweep_matches_serial(self):
        """The chunked multi-process runner produces the same sweep
        rows and the same merged counters as the in-process path."""
        from repro.harness.measure import MeasureSpec
        from repro.harness.runner import run_sweep

        def specs():
            return [MeasureSpec(kernel=name, n=16, telemetry=True)
                    for name in ("daxpy", "vadd")]

        serial_trc, parallel_trc = Tracer(), Tracer()
        serial = run_sweep(specs(), jobs=1, tracer=serial_trc,
                           use_cache=False, lanes=2)
        parallel = run_sweep(specs(), jobs=2, tracer=parallel_trc,
                             use_cache=False, lanes=2, chunk=1)
        for a, b in zip(serial, parallel):
            assert a.row() == b.row()
            assert vars(a.vliw) == vars(b.vliw)
        assert serial_trc.counters.as_dict() \
            == parallel_trc.counters.as_dict()
