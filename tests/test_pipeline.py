"""Tests for the software-pipelining subsystem (modulo scheduler)."""

from __future__ import annotations

import math

import pytest

from repro.harness.measure import MeasureSpec, prepare_modules, run_measurement
from repro.ir import run_module
from repro.machine import MachineConfig, TRACE_28_200
from repro.pipeline import (MAX_STAGES, ModuloScheduler, build_loop_graph,
                            emit_pipeline, find_pipeline_loops,
                            loop_shape_tag, res_mii)
from repro.sim import run_compiled
from repro.trace import SchedulingOptions, TraceCompiler
from repro.trace.compiler import Disambiguator
from repro.workloads import get_kernel


def _vliw_module(name: str, n: int, unroll: int = 0):
    kernel = get_kernel(name)
    _, module = prepare_modules(kernel, n, unroll=unroll, inline=48)
    return kernel, module


def _values_equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


def _outputs(kernel, module, memory):
    return {name: memory.read_array(name, module.data[name].size // elem,
                                    elem)
            for name, elem in kernel.outputs}


def _run_both(name: str, n: int, strategy: str, unroll: int = 0):
    """(interpreter result, compiled result, compiler) for one kernel."""
    kernel, module = _vliw_module(name, n, unroll)
    args = kernel.make_args(n)
    ref = run_module(kernel.build(n), kernel.func, args)
    compiler = TraceCompiler(module, TRACE_28_200, strategy=strategy)
    program = compiler.compile_module()
    got = run_compiled(program, module, kernel.func, args)
    if kernel.returns_value:
        assert _values_equal(got.value, ref.value), \
            f"{name} n={n} {strategy}: {got.value!r} != {ref.value!r}"
    ref_out = _outputs(kernel, kernel.build(n), ref.memory)
    got_out = _outputs(kernel, module, got.memory)
    assert set(ref_out) == set(got_out)
    for key in ref_out:
        assert all(_values_equal(x, y)
                   for x, y in zip(ref_out[key], got_out[key])), \
            f"{name} n={n} {strategy}: memory {key} diverged"
    return ref, got, compiler


class TestShape:
    def test_daxpy_is_pipelinable(self):
        _, module = _vliw_module("daxpy", 32)
        func = module.function("main")
        loops = find_pipeline_loops(func)
        assert any(pl is not None for _, pl, _ in loops)
        assert loop_shape_tag(func) == "pipelinable"

    def test_shape_tags(self):
        for name, want in (("daxpy", "pipelinable"),
                           ("state_machine", "loops")):
            _, module = _vliw_module(name, 16)
            assert loop_shape_tag(module.function("main")) == want

    def test_miss_reasons_are_strings(self):
        _, module = _vliw_module("binary_search", 16)
        for _, pl, why in find_pipeline_loops(module.function("main")):
            if pl is None:
                assert isinstance(why, str) and why


class TestScheduler:
    def _schedule(self, name: str, n: int = 32):
        _, module = _vliw_module(name, n)
        func = module.function("main")
        matches = [(loop, pl) for loop, pl, _ in find_pipeline_loops(func)
                   if pl is not None]
        assert matches
        loop, pl = matches[0]
        disambig = Disambiguator(module)
        graph = build_loop_graph(pl, TRACE_28_200, disambig)
        sched = ModuloScheduler(graph, TRACE_28_200, disambig,
                                SchedulingOptions()).run()
        return graph, sched

    def test_ii_at_least_mii(self):
        for name in ("daxpy", "dot", "ll5_tridiag"):
            _, sched = self._schedule(name)
            assert sched.ii >= sched.mii >= 2
            assert sched.mii == max(2, sched.res_mii, sched.rec_mii)
            assert 1 <= sched.stages <= MAX_STAGES

    def test_recurrence_bounds_ii(self):
        # ll5 carries x[i-1]: FADD/FMUL chain => rec MII above the
        # resource bound
        _, sched = self._schedule("ll5_tridiag")
        assert sched.rec_mii > sched.res_mii

    def test_placements_respect_dependences(self):
        graph, sched = self._schedule("daxpy")
        period = 2 * sched.ii
        for e in graph.edges:
            if e.dst == graph.branch:
                continue
            bu = sched.placements[e.src][3]
            bv = sched.placements[e.dst][3]
            assert bu + e.latency <= bv + period * e.dist, e

    def test_res_mii_positive(self):
        _, module = _vliw_module("daxpy", 32)
        func = module.function("main")
        pl = next(pl for _, pl, _ in find_pipeline_loops(func)
                  if pl is not None)
        assert res_mii(pl.rot_ops, TRACE_28_200) >= 1


KERNELS = ("daxpy", "vadd", "dot", "fir4", "stencil3", "ll5_tridiag",
           "horner", "int_sum")


class TestEndToEnd:
    @pytest.mark.parametrize("name", KERNELS)
    def test_pipeline_matches_interpreter(self, name):
        _, _, compiler = _run_both(name, 48, "pipeline")
        stats = compiler.stats[get_kernel(name).func]
        assert stats.pipelined_loops, stats.pipeline_fallbacks
        for loop in stats.pipelined_loops:
            assert loop.ii >= loop.mii

    @pytest.mark.parametrize("n", [0, 1, 2, 3, 5, 6, 7, 11])
    def test_trip_count_boundaries(self, n):
        # daxpy pipelines at S=6 stages: n below S exercises the guard's
        # bail to the rolled loop, n just above exercises a short drain
        _run_both("daxpy", n, "pipeline")

    @pytest.mark.parametrize("name", ("daxpy", "pointer_chase"))
    def test_auto_matches_interpreter(self, name):
        _run_both(name, 48, "auto")

    def test_auto_declines_serial_loop(self):
        # pointer_chase is recurrence-bound: II never beats the trace
        # scheduler's steady state, so auto keeps trace scheduling
        _, _, compiler = _run_both("pointer_chase", 48, "auto")
        stats = compiler.stats["main"]
        assert not stats.pipelined_loops
        assert any("auto kept trace" in why
                   for why in stats.pipeline_fallbacks)

    def test_pipeline_with_unrolled_module(self):
        # the unroller's probe-guard loop matches too, so BOTH the wide
        # loop and the remainder loop pipeline — unroll composes with
        # modulo scheduling (8 source iterations per II in the wide loop)
        _, _, compiler = _run_both("daxpy", 48, "pipeline", unroll=8)
        stats = compiler.stats["main"]
        headers = {loop.header for loop in stats.pipelined_loops}
        assert "head" in headers
        assert any(h.startswith("head.u8h") for h in headers), stats

    @pytest.mark.parametrize("n", [0, 1, 7, 8, 9, 15, 17, 48])
    def test_unrolled_pipeline_trip_boundaries(self, n):
        # probe-guard composition: every alignment of trip count vs
        # unroll factor and stage count must drain exactly
        _run_both("daxpy", n, "pipeline", unroll=4)

    def test_steady_state_beats_trace_at_scale(self):
        kernel = get_kernel("dot")
        args = kernel.make_args(256)
        results = {}
        for strategy, unroll in (("trace", 8), ("pipeline", 0)):
            _, module = _vliw_module("dot", 256, unroll)
            program = TraceCompiler(module, TRACE_28_200,
                                    strategy=strategy).compile_module()
            results[strategy] = run_compiled(program, module, kernel.func,
                                             args).stats.beats
        assert results["pipeline"] < results["trace"]


class TestCompilerIntegration:
    def test_bad_strategy_rejected(self):
        _, module = _vliw_module("daxpy", 16)
        with pytest.raises(ValueError):
            TraceCompiler(module, TRACE_28_200, strategy="modulo")

    def test_trace_strategy_never_pipelines(self):
        _, _, compiler = _run_both("daxpy", 48, "trace")
        assert not compiler.stats["main"].pipelined_loops

    def test_stats_record_decision_and_copies(self):
        _, _, compiler = _run_both("daxpy", 48, "pipeline")
        loop = compiler.stats["main"].pipelined_loops[0]
        assert loop.decision == "pipeline"
        assert loop.kernel_copies >= 1
        assert loop.n_instructions > 0
        row = loop.row()
        assert row["ii"] == loop.ii

    def test_counters_folded(self):
        from repro.obs import Tracer
        tracer = Tracer()
        kernel, module = _vliw_module("daxpy", 48)
        compiler = TraceCompiler(module, TRACE_28_200, tracer=tracer,
                                 strategy="pipeline")
        compiler.compile_module()
        assert tracer.counters.get("pipeline.loops") >= 1
        assert tracer.counters.get("pipeline.achieved_ii") >= 2


class TestMeasureIntegration:
    def test_run_measurement_pipeline(self):
        spec = MeasureSpec(kernel="daxpy", n=64, unroll=0,
                           strategy="pipeline")
        result = run_measurement(spec)
        assert result.compile_stats.pipelined_loops
        assert "pipelined_ii" in result.row()

    def test_narrow_machine_pipeline(self):
        spec = MeasureSpec(kernel="vadd", n=48, unroll=0,
                           strategy="pipeline",
                           config=MachineConfig.from_pairs(1))
        run_measurement(spec)


class TestFuzzScenario:
    def test_pipeline_vs_trace_seeds(self):
        from repro.harness.fuzz import run_fuzz
        report = run_fuzz(seed=0, count=4, check_faults=True,
                          strategy="pipeline")
        assert report.ok, report.summary()
        assert report.row()["loops_pipelined"] >= 0
