"""Tests for the heuristic-parameter layer.

Four layers of evidence that the refactor changed nothing and that the
new surface is sound:

* :class:`HeuristicParams` / :class:`SchedulingOptions` are frozen,
  hashable, and round-trip their wire form with strict unknown-field
  rejection;
* the shared priority evaluators reproduce the historical hand-coded
  keys exactly under DEFAULT parameters;
* the params feed compile-cache identity (tuned artifacts can never
  alias DEFAULT ones) and ride the typed API request schema;
* with ``HeuristicParams.DEFAULT``, compiled schedules are
  byte-identical to the *pre-refactor* compilers' output across the
  golden corpus and the fuzz seeds (``tests/data/schedule_golden.json``
  was generated before the refactor — a real differential).
"""

from __future__ import annotations

import dataclasses
import importlib.util
import json
import os

import pytest

from repro.api import ApiError, CompileRequest, MeasureRequest
from repro.errors import ParamError
from repro.cache.key import CACHE_SCHEMA, compile_key
from repro.machine import TRACE_28_200
from repro.sched import (AcyclicPriority, HeuristicParams, ModuloPriority,
                         SchedulingOptions, acyclic_heights,
                         build_acyclic_graph, build_loop_graph,
                         modulo_deadlines, modulo_heights)
from repro.workloads import get_kernel

DATA = os.path.join(os.path.dirname(__file__), "data")


def _load_generator(name: str):
    path = os.path.join(DATA, name)
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


# ---------------------------------------------------------------------------
# HeuristicParams: frozen, hashable, strict wire form


class TestHeuristicParams:
    def test_default_is_all_defaults(self):
        assert HeuristicParams.DEFAULT == HeuristicParams()
        assert HeuristicParams.DEFAULT.is_default()
        assert not HeuristicParams(tie_seed=3).is_default()

    def test_frozen_and_hashable(self):
        params = HeuristicParams()
        with pytest.raises(dataclasses.FrozenInstanceError):
            params.w_height = 2.0
        assert hash(HeuristicParams()) == hash(HeuristicParams())
        assert hash(HeuristicParams(w_slack=0.25)) == \
            hash(HeuristicParams(w_slack=0.25))

    def test_weight_normalisation(self):
        """Integer-spelled weights hash, compare, and render like their
        float twins — cache keys cannot depend on spelling."""
        a = HeuristicParams(w_height=2)
        b = HeuristicParams(w_height=2.0)
        assert a == b
        assert hash(a) == hash(b)
        assert repr(a) == repr(b)

    def test_round_trip(self):
        params = HeuristicParams(w_slack=0.25, w_desc=0.05,
                                 wide_imm_deferral=False, tie_seed=7,
                                 unit_order="reverse",
                                 modulo_order="deadline",
                                 modulo_budget_base=200)
        wire = params.to_json()
        assert wire == json.loads(json.dumps(wire))     # JSON-trivial
        assert HeuristicParams.from_json(wire) == params

    def test_unknown_field_rejected(self):
        wire = HeuristicParams().to_json()
        wire["w_heigth"] = 2.0                          # typo
        with pytest.raises(ParamError, match="w_heigth"):
            HeuristicParams.from_json(wire)

    def test_bad_values_rejected(self):
        with pytest.raises(ParamError):
            HeuristicParams(unit_order="sideways")
        with pytest.raises(ParamError):
            HeuristicParams(modulo_order="random")
        with pytest.raises(ParamError):
            HeuristicParams(w_height=float("inf"))
        with pytest.raises(ParamError):
            HeuristicParams(w_slack=True)
        with pytest.raises(ParamError):
            HeuristicParams(tie_seed=1.5)
        with pytest.raises(ParamError):
            HeuristicParams(modulo_budget_base=0)
        with pytest.raises(ParamError):
            HeuristicParams(modulo_budget_per_op=-1)
        with pytest.raises(ParamError):
            HeuristicParams.from_json(["not", "a", "dict"])


# ---------------------------------------------------------------------------
# SchedulingOptions: frozen, hashable, params ride along


class TestSchedulingOptionsFrozen:
    def test_frozen(self):
        options = SchedulingOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            options.speculation = False

    def test_hash_eq_regression(self):
        """Options participate in cache identity: equal values must
        hash equal, any field flip must break equality."""
        assert SchedulingOptions() == SchedulingOptions()
        assert hash(SchedulingOptions()) == hash(SchedulingOptions())
        tuned = SchedulingOptions(params=HeuristicParams(tie_seed=1))
        assert tuned != SchedulingOptions()
        assert hash(tuned) != hash(SchedulingOptions())
        assert SchedulingOptions(fast_fp=True) != SchedulingOptions()
        assert len({SchedulingOptions(), SchedulingOptions()}) == 1

    def test_round_trip(self):
        options = SchedulingOptions(
            speculation=False, fast_fp=True,
            params=HeuristicParams(w_depth=0.125))
        assert SchedulingOptions.from_json(options.to_json()) == options

    def test_unknown_field_rejected(self):
        wire = SchedulingOptions().to_json()
        wire["speculaton"] = False
        with pytest.raises(ParamError, match="speculaton"):
            SchedulingOptions.from_json(wire)


# ---------------------------------------------------------------------------
# shared evaluators reproduce the historical keys under DEFAULT


def _trace_graph(kernel_name: str = "daxpy", n: int = 16):
    from repro.analysis import compute_liveness
    from repro.disambig import Disambiguator, derive_memrefs
    from repro.trace import TraceSelector, clone_function
    from repro.trace.profile import estimate_static

    kernel = get_kernel(kernel_name)
    module = kernel.build(n)
    from repro.opt import classical_pipeline

    classical_pipeline(unroll_factor=4, inline_budget=48).run(module)
    func = module.function(kernel.func)
    derive_memrefs(func)
    work = clone_function(func)
    disambig = Disambiguator(module)
    live_in = dict(compute_liveness(work).live_in)
    selector = TraceSelector(work, estimate_static(work))
    trace = selector.next_trace()
    return build_acyclic_graph(work, trace, disambig, TRACE_28_200,
                               SchedulingOptions(), live_in,
                               {work.entry.name}), disambig


class TestEvaluatorDefaultEquivalence:
    def test_acyclic_default_key_matches_historical(self):
        graph, _ = _trace_graph()
        evaluator = AcyclicPriority(graph, HeuristicParams.DEFAULT)
        heights = acyclic_heights(graph)
        indices = list(range(len(graph.nodes)))
        assert sorted(indices, key=evaluator.key) == sorted(
            indices, key=lambda i: (-heights[i], graph.nodes[i].pos))

    def test_acyclic_tie_seed_changes_order_deterministically(self):
        graph, _ = _trace_graph()
        a = AcyclicPriority(graph, HeuristicParams(tie_seed=1))
        b = AcyclicPriority(graph, HeuristicParams(tie_seed=1))
        indices = list(range(len(graph.nodes)))
        assert sorted(indices, key=a.key) == sorted(indices, key=b.key)

    def test_modulo_default_order_matches_historical(self):
        from repro.analysis import compute_liveness
        from repro.disambig import Disambiguator, derive_memrefs
        from repro.opt import classical_pipeline
        from repro.pipeline import find_pipeline_loops
        from repro.trace import clone_function

        kernel = get_kernel("daxpy")
        module = kernel.build(16)
        classical_pipeline(unroll_factor=0, inline_budget=48).run(module)
        func = module.function(kernel.func)
        derive_memrefs(func)
        work = clone_function(func)
        disambig = Disambiguator(module)
        live_in = dict(compute_liveness(work).live_in)
        loops = [pl for _l, pl, _w in find_pipeline_loops(work, live_in)
                 if pl is not None]
        assert loops, "daxpy's inner loop must be pipelinable"
        graph = build_loop_graph(loops[0], TRACE_28_200, disambig)
        n = len(graph.ops)
        ii = 2
        while modulo_heights(graph, ii) is None \
                or modulo_deadlines(graph, ii) is None:
            ii += 1
        h = modulo_heights(graph, ii)
        dl = modulo_deadlines(graph, ii)
        priority = ModuloPriority(HeuristicParams.DEFAULT, h, dl)
        assert priority.order() == sorted(range(n),
                                          key=lambda i: (-h[i], i))
        assert priority.budget() == 50 + 8 * n

    def test_diagnostic_uses_the_scheduling_key(self):
        """The stuck-ready-list diagnostic and the scheduler read the
        same evaluator object — drift is structurally impossible."""
        from repro.trace.scheduler import ListScheduler

        graph, disambig = _trace_graph()
        sched = ListScheduler(graph, TRACE_28_200, disambig,
                              SchedulingOptions())
        ready = list(range(len(graph.nodes)))
        err = sched._no_progress_error(ready, 3)
        best = min(ready, key=sched._priority.key)
        assert f"node #{best}" in str(err)


# ---------------------------------------------------------------------------
# cache identity and API wire form


class TestCacheKeySeparation:
    def test_schema_bumped_for_params(self):
        assert CACHE_SCHEMA == 5

    def test_tuned_params_separate_cache_keys(self):
        module = get_kernel("daxpy").build(16)
        key_default = compile_key(module, TRACE_28_200,
                                  SchedulingOptions(), strategy="trace",
                                  unroll=4, inline=48)
        tuned = SchedulingOptions(params=HeuristicParams(tie_seed=1))
        key_tuned = compile_key(module, TRACE_28_200, tuned,
                                strategy="trace", unroll=4, inline=48)
        assert key_default != key_tuned
        again = compile_key(module, TRACE_28_200, SchedulingOptions(),
                            strategy="trace", unroll=4, inline=48)
        assert key_default == again


class TestApiWire:
    def test_request_round_trip_with_params(self):
        wire_params = HeuristicParams(w_slack=0.25,
                                      unit_order="reverse").to_json()
        request = MeasureRequest(kernel="daxpy", n=32,
                                 params=wire_params)
        decoded = MeasureRequest.from_json(
            json.loads(json.dumps(request.to_json())))
        assert decoded == request
        assert decoded.options().params == \
            HeuristicParams.from_json(wire_params)

    def test_default_request_has_default_params(self):
        request = CompileRequest(kernel="daxpy")
        assert request.heuristic_params() is HeuristicParams.DEFAULT
        assert request.options().params == HeuristicParams.DEFAULT

    def test_bad_params_rejected_at_validate(self):
        request = CompileRequest(kernel="daxpy",
                                 params={"w_heigth": 2.0})
        with pytest.raises(ApiError, match="w_heigth"):
            request.validate()
        with pytest.raises(ApiError):
            CompileRequest(kernel="daxpy", params={"unit_order": "x"}) \
                .validate()

    def test_params_separate_request_cache_keys(self):
        base = CompileRequest(kernel="daxpy", n=16)
        tuned = CompileRequest(kernel="daxpy", n=16,
                               params={"tie_seed": 1})
        assert base.cache_key() != tuned.cache_key()
        assert base.cache_key() == CompileRequest(kernel="daxpy",
                                                  n=16).cache_key()


class TestCliParamsFlag:
    def test_explicit_default_matches_no_flag(self, capsys):
        from repro.__main__ import main

        assert main(["schedule", "copy", "-n", "16"]) in (0, None)
        plain = capsys.readouterr().out
        assert main(["schedule", "copy", "-n", "16",
                     "--params", '{"w_height": 1.0}']) in (0, None)
        assert capsys.readouterr().out == plain

    def test_bad_params_exit_cleanly(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="--params"):
            main(["schedule", "copy", "--params", '{"bogus": 1}'])
        with pytest.raises(SystemExit, match="--params"):
            main(["schedule", "copy", "--params", "not json"])
        with pytest.raises(SystemExit, match="--params"):
            main(["measure", "copy", "-n", "16",
                  "--params", '{"unit_order": "x"}'])

    def test_params_from_file(self, tmp_path, capsys):
        from repro.__main__ import main

        config = tmp_path / "winner.json"
        config.write_text(json.dumps({"tie_seed": 0}))
        assert main(["schedule", "copy", "-n", "16",
                     "--params", f"@{config}"]) in (0, None)
        assert "instr" in capsys.readouterr().out.lower()


# ---------------------------------------------------------------------------
# the differential: DEFAULT is byte-identical to pre-refactor schedules


class TestScheduleGoldenByteIdentity:
    def test_default_params_reproduce_prerefactor_schedules(self):
        """The digests in ``schedule_golden.json`` were produced by the
        pre-refactor schedulers (hand-coded priority lambdas).  Every
        trace case, pipeline case, and fuzz seed must compile to the
        same bytes under ``HeuristicParams.DEFAULT``."""
        with open(os.path.join(DATA, "schedule_golden.json")) as handle:
            golden = json.load(handle)
        rebuilt = _load_generator("make_schedule_golden.py").build_corpus()
        assert sorted(rebuilt) == sorted(golden)
        mismatched = [case for case in golden
                      if rebuilt[case] != golden[case]]
        assert mismatched == []
