"""Tests for the compile service: the ``repro.api`` facade, the job
queue (dedup, backpressure, retention), the HTTP transport, and the
service's equivalence with direct in-process measurement."""

import threading
import time

import pytest

from repro.api import (JOB_DONE, JOB_QUEUED, ApiError, CompileRequest,
                       JobResult, JobStatus, MeasureRequest, dumps,
                       request_from_json, run_request)
from repro.errors import ReproError
from repro.harness.measure import run_measurement
from repro.harness.report import measurement_report
from repro.serve import (Client, CompileServer, QueueFull, ServeConfig,
                         ServerBusy, UnknownJob, start_server)

REQ = MeasureRequest(kernel="vadd", n=24, unroll=4)


def _config(tmp_path, **overrides):
    kw = dict(port=0, jobs=1, max_queue=16, batch=4,
              cache_dir=str(tmp_path / "cache"))
    kw.update(overrides)
    return ServeConfig(**kw)


@pytest.fixture
def service(tmp_path):
    """A live server on an ephemeral port plus a connected client."""
    core, httpd = start_server(_config(tmp_path))
    host, port = httpd.server_address[:2]
    yield core, Client(f"{host}:{port}")
    core.shutdown()
    httpd.shutdown()
    httpd.server_close()


# ----------------------------------------------------------------------
# the typed facade
# ----------------------------------------------------------------------
class TestApiSchema:
    def test_request_round_trip(self):
        for request in (REQ, CompileRequest(kernel="daxpy", n=32,
                                            strategy="pipeline", unroll=0)):
            wire = request.to_json()
            assert wire["kind"] == request.kind
            assert request_from_json(wire) == request

    def test_kind_dispatch(self):
        assert isinstance(request_from_json(REQ.to_json()), MeasureRequest)
        compile_wire = CompileRequest(kernel="vadd").to_json()
        decoded = request_from_json(compile_wire)
        assert isinstance(decoded, CompileRequest)
        assert not isinstance(decoded, MeasureRequest)

    def test_unknown_fields_tolerated(self):
        wire = REQ.to_json()
        wire["from_the_future"] = 7
        assert request_from_json(wire) == REQ

    def test_invalid_requests_rejected(self):
        with pytest.raises(ApiError):
            request_from_json({"kind": "measure", "kernel": "no_such"})
        with pytest.raises(ApiError):
            request_from_json({"kind": "measure", "kernel": "vadd",
                               "pairs": 3})
        with pytest.raises(ApiError):
            request_from_json({"kind": "measure", "kernel": "vadd",
                               "strategy": "magic"})
        with pytest.raises(ApiError):
            request_from_json({"kind": "teleport", "kernel": "vadd"})
        with pytest.raises(ApiError):
            request_from_json({"kind": "measure"})  # kernel required

    def test_status_and_result_round_trip(self):
        status = JobStatus(job_id="job-1", state=JOB_QUEUED,
                           kind="measure", kernel="vadd", key="abc")
        assert JobStatus.from_json(status.to_json()) == status
        result = JobResult(job_id="job-1", ok=True, kind="measure",
                           key="abc", result={"x": 1},
                           counters={"cache.hit": 1}, cache_hit=True)
        assert JobResult.from_json(result.to_json()) == result

    def test_cache_key_matches_measurement_cache(self, tmp_path):
        """The facade's key is the key the compile cache actually uses:
        running the lowered spec stores exactly one artifact under it."""
        from repro.cache import CompileCache

        cache = CompileCache(directory=str(tmp_path))
        run_measurement(REQ.to_spec(), cache=cache)
        from pathlib import Path
        assert Path(cache._path(REQ.cache_key())).exists()

    def test_run_request_equals_run_measurement(self):
        assert dumps(run_request(REQ)) == dumps(
            measurement_report(run_measurement(REQ.to_spec())))

    def test_compile_request_payload(self):
        payload = run_request(CompileRequest(kernel="vadd", n=24,
                                             unroll=4))
        assert payload["kernel"] == "vadd"
        assert payload["compile"]["n_traces"] >= 1
        assert all(fn["instructions"] > 0
                   for fn in payload["functions"].values())
        assert "results" not in payload      # no simulation ran


# ----------------------------------------------------------------------
# the job queue + HTTP transport
# ----------------------------------------------------------------------
class TestService:
    def test_batch_submit_and_results(self, service):
        _, client = service
        statuses = client.submit([REQ, CompileRequest(kernel="daxpy",
                                                      n=24, unroll=4)])
        assert [s.state for s in statuses] == [JOB_QUEUED, JOB_QUEUED]
        results = client.results([s.job_id for s in statuses],
                                 timeout_s=120)
        assert all(r.ok for r in results)
        assert results[0].result["results"]["vliw_speedup"] > 1.0
        assert results[1].result["compile"]["n_traces"] >= 1
        assert client.status(statuses[0].job_id).state == JOB_DONE

    def test_server_matches_direct_measurement(self, service):
        """The service must be a transport, not a different compiler:
        its payload is byte-identical to a direct run_measurement."""
        _, client = service
        result = client.submit_and_wait([REQ], timeout_s=120)[0]
        assert dumps(result.result) == dumps(run_request(REQ))

    def test_concurrent_duplicate_submits_one_compile(self, service):
        """Two clients, same job, in flight together: one compile, two
        byte-identical results, the second carrying cache.hit."""
        core, client = service
        core.pause()                          # both land before dispatch
        second_client = Client(f"{client.host}:{client.port}")
        first = client.submit([REQ])[0]
        second = second_client.submit([REQ])[0]
        assert not first.deduped and second.deduped
        core.resume()
        r1 = client.result(first.job_id, timeout_s=120)
        r2 = second_client.result(second.job_id, timeout_s=120)
        counters = core.tracer.counters
        assert counters.get("serve.dispatched") == 1   # ONE compile ran
        assert counters.get("serve.dedup_inflight") == 1
        assert dumps(r1.result) == dumps(r2.result)
        assert r2.cache_hit and r2.counters.get("cache.hit", 0) >= 1
        # and both match the direct in-process call
        assert dumps(r1.result) == dumps(run_request(REQ))

    def test_completed_key_dedups_without_requeue(self, service):
        core, client = service
        client.submit_and_wait([REQ], timeout_s=120)
        result = client.submit_and_wait([REQ], timeout_s=120)[0]
        assert result.cache_hit
        assert core.tracer.counters.get("serve.dedup_done") == 1
        assert core.tracer.counters.get("serve.dispatched") == 1

    def test_measure_never_aliased_onto_compile(self, service):
        """Same parameters, different kinds: a retained compile-only
        result (the documented cache-warm flow) must not satisfy a
        measure request — the dedup identity covers the kind."""
        core, client = service
        compile_req = CompileRequest(kernel="vadd", n=24, unroll=4)
        warm = client.submit_and_wait([compile_req], timeout_s=120)[0]
        assert warm.ok and warm.kind == "compile"
        measured = client.submit_and_wait([REQ], timeout_s=120)[0]
        assert measured.ok and measured.kind == "measure"
        assert "results" in measured.result   # the simulation really ran
        assert core.tracer.counters.get("serve.dispatched") == 2
        assert core.tracer.counters.get("serve.dedup_done") == 0

    def test_inflight_kinds_and_check_queue_separately(self, service):
        """Jobs sharing a compile key but differing in kind or in the
        check flag are distinct work, not dedup aliases."""
        core, client = service
        core.pause()                          # all land before dispatch
        c = client.submit([CompileRequest(kernel="vadd", n=24,
                                          unroll=4)])[0]
        m = client.submit([REQ])[0]
        unchecked = client.submit([MeasureRequest(kernel="vadd", n=24,
                                                  unroll=4,
                                                  check=False)])[0]
        assert not c.deduped and not m.deduped and not unchecked.deduped
        core.resume()
        rc = client.result(c.job_id, timeout_s=120)
        rm = client.result(m.job_id, timeout_s=120)
        assert rc.kind == "compile" and "results" not in rc.result
        assert rm.kind == "measure" and "results" in rm.result

    def test_dispatcher_survives_wave_exception(self, tmp_path,
                                                monkeypatch):
        """An unexpected executor failure fails that wave's jobs but
        never the dispatcher thread: later submissions still run."""
        import repro.harness.runner as runner_mod

        real = runner_mod.run_tasks
        armed = {"boom": True}

        def flaky(kind, payloads, **kwargs):
            if armed.pop("boom", False):
                raise RuntimeError("wave exploded")
            return real(kind, payloads, **kwargs)

        monkeypatch.setattr(runner_mod, "run_tasks", flaky)
        core = CompileServer(_config(tmp_path)).start()
        try:
            status = core.submit([REQ])[0]
            result = core.result(status.job_id, wait_s=120)
            assert result is not None and not result.ok
            assert "wave exploded" in result.error
            assert core.tracer.counters.get("serve.dispatch_errors") == 1
            # failures are not retained for dedup; the retry runs fresh
            retry = core.submit([REQ])[0]
            assert not retry.deduped
            again = core.result(retry.job_id, wait_s=120)
            assert again is not None and again.ok
        finally:
            core.shutdown()

    def test_result_wait_param_validated(self, service):
        """Garbage ``wait`` values are a 400; extreme ones are clamped
        server-side instead of pinning a handler thread."""
        _, client = service
        from repro.serve import ServerError
        status = client.submit([REQ])[0]
        for bad in ("abc", "nan"):
            with pytest.raises(ServerError) as excinfo:
                client._call(
                    "GET", f"/jobs/{status.job_id}/result?wait={bad}")
            assert excinfo.value.status == 400
        code, _ = client._call(
            "GET", f"/jobs/{status.job_id}/result?wait=-5")
        assert code in (200, 202)            # negative waits act as 0
        client.result(status.job_id, timeout_s=120)
        code, _ = client._call(
            "GET", f"/jobs/{status.job_id}/result?wait=inf")
        assert code == 200                   # clamped; replies promptly

    def test_non_object_submit_body_is_400(self, service):
        _, client = service
        from repro.serve import ServerError
        for body in ([1, 2, 3], {"jobs": {"kind": "measure"}}):
            with pytest.raises(ServerError) as excinfo:
                client._call("POST", "/submit", body)
            assert excinfo.value.status == 400

    def test_backpressure_rejects_with_retry_after(self, tmp_path):
        core, httpd = start_server(_config(tmp_path, max_queue=1))
        try:
            host, port = httpd.server_address[:2]
            client = Client(f"{host}:{port}")
            core.pause()
            client.submit([REQ])              # fills the bounded queue
            distinct = MeasureRequest(kernel="vadd", n=25, unroll=4)
            with pytest.raises(ServerBusy) as excinfo:
                client.submit([distinct])
            assert excinfo.value.retry_after_s > 0
            assert core.tracer.counters.get("serve.rejected") == 1
            # duplicates of queued work still get in: no new queue slot
            alias = client.submit([REQ])[0]
            assert alias.deduped
            core.resume()
            assert client.result(alias.job_id, timeout_s=120).ok
        finally:
            core.shutdown()
            httpd.shutdown()
            httpd.server_close()

    def test_busy_retry_loop_recovers(self, tmp_path):
        core, httpd = start_server(_config(tmp_path, max_queue=1))
        try:
            host, port = httpd.server_address[:2]
            client = Client(f"{host}:{port}")
            core.pause()
            client.submit([REQ])
            threading.Timer(0.3, core.resume).start()
            distinct = MeasureRequest(kernel="vadd", n=25, unroll=4)
            results = client.submit_and_wait(
                [distinct], timeout_s=120, busy_retries=20)
            assert results[0].ok
        finally:
            core.shutdown()
            httpd.shutdown()
            httpd.server_close()

    def test_unknown_job_is_404(self, service):
        _, client = service
        from repro.serve import ServerError
        with pytest.raises(ServerError) as excinfo:
            client.status("job-999999")
        assert excinfo.value.status == 404

    def test_malformed_submit_is_400(self, service):
        _, client = service
        from repro.serve import ServerError
        with pytest.raises(ServerError) as excinfo:
            client._call("POST", "/submit",
                         {"jobs": [{"kind": "measure",
                                    "kernel": "no_such_kernel"}]})
        assert excinfo.value.status == 400

    def test_stats_report(self, service):
        _, client = service
        client.submit_and_wait([REQ], timeout_s=120)
        stats = client.stats()
        assert stats["queue_depth"] == 0
        assert stats["jobs"].get("done") == 1
        assert stats["counters"]["serve.completed"] == 1
        assert stats["cache"]["disk_entries"] >= 1

    def test_failed_job_reports_error(self, service, monkeypatch):
        """A handler exception becomes a failed JobResult; the failure
        is not retained for dedup, so a resubmit retries the work."""
        core, client = service

        def boom(request_obj, use_cache, cache_dir, tracer=None):
            raise RuntimeError("forced failure")

        monkeypatch.setattr("repro.api.execute_payload", boom)
        result = client.submit_and_wait([REQ], timeout_s=120)[0]
        assert not result.ok
        assert "forced failure" in (result.error or "")
        assert core.tracer.counters.get("serve.failed") == 1
        monkeypatch.undo()
        retry = client.submit_and_wait([REQ], timeout_s=120)[0]
        assert retry.ok and not retry.cache_hit

    def test_result_retention_bounded(self, tmp_path):
        core, httpd = start_server(_config(tmp_path, keep_results=1))
        try:
            host, port = httpd.server_address[:2]
            client = Client(f"{host}:{port}")
            first = client.submit_and_wait([REQ], timeout_s=120)[0]
            second = client.submit_and_wait(
                [MeasureRequest(kernel="vadd", n=25, unroll=4)],
                timeout_s=120)[0]
            assert second.ok
            # the older record was retired to honor keep_results=1
            with pytest.raises(UnknownJob):
                core.status(first.job_id)
        finally:
            core.shutdown()
            httpd.shutdown()
            httpd.server_close()

    def test_shutdown_fails_queued_jobs_cleanly(self, tmp_path):
        core, _httpd = start_server(_config(tmp_path))
        core.pause()
        status = core.submit([REQ])[0]
        core.shutdown()
        result = core.result(status.job_id, wait_s=0)
        assert result is not None and not result.ok
        assert "shutting down" in result.error
        _httpd.shutdown()
        _httpd.server_close()

    def test_http_shutdown_endpoint(self, tmp_path):
        core, httpd = start_server(_config(tmp_path))
        host, port = httpd.server_address[:2]
        client = Client(f"{host}:{port}")
        client.shutdown()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and not core._stopping:
            time.sleep(0.05)
        assert core._stopping
        with pytest.raises((ReproError, OSError)):
            client.submit([REQ])
        httpd.server_close()


class TestServerCore:
    """Queue-core behavior exercised without the HTTP layer."""

    def test_submit_rejects_invalid_request(self, tmp_path):
        core = CompileServer(_config(tmp_path))
        with pytest.raises(ApiError):
            core.submit([MeasureRequest(kernel="nope")])

    def test_queue_full_raised_before_any_job_created(self, tmp_path):
        core = CompileServer(_config(tmp_path, max_queue=1))
        core.pause()
        core.start()
        core.submit([REQ])
        batch = [MeasureRequest(kernel="vadd", n=25, unroll=4),
                 MeasureRequest(kernel="vadd", n=26, unroll=4)]
        with pytest.raises(QueueFull):
            core.submit(batch)                # atomic: neither queued
        assert core.stats()["queue_depth"] == 1
        core.shutdown()

    def test_wave_batching(self, tmp_path):
        """More queued jobs than one wave: everything still completes,
        in waves of at most ``batch``."""
        core = CompileServer(_config(tmp_path, batch=2))
        core.pause()
        core.start()
        statuses = core.submit([
            MeasureRequest(kernel="vadd", n=n, unroll=4)
            for n in (24, 25, 26)])
        core.resume()
        for status in statuses:
            result = core.result(status.job_id, wait_s=120)
            assert result is not None and result.ok
        assert core.tracer.counters.get("serve.dispatched") == 3
        core.shutdown()
