"""Tests for the compile service: the ``repro.api`` facade, the job
queue (dedup, backpressure, retention), the HTTP transport, crash
recovery through the write-ahead journal, and the service's
equivalence with direct in-process measurement."""

import threading
import time

import pytest

from repro.api import (JOB_DONE, JOB_FAILED, JOB_QUEUED, ApiError,
                       CompileRequest, JobResult, JobStatus,
                       MeasureRequest, dumps, request_from_json,
                       run_request)
from repro.errors import ReproError
from repro.harness.measure import run_measurement
from repro.harness.report import measurement_report
from repro.serve import (Client, CompileServer, JobJournal, JournalError,
                         QueueFull, ServeConfig, ServerBusy,
                         ServerUnavailable, UnknownJob, start_server)

REQ = MeasureRequest(kernel="vadd", n=24, unroll=4)


def _config(tmp_path, **overrides):
    kw = dict(port=0, jobs=1, max_queue=16, batch=4,
              cache_dir=str(tmp_path / "cache"))
    kw.update(overrides)
    return ServeConfig(**kw)


@pytest.fixture
def service(tmp_path):
    """A live server on an ephemeral port plus a connected client."""
    core, httpd = start_server(_config(tmp_path))
    host, port = httpd.server_address[:2]
    yield core, Client(f"{host}:{port}")
    core.shutdown()
    httpd.shutdown()
    httpd.server_close()


# ----------------------------------------------------------------------
# the typed facade
# ----------------------------------------------------------------------
class TestApiSchema:
    def test_request_round_trip(self):
        for request in (REQ, CompileRequest(kernel="daxpy", n=32,
                                            strategy="pipeline", unroll=0)):
            wire = request.to_json()
            assert wire["kind"] == request.kind
            assert request_from_json(wire) == request

    def test_kind_dispatch(self):
        assert isinstance(request_from_json(REQ.to_json()), MeasureRequest)
        compile_wire = CompileRequest(kernel="vadd").to_json()
        decoded = request_from_json(compile_wire)
        assert isinstance(decoded, CompileRequest)
        assert not isinstance(decoded, MeasureRequest)

    def test_unknown_fields_tolerated(self):
        wire = REQ.to_json()
        wire["from_the_future"] = 7
        assert request_from_json(wire) == REQ

    def test_invalid_requests_rejected(self):
        with pytest.raises(ApiError):
            request_from_json({"kind": "measure", "kernel": "no_such"})
        with pytest.raises(ApiError):
            request_from_json({"kind": "measure", "kernel": "vadd",
                               "pairs": 3})
        with pytest.raises(ApiError):
            request_from_json({"kind": "measure", "kernel": "vadd",
                               "strategy": "magic"})
        with pytest.raises(ApiError):
            request_from_json({"kind": "teleport", "kernel": "vadd"})
        with pytest.raises(ApiError):
            request_from_json({"kind": "measure"})  # kernel required

    def test_status_and_result_round_trip(self):
        status = JobStatus(job_id="job-1", state=JOB_QUEUED,
                           kind="measure", kernel="vadd", key="abc")
        assert JobStatus.from_json(status.to_json()) == status
        result = JobResult(job_id="job-1", ok=True, kind="measure",
                           key="abc", result={"x": 1},
                           counters={"cache.hit": 1}, cache_hit=True)
        assert JobResult.from_json(result.to_json()) == result

    def test_cache_key_matches_measurement_cache(self, tmp_path):
        """The facade's key is the key the compile cache actually uses:
        running the lowered spec stores exactly one artifact under it."""
        from repro.cache import CompileCache

        cache = CompileCache(directory=str(tmp_path))
        run_measurement(REQ.to_spec(), cache=cache)
        from pathlib import Path
        assert Path(cache._path(REQ.cache_key())).exists()

    def test_run_request_equals_run_measurement(self):
        assert dumps(run_request(REQ)) == dumps(
            measurement_report(run_measurement(REQ.to_spec())))

    def test_compile_request_payload(self):
        payload = run_request(CompileRequest(kernel="vadd", n=24,
                                             unroll=4))
        assert payload["kernel"] == "vadd"
        assert payload["compile"]["n_traces"] >= 1
        assert all(fn["instructions"] > 0
                   for fn in payload["functions"].values())
        assert "results" not in payload      # no simulation ran


# ----------------------------------------------------------------------
# the job queue + HTTP transport
# ----------------------------------------------------------------------
class TestService:
    def test_batch_submit_and_results(self, service):
        _, client = service
        statuses = client.submit([REQ, CompileRequest(kernel="daxpy",
                                                      n=24, unroll=4)])
        assert [s.state for s in statuses] == [JOB_QUEUED, JOB_QUEUED]
        results = client.results([s.job_id for s in statuses],
                                 timeout_s=120)
        assert all(r.ok for r in results)
        assert results[0].result["results"]["vliw_speedup"] > 1.0
        assert results[1].result["compile"]["n_traces"] >= 1
        assert client.status(statuses[0].job_id).state == JOB_DONE

    def test_server_matches_direct_measurement(self, service):
        """The service must be a transport, not a different compiler:
        its payload is byte-identical to a direct run_measurement."""
        _, client = service
        result = client.submit_and_wait([REQ], timeout_s=120)[0]
        assert dumps(result.result) == dumps(run_request(REQ))

    def test_concurrent_duplicate_submits_one_compile(self, service):
        """Two clients, same job, in flight together: one compile, two
        byte-identical results, the second carrying cache.hit."""
        core, client = service
        core.pause()                          # both land before dispatch
        second_client = Client(f"{client.host}:{client.port}")
        first = client.submit([REQ])[0]
        second = second_client.submit([REQ])[0]
        assert not first.deduped and second.deduped
        core.resume()
        r1 = client.result(first.job_id, timeout_s=120)
        r2 = second_client.result(second.job_id, timeout_s=120)
        counters = core.tracer.counters
        assert counters.get("serve.dispatched") == 1   # ONE compile ran
        assert counters.get("serve.dedup_inflight") == 1
        assert dumps(r1.result) == dumps(r2.result)
        assert r2.cache_hit and r2.counters.get("cache.hit", 0) >= 1
        # and both match the direct in-process call
        assert dumps(r1.result) == dumps(run_request(REQ))

    def test_completed_key_dedups_without_requeue(self, service):
        core, client = service
        client.submit_and_wait([REQ], timeout_s=120)
        result = client.submit_and_wait([REQ], timeout_s=120)[0]
        assert result.cache_hit
        assert core.tracer.counters.get("serve.dedup_done") == 1
        assert core.tracer.counters.get("serve.dispatched") == 1

    def test_measure_never_aliased_onto_compile(self, service):
        """Same parameters, different kinds: a retained compile-only
        result (the documented cache-warm flow) must not satisfy a
        measure request — the dedup identity covers the kind."""
        core, client = service
        compile_req = CompileRequest(kernel="vadd", n=24, unroll=4)
        warm = client.submit_and_wait([compile_req], timeout_s=120)[0]
        assert warm.ok and warm.kind == "compile"
        measured = client.submit_and_wait([REQ], timeout_s=120)[0]
        assert measured.ok and measured.kind == "measure"
        assert "results" in measured.result   # the simulation really ran
        assert core.tracer.counters.get("serve.dispatched") == 2
        assert core.tracer.counters.get("serve.dedup_done") == 0

    def test_inflight_kinds_and_check_queue_separately(self, service):
        """Jobs sharing a compile key but differing in kind or in the
        check flag are distinct work, not dedup aliases."""
        core, client = service
        core.pause()                          # all land before dispatch
        c = client.submit([CompileRequest(kernel="vadd", n=24,
                                          unroll=4)])[0]
        m = client.submit([REQ])[0]
        unchecked = client.submit([MeasureRequest(kernel="vadd", n=24,
                                                  unroll=4,
                                                  check=False)])[0]
        assert not c.deduped and not m.deduped and not unchecked.deduped
        core.resume()
        rc = client.result(c.job_id, timeout_s=120)
        rm = client.result(m.job_id, timeout_s=120)
        assert rc.kind == "compile" and "results" not in rc.result
        assert rm.kind == "measure" and "results" in rm.result

    def test_dispatcher_survives_wave_exception(self, tmp_path,
                                                monkeypatch):
        """An unexpected executor failure fails that wave's jobs but
        never the dispatcher thread: later submissions still run."""
        import repro.harness.runner as runner_mod

        real = runner_mod.run_tasks
        armed = {"boom": True}

        def flaky(kind, payloads, **kwargs):
            if armed.pop("boom", False):
                raise RuntimeError("wave exploded")
            return real(kind, payloads, **kwargs)

        monkeypatch.setattr(runner_mod, "run_tasks", flaky)
        core = CompileServer(_config(tmp_path)).start()
        try:
            status = core.submit([REQ])[0]
            result = core.result(status.job_id, wait_s=120)
            assert result is not None and not result.ok
            assert "wave exploded" in result.error
            assert core.tracer.counters.get("serve.dispatch_errors") == 1
            # failures are not retained for dedup; the retry runs fresh
            retry = core.submit([REQ])[0]
            assert not retry.deduped
            again = core.result(retry.job_id, wait_s=120)
            assert again is not None and again.ok
        finally:
            core.shutdown()

    def test_result_wait_param_validated(self, service):
        """Garbage ``wait`` values are a 400; extreme ones are clamped
        server-side instead of pinning a handler thread."""
        _, client = service
        from repro.serve import ServerError
        status = client.submit([REQ])[0]
        for bad in ("abc", "nan"):
            with pytest.raises(ServerError) as excinfo:
                client._call(
                    "GET", f"/jobs/{status.job_id}/result?wait={bad}")
            assert excinfo.value.status == 400
        code, _ = client._call(
            "GET", f"/jobs/{status.job_id}/result?wait=-5")
        assert code in (200, 202)            # negative waits act as 0
        client.result(status.job_id, timeout_s=120)
        code, _ = client._call(
            "GET", f"/jobs/{status.job_id}/result?wait=inf")
        assert code == 200                   # clamped; replies promptly

    def test_non_object_submit_body_is_400(self, service):
        _, client = service
        from repro.serve import ServerError
        for body in ([1, 2, 3], {"jobs": {"kind": "measure"}}):
            with pytest.raises(ServerError) as excinfo:
                client._call("POST", "/submit", body)
            assert excinfo.value.status == 400

    def test_backpressure_rejects_with_retry_after(self, tmp_path):
        core, httpd = start_server(_config(tmp_path, max_queue=1))
        try:
            host, port = httpd.server_address[:2]
            client = Client(f"{host}:{port}")
            core.pause()
            client.submit([REQ])              # fills the bounded queue
            distinct = MeasureRequest(kernel="vadd", n=25, unroll=4)
            with pytest.raises(ServerBusy) as excinfo:
                client.submit([distinct])
            assert excinfo.value.retry_after_s > 0
            assert core.tracer.counters.get("serve.rejected") == 1
            # duplicates of queued work still get in: no new queue slot
            alias = client.submit([REQ])[0]
            assert alias.deduped
            core.resume()
            assert client.result(alias.job_id, timeout_s=120).ok
        finally:
            core.shutdown()
            httpd.shutdown()
            httpd.server_close()

    def test_busy_retry_loop_recovers(self, tmp_path):
        core, httpd = start_server(_config(tmp_path, max_queue=1))
        try:
            host, port = httpd.server_address[:2]
            client = Client(f"{host}:{port}")
            core.pause()
            client.submit([REQ])
            threading.Timer(0.3, core.resume).start()
            distinct = MeasureRequest(kernel="vadd", n=25, unroll=4)
            results = client.submit_and_wait(
                [distinct], timeout_s=120, busy_retries=20)
            assert results[0].ok
        finally:
            core.shutdown()
            httpd.shutdown()
            httpd.server_close()

    def test_unknown_job_is_404(self, service):
        _, client = service
        from repro.serve import ServerError
        with pytest.raises(ServerError) as excinfo:
            client.status("job-999999")
        assert excinfo.value.status == 404

    def test_malformed_submit_is_400(self, service):
        _, client = service
        from repro.serve import ServerError
        with pytest.raises(ServerError) as excinfo:
            client._call("POST", "/submit",
                         {"jobs": [{"kind": "measure",
                                    "kernel": "no_such_kernel"}]})
        assert excinfo.value.status == 400

    def test_stats_report(self, service):
        _, client = service
        client.submit_and_wait([REQ], timeout_s=120)
        stats = client.stats()
        assert stats["queue_depth"] == 0
        assert stats["jobs"].get("done") == 1
        assert stats["counters"]["serve.completed"] == 1
        assert stats["cache"]["disk_entries"] >= 1

    def test_failed_job_reports_error(self, service, monkeypatch):
        """A handler exception becomes a failed JobResult; the failure
        is not retained for dedup, so a resubmit retries the work."""
        core, client = service

        def boom(request_obj, use_cache, cache_dir, tracer=None):
            raise RuntimeError("forced failure")

        monkeypatch.setattr("repro.api.execute_payload", boom)
        result = client.submit_and_wait([REQ], timeout_s=120)[0]
        assert not result.ok
        assert "forced failure" in (result.error or "")
        assert core.tracer.counters.get("serve.failed") == 1
        monkeypatch.undo()
        retry = client.submit_and_wait([REQ], timeout_s=120)[0]
        assert retry.ok and not retry.cache_hit

    def test_result_retention_bounded(self, tmp_path):
        core, httpd = start_server(_config(tmp_path, keep_results=1))
        try:
            host, port = httpd.server_address[:2]
            client = Client(f"{host}:{port}")
            first = client.submit_and_wait([REQ], timeout_s=120)[0]
            second = client.submit_and_wait(
                [MeasureRequest(kernel="vadd", n=25, unroll=4)],
                timeout_s=120)[0]
            assert second.ok
            # the older record was retired to honor keep_results=1
            with pytest.raises(UnknownJob):
                core.status(first.job_id)
        finally:
            core.shutdown()
            httpd.shutdown()
            httpd.server_close()

    def test_shutdown_fails_queued_jobs_cleanly(self, tmp_path):
        core, _httpd = start_server(_config(tmp_path))
        core.pause()
        status = core.submit([REQ])[0]
        core.shutdown()
        result = core.result(status.job_id, wait_s=0)
        assert result is not None and not result.ok
        assert "shutting down" in result.error
        _httpd.shutdown()
        _httpd.server_close()

    def test_http_shutdown_endpoint(self, tmp_path):
        core, httpd = start_server(_config(tmp_path))
        host, port = httpd.server_address[:2]
        client = Client(f"{host}:{port}")
        client.shutdown()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and not core._stopping:
            time.sleep(0.05)
        assert core._stopping
        with pytest.raises((ReproError, OSError)):
            client.submit([REQ])
        httpd.server_close()


class TestServerCore:
    """Queue-core behavior exercised without the HTTP layer."""

    def test_submit_rejects_invalid_request(self, tmp_path):
        core = CompileServer(_config(tmp_path))
        with pytest.raises(ApiError):
            core.submit([MeasureRequest(kernel="nope")])

    def test_queue_full_raised_before_any_job_created(self, tmp_path):
        core = CompileServer(_config(tmp_path, max_queue=1))
        core.pause()
        core.start()
        core.submit([REQ])
        batch = [MeasureRequest(kernel="vadd", n=25, unroll=4),
                 MeasureRequest(kernel="vadd", n=26, unroll=4)]
        with pytest.raises(QueueFull):
            core.submit(batch)                # atomic: neither queued
        assert core.stats()["queue_depth"] == 1
        core.shutdown()

    def test_wave_batching(self, tmp_path):
        """More queued jobs than one wave: everything still completes,
        in waves of at most ``batch``."""
        core = CompileServer(_config(tmp_path, batch=2))
        core.pause()
        core.start()
        statuses = core.submit([
            MeasureRequest(kernel="vadd", n=n, unroll=4)
            for n in (24, 25, 26)])
        core.resume()
        for status in statuses:
            result = core.result(status.job_id, wait_s=120)
            assert result is not None and result.ok
        assert core.tracer.counters.get("serve.dispatched") == 3
        core.shutdown()


# ----------------------------------------------------------------------
# durability: the journal wired into the server
# ----------------------------------------------------------------------
def _journaled_config(tmp_path, **overrides):
    overrides.setdefault("journal_path", str(tmp_path / "serve.journal"))
    return _config(tmp_path, **overrides)


class TestRecovery:
    def test_restart_reserves_finished_results(self, tmp_path):
        """A job that finished before the crash is re-served from the
        journal byte-identically — no recompile, no re-simulation."""
        cfg = _journaled_config(tmp_path)
        core = CompileServer(cfg).start()
        job_id = core.submit([REQ])[0].job_id
        before = core.result(job_id, wait_s=120)
        assert before is not None and before.ok
        core._journal.crash()                 # SIGKILL twin: no cleanup

        revived = CompileServer(cfg).start()
        try:
            after = revived.result(job_id, wait_s=0)
            assert after is not None and after.ok
            assert dumps(after.to_json()) == dumps(before.to_json())
            status = revived.status(job_id)
            assert status.recovered and status.state == JOB_DONE
            counters = revived.tracer.counters
            assert counters.get("serve.replayed_done") == 1
            assert counters.get("serve.recovered") == 0   # nothing re-ran
            # and the retained result still feeds dedup
            alias = revived.submit([REQ])[0]
            assert alias.deduped
            assert revived.result(alias.job_id, wait_s=0).cache_hit
        finally:
            revived.shutdown()

    def test_restart_reenqueues_pending_jobs(self, tmp_path):
        """A job accepted but never finished is re-enqueued on replay
        and runs to the same payload an uninterrupted daemon produces."""
        cfg = _journaled_config(tmp_path)
        core = CompileServer(cfg)             # never started: no dispatch
        job_id = core.submit([REQ])[0].job_id
        core._journal.crash()

        revived = CompileServer(cfg).start()
        try:
            assert revived.tracer.counters.get("serve.recovered") == 1
            status = revived.status(job_id)
            assert status.recovered
            result = revived.result(job_id, wait_s=120)
            assert result is not None and result.ok
            assert dumps(result.result) == dumps(run_request(REQ))
        finally:
            revived.shutdown()

    def test_recovered_duplicates_dedup_on_replay(self, tmp_path):
        """Two journaled pending jobs with one identity recover as one
        primary plus one alias — the crash does not double the work."""
        cfg = _journaled_config(tmp_path)
        core = CompileServer(cfg)
        first = core.submit([REQ])[0].job_id
        second = core.submit([REQ])[0].job_id
        core._journal.crash()

        revived = CompileServer(cfg).start()
        try:
            r1 = revived.result(first, wait_s=120)
            r2 = revived.result(second, wait_s=120)
            assert r1.ok and r2.ok
            assert dumps(r1.result) == dumps(r2.result)
            counters = revived.tracer.counters
            assert counters.get("serve.recovered") == 1
            assert counters.get("serve.dedup_inflight") == 1
            assert counters.get("serve.dispatched") == 1
        finally:
            revived.shutdown()

    def test_exhausted_attempts_quarantined_on_replay(self, tmp_path):
        """A journal showing max_attempts dispatches and no terminal
        record marks a poison job: it fails on replay instead of
        crash-looping the daemon."""
        cfg = _journaled_config(tmp_path, max_attempts=2)
        journal = JobJournal(cfg.journal_path)
        key = REQ.cache_key()
        journal.submitted("job-000001", f"measure:check:{key}", key,
                          REQ.to_json())
        journal.dispatched("job-000001", 2)
        journal.close()

        core = CompileServer(cfg).start()
        try:
            result = core.result("job-000001", wait_s=5)
            assert result is not None and not result.ok
            assert "quarantined" in result.error
            assert core.status("job-000001").state == JOB_FAILED
            assert core.tracer.counters.get("serve.quarantined") == 1
        finally:
            core.shutdown()

    def test_future_schema_journal_refused(self, tmp_path):
        cfg = _journaled_config(tmp_path)
        with open(cfg.journal_path, "w") as handle:
            handle.write('{"v": 99, "event": "submitted", '
                         '"job_id": "job-000001"}\n')
        with pytest.raises(JournalError, match="unknown schema"):
            CompileServer(cfg)

    def test_job_ids_resume_past_replayed_jobs(self, tmp_path):
        """Fresh submissions after a restart never reuse a journaled
        job id (ids are part of the journal's identity space)."""
        cfg = _journaled_config(tmp_path)
        core = CompileServer(cfg)
        old_id = core.submit([REQ])[0].job_id
        core._journal.crash()
        revived = CompileServer(cfg).start()
        try:
            fresh = revived.submit([MeasureRequest(kernel="vadd", n=25,
                                                   unroll=4)])[0]
            assert fresh.job_id != old_id
            assert int(fresh.job_id.split("-")[1]) > \
                int(old_id.split("-")[1])
        finally:
            revived.shutdown()

    def test_journaled_shutdown_leaves_queued_jobs_durable(self,
                                                           tmp_path):
        """With a journal, graceful shutdown does NOT fail queued jobs
        (the no-journal behavior): they stay journaled as pending and a
        restarted daemon completes them."""
        cfg = _journaled_config(tmp_path)
        core = CompileServer(cfg)
        core.pause()
        core.start()
        job_id = core.submit([REQ])[0].job_id
        stuck = core.shutdown()
        assert stuck is False
        assert core.result(job_id, wait_s=0) is None   # not failed
        assert core.status(job_id).state == JOB_QUEUED

        revived = CompileServer(cfg).start()
        try:
            result = revived.result(job_id, wait_s=120)
            assert result is not None and result.ok
        finally:
            revived.shutdown()

    def test_crashed_worker_retried_then_quarantined(self, tmp_path,
                                                     monkeypatch):
        """A job that kills its worker is retried within max_attempts,
        then quarantined; a healthy job sharing the wave is untouched."""
        import repro.api as api_mod

        real = api_mod.execute_payload

        def die_on_vadd(request_obj, use_cache, cache_dir, tracer=None):
            import os
            if request_obj.get("kernel") == "vadd":
                os._exit(3)
            return real(request_obj, use_cache, cache_dir, tracer)

        monkeypatch.setattr("repro.api.execute_payload", die_on_vadd)
        cfg = _journaled_config(tmp_path, jobs=2, batch=2,
                                max_attempts=2, retry_backoff_s=0.01)
        core = CompileServer(cfg)
        core.pause()
        core.start()
        poison = core.submit([REQ])[0].job_id
        healthy = core.submit([MeasureRequest(kernel="daxpy", n=24,
                                              unroll=4)])[0].job_id
        core.resume()
        try:
            good = core.result(healthy, wait_s=120)
            assert good is not None and good.ok
            bad = core.result(poison, wait_s=120)
            assert bad is not None and not bad.ok
            assert "quarantined" in bad.error
            assert core.status(poison).attempts == 2
            counters = core.tracer.counters
            assert counters.get("serve.retried") == 1
            assert counters.get("serve.quarantined") == 1
        finally:
            core.shutdown()


class TestResilience:
    """Health endpoints, typed unavailability, client backoff, and the
    shutdown-stuck surface."""

    def test_health_and_ready_endpoints(self, service):
        _, client = service
        assert client.health() == {"ok": True}
        probe = client.ready()
        assert probe["ready"] and probe["reason"] == "ok"

    def test_not_ready_before_dispatcher_starts(self, tmp_path):
        core = CompileServer(_config(tmp_path))
        ready, reason = core.ready()
        assert not ready and "not started" in reason

    def test_readyz_503_while_stopping(self, tmp_path):
        core, httpd = start_server(_config(tmp_path))
        host, port = httpd.server_address[:2]
        client = Client(f"{host}:{port}")
        core.shutdown()
        probe = client.ready()
        assert not probe["ready"]
        httpd.shutdown()
        httpd.server_close()

    def test_unreachable_server_raises_typed_error(self):
        client = Client("127.0.0.1:1", timeout_s=0.5)
        with pytest.raises(ServerUnavailable) as excinfo:
            client.stats()
        assert isinstance(excinfo.value, ReproError)
        assert "cannot reach" in str(excinfo.value)

    def test_result_poll_rides_out_restart(self, tmp_path):
        """A client long-polling a job keeps backing off through the
        daemon's death and finds its answer on the restarted daemon —
        the full crash-recovery loop, in-process."""
        cfg = _journaled_config(tmp_path)
        core, httpd = start_server(cfg)
        host, port = httpd.server_address[:2]
        client = Client(f"{host}:{port}", timeout_s=5.0)
        core.pause()                          # accepted, never dispatched
        job_id = client.submit([REQ])[0].job_id
        core._journal.crash()
        httpd.shutdown()
        httpd.server_close()                  # daemon is now "dead"

        revived = {}

        def restart():
            time.sleep(0.5)
            cfg2 = ServeConfig(**{**cfg.__dict__, "port": port})
            revived["core"], revived["httpd"] = start_server(cfg2)

        thread = threading.Thread(target=restart)
        thread.start()
        try:
            result = client.result(job_id, timeout_s=120)
            assert result.ok
            assert dumps(result.result) == dumps(run_request(REQ))
        finally:
            thread.join()
            revived["core"].shutdown()
            revived["httpd"].shutdown()
            revived["httpd"].server_close()

    def test_submit_and_wait_retries_unavailable(self, tmp_path):
        """The submit phase backs off on a dead port until the daemon
        appears (resubmission is dedup-safe), then collects normally."""
        from repro.harness.chaos import free_port

        port = free_port()
        cfg = _journaled_config(tmp_path, port=port)
        client = Client(f"127.0.0.1:{port}", timeout_s=5.0)
        started = {}

        def come_up():
            time.sleep(0.5)
            started["core"], started["httpd"] = start_server(cfg)

        thread = threading.Thread(target=come_up)
        thread.start()
        try:
            results = client.submit_and_wait([REQ], timeout_s=120)
            assert results[0].ok
        finally:
            thread.join()
            started["core"].shutdown()
            started["httpd"].shutdown()
            started["httpd"].server_close()

    def test_submit_and_wait_gives_up_at_deadline(self):
        client = Client("127.0.0.1:1", timeout_s=0.5)
        with pytest.raises(ServerUnavailable):
            client.submit_and_wait([REQ], timeout_s=1.0)

    def test_shutdown_stuck_surfaced(self, tmp_path, monkeypatch):
        """A dispatcher that cannot drain within shutdown_join_s is
        counted and reported, not silently leaked."""
        import repro.harness.runner as runner_mod

        release = threading.Event()
        real = runner_mod.run_tasks

        def wedged(kind, payloads, **kwargs):
            release.wait(20)
            return real(kind, payloads, **kwargs)

        monkeypatch.setattr(runner_mod, "run_tasks", wedged)
        core = CompileServer(_config(tmp_path,
                                     shutdown_join_s=0.2)).start()
        core.submit([REQ])
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline \
                and not core.tracer.counters.get("serve.dispatched"):
            time.sleep(0.02)
        try:
            stuck = core.shutdown()
            assert stuck is True
            assert core.tracer.counters.get("serve.shutdown_stuck") == 1
        finally:
            release.set()

    def test_dispatcher_survives_journal_write_failure(self, tmp_path,
                                                       monkeypatch):
        """A journal write failing at the dispatch barrier (ENOSPC and
        friends) fails that wave's jobs cleanly — never the dispatcher
        thread, which would strand RUNNING jobs and leave clients
        long-polling a queue nothing drains."""
        core = CompileServer(_journaled_config(tmp_path)).start()
        try:
            real = core._journal.dispatched
            armed = {"boom": True}

            def flaky(job_id, attempt, sync=True):
                if armed.get("boom"):
                    raise OSError(28, "No space left on device")
                return real(job_id, attempt, sync)

            monkeypatch.setattr(core._journal, "dispatched", flaky)
            status = core.submit([REQ])[0]
            result = core.result(status.job_id, wait_s=120)
            assert result is not None and not result.ok
            assert "journal write failed" in result.error
            assert core.tracer.counters.get("serve.journal_errors") >= 1
            assert core.ready()[0]           # dispatcher still alive
            armed["boom"] = False
            retry = core.submit([REQ])[0]
            again = core.result(retry.job_id, wait_s=120)
            assert again is not None and again.ok
        finally:
            core.shutdown()

    def test_completion_survives_journal_write_failure(self, tmp_path,
                                                       monkeypatch):
        """journal.finished() raising in the completion block degrades
        to an unrecorded terminal (the job would re-run, from cache, on
        replay) — the client still gets its result and the dispatcher
        survives."""
        core = CompileServer(_journaled_config(tmp_path)).start()
        try:
            def broken(*args, **kwargs):
                raise OSError(28, "No space left on device")

            monkeypatch.setattr(core._journal, "finished", broken)
            status = core.submit([REQ])[0]
            result = core.result(status.job_id, wait_s=120)
            assert result is not None and result.ok
            assert core.tracer.counters.get("serve.journal_errors") == 1
            assert core.ready()[0]
        finally:
            core.shutdown()

    def test_stats_surface_ready_and_journal(self, tmp_path):
        cfg = _journaled_config(tmp_path)
        core = CompileServer(cfg).start()
        try:
            core.submit([REQ])
            stats = core.stats()
            assert stats["ready"] is True
            assert stats["journal"]["path"] == cfg.journal_path
            assert stats["journal"]["jobs"] >= 1
            assert stats["config"]["max_attempts"] == cfg.max_attempts
        finally:
            core.shutdown()


class TestMultiDaemon:
    """The ROADMAP's two-daemon proof: separate daemons, one shared
    content-addressed store."""

    def test_second_daemon_serves_warm_from_shared_cache(self, tmp_path):
        """Daemon A compiles; daemon B (its own config and journal, the
        same cache directory) serves the same request with cache.hit and
        a byte-identical payload."""
        shared_cache = str(tmp_path / "cache")
        cfg_a = ServeConfig(port=0, jobs=1, cache_dir=shared_cache,
                            journal_path=str(tmp_path / "a.journal"))
        core_a = CompileServer(cfg_a).start()
        cold = core_a.result(core_a.submit([REQ])[0].job_id, wait_s=120)
        assert cold is not None and cold.ok and not cold.cache_hit
        core_a.shutdown()

        cfg_b = ServeConfig(port=0, jobs=1, cache_dir=shared_cache,
                            journal_path=str(tmp_path / "b.journal"))
        core_b = CompileServer(cfg_b).start()
        try:
            warm = core_b.result(core_b.submit([REQ])[0].job_id,
                                 wait_s=120)
            assert warm is not None and warm.ok
            assert warm.counters.get("cache.hit", 0) >= 1
            assert dumps(warm.result) == dumps(cold.result)
        finally:
            core_b.shutdown()

    def test_two_daemons_cannot_share_one_journal(self, tmp_path):
        """The journal is single-writer by flock: a second daemon
        pointed at a live journal fails fast instead of interleaving."""
        cfg = _journaled_config(tmp_path)
        core = CompileServer(cfg).start()
        try:
            with pytest.raises(JournalError, match="locked by another"):
                CompileServer(cfg)
        finally:
            core.shutdown()
