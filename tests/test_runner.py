"""Tests for the work-queue executor: serial/parallel determinism,
failure isolation, and timeout/retry policing.

The determinism tests are the contract the whole throughput layer rests
on: ``--jobs N`` must be a pure wall-clock knob.  Measurement rows and
the aggregated counter registry have to come out bit-identical whether
tasks ran inline or across worker processes.
"""

import multiprocessing
import time

import pytest

from repro.harness import run_fuzz, run_sweep, run_tasks
from repro.harness.measure import MeasureSpec
from repro.harness.runner import HANDLERS, TaskOutcome, task_handler
from repro.machine import TRACE_28_200
from repro.obs import Tracer

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="test handlers register in-process; workers "
                          "only inherit them under fork")


@task_handler("test.echo")
def _echo_task(payload, tracer):
    tracer.counters.inc("test.echo.calls")
    tracer.counters.inc("test.echo.total", payload)
    return payload * 2


@task_handler("test.flaky")
def _flaky_task(payload, tracer):
    if payload == "boom":
        raise ValueError("deterministic failure")
    if payload == "hang":
        time.sleep(60)
    return payload


class TestRunTasks:
    def test_inline_order_and_fold(self):
        tracer = Tracer()
        outcomes = run_tasks("test.echo", [3, 1, 2], jobs=1, tracer=tracer)
        assert [o.value for o in outcomes] == [6, 2, 4]
        assert all(o.ok for o in outcomes)
        assert tracer.counters.get("test.echo.calls") == 3
        assert tracer.counters.get("test.echo.total") == 6

    @needs_fork
    def test_parallel_matches_inline(self):
        serial, parallel = Tracer(), Tracer()
        a = run_tasks("test.echo", list(range(6)), jobs=1, tracer=serial)
        b = run_tasks("test.echo", list(range(6)), jobs=3, tracer=parallel)
        assert [o.value for o in a] == [o.value for o in b]
        assert serial.counters.as_dict() == parallel.counters.as_dict()

    def test_handler_exception_is_isolated(self):
        outcomes = run_tasks("test.flaky", ["ok", "boom", "fine"], jobs=1)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "deterministic failure" in outcomes[1].error
        assert outcomes[0].value == "ok" and outcomes[2].value == "fine"

    @needs_fork
    def test_parallel_handler_exception_is_isolated(self):
        outcomes = run_tasks("test.flaky", ["ok", "boom", "fine"], jobs=2)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "deterministic failure" in outcomes[1].error

    @needs_fork
    def test_timeout_kills_and_reports(self):
        outcomes = run_tasks("test.flaky", ["ok", "hang"], jobs=2,
                             timeout_s=1.0, retries=0)
        assert outcomes[0].ok and outcomes[0].value == "ok"
        assert not outcomes[1].ok
        assert "timed out" in outcomes[1].error

    @needs_fork
    def test_timeout_retries_before_failing(self):
        outcomes = run_tasks("test.flaky", ["hang"], jobs=2,
                             timeout_s=0.5, retries=1)
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 2


class TestSweepDeterminism:
    SPECS = [MeasureSpec(kernel=k, n=32)
             for k in ("daxpy", "vadd", "count_matches")]

    def _counters(self, tracer):
        return {k: v for k, v in tracer.counters.as_dict().items()
                if not k.startswith("cache.")}

    @needs_fork
    def test_parallel_sweep_bit_identical(self, tmp_path):
        serial, parallel = Tracer(), Tracer()
        a = run_sweep(self.SPECS, jobs=1, tracer=serial,
                      cache_dir=str(tmp_path / "s"))
        b = run_sweep(self.SPECS, jobs=2, tracer=parallel,
                      cache_dir=str(tmp_path / "p"))
        assert [m.row() for m in a] == [m.row() for m in b]
        assert self._counters(serial) == self._counters(parallel)

    def test_sweep_without_cache_matches_cached(self, tmp_path):
        plain, cached = Tracer(), Tracer()
        a = run_sweep(self.SPECS, jobs=1, tracer=plain, use_cache=False)
        b = run_sweep(self.SPECS, jobs=1, tracer=cached,
                      cache_dir=str(tmp_path))
        assert [m.row() for m in a] == [m.row() for m in b]
        assert self._counters(plain) == self._counters(cached)

    def test_sweep_raises_on_divergence_style_failures(self):
        with pytest.raises(RuntimeError, match="measurements failed"):
            run_sweep([MeasureSpec(kernel="no_such_kernel")], jobs=1)


class TestFuzzDeterminism:
    @needs_fork
    def test_parallel_fuzz_bit_identical(self):
        serial, parallel = Tracer(), Tracer()
        a = run_fuzz(seed=11, count=4, tracer=serial, jobs=1)
        b = run_fuzz(seed=11, count=4, tracer=parallel, jobs=2)
        assert a.row() == b.row()
        assert serial.counters.as_dict() == parallel.counters.as_dict()

    def test_fuzz_counters_fold_in_parent(self):
        tracer = Tracer()
        report = run_fuzz(seed=5, count=3, tracer=tracer, jobs=1,
                          check_faults=False)
        assert tracer.counters.get("fuzz.cases") == 3
        assert report.ok
