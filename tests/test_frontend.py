"""Tests for the TinyFlow front end (lexer, parser, lowering)."""

import pytest

from repro.errors import ParseError
from repro.frontend import compile_source, parse_source, tokenize
from repro.ir import run_module, verify_module
from repro.machine import TRACE_28_200
from repro.sim import run_compiled
from repro.trace import compile_module as trace_compile
from repro.opt import classical_pipeline


class TestLexer:
    def test_tokens(self):
        tokens = tokenize("int x = 42; // comment\nfloat y;")
        kinds = [(t.kind, t.text) for t in tokens[:-1]]
        assert ("kw", "int") in kinds
        assert ("int", "42") in kinds
        assert ("kw", "float") in kinds
        assert not any("comment" in t for _, t in kinds)

    def test_block_comment(self):
        tokens = tokenize("a /* stuff \n more */ b")
        names = [t.text for t in tokens if t.kind == "name"]
        assert names == ["a", "b"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_two_char_operators(self):
        tokens = tokenize("a <= b << 2 != c")
        ops = [t.text for t in tokens if t.kind == "op"]
        assert ops == ["<=", "<<", "!="]

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")


class TestParser:
    def test_function_signature(self):
        program = parse_source("int f(int a, float b) { return a; }")
        func = program.functions[0]
        assert func.name == "f"
        assert func.ret_type == "int"
        assert func.params == [("int", "a"), ("float", "b")]

    def test_array_decl_with_init(self):
        program = parse_source(
            "array float X[8] = {1.0, -2.5, 3};\nvoid f() { }")
        decl = program.arrays[0]
        assert decl.size == 8
        assert decl.init == [1.0, -2.5, 3]

    def test_precedence(self):
        program = parse_source("int f() { return 2 + 3 * 4; }")
        ret = program.functions[0].body[0]
        assert ret.value.op == "+"
        assert ret.value.right.op == "*"

    def test_else_if_chain(self):
        src = """int f(int x) {
            if (x > 2) { return 2; }
            else if (x > 1) { return 1; }
            else { return 0; }
        }"""
        func = parse_source(src).functions[0]
        outer = func.body[0]
        assert outer.else_body[0].cond.op == ">"

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_source("int f() { return 1 }")

    def test_bad_assignment_target(self):
        with pytest.raises(ParseError):
            parse_source("int f() { 1 + 2 = 3; }")


class TestLowering:
    def _run(self, src, func, args):
        module = compile_source(src)
        verify_module(module)
        return run_module(module, func, args).value

    def test_arithmetic_and_vars(self):
        src = "int f(int a) { int b = a * 3; return b - 1; }"
        assert self._run(src, "f", [5]) == 14

    def test_mixed_arithmetic_promotes(self):
        src = "float f(int a) { return a + 0.5; }"
        assert self._run(src, "f", [2]) == 2.5

    def test_float_to_int_truncates(self):
        src = "int f(float x) { int k = x; return k; }"
        assert self._run(src, "f", [3.9]) == 3

    def test_comparison_as_int_value(self):
        src = "int f(int a) { int hit = a > 3; return hit * 10; }"
        assert self._run(src, "f", [5]) == 10
        assert self._run(src, "f", [1]) == 0

    def test_while_loop(self):
        src = """int f(int n) {
            int total = 0;
            int i = 0;
            while (i < n) { total = total + i; i = i + 1; }
            return total;
        }"""
        assert self._run(src, "f", [5]) == 10

    def test_for_loop_and_arrays(self):
        src = """
        array int V[16];
        int f(int n) {
            int i;
            for (i = 0; i < n; i = i + 1) { V[i] = i * i; }
            return V[n - 1];
        }"""
        assert self._run(src, "f", [5]) == 16

    def test_logical_ops_eager(self):
        src = "int f(int a) { if (a > 0 && a < 10) { return 1; } return 0; }"
        assert self._run(src, "f", [5]) == 1
        assert self._run(src, "f", [50]) == 0

    def test_call_in_logical_rejected(self):
        src = """int g() { return 1; }
        int f(int a) { if (a > 0 && g() > 0) { return 1; } return 0; }"""
        with pytest.raises(ParseError, match="eagerly"):
            compile_source(src)

    def test_functions_calling_functions(self):
        src = """
        int sq(int x) { return x * x; }
        int f(int a) { return sq(a) + sq(a + 1); }
        """
        assert self._run(src, "f", [3]) == 9 + 16

    def test_recursion(self):
        src = """int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }"""
        assert self._run(src, "fib", [10]) == 55

    def test_both_arms_return(self):
        src = "int f(int a) { if (a > 0) { return 1; } else { return 2; } }"
        assert self._run(src, "f", [5]) == 1
        assert self._run(src, "f", [-5]) == 2

    def test_undeclared_variable_rejected(self):
        with pytest.raises(ParseError, match="undeclared"):
            compile_source("int f() { x = 3; return 0; }")

    def test_unknown_array_rejected(self):
        with pytest.raises(ParseError, match="unknown array"):
            compile_source("int f() { return Q[0]; }")

    def test_missing_return_value_defaults(self):
        src = "int f(int a) { if (a > 0) { return 5; } }"
        assert self._run(src, "f", [-1]) == 0


class TestFrontendEndToEnd:
    SRC = """
    array float X[64];
    array float Y[64];

    void fill(int n) {
        int i;
        for (i = 0; i < n; i = i + 1) {
            X[i] = i * 1.5;
            Y[i] = i * 0.5;
        }
    }

    float daxpy_sum(int n, float a) {
        fill(n);
        int i;
        for (i = 0; i < n; i = i + 1) {
            Y[i] = a * X[i] + Y[i];
        }
        float s = 0.0;
        for (i = 0; i < n; i = i + 1) { s = s + Y[i]; }
        return s;
    }
    """

    def test_through_whole_stack(self):
        module = compile_source(self.SRC)
        ref = run_module(module, "daxpy_sum", [32, 2.0]).value

        optimized = compile_source(self.SRC)
        classical_pipeline(unroll_factor=8, inline_budget=48).run(optimized)
        assert run_module(optimized, "daxpy_sum", [32, 2.0]).value == ref

        program = trace_compile(optimized, TRACE_28_200)
        result = run_compiled(program, optimized, "daxpy_sum", [32, 2.0])
        assert result.value == ref
