"""Regenerate the golden dependence-edge corpus (``depgraph_golden.json``).

The corpus pins the exact edge set the acyclic dependence builder produces
on every workload kernel: ``tests/test_sched_core.py`` rebuilds each graph
with the unified builder and compares against this file.  The walk mimics
the trace compiler's selection loop — select the likeliest trace, build
its graph, mark it scheduled, remove its blocks — but never schedules, so
the corpus depends only on the dependence engine and the (deterministic)
selector, not on reservation-table details.

Run from the repository root after an *intentional* dependence-rule
change::

    PYTHONPATH=src python tests/data/make_depgraph_golden.py
"""

from __future__ import annotations

import itertools
import json
import os

from repro.analysis import compute_liveness
from repro.disambig import Disambiguator, derive_memrefs
from repro.harness.measure import prepare_modules
from repro.machine import TRACE_28_200
from repro.trace import (SchedulingOptions, TraceSelector, build_trace_graph,
                         clone_function)
from repro.trace.profile import estimate_static
from repro.workloads import ALL_KERNELS, get_kernel

#: (kernel, n, unroll) cases; unroll=4 adds join/split-rich shapes
CASES = [(name, 16, 0) for name in sorted(ALL_KERNELS)] + [
    ("daxpy", 16, 4), ("dot", 16, 4), ("state_machine", 16, 4)]


def graph_record(graph) -> dict:
    nodes = [[n.kind, n.op.opcode.name if n.op is not None else None,
              n.block, n.pos, n.mem_gen] for n in graph.nodes]
    edges = sorted([src, e.dst, e.kind, e.latency]
                   for src, edges in enumerate(graph.succs) for e in edges)
    return {"nodes": nodes, "edges": edges}


def function_records(module, func) -> list[dict]:
    derive_memrefs(func)
    work = clone_function(func)
    disambig = Disambiguator(module)
    live_in_map = dict(compute_liveness(work).live_in)
    selector = TraceSelector(work, estimate_static(work))
    entry_labels = {work.entry.name}
    options = SchedulingOptions()
    records = []
    while True:
        trace = selector.next_trace()
        if trace is None:
            break
        graph = build_trace_graph(work, trace, disambig, TRACE_28_200,
                                  options, live_in_map, entry_labels)
        records.append({"blocks": list(trace.blocks),
                        **graph_record(graph)})
        for node in graph.splits():
            entry_labels.add(node.off_trace)
        selector.mark_scheduled(trace)
        for bname in trace.blocks:
            work.remove_block(bname)
    return records


def build_corpus() -> dict:
    from repro.opt import inline

    corpus = {}
    for name, n, unroll in CASES:
        # the inliner tags its blocks from a process-global counter;
        # pin it per case so the corpus (which records block names) is
        # identical no matter what ran earlier in the process
        inline._inline_counter = itertools.count()
        kernel = get_kernel(name)
        _, module = prepare_modules(kernel, n, unroll=unroll, inline=48)
        case = {}
        for fname, func in module.functions.items():
            case[fname] = function_records(module, func)
        corpus[f"{name}/n{n}/u{unroll}"] = case
    return corpus


def main() -> None:
    out = os.path.join(os.path.dirname(__file__), "depgraph_golden.json")
    corpus = build_corpus()
    with open(out, "w") as handle:
        json.dump(corpus, handle, indent=None, separators=(",", ":"),
                  sort_keys=True)
        handle.write("\n")
    n_graphs = sum(len(fn) for case in corpus.values()
                   for fn in case.values())
    n_edges = sum(len(rec["edges"]) for case in corpus.values()
                  for fn in case.values() for rec in fn)
    print(f"wrote {out}: {len(corpus)} cases, {n_graphs} graphs, "
          f"{n_edges} edges")


if __name__ == "__main__":
    main()
