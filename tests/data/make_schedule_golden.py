"""Regenerate the golden schedule corpus (``schedule_golden.json``).

The corpus pins a SHA-256 digest of every compiled function's formatted
long-instruction schedule across three slices of the input space:

* the dependence-corpus kernel cases (same ``(kernel, n, unroll)`` list
  as ``make_depgraph_golden.py``), compiled with ``strategy="trace"``;
* the pipelinable loop kernels, compiled rolled with
  ``strategy="pipeline"``;
* the first 30 differential-fuzz seeds (``generate_program``), compiled
  exactly like the fuzz harness compiles them.

``tests/test_sched_core.py`` recompiles every case with
``HeuristicParams.DEFAULT`` and compares digests: the heuristic-
parameter layer must be byte-identical to the hand-coded priorities it
replaced.  The digests in the checked-in file were produced by the
*pre-refactor* schedulers, so this is a real differential, not a
self-comparison.

Run from the repository root after an *intentional* scheduling change::

    PYTHONPATH=src python tests/data/make_schedule_golden.py
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os

from repro.harness.measure import prepare_modules
from repro.machine import TRACE_28_200, format_compiled
from repro.trace import TraceCompiler
from repro.workloads import ALL_KERNELS, get_kernel
from repro.workloads.generator import generate_program

#: (kernel, n, unroll) trace-strategy cases — the dep-corpus walk
TRACE_CASES = [(name, 16, 0) for name in sorted(ALL_KERNELS)] + [
    ("daxpy", 16, 4), ("dot", 16, 4), ("state_machine", 16, 4)]

#: rolled kernels compiled under the modulo engine
PIPELINE_KERNELS = ["daxpy", "vadd", "dot", "fir4", "stencil3",
                    "ll1_hydro", "ll3_inner", "ll12_diff", "ll5_tridiag"]

#: fuzz seeds compiled like the differential harness compiles them
FUZZ_SEEDS = list(range(30))


def program_digest(program) -> str:
    text = "\n".join(format_compiled(program.function(name))
                     for name in sorted(program.functions))
    return hashlib.sha256(text.encode()).hexdigest()


def compile_kernel(name: str, n: int, unroll: int, strategy: str) -> str:
    from repro.opt import inline

    # the inliner tags its blocks from a process-global counter; pin it
    # per case so digests are identical no matter what ran earlier
    inline._inline_counter = itertools.count()
    kernel = get_kernel(name)
    _, module = prepare_modules(kernel, n, unroll=unroll, inline=48)
    program = TraceCompiler(module, TRACE_28_200,
                            strategy=strategy).compile_module()
    return program_digest(program)


def compile_seed(seed: int) -> str:
    module = generate_program(seed)
    program = TraceCompiler(module, TRACE_28_200).compile_module()
    return program_digest(program)


def build_corpus() -> dict:
    corpus = {}
    for name, n, unroll in TRACE_CASES:
        corpus[f"trace/{name}/n{n}/u{unroll}"] = \
            compile_kernel(name, n, unroll, "trace")
    for name in PIPELINE_KERNELS:
        corpus[f"pipeline/{name}/n16/u0"] = \
            compile_kernel(name, 16, 0, "pipeline")
    for seed in FUZZ_SEEDS:
        corpus[f"fuzz/seed{seed}"] = compile_seed(seed)
    return corpus


def main() -> None:
    out = os.path.join(os.path.dirname(__file__), "schedule_golden.json")
    corpus = build_corpus()
    with open(out, "w") as handle:
        json.dump(corpus, handle, indent=None, separators=(",", ":"),
                  sort_keys=True)
        handle.write("\n")
    print(f"wrote {out}: {len(corpus)} schedule digests")


if __name__ == "__main__":
    main()
