"""Tests for the machine model: configs, resources, schedule containers,
and the Figure-3 encoding with mask-word packing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MachineError, ScheduleError
from repro.ir import Imm, Opcode, Operation, RegClass, Symbol
from repro.machine import (BLOCK_INSTRUCTIONS, BranchTest, CompiledFunction,
                           LongInstruction, MachineConfig, ReservationTable,
                           ScheduledOp, TRACE_7_200, TRACE_14_200,
                           TRACE_28_200, Unit, decode_op_word,
                           encode_instruction, encode_op_word, is_phys,
                           latency_of, needs_imm_word, pack_program,
                           phys_index, phys_reg, units_for, unpack_program)


class TestConfig:
    def test_paper_peak_numbers_full_machine(self):
        cfg = TRACE_28_200
        # paper section 6.3: 1024-bit instruction, 28 ops, 215 VLIW MIPS,
        # 60 MFLOPS
        assert cfg.instruction_bits == 1024
        assert cfg.ops_per_instruction == 28
        assert cfg.peak_vliw_mips() == pytest.approx(215, rel=0.01)
        assert cfg.peak_mflops() == pytest.approx(61.5, rel=0.03)

    def test_paper_memory_bandwidth(self):
        # section 6.4.1: four 64-bit refs per beat -> 492 MB/s
        assert TRACE_28_200.peak_memory_bandwidth_mb_s() == \
            pytest.approx(492, rel=0.01)

    def test_width_family(self):
        assert TRACE_7_200.instruction_bits == 256
        assert TRACE_14_200.instruction_bits == 512
        assert TRACE_7_200.ops_per_instruction == 7

    def test_invalid_configs_rejected(self):
        with pytest.raises(MachineError):
            MachineConfig(n_pairs=3)
        with pytest.raises(MachineError):
            MachineConfig(n_controllers=9)
        with pytest.raises(MachineError):
            MachineConfig(banks_per_controller=0)

    def test_register_pools_scale(self):
        assert TRACE_28_200.int_regs == 256
        assert TRACE_7_200.int_regs == 64


class TestResources:
    def test_float_ops_only_on_f_units(self):
        fadd = Operation(Opcode.FADD, phys_reg(RegClass.FLT, 1),
                         [phys_reg(RegClass.FLT, 2), phys_reg(RegClass.FLT, 3)])
        assert units_for(fadd) == (Unit.FALU,)
        fmul = Operation(Opcode.FMUL, phys_reg(RegClass.FLT, 1),
                         [phys_reg(RegClass.FLT, 2), phys_reg(RegClass.FLT, 3)])
        assert units_for(fmul) == (Unit.FMUL,)

    def test_int_ops_can_use_f_board_alus(self):
        mov = Operation(Opcode.MOV, phys_reg(RegClass.INT, 1),
                        [phys_reg(RegClass.INT, 2)])
        assert Unit.FALU in units_for(mov)
        assert Unit.IALU0_E in units_for(mov)

    def test_paper_latencies(self):
        cfg = MachineConfig()
        mk = lambda opc: Operation(opc, phys_reg(RegClass.FLT, 1),
                                   [phys_reg(RegClass.FLT, 2),
                                    phys_reg(RegClass.FLT, 3)])
        assert latency_of(mk(Opcode.FADD), cfg) == 6
        assert latency_of(mk(Opcode.FMUL), cfg) == 7
        assert latency_of(mk(Opcode.FDIV), cfg) == 25
        load = Operation(Opcode.LOAD, phys_reg(RegClass.INT, 1),
                         [phys_reg(RegClass.INT, 2), Imm(0)])
        assert latency_of(load, cfg) == 7

    def test_unit_beat_offsets(self):
        assert Unit.IALU0_E.beat_offset == 0
        assert Unit.IALU0_L.beat_offset == 1
        assert Unit.FALU.beat_offset == 0

    def test_reservation_unit_exclusive(self):
        table = ReservationTable(MachineConfig())
        table.take_unit(0, 0, Unit.IALU0_E)
        assert not table.unit_free(0, 0, Unit.IALU0_E)
        assert table.unit_free(0, 0, Unit.IALU1_E)
        assert table.unit_free(1, 0, Unit.IALU0_E)
        with pytest.raises(ScheduleError):
            table.take_unit(0, 0, Unit.IALU0_E)

    def test_bus_capacity(self):
        cfg = MachineConfig(n_pairs=2)
        table = ReservationTable(cfg)
        table.take_bus("iload", 10)
        table.take_bus("iload", 10)
        assert not table.bus_free("iload", 10)
        assert table.bus_free("iload", 11)
        with pytest.raises(ScheduleError):
            table.take_bus("iload", 10)

    def test_multibeat_bus_hold(self):
        cfg = MachineConfig(n_pairs=1)
        table = ReservationTable(cfg)
        table.take_bus("fload", 5, beats=2)
        assert not table.bus_free("fload", 5)
        assert not table.bus_free("fload", 6)
        assert table.bus_free("fload", 7)

    def test_imm_word_sharing_same_value(self):
        table = ReservationTable(MachineConfig())
        table.take_imm(0, 0, 0, 1000)
        assert table.imm_free(0, 0, 0, 1000)     # same value shares
        assert not table.imm_free(0, 0, 0, 2000)
        assert table.imm_free(0, 0, 1, 2000)     # other beat free

    def test_mem_issue_per_board_per_beat(self):
        table = ReservationTable(MachineConfig())
        table.take_mem_issue(0, 0, 0)
        assert not table.mem_issue_free(0, 0, 0)
        assert table.mem_issue_free(0, 0, 1)
        assert table.mem_issue_free(0, 1, 0)

    def test_branch_slot_per_pair(self):
        table = ReservationTable(MachineConfig())
        table.take_branch(3, 0)
        assert not table.branch_free(3, 0)
        assert table.branch_free(3, 1)
        assert table.branches_in(3) == 1

    def test_needs_imm_word(self):
        small = Operation(Opcode.ADD, phys_reg(RegClass.INT, 1),
                          [phys_reg(RegClass.INT, 2), Imm(5)])
        assert not needs_imm_word(small)
        big = Operation(Opcode.ADD, phys_reg(RegClass.INT, 1),
                        [phys_reg(RegClass.INT, 2), Imm(5000)])
        assert needs_imm_word(big)
        sym = Operation(Opcode.MOV, phys_reg(RegClass.INT, 1), [Symbol("A")])
        assert needs_imm_word(sym)
        flt = Operation(Opcode.FMOV, phys_reg(RegClass.FLT, 1),
                        [Imm(1.0, RegClass.FLT)])
        assert needs_imm_word(flt)


class TestPhysRegs:
    def test_roundtrip(self):
        for cls in RegClass:
            reg = phys_reg(cls, 7)
            assert is_phys(reg)
            assert phys_index(reg) == 7

    def test_non_phys_detected(self):
        from repro.ir import VReg
        assert not is_phys(VReg("t.3", RegClass.INT))


def _sched(op, pair=0, unit=Unit.IALU0_E) -> ScheduledOp:
    return ScheduledOp(op, pair, unit)


class TestEncoding:
    def test_op_word_roundtrip(self):
        op = Operation(Opcode.ADD, phys_reg(RegClass.INT, 5),
                       [phys_reg(RegClass.INT, 6), phys_reg(RegClass.INT, 7)])
        decoded = decode_op_word(encode_op_word(_sched(op)))
        assert decoded.opcode is Opcode.ADD
        assert decoded.dest_index == 5
        assert decoded.dest_bank is RegClass.INT
        assert decoded.src1_index == 6
        assert decoded.src2_index == 7
        assert not decoded.imm_flag

    def test_small_immediate_inline(self):
        op = Operation(Opcode.ADD, phys_reg(RegClass.INT, 1),
                       [phys_reg(RegClass.INT, 2), Imm(-3)])
        decoded = decode_op_word(encode_op_word(_sched(op)))
        assert decoded.imm_flag
        assert decoded.src2_index - 32 == -3

    def test_empty_slot_decodes_none(self):
        assert decode_op_word(0) is None

    def test_instruction_word_count_by_config(self):
        li = LongInstruction()
        assert len(encode_instruction(li, TRACE_7_200)) == 8
        assert len(encode_instruction(li, TRACE_14_200)) == 16
        assert len(encode_instruction(li, TRACE_28_200)) == 32

    def test_unit_slice_positions(self):
        op = Operation(Opcode.ADD, phys_reg(RegClass.INT, 1),
                       [phys_reg(RegClass.INT, 2), phys_reg(RegClass.INT, 3)])
        li = LongInstruction(ops=[ScheduledOp(op, 1, Unit.IALU1_L)])
        words = encode_instruction(li, TRACE_28_200)
        # pair 1, unit IALU1_L -> word index 8 + 6
        assert words[14] != 0
        assert sum(1 for w in words if w) == 1

    def test_wide_immediate_occupies_imm_word(self):
        op = Operation(Opcode.ADD, phys_reg(RegClass.INT, 1),
                       [phys_reg(RegClass.INT, 2), Imm(100000)])
        li = LongInstruction(ops=[ScheduledOp(op, 0, Unit.IALU0_E)])
        words = encode_instruction(li, TRACE_7_200)
        assert words[1] == 100000     # early immediate word

    def test_branch_test_encoded(self):
        li = LongInstruction(
            branches=[BranchTest(phys_reg(RegClass.PRED, 2), "target", 0)])
        words = encode_instruction(li, TRACE_7_200)
        decoded_field = words[0] & 0xF
        assert decoded_field == 3     # element index + 1


class TestMaskPacking:
    def _encode_simple(self, n_instructions, config, fill=1):
        instrs = []
        for i in range(n_instructions):
            ops = []
            for k in range(fill):
                op = Operation(Opcode.ADD, phys_reg(RegClass.INT, 1),
                               [phys_reg(RegClass.INT, 2),
                                phys_reg(RegClass.INT, 3)])
                ops.append(ScheduledOp(op, k % config.n_pairs,
                                       Unit.IALU0_E if k < config.n_pairs
                                       else Unit.IALU1_E))
            instrs.append(LongInstruction(ops=ops))
        return [encode_instruction(li, config) for li in instrs]

    def test_pack_unpack_roundtrip(self):
        cfg = TRACE_28_200
        words = self._encode_simple(10, cfg, fill=3)
        packed = pack_program(words, cfg)
        assert unpack_program(packed) == words

    def test_noops_cost_nothing(self):
        cfg = TRACE_28_200
        words = self._encode_simple(8, cfg, fill=1)
        packed = pack_program(words, cfg)
        # 2 blocks of masks + 8 field words (one op per instruction)
        assert packed.mask_words == 8
        assert packed.field_words == 8
        assert packed.packed_bytes < packed.unpacked_bytes / 5

    def test_full_instructions_pack_dense(self):
        cfg = TRACE_7_200
        words = self._encode_simple(4, cfg, fill=1)
        packed = pack_program(words, cfg)
        assert packed.packed_bytes == 4 * (4 + 4)   # 4 masks + 4 fields

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 25),
           pairs=st.sampled_from([1, 2, 4]),
           seed=st.integers(0, 2 ** 16))
    def test_property_roundtrip_random_sparsity(self, n, pairs, seed):
        import random
        rng = random.Random(seed)
        cfg = MachineConfig(n_pairs=pairs)
        words = []
        wpi = 8 * pairs
        for _ in range(n):
            words.append([rng.randint(1, 2 ** 32 - 1)
                          if rng.random() < 0.3 else 0
                          for _ in range(wpi)])
        packed = pack_program(words, cfg)
        assert unpack_program(packed) == words
        nonzero = sum(1 for iw in words for w in iw if w)
        assert packed.field_words == nonzero


class TestCompiledContainers:
    def test_label_resolution(self):
        cf = CompiledFunction("f", MachineConfig(), [LongInstruction()],
                              {"entry": 0})
        assert cf.resolve("entry") == 0
        with pytest.raises(MachineError):
            cf.resolve("ghost")

    def test_fill_ratio(self):
        cfg = TRACE_7_200
        op = Operation(Opcode.ADD, phys_reg(RegClass.INT, 1),
                       [phys_reg(RegClass.INT, 2), phys_reg(RegClass.INT, 3)])
        li = LongInstruction(ops=[_sched(op)])
        cf = CompiledFunction("f", cfg, [li, LongInstruction()], {"e": 0})
        assert cf.op_count() == 1
        assert cf.fill_ratio() == pytest.approx(1 / 14)
