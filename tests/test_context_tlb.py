"""Process-tag (ASID) allocation and TLB page-boundary edge cases.

The 8-bit hardware ASID space (paper section 8.1) is managed as an LRU
table; the data TLB translates 8 KB pages.  These tests pin the eviction
and reuse behaviour of the tag table and the exact page-boundary
behaviour of the TLB model.
"""

import pytest

from repro.machine import TRACE_28_200
from repro.sim import ASID_COUNT, PAGE_SHIFT, ProcessTagTable, TlbModel

PAGE = 1 << PAGE_SHIFT


class TestProcessTagTable:
    def test_allocates_lowest_free_tags(self):
        tags = ProcessTagTable()
        assert [tags.assign(pid) for pid in ("a", "b", "c")] == [0, 1, 2]
        assert len(tags) == 3

    def test_reassign_is_a_hit_and_keeps_the_tag(self):
        tags = ProcessTagTable()
        first = tags.assign("a")
        tags.assign("b")
        assert tags.assign("a") == first
        assert tags.hits == 1
        assert tags.assignments == 3
        assert tags.evictions == 0

    def test_lru_eviction_picks_least_recent(self):
        tags = ProcessTagTable(capacity=2)
        tags.assign("a")
        tags.assign("b")
        tags.assign("a")                # refresh a; b is now LRU
        tags.assign("c")                # evicts b
        assert tags.evictions == 1
        assert "b" not in tags and "a" in tags and "c" in tags

    def test_evicted_tag_is_reused(self):
        tags = ProcessTagTable(capacity=2)
        tags.assign("a")
        b_tag = tags.assign("b")
        tags.assign("a")
        assert tags.assign("c") == b_tag     # inherits the victim's tag
        # the evicted process comes back as a fresh allocation
        tags.assign("b")
        assert tags.evictions == 2
        assert tags.hits == 1

    def test_release_frees_the_tag(self):
        tags = ProcessTagTable(capacity=1)
        tags.assign("a")
        tags.release("a")
        assert "a" not in tags and len(tags) == 0
        tags.assign("b")
        assert tags.evictions == 0           # no eviction needed

    def test_release_unknown_pid_is_a_noop(self):
        tags = ProcessTagTable()
        tags.release("ghost")
        assert len(tags) == 0

    def test_purge_resets_everything(self):
        tags = ProcessTagTable()
        for pid in range(10):
            tags.assign(pid)
        tags.purge()
        assert len(tags) == 0 and tags.purges == 1
        assert tags.assign(3) == 0           # tags restart from zero

    def test_default_capacity_is_the_asid_space(self):
        tags = ProcessTagTable()
        assert tags.capacity == ASID_COUNT
        for pid in range(ASID_COUNT):
            tags.assign(pid)
        assert tags.evictions == 0
        tags.assign("one more")
        assert tags.evictions == 1

    def test_rejects_empty_capacity(self):
        with pytest.raises(ValueError):
            ProcessTagTable(capacity=0)


class TestTlbPageBoundaries:
    def _tlb(self, **kwargs) -> TlbModel:
        return TlbModel(TRACE_28_200, **kwargs)

    def test_same_page_accesses_share_one_translation(self):
        tlb = self._tlb()
        assert not tlb.access(0x1000)            # cold miss, mid-page 0
        assert tlb.access(PAGE - 8)              # last word of page 0
        assert tlb.stats.misses == 1

    def test_accesses_straddling_a_boundary_miss_twice(self):
        tlb = self._tlb()
        base = 4 * PAGE
        assert not tlb.access(base - 8)          # last word of page 3
        assert not tlb.access(base)              # first word of page 4
        assert tlb.stats.misses == 2

    def test_page_zero_and_exact_boundary_addresses(self):
        tlb = self._tlb()
        tlb.access(0)
        assert tlb.access(PAGE - 1)              # still page 0
        assert not tlb.access(PAGE)              # first byte of page 1
        assert tlb.stats.misses == 2

    def test_inject_evict_forces_one_cold_miss(self):
        tlb = self._tlb()
        tlb.access(0x2000)
        assert tlb.access(0x2000)
        tlb.inject_evict(0x2000 + 16)            # same page, any offset
        assert tlb.stats.injected_evictions == 1
        assert not tlb.access(0x2000)
        assert tlb.stats.misses == 2

    def test_inject_evict_of_nonresident_page_is_a_noop(self):
        tlb = self._tlb()
        tlb.inject_evict(0x2000)
        assert tlb.stats.injected_evictions == 0

    def test_inject_flush_drops_every_page(self):
        tlb = self._tlb()
        for page in range(4):
            tlb.access(page * PAGE)
        tlb.inject_flush()
        assert tlb.stats.injected_flushes == 1
        for page in range(4):
            assert not tlb.access(page * PAGE)
        assert tlb.stats.misses == 8

    def test_asid_keys_are_per_process_on_tagged_tlb(self):
        tlb = self._tlb(tagged=True)
        tlb.access(0x1000)
        tlb.switch_process(7)
        assert not tlb.access(0x1000)            # other process, same page
        tlb.switch_process(0)
        assert tlb.access(0x1000)                # original survives

    def test_untagged_tlb_shares_pages_across_switches(self):
        tlb = self._tlb(tagged=False)
        tlb.access(0x1000)
        tlb.switch_process(7)                    # flush-on-switch
        assert tlb.stats.flushes == 1
        assert not tlb.access(0x1000)

    def test_capacity_eviction_is_lru_across_pages(self):
        tlb = self._tlb(entries=2)
        assert not tlb.access(0 * PAGE)
        assert not tlb.access(1 * PAGE)
        assert tlb.access(0 * PAGE)              # refresh page 0
        assert not tlb.access(2 * PAGE)          # evicts page 1
        assert not tlb.access(1 * PAGE)
        assert tlb.access(2 * PAGE)
