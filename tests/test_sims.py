"""Tests for the simulators: timing semantics, stats, machine components."""

import math

import pytest

from repro.errors import SimError
from repro.ir import (IRBuilder, MemoryImage, Module, Opcode, RegClass, VReg,
                      run_module)
from repro.machine import (MachineConfig, TRACE_7_200, TRACE_28_200,
                           BranchTest, CompiledFunction, CompiledProgram,
                           LongInstruction, ScheduledOp, Unit, phys_reg)
from repro.ir import Imm, Operation
from repro.sim import (ICacheModel, ScalarSimulator, TlbModel,
                       VliwSimulator, context_switch_cost,
                       register_file_words, run_compiled, run_scalar,
                       run_scoreboard)
from repro.trace import compile_module

from .conftest import build_diamond, build_sum_array


def _hand_program(instructions, param_regs, entry="entry",
                  config=TRACE_28_200, ret_reg=None):
    cf = CompiledFunction("f", config, instructions, {entry: 0}, param_regs)
    cf.meta["entry_label"] = entry
    program = CompiledProgram(config=config)
    program.add(cf)
    return program


class TestVliwTiming:
    def test_two_beats_per_instruction(self):
        r0 = phys_reg(RegClass.INT, 0)
        instrs = [
            LongInstruction(ops=[ScheduledOp(
                Operation(Opcode.ADD, r0, [r0, Imm(1)]), 0, Unit.IALU0_E)]),
            LongInstruction(special=("ret", r0)),
        ]
        program = _hand_program(instrs, [r0])
        sim = VliwSimulator(program, MemoryImage())
        result = sim.run("f", [41])
        assert result.value == 42
        assert sim.stats.beats == 4

    def test_pipeline_latency_visible(self):
        """A consumer in the very next instruction sees the OLD value if the
        producer's pipeline has not drained — exposed pipelines for real."""
        r0 = phys_reg(RegClass.FLT, 0)
        r1 = phys_reg(RegClass.FLT, 1)
        # f1 = f0 + 1.0 (6 beats); the fmov in the next instruction reads
        # f1 at beat 2, before the fadd lands at beat 6 -> it must see the
        # OLD f1 (99.0).  The fmov itself (an FALU op) also takes 6 beats,
        # so the ret is padded out far enough to observe its result.
        instrs = [
            LongInstruction(ops=[ScheduledOp(
                Operation(Opcode.FADD, r1, [r0, Imm(1.0, RegClass.FLT)]),
                0, Unit.FALU)]),
            LongInstruction(ops=[ScheduledOp(
                Operation(Opcode.FMOV, r0, [r1]), 0, Unit.FALU)]),
            LongInstruction(),
            LongInstruction(),
            LongInstruction(),
            LongInstruction(special=("ret", r0)),
        ]
        program = _hand_program(instrs, [r0, r1])
        sim = VliwSimulator(program, MemoryImage())
        result = sim.run("f", [10.0, 99.0])
        assert result.value == 99.0

    def test_self_draining_write_lands_after_taken_branch(self):
        """A write in flight when a branch leaves still lands (self-drain)."""
        r0 = phys_reg(RegClass.INT, 0)
        rf = phys_reg(RegClass.FLT, 0)
        b0 = phys_reg(RegClass.PRED, 0)
        instrs = [
            # fadd issues here (lands at beat 6), branch leaves at end of
            # this instruction
            LongInstruction(
                ops=[ScheduledOp(Operation(
                    Opcode.FADD, rf, [rf, Imm(1.0, RegClass.FLT)]),
                    0, Unit.FALU)],
                branches=[BranchTest(b0, "target", 0)]),
            LongInstruction(special=("ret", r0)),      # not executed
            LongInstruction(special=("ret", rf)),      # target
        ]
        program = _hand_program(instrs, [r0, rf, b0])
        program.function("f").label_map["target"] = 2
        sim = VliwSimulator(program, MemoryImage())
        result = sim.run("f", [7, 1.5, 1])
        # ret at instruction 2 reads rf at beat 4; the write lands at 6;
        # BUT landing happens during instruction 2's processing... the ret
        # captures as of beat 4: the OLD value
        assert result.value == 1.5

    def test_bank_stall_only_when_same_bank(self):
        """Two stores 1 beat apart: same bank stalls, different banks not."""
        def run_with(offset_bytes):
            m = Module()
            m.add_array("A", 64, 8)
            r0 = phys_reg(RegClass.INT, 0)
            store1 = Operation(Opcode.STORE, None, [r0, r0, Imm(0)])
            store2 = Operation(Opcode.STORE, None,
                               [r0, r0, Imm(offset_bytes)])
            instrs = [
                LongInstruction(ops=[
                    ScheduledOp(store1, 0, Unit.IALU0_E, "store",
                                gamble=True),
                    ScheduledOp(store2, 0, Unit.IALU0_L, "store",
                                gamble=True)]),
                LongInstruction(special=("ret", r0)),
            ]
            program = _hand_program(instrs, [r0])
            memory = MemoryImage(m)
            sim = VliwSimulator(program, memory)
            sim.run("f", [memory.address_of("A")])
            return sim.stats.bank_stall_beats

        total_banks = TRACE_28_200.total_banks
        assert run_with(0) > 0                      # same word: conflict
        assert run_with(8 * total_banks) > 0        # same bank, next round
        assert run_with(8) == 0                     # adjacent bank: fine

    def test_same_beat_controller_conflict_detected(self):
        m = Module()
        m.add_array("A", 1024, 8)
        r0 = phys_reg(RegClass.INT, 0)
        # two stores in the SAME beat to addresses n_controllers*8 apart:
        # same controller -> the compiler must never emit this
        delta = TRACE_28_200.n_controllers * 8
        store1 = Operation(Opcode.STORE, None, [r0, r0, Imm(0)])
        store2 = Operation(Opcode.STORE, None, [r0, r0, Imm(delta)])
        instrs = [
            LongInstruction(ops=[
                ScheduledOp(store1, 0, Unit.IALU0_E, "store"),
                ScheduledOp(store2, 1, Unit.IALU0_E, "store")]),
            LongInstruction(special=("ret", r0)),
        ]
        program = _hand_program(instrs, [r0])
        memory = MemoryImage(m)
        sim = VliwSimulator(program, memory)
        with pytest.raises(SimError, match="controller"):
            sim.run("f", [memory.address_of("A")])

    def test_stats_time_conversion(self, sum_array_module):
        prog = compile_module(sum_array_module, TRACE_28_200)
        res = run_compiled(prog, sum_array_module, "sumA", [8])
        assert res.stats.time_us(TRACE_28_200) == pytest.approx(
            res.stats.beats * 65e-3)


class TestScalarSim:
    def test_matches_interpreter(self, sum_array_module):
        ref = run_module(sum_array_module, "sumA", [8])
        result = run_scalar(sum_array_module, "sumA", [8])
        assert result.value == ref.value

    def test_latency_charged(self):
        b = IRBuilder()
        b.function("f", [("x", RegClass.FLT)], ret_class=RegClass.FLT)
        b.block("entry")
        t = b.fadd(b.param("x"), 1.0)
        b.ret(b.fmul(t, 2.0))
        with_dep = run_scalar(b.module, "f", [1.0]).stats.cycles

        b2 = IRBuilder()
        b2.function("f", [("x", RegClass.FLT)], ret_class=RegClass.FLT)
        b2.block("entry")
        t1 = b2.fadd(b2.param("x"), 1.0)
        t2 = b2.fmul(b2.param("x"), 2.0)   # independent
        b2.ret(b2.fadd(t1, t2))
        # same op count + 1, but the dependent chain pays latency stalls
        independent = run_scalar(b2.module, "f", [1.0]).stats.cycles
        assert with_dep >= 1

    def test_branch_bubbles_counted(self, diamond_module):
        result = run_scalar(diamond_module, "absdiff", [9, 4])
        assert result.stats.branch_bubbles >= 1


class TestScoreboardSim:
    def test_matches_interpreter(self, sum_array_module):
        ref = run_module(sum_array_module, "sumA", [8])
        assert run_scoreboard(sum_array_module, "sumA", [8]).value == \
            ref.value

    def test_overlaps_independent_work_within_block(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        temps = [b.add(b.param("a"), k) for k in range(8)]
        b.ret(temps[-1])
        board = run_scoreboard(b.module, "f", [3]).stats.cycles
        scalar = run_scalar(b.module, "f", [3]).stats.cycles
        assert board < scalar

    def test_does_not_cross_branches(self, sum_array_module):
        """The block window limits speedup on loop code (the paper's 2-3x
        argument) — it must stay well under the VLIW's."""
        from repro.opt import classical_pipeline
        module = build_sum_array(64)
        scalar = run_scalar(module, "sumA", [60]).stats.beats
        board = run_scoreboard(module, "sumA", [60]).stats.beats
        assert 1.0 <= scalar / board < 6.0


class TestICache:
    def test_cold_misses_then_hits(self, sum_array_module):
        prog = compile_module(sum_array_module, TRACE_28_200)
        cache = ICacheModel(TRACE_28_200)
        mem = MemoryImage(sum_array_module)
        sim = VliwSimulator(prog, mem, icache=cache)
        sim.run("sumA", [32])
        assert cache.stats.misses > 0
        assert cache.stats.miss_rate < 0.2      # loop hits after warmup
        assert cache.stats.refill_beats > 0

    def test_untagged_cache_flushes_on_switch(self):
        cache = ICacheModel(TRACE_28_200, tagged=False)
        cache.switch_process(1)
        assert cache.stats.flushes == 1
        tagged = ICacheModel(TRACE_28_200, tagged=True)
        tagged.switch_process(1)
        assert tagged.stats.flushes == 0

    def test_refill_cost_scales_with_density(self, sum_array_module):
        prog = compile_module(sum_array_module, TRACE_28_200)
        cache = ICacheModel(TRACE_28_200)
        cache.register_function(prog.function("sumA"))
        beats = cache.access("sumA", 0)
        # a sparse block must refill in far fewer beats than a full one
        full_words = 4 + 4 * 32
        assert 0 < beats < full_words // TRACE_28_200.n_load_buses


class TestTlb:
    def test_miss_then_hit(self):
        tlb = TlbModel(TRACE_28_200)
        assert not tlb.access(0x4000)
        assert tlb.access(0x4000 + 8)     # same 8KB page
        assert not tlb.access(0x4000 + (1 << 13))

    def test_batched_trap_cost(self):
        tlb = TlbModel(TRACE_28_200)
        for k in range(4):
            tlb.access(k << 13)
        beats_batched = tlb.end_instruction()
        tlb2 = TlbModel(TRACE_28_200)
        total_individual = 0
        for k in range(4):
            tlb2.access(k << 13)
            total_individual += tlb2.end_instruction()
        # the history queue batches 4 misses into one trap entry
        assert beats_batched < total_individual

    def test_asid_tagging_survives_switch(self):
        tlb = TlbModel(TRACE_28_200, tagged=True)
        tlb.access(0x4000)
        tlb.switch_process(1)
        tlb.access(0x4000)              # other process: own entry
        tlb.switch_process(0)
        assert tlb.access(0x4000)       # original entry still resident

    def test_untagged_flushes(self):
        tlb = TlbModel(TRACE_28_200, tagged=False)
        tlb.access(0x4000)
        tlb.switch_process(1)
        tlb.switch_process(0)
        assert not tlb.access(0x4000)   # flushed twice: miss again

    def test_capacity_eviction(self):
        tlb = TlbModel(TRACE_28_200, entries=4)
        for k in range(5):
            tlb.access(k << 13)
        tlb.end_instruction()
        assert not tlb.access(0 << 13)   # LRU victim was page 0


class TestContextSwitch:
    def test_fifteen_microseconds_any_config(self):
        for config in (TRACE_7_200, TRACE_28_200):
            report = context_switch_cost(config)
            assert report.total_us(config) == pytest.approx(15, abs=1.0)

    def test_bandwidth_scales_with_registers(self):
        assert register_file_words(TRACE_28_200) == \
            4 * register_file_words(TRACE_7_200)

    def test_untagged_switch_much_slower(self):
        tagged = context_switch_cost(TRACE_28_200, tagged=True)
        untagged = context_switch_cost(TRACE_28_200, tagged=False)
        assert untagged.total_beats > 5 * tagged.total_beats
