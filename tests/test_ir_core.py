"""Unit tests for operations, blocks, functions, and the builder."""

import pytest

from repro.errors import IRError
from repro.ir import (CMP_NEGATION, OP_INFO, Category, Function, IRBuilder,
                      Imm, Module, Opcode, Operation, RegClass, VReg,
                      make_br, make_jmp, make_ret, verify_module)


class TestOpcodeMetadata:
    def test_every_opcode_has_info(self):
        for opcode in Opcode:
            assert opcode in OP_INFO

    def test_terminators_flagged(self):
        for opcode in (Opcode.BR, Opcode.JMP, Opcode.RET, Opcode.HALT):
            assert OP_INFO[opcode].is_terminator

    def test_stores_have_side_effects_and_no_dest(self):
        for opcode in (Opcode.STORE, Opcode.FSTORE):
            assert OP_INFO[opcode].side_effect
            assert OP_INFO[opcode].dest_class is None

    def test_speculative_loads_do_not_trap(self):
        for opcode in (Opcode.LOADS, Opcode.FLOADS):
            assert OP_INFO[opcode].speculative
            assert not OP_INFO[opcode].can_trap

    def test_cmp_negation_is_an_involution(self):
        for opcode, negated in CMP_NEGATION.items():
            assert CMP_NEGATION[negated] is opcode
            assert opcode is not negated

    def test_commutative_ops_have_two_matching_srcs(self):
        for opcode, info in OP_INFO.items():
            if info.commutative:
                assert len(info.src_classes) >= 2
                assert info.src_classes[0] is info.src_classes[1]


class TestOperation:
    def test_unique_uids(self):
        a = Operation(Opcode.NOP)
        b = Operation(Opcode.NOP)
        assert a.uid != b.uid

    def test_copy_points_origin_at_source(self):
        op = Operation(Opcode.ADD, VReg("x", RegClass.INT),
                       [VReg("a", RegClass.INT), Imm(1)])
        dup = op.copy()
        assert dup.uid != op.uid
        assert dup.origin == op.uid
        # a copy of a copy still points at the root
        assert dup.copy().origin == op.uid

    def test_copy_has_independent_srcs_list(self):
        op = Operation(Opcode.ADD, VReg("x", RegClass.INT),
                       [VReg("a", RegClass.INT), Imm(1)])
        dup = op.copy()
        dup.replace_src(VReg("a", RegClass.INT), Imm(9))
        assert op.srcs[0] == VReg("a", RegClass.INT)

    def test_replace_src_counts(self):
        a = VReg("a", RegClass.INT)
        op = Operation(Opcode.ADD, VReg("x", RegClass.INT), [a, a])
        assert op.replace_src(a, Imm(5)) == 2

    def test_category_queries(self):
        load = Operation(Opcode.LOAD, VReg("x", RegClass.INT),
                         [Imm(0x1000), Imm(0)])
        assert load.is_load and load.is_memory and not load.is_store
        br = make_br(VReg("p", RegClass.PRED), "a", "b")
        assert br.is_branch and br.is_terminator


class TestBasicBlock:
    def test_append_after_terminator_fails(self):
        m = Module()
        f = m.add_function(Function("f"))
        blk = f.add_block("entry")
        blk.append(make_ret())
        with pytest.raises(IRError):
            blk.append(Operation(Opcode.NOP))

    def test_successors_order(self):
        m = Module()
        f = m.add_function(Function("f"))
        blk = f.add_block("entry")
        blk.append(make_br(VReg("p", RegClass.PRED), "t", "e"))
        assert blk.successors() == ["t", "e"]

    def test_retarget(self):
        m = Module()
        f = m.add_function(Function("f"))
        blk = f.add_block("entry")
        blk.append(make_jmp("old"))
        assert blk.retarget("old", "new") == 1
        assert blk.successors() == ["new"]

    def test_body_excludes_terminator(self):
        m = Module()
        f = m.add_function(Function("f"))
        blk = f.add_block("entry")
        blk.append(Operation(Opcode.NOP))
        blk.append(make_ret())
        assert len(blk.body) == 1
        assert len(blk.ops) == 2


class TestFunction:
    def test_entry_is_first_block(self):
        f = Function("f")
        f.add_block("a")
        f.add_block("b")
        assert f.entry.name == "a"

    def test_duplicate_block_rejected(self):
        f = Function("f")
        f.add_block("a")
        with pytest.raises(IRError):
            f.add_block("a")

    def test_fresh_vreg_unique(self):
        f = Function("f")
        regs = {f.fresh_vreg(RegClass.INT) for _ in range(100)}
        assert len(regs) == 100

    def test_predecessors(self, diamond_module):
        f = diamond_module.function("absdiff")
        preds = f.predecessors()
        assert sorted(preds["join"]) == ["ge", "lt"]
        assert preds["entry"] == []

    def test_predecessor_unknown_target_raises(self):
        m = Module()
        f = m.add_function(Function("f"))
        f.add_block("entry").append(make_jmp("nowhere"))
        with pytest.raises(IRError):
            f.predecessors()


class TestBuilder:
    def test_fresh_dests_created(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        t = b.add(b.param("a"), 1)
        assert t.cls is RegClass.INT
        b.ret(t)
        verify_module(b.module)

    def test_int_literal_coerced_to_float_imm(self):
        b = IRBuilder()
        b.function("f", [], ret_class=RegClass.FLT)
        b.block("entry")
        t = b.fadd(1, 2)       # plain ints in float slots
        b.ret(t)
        verify_module(b.module)

    def test_param_lookup_fails_for_unknown(self):
        b = IRBuilder()
        b.function("f", [("a", RegClass.INT)])
        with pytest.raises(IRError):
            b.param("zz")

    def test_call_infers_signature_from_module(self):
        b = IRBuilder()
        b.function("callee", [("x", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.add(b.param("x"), 1))
        b.function("caller", [], ret_class=RegClass.INT)
        b.block("entry")
        r = b.call("callee", [41])
        assert r is not None and r.cls is RegClass.INT
        b.ret(r)
        verify_module(b.module)

    def test_ret_value_in_void_function_rejected(self):
        b = IRBuilder()
        b.function("f", [])
        b.block("entry")
        with pytest.raises(IRError):
            b.ret(3)

    def test_wrong_operand_count_rejected(self):
        b = IRBuilder()
        b.function("f", [])
        b.block("entry")
        with pytest.raises(IRError):
            b.emit(Opcode.ADD, [1])
