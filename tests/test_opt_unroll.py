"""Tests for the loop unroller, including semantic-preservation properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import find_loops
from repro.ir import (IRBuilder, MemRef, Module, Opcode, RegClass, VReg,
                      run_module, verify_module)
from repro.opt import LoopUnroll, classical_pipeline

from .conftest import build_sum_array


def build_countdown(start_free: bool = True) -> Module:
    """f(n) = n + (n-1) + ... + 1 via a downward-counting loop."""
    b = IRBuilder()
    b.function("f", [("n", RegClass.INT)], ret_class=RegClass.INT)
    i = VReg("i", RegClass.INT)
    acc = VReg("acc", RegClass.INT)
    b.block("entry")
    b.mov(b.param("n"), dest=i)
    b.mov(0, dest=acc)
    b.jmp("head")
    b.block("head")
    p = b.cmpgt(i, 0)
    b.br(p, "body", "exit")
    b.block("body")
    b.add(acc, i, dest=acc)
    b.add(i, -1, dest=i)
    b.jmp("head")
    b.block("exit")
    b.ret(acc)
    verify_module(b.module)
    return b.module


def build_store_loop(n_elems: int = 32) -> Module:
    """Writes i*i into A[i]: exercises stores + memref shifting."""
    m = Module()
    m.add_array("A", n_elems, 4)
    b = IRBuilder(m)
    b.function("f", [("n", RegClass.INT)])
    i = VReg("i", RegClass.INT)
    b.block("entry")
    base = b.addr("A")
    b.mov(0, dest=i)
    b.jmp("head")
    b.block("head")
    p = b.cmplt(i, b.param("n"))
    b.br(p, "body", "exit")
    b.block("body")
    sq = b.mul(i, i)
    addr = b.add(base, b.shl(i, 2))
    b.store(sq, addr, 0, memref=MemRef.make("A", {"i": 4}, size=4))
    b.add(i, 1, dest=i)
    b.jmp("head")
    b.block("exit")
    b.ret()
    verify_module(m)
    return m


class TestUnrollMechanics:
    def test_report_counts(self):
        m = build_sum_array(32)
        unroller = LoopUnroll(factor=4)
        assert unroller.run(m.function("sumA"), m)
        assert unroller.last_report.loops_unrolled == 1
        assert unroller.last_report.copies_added == 4

    def test_unrolled_loop_structure(self):
        m = build_sum_array(32)
        LoopUnroll(factor=4).run(m.function("sumA"), m)
        verify_module(m)
        func = m.function("sumA")
        loops = find_loops(func)
        assert len(loops) == 2        # wide loop + remainder
        # remainder loop untouched
        assert "head" in {lp.header for lp in loops}

    def test_memref_shifted_per_copy(self):
        m = build_sum_array(32)
        LoopUnroll(factor=4).run(m.function("sumA"), m)
        func = m.function("sumA")
        wide = next(lp for lp in find_loops(func) if lp.header != "head")
        loads = [op for bn in wide.body for op in func.block(bn).ops
                 if op.is_load]
        consts = sorted(op.memref.const for op in loads)
        assert consts == [0, 8, 16, 24]

    def test_no_double_unroll(self):
        m = build_sum_array(32)
        unroller = LoopUnroll(factor=4)
        assert unroller.run(m.function("sumA"), m)
        assert not unroller.run(m.function("sumA"), m)

    def test_non_counted_loop_untouched(self):
        b = IRBuilder()
        b.function("f", [("n", RegClass.INT)], ret_class=RegClass.INT)
        x = VReg("x", RegClass.INT)
        b.block("entry")
        b.mov(b.param("n"), dest=x)
        b.jmp("head")
        b.block("head")
        b.shr(x, 1, dest=x)
        p = b.cmpgt(x, 0)
        b.br(p, "head", "exit")
        b.block("exit")
        b.ret(x)
        assert not LoopUnroll(factor=4).run(b.module.function("f"), b.module)

    def test_call_in_body_blocks_unroll(self):
        b = IRBuilder()
        b.function("g", [("x", RegClass.INT)], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(b.param("x"))
        b.function("f", [("n", RegClass.INT)], ret_class=RegClass.INT)
        i = VReg("i", RegClass.INT)
        acc = VReg("acc", RegClass.INT)
        b.block("entry")
        b.mov(0, dest=i)
        b.mov(0, dest=acc)
        b.jmp("head")
        b.block("head")
        p = b.cmplt(i, b.param("n"))
        b.br(p, "body", "exit")
        b.block("body")
        r = b.call("g", [i])
        b.add(acc, r, dest=acc)
        b.add(i, 1, dest=i)
        b.jmp("head")
        b.block("exit")
        b.ret(acc)
        assert not LoopUnroll(factor=4).run(b.module.function("f"), b.module)

    def test_auto_factor_heuristic(self):
        assert LoopUnroll()._choose_factor(5) == 8
        assert LoopUnroll()._choose_factor(20) == 4
        assert LoopUnroll()._choose_factor(40) == 2
        assert LoopUnroll()._choose_factor(100) == 1


class TestUnrollSemantics:
    @pytest.mark.parametrize("factor", [2, 3, 4, 8])
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 7, 8, 9, 31, 32])
    def test_sum_matches_reference(self, factor, n):
        m = build_sum_array(32)
        ref = run_module(m, "sumA", [n]).value
        LoopUnroll(factor=factor).run(m.function("sumA"), m)
        verify_module(m)
        assert run_module(m, "sumA", [n]).value == ref

    @pytest.mark.parametrize("factor", [2, 4])
    @pytest.mark.parametrize("n", [0, 1, 5, 8, 13])
    def test_downward_loop(self, factor, n):
        m = build_countdown()
        ref = run_module(m, "f", [n]).value
        assert LoopUnroll(factor=factor).run(m.function("f"), m)
        verify_module(m)
        assert run_module(m, "f", [n]).value == ref

    @pytest.mark.parametrize("factor", [2, 4])
    def test_store_loop_memory_state(self, factor):
        m = build_store_loop(32)
        ref = run_module(m, "f", [30]).memory.read_array("A", 32)
        LoopUnroll(factor=factor).run(m.function("f"), m)
        verify_module(m)
        got = run_module(m, "f", [30]).memory.read_array("A", 32)
        assert got == ref

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=0, max_value=32),
           factor=st.integers(min_value=2, max_value=9))
    def test_property_sum_all_trip_counts(self, n, factor):
        m = build_sum_array(32)
        ref = run_module(m, "sumA", [n]).value
        LoopUnroll(factor=factor).run(m.function("sumA"), m)
        assert run_module(m, "sumA", [n]).value == ref

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=0, max_value=32),
           unroll=st.sampled_from([0, 2, 4, 8]),
           inline=st.sampled_from([0, 48]))
    def test_property_full_pipeline(self, n, unroll, inline):
        m = build_sum_array(32)
        ref = run_module(m, "sumA", [n]).value
        classical_pipeline(unroll_factor=unroll,
                           inline_budget=inline).run(m)
        verify_module(m)
        assert run_module(m, "sumA", [n]).value == ref


def build_head_temp(read_in_body: bool) -> Module:
    """A pure head op ``t = i << 2``; the body optionally reads it.

    When the body reads ``t``, unrolling would hand every copy the uhead
    clone's value (computed from the probe IV) — a miscompile the
    unroller must refuse.
    """
    m = Module("head_temp")
    m.add_array("A", 32, 4, init=[(k * 7 + 3) % 11 - 5 for k in range(32)])
    b = IRBuilder(m)
    b.function("f", [("n", RegClass.INT)], ret_class=RegClass.INT)
    s = VReg("s", RegClass.INT)
    i = VReg("i", RegClass.INT)
    t = VReg("t", RegClass.INT)
    b.block("entry")
    b.mov(0, dest=s)
    b.mov(0, dest=i)
    b.jmp("head")
    b.block("head")
    b.shl(i, 2, dest=t)
    p = b.cmplt(i, b.param("n"))
    b.br(p, "body", "exit")
    b.block("body")
    offs = t if read_in_body else b.shl(i, 2)
    x = b.load(b.add(b.addr("A"), offs), 0)
    b.add(s, x, dest=s)
    b.add(i, 1, dest=i)
    b.jmp("head")
    b.block("exit")
    b.ret(s)
    verify_module(m)
    return m


class TestHeadDefinedValues:
    def test_head_value_read_in_body_blocks_unroll(self):
        m = build_head_temp(read_in_body=True)
        assert not LoopUnroll(factor=4).run(m.function("f"), m)

    @pytest.mark.parametrize("n", [0, 1, 5, 8, 13])
    def test_head_value_loop_still_correct(self, n):
        ref = run_module(build_head_temp(True), "f", [n]).value
        m = build_head_temp(True)
        LoopUnroll(factor=4).run(m.function("f"), m)
        verify_module(m)
        assert run_module(m, "f", [n]).value == ref

    def test_head_temp_not_read_in_body_still_unrolls(self):
        m = build_head_temp(read_in_body=False)
        assert LoopUnroll(factor=4).run(m.function("f"), m)
        verify_module(m)
        ref = run_module(build_head_temp(False), "f", [13]).value
        assert run_module(m, "f", [13]).value == ref


def build_live_out_reduction() -> Module:
    """Reduction whose register is read (twice) after the loop."""
    m = Module("live_out_red")
    m.add_array("A", 32, 4, init=[(k * 5 + 2) % 13 - 6 for k in range(32)])
    b = IRBuilder(m)
    b.function("f", [("n", RegClass.INT)], ret_class=RegClass.INT)
    s = VReg("s", RegClass.INT)
    i = VReg("i", RegClass.INT)
    b.block("entry")
    b.mov(100, dest=s)
    b.mov(0, dest=i)
    b.jmp("head")
    b.block("head")
    p = b.cmplt(i, b.param("n"))
    b.br(p, "body", "exit")
    b.block("body")
    x = b.load(b.add(b.addr("A"), b.shl(i, 2)), 0)
    b.add(s, x, dest=s)
    b.add(i, 1, dest=i)
    b.jmp("head")
    b.block("exit")
    t = b.add(s, 1)
    b.ret(b.add(t, s))
    verify_module(m)
    return m


class TestReductionLiveOut:
    """The split accumulator must be whole again on every epilogue path."""

    @pytest.mark.parametrize("n", [0, 1, 3, 4, 5, 8, 13, 32])
    @pytest.mark.parametrize("factor", [2, 4, 8])
    def test_live_out_through_epilogue(self, n, factor):
        ref = run_module(build_live_out_reduction(), "f", [n]).value
        m = build_live_out_reduction()
        assert LoopUnroll(factor=factor).run(m.function("f"), m)
        verify_module(m)
        assert run_module(m, "f", [n]).value == ref

    def test_partials_combined_before_remainder(self):
        m = build_live_out_reduction()
        LoopUnroll(factor=4).run(m.function("f"), m)
        func = m.function("f")
        combine = next(blk for name, blk in func.blocks.items()
                       if name.startswith("head.u4c"))
        # every partial folds back into s before the remainder loop runs
        assert [op.opcode for op in combine.body] == [Opcode.ADD] * 3
        assert combine.terminator.labels[0].name == "head"
