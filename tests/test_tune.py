"""Tests for the ``repro tune`` autotuner subsystem."""

from __future__ import annotations

import json

from repro.sched import HeuristicParams
from repro.machine import TRACE_28_200
from repro.tune import (TuneCache, candidate_space, corpus_cases, eval_key,
                        multi_start_candidates, oracle_key, params_digest,
                        params_wire, random_candidates, run_tune,
                        tiny_grid_candidates, tune_case)


# ---------------------------------------------------------------------------
# candidate space


class TestCandidateSpace:
    def test_default_is_index_zero(self):
        for kwargs in ({}, {"tiny": True}, {"random_count": 4},
                       {"starts": 3}, {"grid": False, "starts": 2}):
            space = candidate_space(**kwargs)
            assert space[0] == HeuristicParams.DEFAULT

    def test_deduplicated(self):
        space = candidate_space(random_count=8, starts=4)
        assert len(space) == len(set(space))

    def test_random_is_seeded_and_deterministic(self):
        assert random_candidates(6, seed=3) == random_candidates(6, seed=3)
        assert random_candidates(6, seed=3) != random_candidates(6, seed=4)

    def test_multi_start_is_default_but_for_tie_seed(self):
        for cand in multi_start_candidates(5):
            assert cand != HeuristicParams.DEFAULT
            assert cand.tie_seed > 0
            assert cand.w_height == 1.0 and cand.w_slack == 0.0

    def test_tiny_grid_is_single_axis(self):
        default = HeuristicParams.DEFAULT.to_json()
        for cand in tiny_grid_candidates():
            changed = [k for k, v in cand.to_json().items()
                       if v != default[k]]
            assert len(changed) == 1

    def test_wire_and_digest_stable(self):
        params = HeuristicParams(w_slack=0.25)
        assert json.loads(params_wire(params)) == params.to_json()
        assert params_digest(params) == params_digest(
            HeuristicParams(w_slack=0.25))
        assert params_digest(params) != params_digest(
            HeuristicParams.DEFAULT)


# ---------------------------------------------------------------------------
# corpus enumeration


class TestCorpus:
    def test_generated_cases(self):
        cases = corpus_cases("generated", seeds=5, kernels=None,
                             tiny=False)
        assert [c["seed"] for c in cases] == [0, 1, 2, 3, 4]
        assert all(c["mode"] == "seed" for c in cases)
        assert cases[3]["case"] == "seed3"

    def test_kernel_cases_tiny(self):
        cases = corpus_cases("kernels", seeds=None, kernels=None,
                             tiny=True)
        assert cases
        assert {c["mode"] for c in cases} <= {"trace", "loop"}
        assert len({c["case"] for c in cases}) == len(cases)


# ---------------------------------------------------------------------------
# cache keys and store


class TestTuneCache:
    def test_keys_separate_axes(self):
        case_a = {"mode": "seed", "case": "seed1", "seed": 1}
        case_b = {"mode": "seed", "case": "seed2", "seed": 2}
        default = HeuristicParams.DEFAULT
        tuned = HeuristicParams(tie_seed=1)
        assert eval_key(case_a, default, TRACE_28_200) != \
            eval_key(case_b, default, TRACE_28_200)
        assert eval_key(case_a, default, TRACE_28_200) != \
            eval_key(case_a, tuned, TRACE_28_200)
        assert eval_key(case_a, default, TRACE_28_200) == \
            eval_key(case_a, HeuristicParams(), TRACE_28_200)
        assert oracle_key(case_a, TRACE_28_200, 1000) != \
            oracle_key(case_a, TRACE_28_200, 2000)
        assert oracle_key(case_a, TRACE_28_200, 1000) != \
            eval_key(case_a, default, TRACE_28_200)

    def test_put_get_round_trip(self, tmp_path):
        cache = TuneCache(str(tmp_path))
        key = eval_key({"mode": "seed", "case": "seed0", "seed": 0},
                       HeuristicParams.DEFAULT, TRACE_28_200)
        assert cache.get(key) is None
        cache.put(key, {"length": 42})
        assert cache.get(key) == {"length": 42}
        assert cache.get("0" * 64) is None


# ---------------------------------------------------------------------------
# the per-case task and the driver


class TestTuneCaseTask:
    def test_scores_every_candidate(self):
        candidates = [[0, HeuristicParams.DEFAULT.to_json()],
                      [1, HeuristicParams(tie_seed=1).to_json()]]
        row = tune_case({"mode": "seed", "case": "seed0", "seed": 0,
                         "candidates": candidates})
        assert row["case"] == "seed0"
        assert sorted(row["lengths"]) == ["0", "1"]
        assert isinstance(row["lengths"]["0"], int)
        assert row["lengths"]["0"] > 0
        assert "oracle" not in row

    def test_oracle_rides_along_when_asked(self):
        row = tune_case({"mode": "seed", "case": "seed0", "seed": 0,
                         "candidates": [[0, HeuristicParams().to_json()]],
                         "need_oracle": True, "max_nodes": 20000})
        from repro.optimal.solver import FEASIBLE, OPTIMAL, TIMEOUT

        assert row["oracle"]["status"] in (OPTIMAL, FEASIBLE, TIMEOUT)
        assert row["oracle"]["oracle"] <= row["lengths"]["0"]


class TestRunTune:
    def test_cold_then_warm_cache(self, tmp_path):
        kwargs = dict(corpus="generated", seeds=2, tiny=True, jobs=1,
                      cache_dir=str(tmp_path), with_oracle=True,
                      verify_winners=True)
        cold = run_tune(**kwargs)
        assert cold["cases"] == 2
        assert cold["errors"] == []
        assert cold["cache"]["misses"] > 0
        assert cold["baseline_total"] >= cold["best_total"]
        assert cold["oracle_total"] is not None

        warm = run_tune(**kwargs)
        assert warm["cache"]["misses"] == 0
        assert warm["cache"]["dispatched_cases"] == 0
        assert warm["cache"]["hits"] == cold["cache"]["hits"] + \
            cold["cache"]["misses"]
        for field in ("cases", "candidates", "baseline_total",
                      "best_total", "oracle_total", "gaps",
                      "gaps_closed", "improved_cases", "rows"):
            assert warm[field] == cold[field], field

    def test_report_is_json_clean(self, tmp_path):
        report = run_tune(corpus="generated", seeds=1, tiny=True,
                          jobs=1, cache_dir=str(tmp_path),
                          with_oracle=False, verify_winners=False)
        assert report == json.loads(json.dumps(report))
        assert report["tiny"] is True
