"""Differential testing: every executor must agree with the reference
interpreter on randomly generated programs.

This is the compiler's main correctness oracle: interpreter -> scalar sim
-> scoreboard sim -> trace-scheduled VLIW sim (across machine widths,
optimization levels, and code-motion options) must produce identical
return values and identical final array contents.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import MemoryImage, run_module
from repro.machine import (MachineConfig, TRACE_7_200, TRACE_14_200,
                           TRACE_28_200)
from repro.opt import classical_pipeline
from repro.sim import run_compiled, run_scalar, run_scoreboard
from repro.trace import SchedulingOptions, compile_module
from repro.workloads.generator import GeneratorConfig, generate_program

ARGS = (7, -3)


def _array_state(module, memory: MemoryImage):
    state = {}
    for name, obj in module.data.items():
        elem = 8 if name.startswith("FA") else 4
        state[name] = memory.read_array(name, obj.size // elem, elem)
    return state


def _values_equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return a == b
    return a == b


def _states_equal(a: dict, b: dict) -> bool:
    """Array-state equality with NaN == NaN (programs may legitimately
    compute NaN through inf - inf; bit-identical divergence still fails)."""
    if a.keys() != b.keys():
        return False
    return all(len(a[k]) == len(b[k])
               and all(_values_equal(x, y) for x, y in zip(a[k], b[k]))
               for k in a)


def _check_program(seed: int, unroll: int, config: MachineConfig,
                   options: SchedulingOptions) -> None:
    module = generate_program(seed)
    ref = run_module(module, "main", ARGS)
    ref_arrays = _array_state(module, ref.memory)

    if unroll:
        module_opt = generate_program(seed)
        classical_pipeline(unroll_factor=unroll).run(module_opt)
        opt_ref = run_module(module_opt, "main", ARGS)
        assert _values_equal(opt_ref.value, ref.value), "optimizer broke it"
        module = module_opt

    scal = run_scalar(module, "main", ARGS)
    assert _values_equal(scal.value, ref.value), "scalar sim diverged"
    assert _states_equal(_array_state(module, scal.memory), ref_arrays)

    board = run_scoreboard(module, "main", ARGS)
    assert _values_equal(board.value, ref.value), "scoreboard diverged"
    assert _states_equal(_array_state(module, board.memory), ref_arrays)

    program = compile_module(module, config, options)
    vliw = run_compiled(program, module, "main", ARGS)
    assert _values_equal(vliw.value, ref.value), \
        f"VLIW diverged: {vliw.value} != {ref.value}"
    assert _states_equal(_array_state(module, vliw.memory), ref_arrays), \
        "VLIW memory state diverged"


class TestEquivalenceSeeds:
    """Deterministic seeds, full option matrix on a few of them."""

    @pytest.mark.parametrize("seed", range(25))
    def test_default_options(self, seed):
        _check_program(seed, unroll=0, config=TRACE_28_200,
                       options=SchedulingOptions())

    @pytest.mark.parametrize("seed", range(10))
    def test_unrolled(self, seed):
        _check_program(seed, unroll=4, config=TRACE_28_200,
                       options=SchedulingOptions())

    @pytest.mark.parametrize("seed", range(10))
    def test_narrow_machine(self, seed):
        _check_program(seed, unroll=0, config=TRACE_7_200,
                       options=SchedulingOptions())

    @pytest.mark.parametrize("seed", range(8))
    def test_no_speculation(self, seed):
        _check_program(seed, unroll=0, config=TRACE_14_200,
                       options=SchedulingOptions(speculation=False))

    @pytest.mark.parametrize("seed", range(8))
    def test_no_join_motion(self, seed):
        _check_program(seed, unroll=0, config=TRACE_28_200,
                       options=SchedulingOptions(join_motion=False))

    def test_late_beat_producer_lands_before_offtrace_transfer(self):
        """Regression (seed 200, bigger-program config): a latency-2 op
        (integer multiply) issued on the *late* beat of the instruction
        whose branch exits the trace lands at 2t+3 — one beat after
        control transfers at 2t+2.  The off-trace path then read the
        stale register.  The depgraph's cross-trace timing edge must
        cover lat == 2, not just lat > 2."""
        config = GeneratorConfig(max_stmts=10, max_depth=3, n_arrays=3)
        module = generate_program(200, config)
        ref = run_module(module, "main", ARGS)
        program = compile_module(module, TRACE_28_200)
        vliw = run_compiled(program, module, "main", ARGS)
        assert _values_equal(vliw.value, ref.value)
        assert _states_equal(_array_state(module, vliw.memory),
                             _array_state(module, ref.memory))

    @pytest.mark.parametrize("seed", range(8))
    def test_no_gamble(self, seed):
        _check_program(seed, unroll=0, config=TRACE_28_200,
                       options=SchedulingOptions(bank_gamble=False))


class TestEquivalenceProperty:
    """Hypothesis-driven sweep over seeds and option combinations."""

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000),
           unroll=st.sampled_from([0, 0, 2, 4]),
           pairs=st.sampled_from([1, 2, 4]),
           speculation=st.booleans(),
           join_motion=st.booleans())
    def test_random_programs(self, seed, unroll, pairs, speculation,
                             join_motion):
        config = MachineConfig(n_pairs=pairs)
        options = SchedulingOptions(speculation=speculation,
                                    join_motion=join_motion)
        _check_program(seed, unroll, config, options)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_bigger_programs(self, seed):
        config = GeneratorConfig(max_stmts=10, max_depth=3, n_arrays=3)
        module = generate_program(seed, config)
        ref = run_module(module, "main", ARGS)
        program = compile_module(module, TRACE_28_200)
        vliw = run_compiled(program, module, "main", ARGS)
        assert _values_equal(vliw.value, ref.value)
        assert _states_equal(_array_state(module, vliw.memory),
                             _array_state(module, ref.memory))
