"""Tests for CFG, dominators, dataflow, liveness, reaching defs, and loops."""

import pytest

from repro.analysis import (CFG, compute_liveness, compute_reaching,
                            find_basic_ivs, find_loops, live_before_each_op,
                            loop_invariant_regs, match_counted_loop,
                            remove_unreachable_blocks, single_reaching_def,
                            solve_forward)
from repro.ir import (IRBuilder, Module, Opcode, RegClass, VReg,
                      verify_module)

from .conftest import build_diamond, build_sum_array


def build_nested_loops() -> Module:
    """Two nested counted loops: for i { for j { } }."""
    m = Module("nested")
    b = IRBuilder(m)
    b.function("f", [("n", RegClass.INT)], ret_class=RegClass.INT)
    i = VReg("i", RegClass.INT)
    j = VReg("j", RegClass.INT)
    acc = VReg("acc", RegClass.INT)
    b.block("entry")
    b.mov(0, dest=i)
    b.mov(0, dest=acc)
    b.jmp("outer")
    b.block("outer")
    p = b.cmplt(i, b.param("n"))
    b.br(p, "outer_body", "exit")
    b.block("outer_body")
    b.mov(0, dest=j)
    b.jmp("inner")
    b.block("inner")
    q = b.cmplt(j, b.param("n"))
    b.br(q, "inner_body", "outer_latch")
    b.block("inner_body")
    b.add(acc, 1, dest=acc)
    b.add(j, 1, dest=j)
    b.jmp("inner")
    b.block("outer_latch")
    b.add(i, 1, dest=i)
    b.jmp("outer")
    b.block("exit")
    b.ret(acc)
    verify_module(m)
    return m


class TestCFG:
    def test_preds_and_succs(self, diamond_module):
        cfg = CFG.build(diamond_module.function("absdiff"))
        assert cfg.succs["entry"] == ["ge", "lt"]
        assert sorted(cfg.preds["join"]) == ["ge", "lt"]

    def test_reverse_postorder_starts_at_entry(self, sum_array_module):
        cfg = CFG.build(sum_array_module.function("sumA"))
        rpo = cfg.reverse_postorder()
        assert rpo[0] == "entry"
        assert set(rpo) == set(sum_array_module.function("sumA").blocks)

    def test_rpo_visits_preds_first_in_acyclic(self, diamond_module):
        cfg = CFG.build(diamond_module.function("absdiff"))
        rpo = cfg.reverse_postorder()
        assert rpo.index("entry") < rpo.index("ge")
        assert rpo.index("ge") < rpo.index("join")
        assert rpo.index("lt") < rpo.index("join")

    def test_dominators_diamond(self, diamond_module):
        cfg = CFG.build(diamond_module.function("absdiff"))
        doms = cfg.dominators()
        assert doms["join"] == {"entry", "join"}
        assert doms["ge"] == {"entry", "ge"}
        idom = cfg.immediate_dominators()
        assert idom["join"] == "entry"
        assert idom["entry"] is None

    def test_back_edges(self, sum_array_module):
        cfg = CFG.build(sum_array_module.function("sumA"))
        assert cfg.back_edges() == [("body", "head")]

    def test_remove_unreachable(self):
        b = IRBuilder()
        b.function("f", [], ret_class=RegClass.INT)
        b.block("entry")
        b.ret(1)
        b.block("orphan")
        b.ret(2)
        assert remove_unreachable_blocks(b.func) == 1
        assert "orphan" not in b.func.blocks


class TestDataflow:
    def test_forward_reachability_instance(self, diamond_module):
        cfg = CFG.build(diamond_module.function("absdiff"))

        def transfer(name, in_set):
            return in_set | {name}

        res = solve_forward(cfg, transfer)
        assert res.block_out["join"] >= {"entry", "join"}

    def test_forward_intersection_meet(self, diamond_module):
        cfg = CFG.build(diamond_module.function("absdiff"))

        def transfer(name, in_set):
            return in_set | {name}

        res = solve_forward(cfg, transfer, meet_union=False)
        # with intersection, only common dominat-ish facts survive at join
        assert "ge" not in res.block_in["join"] or "lt" not in res.block_in["join"]


class TestLiveness:
    def test_loop_carried_registers_live_at_header(self, sum_array_module):
        func = sum_array_module.function("sumA")
        lv = compute_liveness(func)
        i = VReg("i", RegClass.INT)
        s = VReg("s", RegClass.FLT)
        assert i in lv.live_in["head"]
        assert s in lv.live_in["head"]

    def test_dead_after_last_use(self, sum_array_module):
        func = sum_array_module.function("sumA")
        lv = compute_liveness(func)
        # param n is not live at exit
        n = VReg("n", RegClass.INT)
        assert n not in lv.live_in["exit"]

    def test_diamond_result_live_on_join_edges(self, diamond_module):
        func = diamond_module.function("absdiff")
        lv = compute_liveness(func)
        r = VReg("r", RegClass.INT)
        assert r in lv.live_on_edge("ge", "join")
        assert r not in lv.live_in["entry"]

    def test_live_before_each_op(self, diamond_module):
        func = diamond_module.function("absdiff")
        lv = compute_liveness(func)
        before = live_before_each_op(func, "entry", lv)
        a = VReg("a", RegClass.INT)
        assert a in before[0]


class TestReaching:
    def test_single_def_reaches(self, diamond_module):
        func = diamond_module.function("absdiff")
        reaching = compute_reaching(func)
        r = VReg("r", RegClass.INT)
        uids = reaching.reaching_defs_of("join", r)
        assert len(uids) == 2  # one per diamond arm

    def test_single_reaching_def_helper(self, sum_array_module):
        func = sum_array_module.function("sumA")
        reaching = compute_reaching(func)
        i = VReg("i", RegClass.INT)
        # both the entry mov and the body add reach the header
        assert single_reaching_def(reaching, "head", i) is None
        # only entry's def of the base address op reaches body
        base_defs = [op for op in func.block("entry").ops
                     if op.dest is not None and op.opcode is Opcode.MOV
                     and op.dest.cls is RegClass.INT]
        base = base_defs[0].dest


class TestLoops:
    def test_single_loop_found(self, sum_array_module):
        func = sum_array_module.function("sumA")
        loops = find_loops(func)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == "head"
        assert loop.body == {"head", "body"}
        assert loop.latches == ["body"]
        assert ("head", "exit") in loop.exits

    def test_nested_loops_nesting(self):
        m = build_nested_loops()
        func = m.function("f")
        loops = find_loops(func)
        assert len(loops) == 2
        outer = next(lp for lp in loops if lp.header == "outer")
        inner = next(lp for lp in loops if lp.header == "inner")
        assert inner.parent is outer
        assert inner.depth == 2
        assert inner.body < outer.body

    def test_basic_ivs(self, sum_array_module):
        func = sum_array_module.function("sumA")
        loop = find_loops(func)[0]
        ivs = find_basic_ivs(func, loop)
        assert len(ivs) == 1
        assert ivs[0].reg == VReg("i", RegClass.INT)
        assert ivs[0].step == 1

    def test_loop_invariant_regs(self, sum_array_module):
        func = sum_array_module.function("sumA")
        loop = find_loops(func)[0]
        inv = loop_invariant_regs(func, loop)
        assert VReg("n", RegClass.INT) in inv
        assert VReg("i", RegClass.INT) not in inv

    def test_match_counted_loop(self, sum_array_module):
        func = sum_array_module.function("sumA")
        loop = find_loops(func)[0]
        tc = match_counted_loop(func, loop)
        assert tc is not None
        assert tc.iv.step == 1
        assert tc.exit_block == "exit"

    def test_non_counted_loop_rejected(self):
        b = IRBuilder()
        b.function("f", [("n", RegClass.INT)], ret_class=RegClass.INT)
        x = VReg("x", RegClass.INT)
        b.block("entry")
        b.mov(b.param("n"), dest=x)
        b.jmp("head")
        b.block("head")
        # exit controlled by a loaded value, not an IV compare
        b.shr(x, 1, dest=x)
        p = b.cmpgt(x, 0)
        b.br(p, "head", "exit")
        b.block("exit")
        b.ret(x)
        loop = find_loops(b.func)[0]
        assert match_counted_loop(b.func, loop) is None
