"""Tests for the exact scheduling engine (``repro.optimal``).

Covers the solver contract (proof statuses, determinism, budgets), the
constraint encodings against hand-checked kernels, the ``optimal``
compiler strategy end-to-end, the optimality-gap audit (including the
``--jobs`` byte-identity guarantee and the checked-in CI baseline), the
cache-key separation of exact artifacts, and a pinned regression for
the heuristic gap the oracle exposed (wide-immediate operations
starving beat-0 immediate words).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.analysis import compute_liveness
from repro.api import CompileRequest
from repro.cache import compile_key
from repro.disambig import Disambiguator, derive_memrefs
from repro.harness.measure import prepare_modules
from repro.ir import IRBuilder, RegClass, run_module
from repro.machine import TRACE_28_200
from repro.optimal import (FEASIBLE, OPTIMAL, TIMEOUT, Budget,
                           ModuloDecision, audit_payloads, compare_baseline,
                           exact_modulo_schedule, exact_trace_schedule,
                           run_audit, strip_timing, trace_lower_bound)
from repro.optimal import audit as audit_mod
from repro.pipeline import (ModuloScheduler, build_loop_graph,
                            find_pipeline_loops)
from repro.sched import critical_cycle, rec_mii
from repro.sim import run_compiled
from repro.trace import (SchedulingOptions, Trace, TraceCompiler,
                         build_trace_graph, clone_function)
from repro.trace.scheduler import ListScheduler
from repro.workloads import get_kernel

OPTS = SchedulingOptions()
BASELINE = Path(__file__).parent / "data" / "audit_baseline.json"


def _trace_graph(build):
    """(graph, module) for a single-block function built by ``build``."""
    b = IRBuilder()
    build(b)
    module = b.module
    func = next(iter(module.functions.values()))
    graph = build_trace_graph(func, Trace([func.entry.name]),
                              Disambiguator(module), TRACE_28_200)
    return graph, module


def _solve(graph, module, **kw):
    heur = ListScheduler(graph, TRACE_28_200, Disambiguator(module),
                         OPTS).run()
    out = exact_trace_schedule(graph, TRACE_28_200, Disambiguator(module),
                               OPTS, upper=heur.n_instructions, **kw)
    return heur, out


def _chain(b):
    # fadd (6 beats) feeding fmul (7 beats): a pure latency chain
    b.function("f", [("x", RegClass.FLT)], ret_class=RegClass.FLT)
    b.block("entry")
    a = b.fadd(b.param("x"), 2.5)
    b.ret(b.fmul(a, b.param("x")))


def _oversubscribed(b):
    # nine distinct wide immediates against eight immediate words (one
    # per pair and beat): no length-1 schedule exists, but the resource
    # and path lower bounds both say 1 — refuting length 1 needs search
    b.function("h", [("a", RegClass.INT)], ret_class=RegClass.INT)
    b.block("entry")
    for k in range(5):
        b.mov(2000 + k)
    for k in range(4):
        b.fmov(10.5 + k)
    b.ret(b.param("a"))


def _starved_falu(b):
    # four wide MOVs (any slot) plus three float FMOVs (beat 0 only,
    # each carrying a distinct wide float immediate): fits in ONE
    # instruction only if the MOVs leave beat-0 immediate words free
    b.function("g", [("a", RegClass.INT)], ret_class=RegClass.INT)
    b.block("entry")
    for k in range(4):
        b.mov(1000 + k)
    for k in range(3):
        b.fmov(1.5 + k)
    b.ret(b.param("a"))


def _main_loop_graph(name, n=16):
    """The first pipelinable loop graph of a kernel's main function."""
    _, module = prepare_modules(get_kernel(name), n, unroll=0, inline=48)
    func = module.function("main")
    derive_memrefs(func)
    work = clone_function(func)
    live = dict(compute_liveness(work).live_in)
    disambig = Disambiguator(module)
    pl = next(pl for _, pl, _ in find_pipeline_loops(work, live)
              if pl is not None)
    return build_loop_graph(pl, TRACE_28_200, disambig), disambig


class TestTraceOracle:
    def test_latency_chain_hand_checked(self):
        # critical path fadd(6) + fmul(7) = 13 beats before the return
        # can issue; the return then needs one more instruction:
        # 1 + ceil(13 / 2) = 8 instructions, and the list scheduler
        # already achieves it
        graph, module = _trace_graph(_chain)
        heur, out = _solve(graph, module)
        want = 1 + math.ceil(
            (TRACE_28_200.lat_flt_add + TRACE_28_200.lat_flt_mul) / 2)
        assert heur.n_instructions == want == 8
        assert out.status == OPTIMAL
        assert out.value == out.lower_bound == want
        assert out.witness is None          # nothing to improve

    def test_imm_word_proof_needs_search(self):
        # the length-1 refutation is invisible to the lower bounds (the
        # solver's own lb says 1) and comes out of the DFS
        graph, module = _trace_graph(_oversubscribed)
        assert trace_lower_bound(graph, TRACE_28_200,
                                 Disambiguator(module), OPTS) == 1
        heur, out = _solve(graph, module)
        assert heur.n_instructions == 2
        assert out.status == OPTIMAL and out.value == 2
        assert out.nodes > 0

    def test_timeout_is_deterministic(self):
        # a one-node budget cannot refute length 1, so the solve ends
        # TIMEOUT with the heuristic's answer standing; two runs agree
        # on every field except wall-clock
        graph, module = _trace_graph(_oversubscribed)
        runs = []
        for _ in range(2):
            _, out = _solve(graph, module, max_nodes=1)
            runs.append((out.status, out.value, out.lower_bound,
                         out.nodes, out.witness))
        assert runs[0] == runs[1]
        status, value, lower, nodes, witness = runs[0]
        assert status == TIMEOUT and witness is None
        assert (value, lower) == (2, 1)     # unproven but not worsened
        assert nodes >= 1

    def test_budget_object_raises_once_spent(self):
        from repro.optimal import BudgetExhausted

        budget = Budget(max_nodes=2)
        budget.spend()
        budget.spend()
        with pytest.raises(BudgetExhausted):
            budget.spend()


class TestModuloOracle:
    def test_unsat_below_recmii(self):
        # ll5_tridiag carries x[i-1] through an FADD/FMUL chain:
        # II = RecMII - 1 admits a positive-weight cycle and the
        # decision refutes it before any search
        graph, disambig = _main_loop_graph("ll5_tridiag")
        rcmii = rec_mii(graph, 32)
        assert rcmii == 10
        dec = ModuloDecision(graph, TRACE_28_200, disambig, OPTS,
                             rcmii - 1, Budget(max_nodes=10**6))
        assert not dec.feasible

    def test_recurrence_bound_proved_tight(self):
        # the heuristic schedules ll5_tridiag at II = MII = 10 and the
        # oracle certifies no smaller II exists (the bench_pipeline
        # match-or-beat miss is inherent, not a scheduling gap)
        graph, disambig = _main_loop_graph("ll5_tridiag")
        sched = ModuloScheduler(graph, TRACE_28_200, disambig, OPTS).run()
        out = exact_modulo_schedule(graph, TRACE_28_200, disambig, OPTS,
                                    upper_ii=sched.ii)
        assert sched.ii == sched.mii == 10
        assert out.status == OPTIMAL and out.value == 10

    def test_critical_cycle_certifies_recmii(self):
        # the extracted cycle is a real closed walk whose latency and
        # distance sums reproduce the bound:
        # ceil(19 beats / (2 * 1 iteration)) = 10
        graph, _ = _main_loop_graph("ll5_tridiag")
        rcmii = rec_mii(graph, 32)
        cycle = critical_cycle(graph, rcmii)
        assert cycle
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            assert a.dst == b.src
        lat = sum(e.latency for e in cycle)
        dist = sum(e.dist for e in cycle)
        assert (lat, dist) == (19, 1)
        assert math.ceil(lat / (2 * dist)) == rcmii == 10

    def test_critical_cycle_none_without_recurrence(self):
        graph, _ = _main_loop_graph("vadd")
        assert critical_cycle(graph, None) is None
        assert critical_cycle(graph, 1) is None


class TestHeuristicGapClosed:
    """Pinned regression for the gap the oracle exposed: unit-major
    slot iteration round-robined wide-immediate MOVs across every
    pair's beat-0 immediate word, leaving none for FALU-only ops (which
    can ONLY issue at beat 0).  The fix steers flexible wide-immediate
    ops toward late slots; this kernel scheduled in 2 instructions
    before it and must stay at the oracle-proven 1."""

    def test_wide_imm_movs_leave_beat0_words_for_falu(self):
        graph, module = _trace_graph(_starved_falu)
        heur, out = _solve(graph, module)
        assert heur.n_instructions == 1
        assert out.status == OPTIMAL and out.value == 1


class TestStrategyEndToEnd:
    def test_optimal_strategy_matches_interpreter(self):
        kernel = get_kernel("daxpy")
        n = 24
        _, module = prepare_modules(kernel, n, unroll=4, inline=48)
        args = kernel.make_args(n)
        ref = run_module(kernel.build(n), kernel.func, args)
        compiler = TraceCompiler(module, TRACE_28_200, strategy="optimal")
        program = compiler.compile_module()
        got = run_compiled(program, module, kernel.func, args)
        assert kernel.outputs
        for name, elem in kernel.outputs:
            count = module.data[name].size // elem
            assert ref.memory.read_array(name, count, elem) == \
                got.memory.read_array(name, count, elem)
        stats = compiler.stats[kernel.func]
        solved = stats.optimal_proved + stats.optimal_improved
        assert solved + len(stats.optimal_fallbacks) > 0
        assert solved > 0                   # at least one trace certified

    def test_optimal_never_longer_than_trace(self):
        kernel = get_kernel("binary_search")
        _, module = prepare_modules(kernel, 16, unroll=0, inline=48)
        base = TraceCompiler(module, TRACE_28_200,
                             strategy="trace").compile_module()
        exact = TraceCompiler(module, TRACE_28_200,
                              strategy="optimal").compile_module()
        for name in base.functions:
            assert len(exact.functions[name].instructions) <= \
                len(base.functions[name].instructions)


class TestAudit:
    def _tiny(self, monkeypatch):
        monkeypatch.setattr(audit_mod, "TINY_TRACE",
                            ["copy", "daxpy", "dot"])
        monkeypatch.setattr(audit_mod, "TINY_LOOPS", ["daxpy"])

    def test_jobs_byte_identity(self, monkeypatch):
        self._tiny(monkeypatch)
        serial = run_audit(jobs=1, tiny=True)
        fanned = run_audit(jobs=2, tiny=True)
        assert json.dumps(strip_timing(serial), sort_keys=True) == \
            json.dumps(strip_timing(fanned), sort_keys=True)

    def test_rows_follow_payload_order(self, monkeypatch):
        self._tiny(monkeypatch)
        report = run_audit(jobs=2, tiny=True)
        want = [p["case"] for p in audit_payloads(tiny=True)]
        assert [r["case"] for r in report["rows"]] == want
        assert report["summary"]["cases"] == len(want)

    def test_compare_baseline_flags_regressions(self, monkeypatch):
        self._tiny(monkeypatch)
        report = strip_timing(run_audit(jobs=1, tiny=True))
        assert compare_baseline(report, report) == []
        worse = json.loads(json.dumps(report))
        worse["rows"][0]["gap"] = worse["rows"][0].get("gap", 0) + 1
        worse["rows"][1]["status"] = TIMEOUT
        del worse["rows"][2:]
        problems = compare_baseline(worse, report)
        assert any("gap grew" in p for p in problems)
        assert any("status worsened" in p for p in problems)
        assert any("missing" in p for p in problems)

    def test_checked_in_baseline_matches_tiny_audit_shape(self):
        baseline = json.loads(BASELINE.read_text())
        assert baseline["tiny"] is True
        assert baseline["summary"]["total_gap"] == 0
        want = [p["case"] for p in audit_payloads(tiny=True)]
        assert [r["case"] for r in baseline["rows"]] == want
        assert all(r["status"] == OPTIMAL for r in baseline["rows"])

    def test_severity_order(self):
        assert audit_mod._SEVERITY[OPTIMAL] < audit_mod._SEVERITY[FEASIBLE] \
            < audit_mod._SEVERITY[TIMEOUT] < audit_mod._SEVERITY["ERROR"]


class TestCacheKeys:
    STRATEGIES = ("trace", "pipeline", "auto", "optimal")

    def test_compile_key_separates_strategies(self):
        module = get_kernel("daxpy").build(16)
        keys = {compile_key(module, TRACE_28_200, OPTS, strategy=s,
                            unroll=4, inline=48)
                for s in self.STRATEGIES}
        assert len(keys) == len(self.STRATEGIES)

    def test_request_cache_key_separates_strategies(self):
        keys = {CompileRequest(kernel="daxpy", n=16,
                               strategy=s).validate().cache_key()
                for s in self.STRATEGIES}
        assert len(keys) == len(self.STRATEGIES)
