"""Register allocation onto the TRACE's physical register files.

Runs after all traces are scheduled.  The compiled code is itself a CFG of
long instructions (branch targets resolved through the label map), so we
compute instruction-level liveness directly on the schedule, extend each
definition's range by its pipeline latency — on the TRACE "the target
register of any pipelined operation is 'in use' from the beat in which the
operation is initiated until the beat in which it is defined to be written"
(section 6.2), even across a taken branch, because pipelines self-drain —
build an interference graph per register class, and colour greedily.
"""

from __future__ import annotations

from collections import defaultdict

from ..errors import RegAllocError
from ..ir import Imm, Operation, RegClass, VReg
from ..machine import (CompiledFunction, MachineConfig, latency_of,
                       phys_reg)


def _instruction_uses_defs(li, config: MachineConfig) -> tuple[set[VReg],
                                                               set[VReg],
                                                               set[VReg]]:
    """(exposed_uses, all_uses, defs) of one long instruction.

    A use is *upward-exposed* (drives liveness into predecessors) unless a
    definition in this same instruction lands, beat-wise, no later than the
    use reads it — e.g. an early-slot 1-beat add feeding a late-slot
    consumer is internal to the instruction.
    """
    reads: list[tuple[VReg, int]] = []     # (reg, read beat offset)
    defs: set[VReg] = set()
    def_land: dict[VReg, int] = {}         # reg -> earliest land offset
    for so in li.ops:
        offset = so.unit.beat_offset
        for src in so.op.reg_srcs():
            reads.append((src, offset))
        if so.op.dest is not None:
            defs.add(so.op.dest)
            land = offset + latency_of(so.op, config)
            prior = def_land.get(so.op.dest)
            def_land[so.op.dest] = land if prior is None \
                else min(prior, land)
    for bt in li.branches:
        if isinstance(bt.pred, VReg):
            reads.append((bt.pred, 0))
    if li.special is not None:
        kind = li.special[0]
        if kind == "ret" and li.special[1] is not None \
                and isinstance(li.special[1], VReg):
            reads.append((li.special[1], 0))
        elif kind == "call":
            call: Operation = li.special[1]
            for src in call.reg_srcs():
                reads.append((src, 0))
            if call.dest is not None:
                defs.add(call.dest)
                def_land[call.dest] = 0

    all_uses = {reg for reg, _ in reads}
    exposed = {reg for reg, read_offset in reads
               if def_land.get(reg) is None
               or def_land[reg] > read_offset}
    return exposed, all_uses, defs


def _successors(cf: CompiledFunction, index: int) -> list[int]:
    li = cf.instructions[index]
    succs = [cf.resolve(bt.target) for bt in li.branches]
    if li.special is not None and li.special[0] in ("ret", "halt"):
        return succs
    if li.next_label is not None:
        succs.append(cf.resolve(li.next_label))
    elif index + 1 < len(cf.instructions):
        succs.append(index + 1)
    return succs


def allocate_registers(cf: CompiledFunction, config: MachineConfig) -> None:
    """Colour every virtual register and rewrite the schedule in place."""
    n = len(cf.instructions)
    exposed: list[set[VReg]] = [set()] * n
    uses: list[set[VReg]] = [set()] * n
    defs: list[set[VReg]] = [set()] * n
    succs: list[list[int]] = [[] for _ in range(n)]
    for i in range(n):
        exposed[i], uses[i], defs[i] = _instruction_uses_defs(
            cf.instructions[i], config)
        succs[i] = _successors(cf, i)

    # backward liveness over instructions (beat-aware exposure: a use fed
    # by a same-instruction def does not reach predecessors)
    live_in: list[set[VReg]] = [set() for _ in range(n)]
    live_out: list[set[VReg]] = [set() for _ in range(n)]
    changed = True
    while changed:
        changed = False
        for i in range(n - 1, -1, -1):
            out = set()
            for s in succs[i]:
                out |= live_in[s]
            new_in = exposed[i] | (out - defs[i])
            if out != live_out[i] or new_in != live_in[i]:
                live_out[i] = out
                live_in[i] = new_in
                changed = True

    # pipeline-latency extension: a register being written stays "in use"
    # until the write lands, along every path the machine might follow
    for i, li in enumerate(cf.instructions):
        for so in li.ops:
            if so.op.dest is None:
                continue
            lat = latency_of(so.op, config)
            extra = (so.unit.beat_offset + lat) // 2
            frontier = {i}
            for _ in range(extra):
                nxt: set[int] = set()
                for j in frontier:
                    for s in succs[j]:
                        live_in[s].add(so.op.dest)
                        live_out[j].add(so.op.dest)
                        nxt.add(s)
                frontier = nxt

    # interference graph per class (instruction granularity; uses included
    # so a same-instruction read can never share with a new definition)
    all_regs: set[VReg] = set()
    interference: dict[VReg, set[VReg]] = defaultdict(set)

    def interfere_group(group: set[VReg]) -> None:
        group_list = list(group)
        all_regs.update(group_list)
        for a_index, a in enumerate(group_list):
            for b in group_list[a_index + 1:]:
                if a.cls is b.cls:
                    interference[a].add(b)
                    interference[b].add(a)

    for i in range(n):
        interfere_group(live_out[i] | defs[i] | uses[i])

    # function parameters are all live on entry simultaneously, together
    # with anything live into the entry instruction
    params = _collect_params(cf)
    entry_index = cf.label_map.get(cf.meta.get("entry_label", ""), 0)
    entry_live = live_in[entry_index] if n else set()
    interfere_group(set(params) | entry_live)

    capacity = {RegClass.INT: config.int_regs,
                RegClass.FLT: config.flt_regs,
                RegClass.PRED: config.pred_regs}
    color: dict[VReg, int] = {}
    for cls in RegClass:
        regs = sorted((r for r in all_regs if r.cls is cls),
                      key=lambda r: (-len(interference[r]), r.name))
        for reg in regs:
            taken = {color[other] for other in interference[reg]
                     if other in color and other.cls is cls}
            assigned = next(c for c in range(capacity[cls] + 1)
                            if c not in taken)
            if assigned >= capacity[cls]:
                raise RegAllocError(
                    f"{cf.name}: out of {cls.name} registers "
                    f"({capacity[cls]} available); reduce unrolling or use "
                    f"a wider configuration")
            color[reg] = assigned

    mapping = {reg: phys_reg(reg.cls, c) for reg, c in color.items()}

    # rewrite the schedule
    for li in cf.instructions:
        for so in li.ops:
            _rewrite(so.op, mapping)
        for bt in li.branches:
            if isinstance(bt.pred, VReg):
                bt.pred = mapping.get(bt.pred, bt.pred)
        if li.special is not None:
            if li.special[0] == "ret" and isinstance(li.special[1], VReg):
                li.special = ("ret", mapping.get(li.special[1],
                                                 li.special[1]))
            elif li.special[0] == "call":
                _rewrite(li.special[1], mapping)

    cf.param_regs = [mapping.get(p, phys_reg(p.cls, 0))
                     for p in _collect_params(cf)]
    cf.meta["vreg_map"] = mapping
    cf.meta["registers_used"] = {
        cls.name: 1 + max((c for r, c in color.items() if r.cls is cls),
                          default=-1)
        for cls in RegClass}


def _collect_params(cf: CompiledFunction) -> list[VReg]:
    return cf.meta.get("param_vregs", [])


def _rewrite(op: Operation, mapping: dict[VReg, VReg]) -> None:
    if op.dest is not None:
        op.dest = mapping.get(op.dest, op.dest)
    for i, src in enumerate(op.srcs):
        if isinstance(src, VReg):
            op.srcs[i] = mapping.get(src, src)
