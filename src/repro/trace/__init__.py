"""The Trace Scheduling compiler (the paper's core contribution)."""

from .compiler import (TraceCompiler, TraceCompileStats, clone_function,
                       compile_module)
from .depgraph import (Node, SchedulingOptions, TraceGraph,
                       build_trace_graph, linearize)
from .profile import (ExecutionEstimates, estimate_from_profile,
                      estimate_static)
from .regalloc import allocate_registers
from .scheduler import ListScheduler, PlacedNode, TraceSchedule
from .selector import Trace, TraceSelector

__all__ = [
    "TraceCompiler", "TraceCompileStats", "clone_function", "compile_module",
    "Node", "SchedulingOptions", "TraceGraph", "build_trace_graph",
    "linearize",
    "ExecutionEstimates", "estimate_from_profile", "estimate_static",
    "allocate_registers", "ListScheduler", "PlacedNode", "TraceSchedule",
    "Trace", "TraceSelector",
]
