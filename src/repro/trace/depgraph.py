"""Dependence graph over one trace, with the code-motion rules of trace
scheduling encoded as edge kinds.

The trace is linearised into *nodes*: real operations, conditional-branch
*splits*, side-entrance *joins* (zero-resource pseudo-ops marking where an
off-trace edge enters), and terminator/call barriers.  Edges constrain the
list scheduler:

``beat``      consumer issue-beat >= producer issue-beat + latency
``inst_ge``   consumer instruction >= producer instruction
``inst_gt``   consumer instruction >  producer instruction

The *absence* of an edge is where trace scheduling's power lives:

* an operation after a split with no ``split -> op`` edge may be
  *speculated* above the branch (loads become dismissable opcodes);
* an operation after a join with no ``join -> op`` edge may move above the
  side entrance — the compiler then places a *compensation copy* of it on
  the entering edge (detected after scheduling, see compiler.py).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis import compute_liveness
from ..disambig import Answer, Disambiguator
from ..ir import (Category, Function, Module, Opcode, Operation, RegClass,
                  VReg)
from ..machine import MachineConfig, latency_of
from .selector import Trace


@dataclass
class Node:
    """One schedulable element of the linearised trace."""

    index: int
    kind: str                 # "op" | "split" | "join" | "term" | "call"
    op: Optional[Operation]   # None for joins
    block: str
    pos: int                  # linear position (original program order)
    #: for splits: the off-trace successor label
    off_trace: Optional[str] = None
    #: for splits: the on-trace successor label (branch retarget bookkeeping)
    on_trace: Optional[str] = None
    #: memory-reference generation: two memory ops' MemRefs are comparable
    #: only when no annotation variable was redefined between them, i.e.
    #: when they carry the same generation number
    mem_gen: int = 0

    @property
    def schedulable(self) -> bool:
        return True


@dataclass
class Edge:
    dst: int
    kind: str                 # "beat" | "inst_ge" | "inst_gt"
    latency: int = 0


@dataclass
class SchedulingOptions:
    """Knobs for ablation experiments."""

    #: allow upward motion past splits (speculation); off = basic-block-ish
    speculation: bool = True
    #: allow upward motion past side entrances (join compensation)
    join_motion: bool = True
    #: fast FP exception mode (paper section 7): trapping float ops may be
    #: speculated because exceptions propagate as NaN/Inf instead of trapping
    fast_fp: bool = False
    #: schedule memory ops into potentially-conflicting ("maybe") bank slots
    #: and let the hardware bank-stall absorb real conflicts (section 6.4.4)
    bank_gamble: bool = True
    #: FORTRAN argument semantics: distinct pointer arguments never alias
    #: (the source language guarantees it); their bank residues stay
    #: unknown, so the gamble still applies
    fortran_args: bool = False


class TraceGraph:
    """Nodes + dependence edges for one trace."""

    def __init__(self, nodes: list[Node]) -> None:
        self.nodes = nodes
        self.succs: list[list[Edge]] = [[] for _ in nodes]
        self.pred_count: list[int] = [0] * len(nodes)

    def add_edge(self, src: int, dst: int, kind: str, latency: int = 0) -> None:
        self.succs[src].append(Edge(dst, kind, latency))
        self.pred_count[dst] += 1

    def splits(self) -> list[Node]:
        return [n for n in self.nodes if n.kind == "split"]

    def joins(self) -> list[Node]:
        return [n for n in self.nodes if n.kind == "join"]


# ---------------------------------------------------------------------------


def linearize(func: Function, trace: Trace,
              entry_labels: set[str] | None = None) -> list[Node]:
    """Build the node sequence for a trace.

    ``entry_labels`` are labels targeted from outside the working function
    (already-compiled branches, the function entry): a mid-trace block in
    that set has a side entrance even if no IR predecessor shows it.
    """
    nodes: list[Node] = []
    from ..analysis import CFG
    preds = CFG.build(func, tolerant=True).preds
    entry_labels = entry_labels or set()
    pos = 0

    def add(kind: str, op, block: str, **kw) -> Node:
        nonlocal pos
        node = Node(len(nodes), kind, op, block, pos, **kw)
        nodes.append(node)
        pos += 1
        return node

    blocks = list(trace.blocks)
    for bi, bname in enumerate(blocks):
        block = func.block(bname)
        if bi > 0:
            on_trace_pred = blocks[bi - 1]
            side = [p for p in preds[bname] if p != on_trace_pred]
            if side or bname in entry_labels:
                add("join", None, bname)
        for op in block.body:
            add("call" if op.is_call else "op", op, bname)
        term = block.terminator
        last = bi == len(blocks) - 1
        if term.opcode is Opcode.BR:
            then_name, else_name = (lbl.name for lbl in term.labels)
            if not last and then_name == blocks[bi + 1]:
                off, on = else_name, then_name
            elif not last and else_name == blocks[bi + 1]:
                off, on = then_name, else_name
            else:
                # trace ends at this branch: both targets are off-trace;
                # treat the less likely (else) side as fallthrough
                off, on = then_name, else_name
            add("split", term, bname, off_trace=off, on_trace=on)
        elif term.opcode is Opcode.JMP:
            if last:
                add("term", term, bname)
            # on-trace JMP needs no node: pure fallthrough in the schedule
        else:   # RET / HALT
            add("term", term, bname)
    return nodes


def _speculatable(op: Operation, live_off: set[VReg],
                  options: SchedulingOptions) -> bool:
    """May ``op`` move above a split whose off-trace edge has ``live_off``?"""
    if not options.speculation:
        return False
    if op.has_side_effect or op.is_call:
        return False
    if op.dest is not None and op.dest in live_off:
        return False            # would clobber a value the other path reads
    if op.is_load:
        return True             # becomes a dismissable load
    if op.can_trap:
        # trapping FP ops are safe to hoist only in fast mode; integer
        # divide traps are always precise
        fp = op.category in (Category.FLT_ADD, Category.FLT_MUL,
                             Category.FLT_DIV, Category.FLT_CMP,
                             Category.CVT)
        return fp and options.fast_fp
    return True


def _may_move_above_join(node: Node) -> bool:
    """Joins: anything but control transfers and calls may move above (the
    compensation copy re-executes it on the entering edge)."""
    return node.kind == "op"


def _memrefs_comparable(nodes: list[Node], a: Node, b: Node) -> bool:
    """MemRef variable values must be stable between the two positions."""
    ra, rb = a.op.memref, b.op.memref
    if ra is None or rb is None:
        return False
    names = {v for v, _ in ra.coeffs} | {v for v, _ in rb.coeffs}
    if not names:
        return True
    for node in nodes[a.index + 1:b.index]:
        if node.op is not None and node.op.dest is not None \
                and node.op.dest.cls is RegClass.INT \
                and node.op.dest.name in names:
            return False
    return True


def build_trace_graph(func: Function, trace: Trace,
                      disambiguator: Disambiguator,
                      config: MachineConfig,
                      options: SchedulingOptions | None = None,
                      live_in_map: dict[str, set[VReg]] | None = None,
                      entry_labels: set[str] | None = None) -> TraceGraph:
    """Linearise the trace and add every scheduling constraint.

    ``live_in_map`` supplies live-in sets per block name (computed on the
    original, complete function — off-trace targets may already have been
    compiled out of the working function).
    """
    if options is None:
        options = SchedulingOptions()
    nodes = linearize(func, trace, entry_labels)
    graph = TraceGraph(nodes)
    if live_in_map is None:
        from ..analysis import CFG
        live_in_map = compute_liveness(func, CFG.build(func, True)).live_in

    # memory-reference generations (see Node.mem_gen)
    ref_vars: set[str] = set()
    for node in nodes:
        if node.op is not None and node.op.memref is not None:
            ref_vars.update(v for v, _ in node.op.memref.coeffs)
    generation = 0
    for node in nodes:
        node.mem_gen = generation
        op = node.op
        if op is not None and op.dest is not None \
                and op.dest.cls is RegClass.INT and op.dest.name in ref_vars:
            generation += 1

    # --- register dependences -----------------------------------------
    last_def: dict[VReg, int] = {}
    readers_since_def: dict[VReg, list[int]] = {}
    for node in nodes:
        op = node.op
        if op is None:
            continue
        for src in op.reg_srcs():
            if src in last_def:
                producer = nodes[last_def[src]]
                graph.add_edge(producer.index, node.index, "beat",
                               latency_of(producer.op, config))
            readers_since_def.setdefault(src, []).append(node.index)
        if op.dest is not None:
            dest = op.dest
            if dest in last_def:
                producer = nodes[last_def[dest]]
                lat = (latency_of(producer.op, config)
                       - latency_of(op, config) + 1)
                graph.add_edge(producer.index, node.index, "beat",
                               max(0, lat))
            for reader in readers_since_def.get(dest, []):
                if reader != node.index:
                    graph.add_edge(reader, node.index, "beat", 0)  # WAR
            readers_since_def[dest] = []
            last_def[dest] = node.index

    # --- memory dependences --------------------------------------------
    mem_nodes = [n for n in nodes if n.op is not None and n.op.is_memory]
    for i, a in enumerate(mem_nodes):
        for b in mem_nodes[i + 1:]:
            if a.op.is_load and b.op.is_load:
                continue
            if _memrefs_comparable(nodes, a, b):
                answer = disambiguator.alias(a.op, b.op)
            else:
                answer = Answer.MAYBE
            if answer is Answer.NO:
                continue
            if a.op.is_store and b.op.is_load:
                latency = max(1, config.lat_mem - 2)   # no store forwarding
            else:
                latency = 1
            graph.add_edge(a.index, b.index, "beat", latency)

    # --- control boundaries ----------------------------------------------
    for node in nodes:
        if node.kind == "split":
            live_off = live_in_map.get(node.off_trace, set())
            for earlier in nodes[:node.index]:
                if earlier.kind == "op":
                    graph.add_edge(earlier.index, node.index, "inst_ge")
                    # cross-trace timing: a value the off-trace path reads
                    # must have left the pipeline before the branch
                    # transfers control (transfer = end of the branch's
                    # instruction, 2 beats after its issue beat)
                    if earlier.op.dest is not None \
                            and earlier.op.dest in live_off:
                        lat = latency_of(earlier.op, config)
                        # lat == 2 still needs the (zero-latency) beat
                        # edge: issued on the late beat it lands at 2t+3,
                        # one beat after the transfer at 2t+2
                        if lat >= 2:
                            graph.add_edge(earlier.index, node.index,
                                           "beat", lat - 2)
            for later in nodes[node.index + 1:]:
                if later.kind == "op" and _speculatable(
                        later.op, live_off, options):
                    continue
                graph.add_edge(node.index, later.index,
                               "inst_ge" if later.kind == "split"
                               else "inst_gt")
        elif node.kind == "join":
            for earlier in nodes[:node.index]:
                graph.add_edge(earlier.index, node.index, "inst_gt")
            for later in nodes[node.index + 1:]:
                if options.join_motion and _may_move_above_join(later):
                    continue
                graph.add_edge(node.index, later.index, "inst_ge")
        elif node.kind == "call":
            for earlier in nodes[:node.index]:
                graph.add_edge(earlier.index, node.index, "inst_ge")
            for later in nodes[node.index + 1:]:
                graph.add_edge(node.index, later.index, "inst_gt")
        elif node.kind == "term" and node.op.opcode in (Opcode.RET,
                                                        Opcode.HALT):
            for earlier in nodes[:node.index]:
                graph.add_edge(earlier.index, node.index, "inst_ge")

    return graph
