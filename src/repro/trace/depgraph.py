"""Re-export shim: the trace dependence builder now lives in the unified
scheduling core — :mod:`repro.sched.deps` in acyclic mode."""

from __future__ import annotations

from ..sched.core import SchedulingOptions
from ..sched.deps import (Edge, Node, TraceGraph, build_trace_graph,
                          linearize)

__all__ = ["Edge", "Node", "SchedulingOptions", "TraceGraph",
           "build_trace_graph", "linearize"]
