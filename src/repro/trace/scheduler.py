"""Resource-constrained list scheduling of one trace.

A thin strategy over the unified scheduling core: greedy cycle
scheduling over the trace's dependence graph (:mod:`repro.sched.deps`,
acyclic mode), placing operations into functional-unit slots of
successive long instructions through the flat view of the unified
:class:`~repro.sched.reservation.ReservationModel` — unit slots,
per-beat memory-issue ports, load/store buses, the per-pair shared
immediate word, branch slots — with pairwise memory-bank constraints,
including the "maybe ... roll the dice" bank-stall gamble of section
6.4.4, answered by the shared
:class:`~repro.sched.reservation.BankChecker`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..disambig import Disambiguator
from ..errors import ScheduleError
from ..machine import MachineConfig, Unit, needs_imm_word, units_for
from ..obs import get_tracer
from ..sched.core import (AcyclicPriority, Scheduler, SchedulingOptions,
                          order_units)
from ..sched.deps import AcyclicGraph, Node
from ..sched.reservation import GAMBLE, ILLEGAL, BankChecker, ReservationModel


@dataclass
class PlacedNode:
    """Where one graph node landed."""

    node: Node
    instruction: int
    pair: int = -1
    unit: Optional[Unit] = None
    gamble: bool = False

    @property
    def issue_beat(self) -> int:
        offset = self.unit.beat_offset if self.unit is not None else 0
        return self.instruction * 2 + offset


@dataclass
class TraceSchedule:
    """The scheduler's result for one trace."""

    placements: dict[int, PlacedNode] = field(default_factory=dict)
    n_instructions: int = 0
    #: memory gambles taken (for statistics)
    gambles: int = 0

    def placed(self, index: int) -> PlacedNode:
        return self.placements[index]


class ListScheduler(Scheduler):
    """Schedules one acyclic trace graph onto one machine configuration."""

    def __init__(self, graph: AcyclicGraph, config: MachineConfig,
                 disambiguator: Disambiguator,
                 options: SchedulingOptions | None = None,
                 tracer=None, trace_id: str = "?") -> None:
        super().__init__(graph, config, disambiguator, options)
        #: which trace this is (for diagnosable failures)
        self.trace_id = trace_id
        self.tracer = get_tracer(tracer)
        self.model = ReservationModel(config)
        self.checker = BankChecker(disambiguator, config, self.options)
        self.result = TraceSchedule()
        self._mem_placed: list[PlacedNode] = []
        self._gamble_partners: list[PlacedNode] = []
        self._instr_op_count: dict[int, int] = {}
        self._call_instrs: set[int] = set()
        #: the one priority key — the scheduling loop and the stuck-list
        #: diagnostics both read it, so they can never drift apart
        self._priority = AcyclicPriority(graph, self.options.params)
        self._heights = self._priority.heights

    # ------------------------------------------------------------------
    def run(self) -> TraceSchedule:
        graph = self.graph
        n = len(graph.nodes)
        remaining_preds = list(graph.pred_count)
        ready: list[int] = [i for i in range(n) if remaining_preds[i] == 0]
        unscheduled = n
        t = 0
        stall_guard = 0
        while unscheduled > 0:
            progress = False
            # keep sweeping the ready list at this instruction until no
            # more nodes fit: a node whose predecessors were placed earlier
            # in this same sweep (zero-latency edges) may still join it
            sweep = True
            while sweep:
                sweep = False
                # highest priority first (DEFAULT: critical-path height,
                # ties by original position)
                for index in sorted(ready, key=self._priority.key):
                    node = graph.nodes[index]
                    earliest = self._earliest_instruction(index)
                    if earliest > t:
                        continue
                    placed = self._try_place(node, t)
                    if placed is None:
                        continue
                    self.result.placements[index] = placed
                    ready.remove(index)
                    unscheduled -= 1
                    progress = True
                    sweep = True
                    for edge in graph.succs[index]:
                        remaining_preds[edge.dst] -= 1
                        if remaining_preds[edge.dst] == 0:
                            ready.append(edge.dst)
            if unscheduled > 0:
                t += 1
                stall_guard = stall_guard + 1 if not progress else 0
                if stall_guard > 10000:
                    raise self._no_progress_error(ready, t)
        self.result.n_instructions = 1 + max(
            p.instruction for p in self.result.placements.values())
        counters = self.tracer.counters
        counters.inc("sched.traces")
        counters.inc("sched.instructions", self.result.n_instructions)
        counters.inc("sched.placed_nodes", len(self.result.placements))
        counters.inc("sched.gambles", self.result.gambles)
        return self.result

    def _no_progress_error(self, ready: list[int], t: int) -> ScheduleError:
        """A diagnosable no-progress failure: which trace, how big the
        stuck ready list is, and what its highest-priority node looks
        like (the node everything else is probably waiting behind)."""
        blocking = "none (empty ready list)"
        if ready:
            index = min(ready, key=self._priority.key)
            node = self.graph.nodes[index]
            what = str(node.op.opcode) if node.op is not None else node.kind
            blocking = (f"node #{index} {what} at pos {node.pos} "
                        f"(height {self._heights[index]})")
        return ScheduleError(
            f"scheduler made no progress for 10000 instructions "
            f"(trace {self.trace_id}, instruction {t}, "
            f"{len(ready)} nodes ready, blocking: {blocking})",
            trace_id=self.trace_id, ready=len(ready), blocking=blocking)

    # ------------------------------------------------------------------
    def _earliest_instruction(self, index: int) -> int:
        """Lower bound on the node's instruction from scheduled preds."""
        earliest = 0
        for edge in self.graph.preds[index]:
            placed = self.result.placements.get(edge.src)
            if placed is None:
                return 1 << 30      # pred not scheduled (shouldn't happen)
            if edge.kind == "inst_ge":
                earliest = max(earliest, placed.instruction)
            elif edge.kind == "inst_gt":
                earliest = max(earliest, placed.instruction + 1)
            else:
                need_beat = placed.issue_beat + edge.latency
                earliest = max(earliest, need_beat // 2)
        return earliest

    def _required_beat(self, index: int) -> int:
        """Earliest legal issue beat from 'beat' edges."""
        beat = 0
        for edge in self.graph.preds[index]:
            if edge.kind != "beat":
                continue
            placed = self.result.placements[edge.src]
            beat = max(beat, placed.issue_beat + edge.latency)
        return beat

    # ------------------------------------------------------------------
    def _try_place(self, node: Node, t: int) -> PlacedNode | None:
        if node.kind == "join":
            return PlacedNode(node, t)
        if node.kind == "term":
            # a RET reads its value at the instruction's first beat
            if self._required_beat(node.index) > 2 * t:
                return None
            return PlacedNode(node, t)
        if node.kind == "call":
            if self._instr_op_count.get(t, 0) > 0 or t in self._call_instrs:
                return None
            self._call_instrs.add(t)
            return PlacedNode(node, t)
        if t in self._call_instrs:
            return None
        if node.kind == "split":
            return self._place_branch(node, t)
        return self._place_op(node, t)

    def _place_branch(self, node: Node, t: int) -> PlacedNode | None:
        if self.model.branches_in(t) >= self.config.n_pairs:
            return None
        required = self._required_beat(node.index)
        if required > 2 * t:
            return None                     # predicate not ready
        for pair in range(self.config.n_pairs):
            if self.model.branch_free(t, pair):
                self.model.take_branch(t, pair, node.index)
                self._instr_op_count[t] = self._instr_op_count.get(t, 0) + 1
                return PlacedNode(node, t, pair, None)
        return None

    def _place_op(self, node: Node, t: int) -> PlacedNode | None:
        op = node.op
        required = self._required_beat(node.index)
        params = self.options.params
        units = order_units(units_for(op), params)
        if not units:
            raise ScheduleError(f"no unit can execute {op}")
        if (params.wide_imm_deferral
                and needs_imm_word(op) and not op.is_memory
                and not any(e.kind == "beat"
                            for e in self.graph.succs[node.index])):
            # beat-0 immediate words are the scarce kind — F-board ops
            # can only issue at beat 0 — so a flexible op that carries a
            # wide immediate and whose result no placed op waits a beat
            # for (no outgoing latency edges: a late slot costs nothing)
            # fills the late slots' words first
            units = tuple(sorted(
                units, key=lambda u: (not u.is_integer_unit,
                                      -u.beat_offset)))

        for unit in units:
            for pair in range(self.config.n_pairs):
                issue_beat = 2 * t + unit.beat_offset
                if issue_beat < required:
                    continue
                if self.model.conflicts(op, t, pair, unit):
                    continue
                if op.is_memory:
                    gamble = self._memory_feasible(node, issue_beat)
                    if gamble is None:
                        continue
                else:
                    gamble = False
                # commit
                self.model.place(op, node.index, t, pair, unit)
                placed = PlacedNode(node, t, pair, unit, gamble)
                if op.is_memory:
                    self._commit_memory(placed)
                self._instr_op_count[t] = self._instr_op_count.get(t, 0) + 1
                if gamble:
                    self.result.gambles += 1
                return placed
        return None

    # ------------------------------------------------------------------
    def _memory_feasible(self, node: Node, issue_beat: int) -> bool | None:
        """None if the beat is bank-illegal; else the gamble flag."""
        op = node.op
        gamble = False
        partners: list[PlacedNode] = []
        window = self.checker.window
        for other in self._mem_placed:
            delta = abs(other.issue_beat - issue_beat)
            if delta >= window:
                continue
            comparable = (op.memref is not None
                          and other.node.op.memref is not None
                          and node.mem_gen == other.node.mem_gen)
            refs = (op, other.node.op) if comparable else None
            verdict = self.checker.check((node.index, other.node.index),
                                         refs, delta == 0)
            if verdict == ILLEGAL:
                return None
            if verdict == GAMBLE:
                gamble = True
                partners.append(other)
        # both sides of a "maybe" pair must be stall-tolerant: either one
        # may turn out to be the later reference at run time
        self._gamble_partners = partners
        return gamble

    def _commit_memory(self, placed: PlacedNode) -> None:
        for partner in self._gamble_partners:
            partner.gamble = True
        self._gamble_partners = []
        self._mem_placed.append(placed)
