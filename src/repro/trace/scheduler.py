"""Resource-constrained list scheduling of one trace.

Greedy cycle scheduling over the trace's dependence graph, placing
operations into functional-unit slots of successive long instructions while
honouring every machine resource the compiler owns on the TRACE: unit
slots, per-beat memory-issue ports, load/store buses (64-bit transfers hold
a 32-bit bus two beats), the per-pair shared immediate word, branch slots
(up to one test per pair, multiway), and pairwise memory-bank constraints
answered by the disambiguator — including the "maybe ... roll the dice"
bank-stall gamble of section 6.4.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..disambig import Answer, Disambiguator
from ..errors import ScheduleError
from ..ir import Opcode, Operation, RegClass
from ..machine import (MachineConfig, ReservationTable, Unit, imm_value,
                       latency_of, needs_imm_word, units_for)
from ..obs import get_tracer
from .depgraph import Node, SchedulingOptions, TraceGraph


@dataclass
class PlacedNode:
    """Where one graph node landed."""

    node: Node
    instruction: int
    pair: int = -1
    unit: Unit | None = None
    gamble: bool = False

    @property
    def issue_beat(self) -> int:
        offset = self.unit.beat_offset if self.unit is not None else 0
        return self.instruction * 2 + offset


@dataclass
class TraceSchedule:
    """The scheduler's result for one trace."""

    placements: dict[int, PlacedNode] = field(default_factory=dict)
    n_instructions: int = 0
    #: memory gambles taken (for statistics)
    gambles: int = 0

    def placed(self, index: int) -> PlacedNode:
        return self.placements[index]


class ListScheduler:
    """Schedules one TraceGraph onto one machine configuration."""

    def __init__(self, graph: TraceGraph, config: MachineConfig,
                 disambiguator: Disambiguator,
                 options: SchedulingOptions | None = None,
                 tracer=None, trace_id: str = "?") -> None:
        self.graph = graph
        self.config = config
        self.disambiguator = disambiguator
        self.options = options or SchedulingOptions()
        #: which trace this is (for diagnosable failures)
        self.trace_id = trace_id
        self.tracer = get_tracer(tracer)
        self.table = ReservationTable(config)
        self.result = TraceSchedule()
        self._mem_placed: list[PlacedNode] = []
        self._instr_op_count: dict[int, int] = {}
        self._call_instrs: set[int] = set()
        self._heights = self._compute_heights()
        self._preds: list[list] = [[] for _ in graph.nodes]
        for src, edges in enumerate(graph.succs):
            for edge in edges:
                self._preds[edge.dst].append((src, edge))

    # ------------------------------------------------------------------
    def _compute_heights(self) -> list[int]:
        """Critical-path heights (beats) for priority ordering."""
        n = len(self.graph.nodes)
        heights = [0] * n
        for index in range(n - 1, -1, -1):
            best = 0
            for edge in self.graph.succs[index]:
                weight = edge.latency if edge.kind == "beat" else \
                    (2 if edge.kind == "inst_gt" else 0)
                best = max(best, weight + heights[edge.dst])
            heights[index] = best
        return heights

    # ------------------------------------------------------------------
    def run(self) -> TraceSchedule:
        graph = self.graph
        n = len(graph.nodes)
        remaining_preds = list(graph.pred_count)
        ready: list[int] = [i for i in range(n) if remaining_preds[i] == 0]
        unscheduled = n
        t = 0
        stall_guard = 0
        while unscheduled > 0:
            progress = False
            # keep sweeping the ready list at this instruction until no
            # more nodes fit: a node whose predecessors were placed earlier
            # in this same sweep (zero-latency edges) may still join it
            sweep = True
            while sweep:
                sweep = False
                # highest critical path first; ties by original position
                for index in sorted(ready, key=lambda i:
                                    (-self._heights[i],
                                     graph.nodes[i].pos)):
                    node = graph.nodes[index]
                    earliest = self._earliest_instruction(index)
                    if earliest > t:
                        continue
                    placed = self._try_place(node, t)
                    if placed is None:
                        continue
                    self.result.placements[index] = placed
                    ready.remove(index)
                    unscheduled -= 1
                    progress = True
                    sweep = True
                    for edge in graph.succs[index]:
                        remaining_preds[edge.dst] -= 1
                        if remaining_preds[edge.dst] == 0:
                            ready.append(edge.dst)
            if unscheduled > 0:
                t += 1
                stall_guard = stall_guard + 1 if not progress else 0
                if stall_guard > 10000:
                    raise self._no_progress_error(ready, t)
        self.result.n_instructions = 1 + max(
            p.instruction for p in self.result.placements.values())
        counters = self.tracer.counters
        counters.inc("sched.traces")
        counters.inc("sched.instructions", self.result.n_instructions)
        counters.inc("sched.placed_nodes", len(self.result.placements))
        counters.inc("sched.gambles", self.result.gambles)
        return self.result

    def _no_progress_error(self, ready: list[int], t: int) -> ScheduleError:
        """A diagnosable no-progress failure: which trace, how big the
        stuck ready list is, and what its highest-priority node looks
        like (the node everything else is probably waiting behind)."""
        blocking = "none (empty ready list)"
        if ready:
            index = min(ready, key=lambda i: (-self._heights[i],
                                              self.graph.nodes[i].pos))
            node = self.graph.nodes[index]
            what = str(node.op.opcode) if node.op is not None else node.kind
            blocking = (f"node #{index} {what} at pos {node.pos} "
                        f"(height {self._heights[index]})")
        return ScheduleError(
            f"scheduler made no progress for 10000 instructions "
            f"(trace {self.trace_id}, instruction {t}, "
            f"{len(ready)} nodes ready, blocking: {blocking})",
            trace_id=self.trace_id, ready=len(ready), blocking=blocking)

    # ------------------------------------------------------------------
    def _earliest_instruction(self, index: int) -> int:
        """Lower bound on the node's instruction from scheduled preds."""
        earliest = 0
        for pred_index, edge in self._in_edges(index):
            placed = self.result.placements.get(pred_index)
            if placed is None:
                return 1 << 30      # pred not scheduled (shouldn't happen)
            if edge.kind == "inst_ge":
                earliest = max(earliest, placed.instruction)
            elif edge.kind == "inst_gt":
                earliest = max(earliest, placed.instruction + 1)
            else:
                need_beat = placed.issue_beat + edge.latency
                earliest = max(earliest, need_beat // 2)
        return earliest

    def _in_edges(self, index: int):
        return self._preds[index]

    def _required_beat(self, index: int) -> int:
        """Earliest legal issue beat from 'beat' edges."""
        beat = 0
        for pred_index, edge in self._in_edges(index):
            if edge.kind != "beat":
                continue
            placed = self.result.placements[pred_index]
            beat = max(beat, placed.issue_beat + edge.latency)
        return beat

    # ------------------------------------------------------------------
    def _try_place(self, node: Node, t: int) -> PlacedNode | None:
        if node.kind == "join":
            return PlacedNode(node, t)
        if node.kind == "term":
            # a RET reads its value at the instruction's first beat
            if self._required_beat(node.index) > 2 * t:
                return None
            return PlacedNode(node, t)
        if node.kind == "call":
            if self._instr_op_count.get(t, 0) > 0 or t in self._call_instrs:
                return None
            self._call_instrs.add(t)
            return PlacedNode(node, t)
        if t in self._call_instrs:
            return None
        if node.kind == "split":
            return self._place_branch(node, t)
        return self._place_op(node, t)

    def _place_branch(self, node: Node, t: int) -> PlacedNode | None:
        if self.table.branches_in(t) >= self.config.n_pairs:
            return None
        required = self._required_beat(node.index)
        if required > 2 * t:
            return None                     # predicate not ready
        for pair in range(self.config.n_pairs):
            if self.table.branch_free(t, pair):
                self.table.take_branch(t, pair)
                self._instr_op_count[t] = self._instr_op_count.get(t, 0) + 1
                return PlacedNode(node, t, pair, None)
        return None

    def _place_op(self, node: Node, t: int) -> PlacedNode | None:
        op = node.op
        required = self._required_beat(node.index)
        units = units_for(op)
        if not units:
            raise ScheduleError(f"no unit can execute {op}")
        wide_imm = needs_imm_word(op)
        imm = imm_value(op) if wide_imm else None

        for unit in units:
            beat_offset = unit.beat_offset
            for pair in range(self.config.n_pairs):
                issue_beat = 2 * t + beat_offset
                if issue_beat < required:
                    continue
                if not self.table.unit_free(t, pair, unit):
                    continue
                if wide_imm and not self.table.imm_free(t, pair, beat_offset,
                                                        imm):
                    continue
                if op.is_memory:
                    gamble = self._memory_feasible(node, t, pair, unit)
                    if gamble is None:
                        continue
                else:
                    gamble = False
                # commit
                self.table.take_unit(t, pair, unit)
                if wide_imm:
                    self.table.take_imm(t, pair, beat_offset, imm)
                placed = PlacedNode(node, t, pair, unit, gamble)
                if op.is_memory:
                    self._commit_memory(placed)
                self._instr_op_count[t] = self._instr_op_count.get(t, 0) + 1
                if gamble:
                    self.result.gambles += 1
                return placed
        return None

    # ------------------------------------------------------------------
    def _bus_plan(self, op: Operation, issue_beat: int) -> tuple[str, int, int]:
        """(bus kind, first beat, beats held) for a memory op."""
        wide = op.opcode in (Opcode.FLOAD, Opcode.FLOADS, Opcode.FSTORE)
        beats = 2 if wide else 1
        if op.is_store:
            return "store", issue_beat + 2, beats
        kind = "fload" if op.dest is not None \
            and op.dest.cls is RegClass.FLT else "iload"
        return kind, issue_beat + self.config.lat_mem - 2, beats

    def _memory_feasible(self, node: Node, t: int, pair: int,
                         unit: Unit) -> bool | None:
        """None if the slot is illegal; else the gamble flag."""
        op = node.op
        beat_offset = unit.beat_offset
        issue_beat = 2 * t + beat_offset
        if not self.table.mem_issue_free(t, pair, beat_offset):
            return None
        bus, first, beats = self._bus_plan(op, issue_beat)
        if not self.table.bus_free(bus, first, beats):
            return None

        gamble = False
        partners: list[PlacedNode] = []
        window = self.config.bank_busy_beats
        for other in self._mem_placed:
            delta = abs(other.issue_beat - issue_beat)
            if delta >= window:
                continue
            comparable = (op.memref is not None
                          and other.node.op.memref is not None
                          and node.mem_gen == other.node.mem_gen)
            if delta == 0:
                answer = self.disambiguator.controller_equal(
                    op, other.node.op, self.config.n_controllers) \
                    if comparable else Answer.MAYBE
                if answer is not Answer.NO:
                    return None     # same-beat controller conflict is hard
            answer = self.disambiguator.bank_equal(
                op, other.node.op, self.config.total_banks) \
                if comparable else Answer.MAYBE
            if answer is Answer.YES:
                return None
            if answer is Answer.MAYBE:
                if not self.options.bank_gamble:
                    return None
                gamble = True
                partners.append(other)
        # both sides of a "maybe" pair must be stall-tolerant: either one
        # may turn out to be the later reference at run time
        self._gamble_partners = partners
        return gamble

    def _commit_memory(self, placed: PlacedNode) -> None:
        op = placed.node.op
        self.table.take_mem_issue(placed.instruction, placed.pair,
                                  placed.unit.beat_offset)
        bus, first, beats = self._bus_plan(op, placed.issue_beat)
        self.table.take_bus(bus, first, beats)
        for partner in getattr(self, "_gamble_partners", ()):
            partner.gamble = True
        self._gamble_partners = []
        self._mem_placed.append(placed)
