"""The Trace Scheduling compiler driver.

Implements the loop of paper section 4: select the likeliest remaining
trace, schedule it as if branch-free, insert compensation code on the
off-trace edges where code motion broke naive correctness, and repeat until
the whole function is compiled.  Finishes with register allocation onto the
machine's physical files and link-time label resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..analysis import CFG, compute_liveness
from ..disambig import Disambiguator, derive_memrefs
from ..errors import DisambigError, ScheduleError
from ..ir import (Function, Module, Opcode, Operation, Profile, RegClass,
                  SPECULATIVE_LOAD, VReg, make_jmp)
from ..machine import (BranchTest, CompiledFunction, CompiledProgram,
                       LongInstruction, MachineConfig, ScheduledOp,
                       latency_of)
from ..obs import get_tracer
from ..opt import clone_operations
from ..sched import SchedulingOptions, build_acyclic_graph
from .profile import (ExecutionEstimates, estimate_from_profile,
                      estimate_static)
from .regalloc import allocate_registers
from .scheduler import ListScheduler, TraceSchedule
from .selector import Trace, TraceSelector


@dataclass
class TraceCompileStats:
    """Per-function statistics gathered during trace compilation."""

    n_traces: int = 0
    n_instructions: int = 0
    n_ops: int = 0
    n_speculated_loads: int = 0
    n_compensation_ops: int = 0
    n_gambles: int = 0
    trace_lengths: list[int] = field(default_factory=list)
    #: reasons this function fell back to degraded (per-block) compilation;
    #: empty on a fully trace-scheduled compile
    degradations: list[str] = field(default_factory=list)
    #: :class:`~repro.pipeline.PipelinedLoopStats` per software-pipelined
    #: loop (strategy "pipeline"/"auto"/"optimal" only)
    pipelined_loops: list = field(default_factory=list)
    #: "header: reason" per loop the modulo scheduler declined or lost
    pipeline_fallbacks: list[str] = field(default_factory=list)
    #: strategy "optimal": schedules the exact engine certified minimal
    optimal_proved: int = 0
    #: strategy "optimal": schedules where the exact engine beat the
    #: heuristic (shorter trace / smaller II)
    optimal_improved: int = 0
    #: "where: reason" per schedule the exact engine could not certify
    #: (size gate or budget exhaustion) — the heuristic result stands
    optimal_fallbacks: list[str] = field(default_factory=list)


def clone_function(func: Function) -> Function:
    """A deep working copy (the compiler consumes its input blocks)."""
    fork = Function(func.name, list(func.params), func.ret_class)
    for name, block in func.blocks.items():
        new_block = fork.add_block(name)
        new_block.ops = clone_operations(block.ops, rename={})
    return fork


class TraceCompiler:
    """Compiles a module's functions onto one TRACE configuration.

    Args:
        module: the (already classically-optimized) module.
        config: target machine configuration.
        options: code-motion knobs (speculation, join motion, fast FP,
            bank gambling) — see :class:`SchedulingOptions`.
        profile: optional training-run profile for trace selection; static
            heuristics are used otherwise.
        strategy: loop-compilation engine — ``"trace"`` (default) compiles
            loops as unrolled traces, ``"pipeline"`` software-pipelines
            every loop the modulo scheduler accepts, ``"auto"`` pipelines
            only when the achieved II beats the trace scheduler's
            steady-state instructions per iteration for the same loop,
            ``"optimal"`` behaves like ``"auto"`` but runs the exact
            engine (:mod:`repro.optimal`) over every trace and loop small
            enough for its size gate — certifying the heuristic schedule
            or replacing it with a proven-shorter one, and falling back
            gracefully (recorded on
            :attr:`TraceCompileStats.optimal_fallbacks`) otherwise.
    """

    STRATEGIES = ("trace", "pipeline", "auto", "optimal")
    #: strategy "optimal": per-decision node budget for the exact engine
    OPTIMAL_MAX_NODES = 20_000
    #: strategy "optimal": largest trace/loop graph the exact engine tries
    OPTIMAL_GATE_NODES = 48

    def __init__(self, module: Module, config: MachineConfig | None = None,
                 options: SchedulingOptions | None = None,
                 profile: Profile | None = None,
                 tracer=None, disambig_budget: int | None = None,
                 strategy: str = "trace") -> None:
        if strategy not in self.STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r} "
                             f"(expected one of {self.STRATEGIES})")
        self.module = module
        self.config = config or MachineConfig()
        self.options = options or SchedulingOptions()
        self.profile = profile
        self.strategy = strategy
        self.tracer = get_tracer(tracer)
        self.disambig_budget = disambig_budget
        self.disambiguator = Disambiguator(
            module, fortran_args=self.options.fortran_args,
            tracer=self.tracer, query_budget=disambig_budget)
        self.stats: dict[str, TraceCompileStats] = {}

    # ------------------------------------------------------------------
    def compile_module(self) -> CompiledProgram:
        program = CompiledProgram(config=self.config)
        for func in self.module.functions.values():
            cf, _stats = self.compile_function(func)
            program.add(cf)
        return program

    def compile_function(
            self, func: Function) -> tuple[CompiledFunction,
                                           TraceCompileStats]:
        """Compile one function, backing off code motion under register
        pressure; returns the compiled function and its statistics.

        Aggressive speculation and join motion stretch live ranges; when
        allocation fails, the function is recompiled with motion disabled
        (shorter live ranges), mirroring the pressure heuristics production
        trace schedulers applied.  A function whose *sequential* pressure
        already exceeds the files still fails, with a clear error.

        Scheduler no-progress and disambiguator budget exhaustion do not
        fail the compile either: both downgrade to per-block (non-trace)
        scheduling — correct, slower code — and record the reason on
        :attr:`TraceCompileStats.degradations`.
        """
        from ..errors import RegAllocError
        try:
            return self._compile_function(func, self.options)
        except RegAllocError:
            # pipelining multiplies live ranges (stage overlap + modulo
            # variable expansion), so the pressure retry also turns it off
            conservative = replace(self.options, speculation=False,
                                   join_motion=False)
            try:
                cf, stats = self._compile_function(
                    func, conservative, allow_pipeline=False)
            except (ScheduleError, DisambigError) as exc:
                return self._degraded_compile(func, exc)
            if self.strategy != "trace":
                stats.pipeline_fallbacks.append(
                    "*: register pressure retry disabled pipelining")
            return cf, stats
        except (ScheduleError, DisambigError) as exc:
            return self._degraded_compile(func, exc)

    def _degraded_compile(
            self, func: Function,
            cause: Exception) -> tuple[CompiledFunction, TraceCompileStats]:
        """Per-block fallback: every trace is one basic block, no code
        motion, no bank gambles, and an unbudgeted disambiguator (per-block
        traces keep the pairwise query count linear in block size).

        The result is what a conventional compiler would have produced —
        correct and schedulable, just without cross-block parallelism.
        """
        reason = f"{type(cause).__name__}: {cause}"
        degraded_options = replace(self.options, speculation=False,
                                   join_motion=False, bank_gamble=False)
        fallback_disambiguator = Disambiguator(
            self.module, fortran_args=self.options.fortran_args,
            tracer=self.tracer)
        cf, stats = self._compile_function(
            func, degraded_options, per_block=True,
            disambiguator=fallback_disambiguator)
        stats.degradations.append(reason)
        self.tracer.counters.inc("trace.degradations")
        self.tracer.event("compile_degraded", cat="compile",
                          function=func.name, reason=reason)
        return cf, stats

    def _compile_function(
            self, func: Function,
            options: SchedulingOptions,
            per_block: bool = False,
            disambiguator: Disambiguator | None = None,
            allow_pipeline: bool = True,
    ) -> tuple[CompiledFunction, TraceCompileStats]:
        tracer = self.tracer
        disambig = disambiguator if disambiguator is not None \
            else self.disambiguator
        derive_memrefs(func)
        work = clone_function(func)
        stats = TraceCompileStats()
        self.stats[func.name] = stats

        live_in_map = dict(compute_liveness(work).live_in)
        if self.profile is not None:
            estimates = estimate_from_profile(work, self.profile)
        else:
            estimates = estimate_static(work)
        selector = TraceSelector(
            work, estimates, tracer=tracer,
            max_trace_blocks=1 if per_block else 64)
        entry_labels: set[str] = {work.entry.name}
        entry_name = work.entry.name

        cf = CompiledFunction(func.name, self.config)
        cf.meta["entry_label"] = entry_name
        cf.meta["param_vregs"] = list(func.params)
        cf.meta["ret_class"] = func.ret_class
        comp_counter = 0

        if self.strategy != "trace" and allow_pipeline and not per_block:
            self._pipeline_loops(work, cf, options, stats, estimates,
                                 live_in_map, entry_labels)

        while True:
            with tracer.span("trace.select", cat="compile",
                             function=func.name):
                trace = selector.next_trace()
            if trace is None:
                break
            with tracer.span("sched.deps", cat="compile",
                             function=func.name, blocks=len(trace)):
                graph = build_acyclic_graph(work, trace, disambig,
                                            self.config, options,
                                            live_in_map, entry_labels)
            with tracer.span("trace.schedule", cat="compile",
                             function=func.name, nodes=len(graph.nodes)):
                trace_id = f"{func.name}#t{stats.n_traces}" \
                    f"@{trace.blocks[0]}"
                if self.strategy == "optimal":
                    sched = self._optimal_trace_schedule(
                        graph, disambig, options, stats, trace_id)
                else:
                    sched = ListScheduler(graph, self.config, disambig,
                                          options, tracer=tracer,
                                          trace_id=trace_id).run()
            stats.n_traces += 1
            stats.trace_lengths.append(len(trace))
            stats.n_gambles += sched.gambles
            selector.mark_scheduled(trace)
            for bname in trace.blocks:
                work.remove_block(bname)

            with tracer.span("trace.compensation", cat="compile",
                             function=func.name):
                comp_counter = self._emit_trace(
                    work, trace, graph, sched, cf, stats, estimates,
                    live_in_map, entry_labels, selector, comp_counter)

        with tracer.span("trace.regalloc", cat="compile",
                         function=func.name):
            allocate_registers(cf, self.config)
        stats.n_instructions = len(cf.instructions)
        stats.n_ops = cf.op_count()
        self._fold_stats(stats)
        return cf, stats

    def _optimal_trace_schedule(self, graph, disambig, options,
                                stats: TraceCompileStats,
                                trace_id: str) -> TraceSchedule:
        """Strategy "optimal": certify or beat the list schedule for one
        trace, folding the outcome into the function's statistics."""
        from ..optimal import OptimalScheduler
        sched = OptimalScheduler(
            graph, self.config, disambig, options, tracer=self.tracer,
            trace_id=trace_id, max_nodes=self.OPTIMAL_MAX_NODES,
            gate_nodes=self.OPTIMAL_GATE_NODES)
        result = sched.run()
        if sched.fallback_reason is not None:
            stats.optimal_fallbacks.append(
                f"{trace_id}: {sched.fallback_reason}")
        elif sched.outcome is not None \
                and sched.outcome.witness is not None:
            stats.optimal_improved += 1
        else:
            stats.optimal_proved += 1
        return result

    def _fold_stats(self, stats: TraceCompileStats) -> None:
        """Accumulate one function's statistics into the obs counters."""
        c = self.tracer.counters
        c.inc("trace.traces", stats.n_traces)
        c.inc("trace.instructions", stats.n_instructions)
        c.inc("trace.ops", stats.n_ops)
        c.inc("trace.speculated_loads", stats.n_speculated_loads)
        c.inc("trace.compensation_ops", stats.n_compensation_ops)
        c.inc("trace.gambles", stats.n_gambles)
        for ls in stats.pipelined_loops:
            c.inc("pipeline.loops")
            c.inc("pipeline.achieved_ii", ls.ii)
            c.inc("pipeline.mii", ls.mii)
            c.inc("pipeline.gambles", ls.gambles)
        c.inc("pipeline.fallbacks", len(stats.pipeline_fallbacks))
        c.inc("optimal.proved", stats.optimal_proved)
        c.inc("optimal.improved", stats.optimal_improved)
        c.inc("optimal.fallbacks", len(stats.optimal_fallbacks))

    # ------------------------------------------------------------------
    def _pipeline_loops(self, work: Function, cf: CompiledFunction,
                        options: SchedulingOptions,
                        stats: TraceCompileStats,
                        estimates: ExecutionEstimates,
                        live_in_map, entry_labels: set[str]) -> None:
        """Software-pipeline the innermost loops the modulo scheduler takes.

        Runs before trace selection: each pipelined loop is emitted as a
        guarded region (guard/prologue/kernels/epilogues) and every
        outside entry to the loop header is retargeted at the guard.  The
        original header/body blocks stay in the working function — they
        are the guard-fail fallback *and* the exit path (the epilogue
        jumps back to the header, whose now-false exit test routes to the
        real loop exit) — and get trace-scheduled afterwards at a
        near-zero execution estimate.

        Every per-loop failure (shape mismatch, no feasible II) lands on
        :attr:`TraceCompileStats.pipeline_fallbacks`; the loop then simply
        stays on the trace-scheduling path.
        """
        from ..errors import PipelineError
        from ..pipeline import (ModuloScheduler, PipelinedLoopStats,
                                build_loop_graph, emit_pipeline,
                                find_pipeline_loops)
        tracer = self.tracer
        # pipeline-local disambiguator: per-loop query counts are small and
        # bounded, so no budget (the shared one is for quadratic traces)
        pipe_disambig = Disambiguator(
            self.module, fortran_args=options.fortran_args, tracer=tracer)
        for loop, pl, why in find_pipeline_loops(work, live_in_map):
            header = loop.header
            if pl is None:
                stats.pipeline_fallbacks.append(f"{header}: {why}")
                continue
            try:
                with tracer.span("pipeline.schedule", cat="compile",
                                 function=work.name, loop=header,
                                 ops=len(pl.rot_ops)):
                    graph = build_loop_graph(pl, self.config, pipe_disambig)
                    sched = ModuloScheduler(graph, self.config,
                                            pipe_disambig, options).run()
            except PipelineError as exc:
                stats.pipeline_fallbacks.append(f"{header}: {exc}")
                continue
            if self.strategy == "optimal":
                sched = self._optimal_loop_schedule(
                    graph, sched, pipe_disambig, options, stats, header)
            decision = "pipeline"
            trace_estimate = None
            if self.strategy in ("auto", "optimal"):
                trace_estimate = self._trace_estimate(
                    work, pl, options, live_in_map, entry_labels)
                if trace_estimate is not None \
                        and sched.ii >= trace_estimate:
                    stats.pipeline_fallbacks.append(
                        f"{header}: auto kept trace scheduling "
                        f"(II {sched.ii} >= {trace_estimate} instr/iter)")
                    continue
                decision = "auto-ii"
            emitted = emit_pipeline(work, pl, graph, sched, self.config)
            base = len(cf.instructions)
            for label, index in emitted.labels.items():
                cf.label_map[label] = base + index
            cf.instructions.extend(emitted.instructions)
            for bname, block in work.blocks.items():
                if bname not in loop.body:
                    block.retarget(header, emitted.guard_label)
            # the rolled loop survives as fallback/exit: keep its header
            # addressable and give predecessors its live-in set for their
            # exit-padding, but make it cold for trace selection
            entry_labels.add(header)
            live_in_map[emitted.guard_label] = set(
                live_in_map.get(header, set()))
            estimates.set_block(header, 0.01)
            estimates.set_block(pl.body, 0.01)
            stats.pipelined_loops.append(PipelinedLoopStats(
                header=header, ii=sched.ii, mii=sched.mii,
                res_mii=sched.res_mii, rec_mii=sched.rec_mii,
                stages=sched.stages,
                kernel_copies=emitted.kernel_copies,
                n_ops=len(graph.ops),
                n_instructions=len(emitted.instructions),
                gambles=len(sched.gambles),
                trace_estimate=trace_estimate, decision=decision))
            tracer.event("loop_pipelined", cat="compile",
                         function=work.name, loop=header, ii=sched.ii,
                         mii=sched.mii, stages=sched.stages,
                         copies=emitted.kernel_copies, decision=decision)

    def _optimal_loop_schedule(self, graph, sched, pipe_disambig,
                               options, stats: TraceCompileStats,
                               header: str):
        """Strategy "optimal": certify or beat the heuristic II for one
        pipelined loop; the returned schedule is never worse."""
        from ..optimal import (OPTIMAL, build_modulo_schedule,
                               exact_modulo_schedule)
        from ..sched.reservation import BankChecker
        if len(graph.ops) > self.OPTIMAL_GATE_NODES:
            stats.optimal_fallbacks.append(
                f"{header}: size gate: {len(graph.ops)} ops > "
                f"{self.OPTIMAL_GATE_NODES}")
            return sched
        out = exact_modulo_schedule(
            graph, self.config, pipe_disambig, options,
            upper_ii=sched.ii, max_nodes=self.OPTIMAL_MAX_NODES)
        if out.witness is not None:
            stats.optimal_improved += 1
            checker = BankChecker(pipe_disambig, self.config, options)
            return build_modulo_schedule(graph, self.config, checker,
                                         out.witness, out.value)
        if out.status == OPTIMAL:
            stats.optimal_proved += 1
        else:
            stats.optimal_fallbacks.append(f"{header}: {out.detail}")
        return sched

    def _trace_estimate(self, work: Function, pl, options,
                        live_in_map, entry_labels) -> int | None:
        """Steady-state instructions/iteration if the rolled loop were
        trace-scheduled as-is: schedule the [header, body] trace with a
        throwaway disambiguator and add the backedge drain padding the
        emitter would append (in-flight defs of header-live values must
        land before re-entry, exactly like a trace exit)."""
        probe_disambig = Disambiguator(
            self.module, fortran_args=options.fortran_args,
            tracer=self.tracer)
        trace = Trace([pl.header, pl.body])
        try:
            graph = build_acyclic_graph(work, trace, probe_disambig,
                                        self.config, options,
                                        live_in_map, entry_labels)
            sched = ListScheduler(graph, self.config, probe_disambig,
                                  options, tracer=self.tracer,
                                  trace_id=f"{work.name}#probe@{pl.header}"
                                  ).run()
        except (ScheduleError, DisambigError):
            return None
        live = live_in_map.get(pl.header, set())
        max_land = 0
        for node in graph.nodes:
            if node.kind not in ("op", "split") or node.op is None:
                continue
            dest = node.op.dest
            if dest is None or dest not in live:
                continue
            placed = sched.placements[node.index]
            max_land = max(max_land, placed.issue_beat
                           + latency_of(node.op, self.config))
        return max(sched.n_instructions, (max_land + 1) // 2)

    # ------------------------------------------------------------------
    def _emit_trace(self, work: Function, trace: Trace, graph, sched,
                    cf: CompiledFunction, stats: TraceCompileStats,
                    estimates: ExecutionEstimates,
                    live_in_map, entry_labels: set[str],
                    selector: TraceSelector, comp_counter: int) -> int:
        start = len(cf.instructions)
        instructions = [LongInstruction()
                        for _ in range(sched.n_instructions)]
        nodes = graph.nodes
        placements = sched.placements

        splits = [n for n in nodes if n.kind == "split"]

        # entry label for the whole trace
        cf.label_map[trace.blocks[0]] = start

        branch_nodes: dict[int, list] = {}
        for node in nodes:
            placed = placements[node.index]
            t = placed.instruction
            li = instructions[t]
            if node.kind == "op":
                op = node.op
                if op.is_load:
                    speculated = any(
                        s.pos < node.pos and
                        placements[s.index].instruction >= t
                        for s in splits)
                    if speculated and op.opcode in SPECULATIVE_LOAD:
                        op = op.copy()
                        op.opcode = SPECULATIVE_LOAD[node.op.opcode]
                        stats.n_speculated_loads += 1
                bus = None
                if op.is_memory:
                    bus = ("store" if op.is_store else
                           "fload" if op.dest is not None
                           and op.dest.cls is RegClass.FLT else "iload")
                li.ops.append(ScheduledOp(op, placed.pair, placed.unit,
                                          bus, placed.gamble))
            elif node.kind == "split":
                branch_nodes.setdefault(t, []).append((node, placed))
                entry_labels.add(node.off_trace)
            elif node.kind == "call":
                li.special = ("call", node.op)
            elif node.kind == "term":
                term = node.op
                if term.opcode is Opcode.RET:
                    value = term.srcs[0] if term.srcs else None
                    li.special = ("ret", value)
                elif term.opcode is Opcode.HALT:
                    li.special = ("halt",)
                # JMP: handled below via next_label

        # branches within an instruction keep original program order
        for t, items in branch_nodes.items():
            for node, placed in sorted(items, key=lambda x: x[0].pos):
                negate = node.off_trace != node.op.labels[0].name
                instructions[t].branches.append(BranchTest(
                    node.op.srcs[0], node.off_trace, placed.pair, negate))

        # trace exit: explicit fallthrough label on the last instruction
        last_node = nodes[-1]
        exit_target = None
        if last_node.kind == "split":
            exit_target = last_node.on_trace
        elif last_node.kind == "term" and last_node.op.opcode is Opcode.JMP:
            exit_target = last_node.op.labels[0].name
        if exit_target is not None:
            # cross-trace timing: every in-flight value the successor may
            # read must land before control transfers out of this trace, so
            # pad with empty instructions until the relevant pipelines drain
            live_at_target = live_in_map.get(exit_target)
            max_land = 0
            for node in nodes:
                if node.kind not in ("op", "split") or node.op is None:
                    continue
                dest = node.op.dest
                if dest is None:
                    continue
                if live_at_target is not None and dest not in live_at_target:
                    continue
                placed = placements[node.index]
                land = placed.issue_beat + \
                    latency_of(node.op, self.config)
                max_land = max(max_land, land)
            needed = (max_land + 1) // 2
            while len(instructions) < needed:
                instructions.append(LongInstruction())
            instructions[-1].next_label = exit_target
            entry_labels.add(exit_target)
        # RET/HALT: special already set

        # --- join labels and compensation code -----------------------------
        for join in (n for n in nodes if n.kind == "join"):
            join_instr = placements[join.index].instruction
            moved = [n for n in nodes
                     if n.kind == "op" and n.pos > join.pos
                     and placements[n.index].instruction < join_instr]
            moved.sort(key=lambda n: n.pos)
            internal = f"{join.block}@t{stats.n_traces}"
            cf.label_map[internal] = start + join_instr
            if not moved:
                cf.label_map[join.block] = start + join_instr
                continue
            # a compensation block takes over the join target's name so
            # every outside entry (past and future) runs the copies first
            stats.n_compensation_ops += len(moved)
            comp_counter += 1
            name = join.block
            comp = work.add_block(name)
            for node in moved:
                comp.append(node.op.copy())
            comp.append(make_jmp(internal))
            selector.scheduled.discard(name)
            estimates.set_block(name, 0.1 * estimates.weight(name) + 0.01)
            live = set(live_in_map.get(name, set()))
            for node in moved:
                live |= set(node.op.reg_srcs())
            live_in_map[name] = live

        cf.instructions.extend(instructions)
        return comp_counter


def compile_module(module: Module, config: MachineConfig | None = None,
                   options: SchedulingOptions | None = None,
                   profile: Profile | None = None,
                   tracer=None, strategy: str = "trace") -> CompiledProgram:
    """One-shot convenience wrapper around :class:`TraceCompiler`."""
    return TraceCompiler(module, config, options, profile,
                         tracer=tracer, strategy=strategy).compile_module()
