"""The Trace Scheduling compiler driver.

Implements the loop of paper section 4: select the likeliest remaining
trace, schedule it as if branch-free, insert compensation code on the
off-trace edges where code motion broke naive correctness, and repeat until
the whole function is compiled.  Finishes with register allocation onto the
machine's physical files and link-time label resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import CFG, compute_liveness
from ..disambig import Disambiguator, derive_memrefs
from ..errors import DisambigError, ScheduleError
from ..ir import (Function, Module, Opcode, Operation, Profile, RegClass,
                  SPECULATIVE_LOAD, VReg, make_jmp)
from ..machine import (BranchTest, CompiledFunction, CompiledProgram,
                       LongInstruction, MachineConfig, ScheduledOp,
                       latency_of)
from ..obs import get_tracer
from ..opt import clone_operations
from .depgraph import SchedulingOptions, build_trace_graph
from .profile import (ExecutionEstimates, estimate_from_profile,
                      estimate_static)
from .regalloc import allocate_registers
from .scheduler import ListScheduler, TraceSchedule
from .selector import Trace, TraceSelector


@dataclass
class TraceCompileStats:
    """Per-function statistics gathered during trace compilation."""

    n_traces: int = 0
    n_instructions: int = 0
    n_ops: int = 0
    n_speculated_loads: int = 0
    n_compensation_ops: int = 0
    n_gambles: int = 0
    trace_lengths: list[int] = field(default_factory=list)
    #: reasons this function fell back to degraded (per-block) compilation;
    #: empty on a fully trace-scheduled compile
    degradations: list[str] = field(default_factory=list)


def clone_function(func: Function) -> Function:
    """A deep working copy (the compiler consumes its input blocks)."""
    fork = Function(func.name, list(func.params), func.ret_class)
    for name, block in func.blocks.items():
        new_block = fork.add_block(name)
        new_block.ops = clone_operations(block.ops, rename={})
    return fork


class TraceCompiler:
    """Compiles a module's functions onto one TRACE configuration.

    Args:
        module: the (already classically-optimized) module.
        config: target machine configuration.
        options: code-motion knobs (speculation, join motion, fast FP,
            bank gambling) — see :class:`SchedulingOptions`.
        profile: optional training-run profile for trace selection; static
            heuristics are used otherwise.
    """

    def __init__(self, module: Module, config: MachineConfig | None = None,
                 options: SchedulingOptions | None = None,
                 profile: Profile | None = None,
                 tracer=None, disambig_budget: int | None = None) -> None:
        self.module = module
        self.config = config or MachineConfig()
        self.options = options or SchedulingOptions()
        self.profile = profile
        self.tracer = get_tracer(tracer)
        self.disambig_budget = disambig_budget
        self.disambiguator = Disambiguator(
            module, fortran_args=self.options.fortran_args,
            tracer=self.tracer, query_budget=disambig_budget)
        self.stats: dict[str, TraceCompileStats] = {}

    # ------------------------------------------------------------------
    def compile_module(self) -> CompiledProgram:
        program = CompiledProgram(config=self.config)
        for func in self.module.functions.values():
            cf, _stats = self.compile_function(func)
            program.add(cf)
        return program

    def compile_function(
            self, func: Function) -> tuple[CompiledFunction,
                                           TraceCompileStats]:
        """Compile one function, backing off code motion under register
        pressure; returns the compiled function and its statistics.

        Aggressive speculation and join motion stretch live ranges; when
        allocation fails, the function is recompiled with motion disabled
        (shorter live ranges), mirroring the pressure heuristics production
        trace schedulers applied.  A function whose *sequential* pressure
        already exceeds the files still fails, with a clear error.

        Scheduler no-progress and disambiguator budget exhaustion do not
        fail the compile either: both downgrade to per-block (non-trace)
        scheduling — correct, slower code — and record the reason on
        :attr:`TraceCompileStats.degradations`.
        """
        from ..errors import RegAllocError
        try:
            return self._compile_function(func, self.options)
        except RegAllocError:
            conservative = SchedulingOptions(
                speculation=False, join_motion=False,
                fast_fp=self.options.fast_fp,
                bank_gamble=self.options.bank_gamble)
            try:
                return self._compile_function(func, conservative)
            except (ScheduleError, DisambigError) as exc:
                return self._degraded_compile(func, exc)
        except (ScheduleError, DisambigError) as exc:
            return self._degraded_compile(func, exc)

    def _degraded_compile(
            self, func: Function,
            cause: Exception) -> tuple[CompiledFunction, TraceCompileStats]:
        """Per-block fallback: every trace is one basic block, no code
        motion, no bank gambles, and an unbudgeted disambiguator (per-block
        traces keep the pairwise query count linear in block size).

        The result is what a conventional compiler would have produced —
        correct and schedulable, just without cross-block parallelism.
        """
        reason = f"{type(cause).__name__}: {cause}"
        degraded_options = SchedulingOptions(
            speculation=False, join_motion=False,
            fast_fp=self.options.fast_fp, bank_gamble=False,
            fortran_args=self.options.fortran_args)
        fallback_disambiguator = Disambiguator(
            self.module, fortran_args=self.options.fortran_args,
            tracer=self.tracer)
        cf, stats = self._compile_function(
            func, degraded_options, per_block=True,
            disambiguator=fallback_disambiguator)
        stats.degradations.append(reason)
        self.tracer.counters.inc("trace.degradations")
        self.tracer.event("compile_degraded", cat="compile",
                          function=func.name, reason=reason)
        return cf, stats

    def _compile_function(
            self, func: Function,
            options: SchedulingOptions,
            per_block: bool = False,
            disambiguator: Disambiguator | None = None,
    ) -> tuple[CompiledFunction, TraceCompileStats]:
        tracer = self.tracer
        disambig = disambiguator if disambiguator is not None \
            else self.disambiguator
        derive_memrefs(func)
        work = clone_function(func)
        stats = TraceCompileStats()
        self.stats[func.name] = stats

        live_in_map = dict(compute_liveness(work).live_in)
        if self.profile is not None:
            estimates = estimate_from_profile(work, self.profile)
        else:
            estimates = estimate_static(work)
        selector = TraceSelector(
            work, estimates, tracer=tracer,
            max_trace_blocks=1 if per_block else 64)
        entry_labels: set[str] = {work.entry.name}
        entry_name = work.entry.name

        cf = CompiledFunction(func.name, self.config)
        cf.meta["entry_label"] = entry_name
        cf.meta["param_vregs"] = list(func.params)
        cf.meta["ret_class"] = func.ret_class
        comp_counter = 0

        while True:
            with tracer.span("trace.select", cat="compile",
                             function=func.name):
                trace = selector.next_trace()
            if trace is None:
                break
            with tracer.span("trace.depgraph", cat="compile",
                             function=func.name, blocks=len(trace)):
                graph = build_trace_graph(work, trace, disambig,
                                          self.config, options,
                                          live_in_map, entry_labels)
            with tracer.span("trace.schedule", cat="compile",
                             function=func.name, nodes=len(graph.nodes)):
                trace_id = f"{func.name}#t{stats.n_traces}" \
                    f"@{trace.blocks[0]}"
                sched = ListScheduler(graph, self.config, disambig,
                                      options, tracer=tracer,
                                      trace_id=trace_id).run()
            stats.n_traces += 1
            stats.trace_lengths.append(len(trace))
            stats.n_gambles += sched.gambles
            selector.mark_scheduled(trace)
            for bname in trace.blocks:
                work.remove_block(bname)

            with tracer.span("trace.compensation", cat="compile",
                             function=func.name):
                comp_counter = self._emit_trace(
                    work, trace, graph, sched, cf, stats, estimates,
                    live_in_map, entry_labels, selector, comp_counter)

        with tracer.span("trace.regalloc", cat="compile",
                         function=func.name):
            allocate_registers(cf, self.config)
        stats.n_instructions = len(cf.instructions)
        stats.n_ops = cf.op_count()
        self._fold_stats(stats)
        return cf, stats

    def _fold_stats(self, stats: TraceCompileStats) -> None:
        """Accumulate one function's statistics into the obs counters."""
        c = self.tracer.counters
        c.inc("trace.traces", stats.n_traces)
        c.inc("trace.instructions", stats.n_instructions)
        c.inc("trace.ops", stats.n_ops)
        c.inc("trace.speculated_loads", stats.n_speculated_loads)
        c.inc("trace.compensation_ops", stats.n_compensation_ops)
        c.inc("trace.gambles", stats.n_gambles)

    # ------------------------------------------------------------------
    def _emit_trace(self, work: Function, trace: Trace, graph, sched,
                    cf: CompiledFunction, stats: TraceCompileStats,
                    estimates: ExecutionEstimates,
                    live_in_map, entry_labels: set[str],
                    selector: TraceSelector, comp_counter: int) -> int:
        start = len(cf.instructions)
        instructions = [LongInstruction()
                        for _ in range(sched.n_instructions)]
        nodes = graph.nodes
        placements = sched.placements

        splits = [n for n in nodes if n.kind == "split"]

        # entry label for the whole trace
        cf.label_map[trace.blocks[0]] = start

        branch_nodes: dict[int, list] = {}
        for node in nodes:
            placed = placements[node.index]
            t = placed.instruction
            li = instructions[t]
            if node.kind == "op":
                op = node.op
                if op.is_load:
                    speculated = any(
                        s.pos < node.pos and
                        placements[s.index].instruction >= t
                        for s in splits)
                    if speculated and op.opcode in SPECULATIVE_LOAD:
                        op = op.copy()
                        op.opcode = SPECULATIVE_LOAD[node.op.opcode]
                        stats.n_speculated_loads += 1
                bus = None
                if op.is_memory:
                    bus = ("store" if op.is_store else
                           "fload" if op.dest is not None
                           and op.dest.cls is RegClass.FLT else "iload")
                li.ops.append(ScheduledOp(op, placed.pair, placed.unit,
                                          bus, placed.gamble))
            elif node.kind == "split":
                branch_nodes.setdefault(t, []).append((node, placed))
                entry_labels.add(node.off_trace)
            elif node.kind == "call":
                li.special = ("call", node.op)
            elif node.kind == "term":
                term = node.op
                if term.opcode is Opcode.RET:
                    value = term.srcs[0] if term.srcs else None
                    li.special = ("ret", value)
                elif term.opcode is Opcode.HALT:
                    li.special = ("halt",)
                # JMP: handled below via next_label

        # branches within an instruction keep original program order
        for t, items in branch_nodes.items():
            for node, placed in sorted(items, key=lambda x: x[0].pos):
                negate = node.off_trace != node.op.labels[0].name
                instructions[t].branches.append(BranchTest(
                    node.op.srcs[0], node.off_trace, placed.pair, negate))

        # trace exit: explicit fallthrough label on the last instruction
        last_node = nodes[-1]
        exit_target = None
        if last_node.kind == "split":
            exit_target = last_node.on_trace
        elif last_node.kind == "term" and last_node.op.opcode is Opcode.JMP:
            exit_target = last_node.op.labels[0].name
        if exit_target is not None:
            # cross-trace timing: every in-flight value the successor may
            # read must land before control transfers out of this trace, so
            # pad with empty instructions until the relevant pipelines drain
            live_at_target = live_in_map.get(exit_target)
            max_land = 0
            for node in nodes:
                if node.kind not in ("op", "split") or node.op is None:
                    continue
                dest = node.op.dest
                if dest is None:
                    continue
                if live_at_target is not None and dest not in live_at_target:
                    continue
                placed = placements[node.index]
                land = placed.issue_beat + \
                    latency_of(node.op, self.config)
                max_land = max(max_land, land)
            needed = (max_land + 1) // 2
            while len(instructions) < needed:
                instructions.append(LongInstruction())
            instructions[-1].next_label = exit_target
            entry_labels.add(exit_target)
        # RET/HALT: special already set

        # --- join labels and compensation code -----------------------------
        for join in (n for n in nodes if n.kind == "join"):
            join_instr = placements[join.index].instruction
            moved = [n for n in nodes
                     if n.kind == "op" and n.pos > join.pos
                     and placements[n.index].instruction < join_instr]
            moved.sort(key=lambda n: n.pos)
            internal = f"{join.block}@t{stats.n_traces}"
            cf.label_map[internal] = start + join_instr
            if not moved:
                cf.label_map[join.block] = start + join_instr
                continue
            # a compensation block takes over the join target's name so
            # every outside entry (past and future) runs the copies first
            stats.n_compensation_ops += len(moved)
            comp_counter += 1
            name = join.block
            comp = work.add_block(name)
            for node in moved:
                comp.append(node.op.copy())
            comp.append(make_jmp(internal))
            selector.scheduled.discard(name)
            estimates.set_block(name, 0.1 * estimates.weight(name) + 0.01)
            live = set(live_in_map.get(name, set()))
            for node in moved:
                live |= set(node.op.reg_srcs())
            live_in_map[name] = live

        cf.instructions.extend(instructions)
        return comp_counter


def compile_module(module: Module, config: MachineConfig | None = None,
                   options: SchedulingOptions | None = None,
                   profile: Profile | None = None,
                   tracer=None) -> CompiledProgram:
    """One-shot convenience wrapper around :class:`TraceCompiler`."""
    return TraceCompiler(module, config, options, profile,
                         tracer=tracer).compile_module()
