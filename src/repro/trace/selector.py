"""Trace selection: pick the likeliest unscheduled path through the CFG.

Fisher's mutual-most-likely growth: seed at the heaviest unscheduled block,
grow forward while the likeliest successor is unscheduled and the edge is
not a loop back edge, then grow backward symmetrically.  Scheduled blocks
are never re-entered — each operation is scheduled exactly once (plus any
compensation copies, which live in new blocks and are scheduled as later
traces).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import CFG
from ..ir import Function
from ..obs import get_tracer
from .profile import ExecutionEstimates


@dataclass
class Trace:
    """An ordered list of block names selected for joint scheduling."""

    blocks: list[str]

    def __contains__(self, name: str) -> bool:
        return name in self.blocks

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self):
        return iter(self.blocks)


class TraceSelector:
    """Stateful selector over one function's CFG."""

    def __init__(self, func: Function, estimates: ExecutionEstimates,
                 max_trace_blocks: int = 64, tracer=None) -> None:
        self.func = func
        self.estimates = estimates
        self.max_trace_blocks = max_trace_blocks
        self.scheduled: set[str] = set()
        self.tracer = get_tracer(tracer)

    # ------------------------------------------------------------------
    def mark_scheduled(self, trace: Trace) -> None:
        self.scheduled.update(trace.blocks)

    def refresh_cfg(self) -> CFG:
        """CFG rebuilt against the (possibly grown) working function.

        Tolerant mode: labels pointing into already-compiled code are
        treated as exits.
        """
        return CFG.build(self.func, tolerant=True)

    def next_trace(self) -> Trace | None:
        """Select the next trace, or None when every block is scheduled.

        The working function shrinks as traces are compiled out of it, so
        candidacy is simply membership: every remaining block must be
        scheduled eventually, whether or not the (removed) original entry
        still reaches it.
        """
        if not self.func.blocks:
            return None
        cfg = self.refresh_cfg()
        candidates = [name for name in self.func.blocks
                      if name not in self.scheduled]
        if not candidates:
            return None
        doms = cfg.dominators()
        seed = max(candidates, key=lambda n: (self.estimates.weight(n),
                                              -_order_index(self.func, n)))
        blocks = [seed]

        # grow forward
        while len(blocks) < self.max_trace_blocks:
            current = blocks[-1]
            succ = self.estimates.likeliest_successor(cfg, current)
            if succ is None or succ in self.scheduled or succ in blocks:
                break
            if succ in doms.get(current, set()):
                break                      # back edge: stop at loop boundary
            blocks.append(succ)

        # grow backward
        while len(blocks) < self.max_trace_blocks:
            current = blocks[0]
            pred = self.estimates.likeliest_predecessor(cfg, current)
            if pred is None or pred in self.scheduled or pred in blocks:
                break
            if _is_back_edge(cfg, doms, pred, current):
                break
            # mutual-most-likely: only extend if we are pred's best successor
            if self.estimates.likeliest_successor(cfg, pred) != current:
                break
            blocks.insert(0, pred)

        counters = self.tracer.counters
        counters.inc("select.traces")
        counters.inc("select.blocks", len(blocks))
        counters.inc("select.seed_weight", self.estimates.weight(seed))
        return Trace(blocks)


def _order_index(func: Function, name: str) -> int:
    for i, bname in enumerate(func.blocks):
        if bname == name:
            return i
    return 1 << 30


def _is_back_edge(cfg: CFG, doms, src: str, dst: str) -> bool:
    return dst in doms.get(src, set())
