"""Execution estimates driving trace selection.

Paper, section 4: "Using estimates of branch directions obtained
automatically through heuristics or profiling, the compiler selects the
most likely path, or 'trace', that the code will follow during execution."

Two estimators are provided: a static heuristic (loop structure based) and
a profile-driven one that consumes the :class:`~repro.ir.Profile` collected
by a training run of the reference interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import CFG, find_loops
from ..ir import Function, Profile


@dataclass
class ExecutionEstimates:
    """Block weights and edge probabilities for one function."""

    block_weight: dict[str, float] = field(default_factory=dict)
    #: P(src -> dst | src executed)
    edge_prob: dict[tuple[str, str], float] = field(default_factory=dict)

    def weight(self, block: str) -> float:
        return self.block_weight.get(block, 0.0)

    def prob(self, src: str, dst: str) -> float:
        return self.edge_prob.get((src, dst), 0.0)

    def set_block(self, block: str, weight: float) -> None:
        self.block_weight[block] = weight

    def likeliest_successor(self, cfg: CFG, block: str) -> str | None:
        succs = cfg.succs[block]
        if not succs:
            return None
        return max(succs, key=lambda s: self.prob(block, s))

    def likeliest_predecessor(self, cfg: CFG, block: str) -> str | None:
        preds = cfg.preds[block]
        if not preds:
            return None
        return max(preds,
                   key=lambda p: self.weight(p) * self.prob(p, block))


#: Probability assigned to staying in a loop at its exit test.
LOOP_BRANCH_PROB = 0.9


def estimate_static(func: Function,
                    cfg: CFG | None = None) -> ExecutionEstimates:
    """Heuristic estimates: loops iterate ~10x, other branches are 50/50."""
    if cfg is None:
        cfg = CFG.build(func)
    loops = find_loops(func, cfg)
    depth: dict[str, int] = {name: 0 for name in func.blocks}
    for loop in loops:
        for name in loop.body:
            depth[name] = max(depth[name], loop.depth)
    in_same_loop: dict[tuple[str, str], bool] = {}
    for u, v in cfg.edges():
        in_same_loop[(u, v)] = any(
            u in loop.body and v in loop.body for loop in loops)

    est = ExecutionEstimates()
    for name in cfg.reachable():
        est.set_block(name, 10.0 ** depth[name])
    for name in cfg.reachable():
        succs = cfg.succs[name]
        if len(succs) == 1:
            est.edge_prob[(name, succs[0])] = 1.0
        elif len(succs) == 2:
            a, b = succs
            a_in = in_same_loop.get((name, a), False)
            b_in = in_same_loop.get((name, b), False)
            if a_in and not b_in:
                est.edge_prob[(name, a)] = LOOP_BRANCH_PROB
                est.edge_prob[(name, b)] = 1 - LOOP_BRANCH_PROB
            elif b_in and not a_in:
                est.edge_prob[(name, b)] = LOOP_BRANCH_PROB
                est.edge_prob[(name, a)] = 1 - LOOP_BRANCH_PROB
            else:
                est.edge_prob[(name, a)] = 0.5
                est.edge_prob[(name, b)] = 0.5
    return est


def estimate_from_profile(func: Function, profile: Profile,
                          cfg: CFG | None = None) -> ExecutionEstimates:
    """Estimates from measured branch statistics; static fallback where the
    training run never visited."""
    if cfg is None:
        cfg = CFG.build(func)
    static = estimate_static(func, cfg)
    est = ExecutionEstimates()
    for name in cfg.reachable():
        count = profile.block_counts.get((func.name, name), 0)
        est.set_block(name, float(count) if count else
                      0.01 * static.weight(name))
        for succ in cfg.succs[name]:
            prob = profile.edge_probability(func.name, name, succ)
            if prob is None:
                prob = static.prob(name, succ)
            est.edge_prob[(name, succ)] = prob
    return est
