"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — show every named workload.
* ``measure <kernel>`` — run one kernel on all executors and print timing.
* ``stats <kernel>`` — run one kernel with full telemetry and print the
  phase/counter report (``--json`` for the machine-readable form).
* ``schedule <kernel>`` — print the compiled long-instruction schedule.
* ``compile <file>`` — compile a TinyFlow source file and print its
  schedule (and optionally run a function from it).
* ``explain-deps <module> [fn]`` — dump the unified dependence graphs
  (edge kind, latency, iteration distance, disambiguator verdict) the
  scheduling core builds for a kernel or TinyFlow file.
* ``fuzz`` — differential fuzzing (interpreter vs. VLIW sim) with
  deterministic fault injection and checkpoint/resume verification.
* ``sweep`` — the quick numeric-suite table (E1-style).
* ``serve`` — the compile service: a job-queue daemon that dedups,
  caches, and dispatches compile/measure jobs for many clients.
* ``submit`` — a service client: submit kernels to a running daemon,
  wait for results (also ``--stats`` / ``--shutdown``).
* ``chaos`` — crash-injection harness: SIGKILL a journaled daemon at a
  seeded point, restart it, and differentially verify recovery.
* ``cache stats|prune|clear`` — inspect or bound the shared store.

``measure``, ``sweep``, and ``submit`` all build their jobs through the
typed :mod:`repro.api` facade — the same schema the service speaks on
the wire.

``measure`` and ``sweep`` take ``--json`` (dump one JSON report object to
stdout instead of the table) and ``--events-out FILE`` (write a
Chrome-trace-format event log, loadable in Perfetto or
``chrome://tracing``).
"""

from __future__ import annotations

import argparse
import json
import sys

from .api import ApiError, CompileRequest, MeasureRequest
from .harness import (format_table, measure, measurement_report,
                      print_table, run_measurement, sweep_report)
from .machine import MachineConfig, format_compiled
from .obs import Telemetry, Tracer
from .trace import SchedulingOptions
from .workloads import ALL_KERNELS, get_kernel


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-n", type=int, default=96,
                        help="problem size (default 96)")
    parser.add_argument("--pairs", type=int, choices=(1, 2, 4), default=4,
                        help="I-F board pairs (default 4 = TRACE 28/200)")
    parser.add_argument("--unroll", type=int, default=8,
                        help="unroll factor (default 8; 0 disables)")
    parser.add_argument("--strategy", choices=("trace", "pipeline", "auto", "optimal"),
                        default="trace",
                        help="loop engine: unroll+trace-schedule (default), "
                             "modulo-schedule counted loops, or pick per "
                             "loop by estimated steady-state rate")
    parser.add_argument("--no-speculation", action="store_true")
    parser.add_argument("--no-join-motion", action="store_true")
    parser.add_argument("--fast-fp", action="store_true",
                        help="fast floating-point exception mode")
    parser.add_argument("--params", metavar="JSON", default=None,
                        help="heuristic-parameter overrides as a JSON "
                             "object, or @FILE to read one (e.g. a "
                             "winning config from BENCH_tune.json); "
                             "unknown fields are rejected")


def _add_report_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit one machine-readable JSON report")
    parser.add_argument("--events-out", metavar="FILE",
                        help="write a Chrome-trace event file (Perfetto)")


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1 = run inline; results and "
             "aggregated counters are bit-identical at any job count)")


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-cache", action="store_true",
        help="compile from scratch instead of using the content-"
             "addressed compile cache")
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="compile-cache directory (default $REPRO_CACHE_DIR or "
             "~/.cache/repro-compile)")


def _params_wire(args) -> dict | None:
    """The ``--params`` payload in wire form (a plain dict), or None."""
    raw = getattr(args, "params", None)
    if not raw:
        return None
    try:
        if raw.startswith("@"):
            with open(raw[1:]) as handle:
                return json.load(handle)
        return json.loads(raw)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"--params: {exc}") from None


def _options(args) -> SchedulingOptions:
    from .errors import ParamError
    from .sched import HeuristicParams

    wire = _params_wire(args)
    try:
        params = HeuristicParams.DEFAULT if wire is None \
            else HeuristicParams.from_json(wire)
    except ParamError as exc:
        raise SystemExit(f"--params: {exc}") from None
    return SchedulingOptions(speculation=not args.no_speculation,
                             join_motion=not args.no_join_motion,
                             fast_fp=args.fast_fp, params=params)


def _request(args, kernel: str,
             compile_only: bool = False) -> CompileRequest:
    """The typed API request for one kernel under the parsed flags.

    Every job the CLI runs — locally or via ``repro submit`` — is built
    here, through :mod:`repro.api`, so the in-process call and the wire
    submission are literally the same object.
    """
    cls = CompileRequest if compile_only else MeasureRequest
    request = cls(kernel=kernel, n=args.n, pairs=args.pairs,
                  unroll=args.unroll, strategy=args.strategy,
                  speculation=not args.no_speculation,
                  join_motion=not args.no_join_motion,
                  fast_fp=args.fast_fp, params=_params_wire(args))
    try:
        request.heuristic_params()
    except ApiError as exc:
        raise SystemExit(f"--params: {exc}") from None
    return request


def _spec(args, kernel: str, telemetry: bool = False,
          events: bool = False):
    return _request(args, kernel).to_spec(telemetry=telemetry,
                                          events=events)


def _kernel_shape(kernel) -> str:
    """Loop-shape tag of the kernel's entry function, rolled form."""
    from .opt import classical_pipeline
    from .pipeline import loop_shape_tag

    module = kernel.build(8)
    classical_pipeline(unroll_factor=0, inline_budget=0).run(module)
    return loop_shape_tag(module.function(kernel.func))


def cmd_list(args) -> int:
    rows = [{"kernel": k.name, "kind": k.kind, "shape": _kernel_shape(k),
             "description": k.description}
            for k in ALL_KERNELS.values()]
    print_table(sorted(rows, key=lambda r: (r["kind"], r["kernel"])),
                "available workloads (shape: pipelinable = the modulo "
                "scheduler can take the inner loop)")
    return 0


def _cache(args):
    """The process compile cache, or ``None`` under ``--no-cache``."""
    if getattr(args, "no_cache", False):
        return None
    from .cache import process_cache
    return process_cache(args.cache_dir)


def cmd_measure(args) -> int:
    telemetry = args.as_json or bool(args.events_out)
    result = run_measurement(_spec(args, args.kernel, telemetry=telemetry,
                                   events=bool(args.events_out)),
                             cache=_cache(args))
    if args.events_out:
        result.telemetry.write_events(args.events_out)
    if args.as_json:
        print(json.dumps(measurement_report(result), indent=2))
        return 0
    print_table([result.row()], f"{args.kernel} on the TRACE "
                                f"{7 * args.pairs}/200")
    stats = result.compile_stats
    if stats is not None:
        print(f"traces: {stats.n_traces}, instructions: "
              f"{stats.n_instructions}, speculated loads: "
              f"{stats.n_speculated_loads}, compensation ops: "
              f"{stats.n_compensation_ops}, gambles: {stats.n_gambles}")
        for loop in stats.pipelined_loops:
            print(f"pipelined {loop.header}: II={loop.ii} (MII={loop.mii}, "
                  f"res={loop.res_mii}, rec={loop.rec_mii}), "
                  f"stages={loop.stages}, copies={loop.kernel_copies}, "
                  f"decision={loop.decision}")
        for reason in stats.pipeline_fallbacks:
            print(f"pipeline fallback: {reason}")
    return 0


def cmd_stats(args) -> int:
    result = run_measurement(_spec(args, args.kernel, telemetry=True))
    if args.as_json:
        print(json.dumps(measurement_report(result), indent=2))
    else:
        print(result.telemetry.summary())
    return 0


def cmd_schedule(args) -> int:
    from .harness import prepare_modules
    from .trace import compile_module

    kernel = get_kernel(args.kernel)
    _, module = prepare_modules(kernel, args.n, unroll=args.unroll)
    program = compile_module(module, MachineConfig.from_pairs(args.pairs),
                             _options(args), strategy=args.strategy)
    print(format_compiled(program.function(kernel.func)))
    return 0


def cmd_compile(args) -> int:
    from .frontend import compile_source
    from .opt import classical_pipeline
    from .sim import run_compiled
    from .trace import compile_module

    config = MachineConfig.from_pairs(args.pairs)
    with open(args.file) as handle:
        source = handle.read()
    module = compile_source(source)
    classical_pipeline(unroll_factor=args.unroll, inline_budget=48).run(
        module)
    program = compile_module(module, config, _options(args),
                             strategy=args.strategy)
    for name in program.functions:
        print(format_compiled(program.function(name)))
        print()
    if args.run is not None:
        func_args = [float(a) if "." in a else int(a) for a in args.args]
        result = run_compiled(program, module, args.run, func_args,
                              fp_mode="fast" if args.fast_fp else "precise")
        print(f"{args.run}({', '.join(args.args)}) = {result.value}   "
              f"[{result.stats.beats} beats, "
              f"{result.stats.time_us(config):.2f} us]")
    return 0


def _explain_module(args):
    """(module, function name) for a kernel name or a TinyFlow file."""
    if args.target in ALL_KERNELS:
        from .harness import prepare_modules
        kernel = get_kernel(args.target)
        _, module = prepare_modules(kernel, args.n, unroll=args.unroll,
                                    inline=48)
        return module, args.func or kernel.func
    from .frontend import compile_source
    from .opt import classical_pipeline
    with open(args.target) as handle:
        module = compile_source(handle.read())
    classical_pipeline(unroll_factor=args.unroll, inline_budget=48).run(
        module)
    if args.func:
        return module, args.func
    if len(module.functions) == 1:
        return module, next(iter(module.functions))
    raise SystemExit(f"explain-deps: pick a function from "
                     f"{sorted(module.functions)}")


def _acyclic_records(module, func, config, options):
    """Per-trace graph dumps, walking traces like the compiler does."""
    from .analysis import compute_liveness
    from .disambig import Disambiguator, derive_memrefs
    from .sched import build_acyclic_graph
    from .trace import TraceSelector, clone_function
    from .trace.profile import estimate_static

    derive_memrefs(func)
    work = clone_function(func)
    disambig = Disambiguator(module)
    live_in_map = dict(compute_liveness(work).live_in)
    selector = TraceSelector(work, estimate_static(work))
    entry_labels = {work.entry.name}
    records = []
    while True:
        trace = selector.next_trace()
        if trace is None:
            break
        graph = build_acyclic_graph(work, trace, disambig, config,
                                    options, live_in_map, entry_labels)
        records.append({
            "blocks": list(trace.blocks),
            "nodes": [_node_record(node) for node in graph.nodes],
            "edges": [_edge_record(src, e)
                      for src, edges in enumerate(graph.succs)
                      for e in edges],
        })
        for node in graph.splits():
            entry_labels.add(node.off_trace)
        selector.mark_scheduled(trace)
        for bname in trace.blocks:
            work.remove_block(bname)
    return records


def _modulo_records(module, func, config):
    """Distance-annotated graph dumps for every pipelinable loop."""
    from .disambig import Disambiguator, derive_memrefs
    from .ir import format_operation
    from .pipeline import II_SEARCH, find_pipeline_loops
    from .sched import build_modulo_graph, critical_cycle, rec_mii, res_mii
    from .trace import clone_function

    derive_memrefs(func)
    work = clone_function(func)
    disambig = Disambiguator(module)
    records = []
    for loop, pl, why in find_pipeline_loops(work):
        if pl is None:
            records.append({"header": loop.header, "match": why})
            continue
        graph = build_modulo_graph(pl, config, disambig)
        rmii = res_mii(graph.ops, config)
        rcmii = rec_mii(graph, rmii + II_SEARCH)
        record = {
            "header": pl.header, "match": why,
            "res_mii": rmii, "rec_mii": rcmii,
            "mii": max(2, rmii, rcmii) if rcmii is not None else None,
            "ops": [format_operation(op) for op in graph.ops],
            "edges": [_edge_record(src, e)
                      for src, edges in enumerate(graph.succs)
                      for e in edges],
        }
        cycle = critical_cycle(graph, rcmii)
        if cycle is not None:
            record["recurrence_cycle"] = {
                "edges": [_edge_record(e.src, e) for e in cycle],
                "latency_beats": sum(e.latency for e in cycle),
                "distance": sum(e.dist for e in cycle),
            }
        records.append(record)
    return records


def _node_record(node) -> dict:
    from .ir import format_operation
    rec = {"index": node.index, "kind": node.kind, "block": node.block}
    if node.op is not None:
        rec["op"] = format_operation(node.op)
    if node.off_trace:
        rec["off_trace"] = node.off_trace
    return rec


def _edge_record(src: int, edge) -> dict:
    rec = {"src": src, "dst": edge.dst, "kind": edge.kind,
           "latency": edge.latency}
    if edge.dist:
        rec["dist"] = edge.dist
    if edge.verdict is not None:
        rec["verdict"] = edge.verdict
    return rec


def _print_edges(edges) -> None:
    for e in sorted(edges, key=lambda e: (e["src"], e["dst"], e["kind"])):
        dist = f" dist={e['dist']}" if e.get("dist") else ""
        verdict = f"  [{e['verdict']}]" if "verdict" in e else ""
        print(f"    {e['src']:3} -> {e['dst']:3}  {e['kind']:<8}"
              f" lat={e['latency']}{dist}{verdict}")


def cmd_explain_deps(args) -> int:
    module, fname = _explain_module(args)
    if fname not in module.functions:
        raise SystemExit(f"explain-deps: no function {fname!r}; choose "
                         f"from {sorted(module.functions)}")
    config = MachineConfig.from_pairs(args.pairs)
    options = _options(args)
    func = module.function(fname)
    report = {
        "function": fname, "unroll": args.unroll,
        "config": f"TRACE {7 * args.pairs}/200",
        "traces": _acyclic_records(module, func, config, options),
        "loops": _modulo_records(module, func, config),
    }
    if args.as_json:
        print(json.dumps(report, indent=2))
        return 0
    print(f"{fname}: unified dependence graphs "
          f"({report['config']}, unroll={args.unroll})")
    for i, rec in enumerate(report["traces"]):
        print(f"\ntrace {i}: {' -> '.join(rec['blocks'])}  "
              f"({len(rec['nodes'])} nodes, {len(rec['edges'])} edges)")
        for node in rec["nodes"]:
            body = node.get("op", node["kind"])
            split = f"  (off-trace: {node['off_trace']})" \
                if "off_trace" in node else ""
            print(f"  [{node['index']:3}] {node['kind']:<5} "
                  f"{node['block']:<10} {body}{split}")
        print("  edges (kind, latency, disambiguator verdict):")
        _print_edges(rec["edges"])
    for rec in report["loops"]:
        if "edges" not in rec:
            print(f"\nloop @{rec['header']}: not pipelinable "
                  f"({rec['match']})")
            continue
        print(f"\nloop @{rec['header']}: modulo graph  "
              f"(ResMII={rec['res_mii']}, RecMII={rec['rec_mii']}, "
              f"MII={rec['mii']})")
        for i, op in enumerate(rec["ops"]):
            print(f"  [{i:3}] {op}")
        print("  edges (kind, latency, iteration distance, verdict):")
        _print_edges(rec["edges"])
        cycle = rec.get("recurrence_cycle")
        if cycle is not None:
            lat, dist = cycle["latency_beats"], cycle["distance"]
            print(f"  RecMII-critical recurrence cycle "
                  f"({lat} beats / {dist} iteration"
                  f"{'s' if dist != 1 else ''} -> "
                  f"ceil({lat}/{2 * dist}) = {rec['rec_mii']}):")
            _print_edges(cycle["edges"])
    return 0


def cmd_audit(args) -> int:
    from .optimal import compare_baseline, render_table, run_audit

    report = run_audit(jobs=args.jobs, max_nodes=args.max_nodes,
                       tiny=args.tiny, timeout_s=args.timeout)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_table(report))
        print(f"wrote {args.out}")
    status = 0
    if args.baseline is not None:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        problems = compare_baseline(report, baseline)
        for problem in problems:
            print(f"REGRESSION {problem}", file=sys.stderr)
        if problems:
            status = 1
        else:
            print(f"no regressions vs {args.baseline}")
    return status


def cmd_tune(args) -> int:
    from .tune import render_table, run_tune

    report = run_tune(corpus=args.corpus, seeds=args.seeds,
                      kernels=args.kernels or None, tiny=args.tiny,
                      grid=not args.no_grid, random_count=args.random,
                      random_seed=args.random_seed, starts=args.starts,
                      jobs=args.jobs, max_nodes=args.max_nodes,
                      use_cache=not args.no_cache,
                      cache_dir=args.cache_dir,
                      with_oracle=not args.no_oracle,
                      verify_winners=not args.no_verify)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_table(report))
        print(f"wrote {args.out}")
    return 1 if report["errors"] else 0


def cmd_fuzz(args) -> int:
    from .harness.fuzz import run_fuzz

    def progress(case):
        if not case.ok:
            print(f"seed {case.seed}: FAILED", file=sys.stderr)

    report = run_fuzz(seed=args.seed, count=args.count,
                      config=MachineConfig.from_pairs(args.pairs),
                      check_faults=not args.no_faults,
                      progress=progress if args.verbose else None,
                      strategy=args.strategy, jobs=args.jobs)
    if args.as_json:
        print(json.dumps(report.row(), indent=2))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def cmd_cache(args) -> int:
    from .cache import process_cache

    cache = process_cache(args.cache_dir, max_disk_mb=args.max_mb)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached artifacts from {cache.directory}")
        return 0
    if args.cache_command == "prune":
        if cache.max_disk_mb is None:
            raise SystemExit("cache prune: set a quota with --max-mb "
                             "(or $REPRO_CACHE_MAX_MB)")
        removed, freed = cache.prune()
        print(f"pruned {removed} artifacts ({freed} bytes) from "
              f"{cache.directory}; quota {cache.max_disk_mb:g} MB")
    stats = cache.stats().row()
    if args.as_json:
        print(json.dumps(stats, indent=2))
    else:
        print_table([stats], f"compile cache at {cache.directory} "
                             "(hits/misses are this process's)")
    return 0


def cmd_serve(args) -> int:
    from .serve import ServeConfig, serve_forever

    config = ServeConfig(
        host=args.host, port=args.port, jobs=args.jobs,
        max_queue=args.max_queue, batch=args.batch,
        timeout_s=args.timeout, use_cache=not args.no_cache,
        cache_dir=args.cache_dir, cache_max_mb=args.cache_max_mb,
        journal_path=args.journal, max_attempts=args.max_attempts)
    return serve_forever(config, verbose=args.verbose)


def cmd_submit(args) -> int:
    from .serve import Client, ServerBusy, ServerUnavailable

    client = Client(args.server, timeout_s=args.timeout)
    try:
        if args.shutdown:
            reply = client.shutdown()
            note = (" (dispatcher stuck — did not drain in time)"
                    if reply.get("dispatcher_stuck") else "")
            print(f"asked {args.server} to shut down{note}")
            return 0
        if args.stats:
            print(json.dumps(client.stats(), indent=2))
            return 0
    except ServerUnavailable as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 2
    kernels = args.kernels or list(SWEEP_KERNELS)
    requests = [_request(args, kernel, compile_only=args.compile_only)
                for kernel in kernels]
    try:
        for request in requests:
            request.validate()
    except ApiError as exc:
        raise SystemExit(f"submit: {exc}")
    try:
        results = client.submit_and_wait(requests, timeout_s=args.timeout,
                                         busy_retries=args.busy_retries)
    except ServerBusy as busy:
        print(f"server busy: retry in {busy.retry_after_s:g}s",
              file=sys.stderr)
        return 2
    except ServerUnavailable as exc:
        # a clean one-liner, not a traceback: the daemon is down (or
        # never came back inside the timeout)
        print(f"submit: {exc}", file=sys.stderr)
        return 2
    failed = [r for r in results if not r.ok]
    if args.as_json:
        print(json.dumps({"server": args.server,
                          "results": [r.to_json() for r in results]},
                         indent=2))
    else:
        rows = []
        for result in results:
            row = {"job": result.job_id, "kind": result.kind,
                   "cache_hit": result.cache_hit,
                   "duration_s": round(result.duration_s, 3)}
            payload = result.result or {}
            row["kernel"] = payload.get("kernel", "?")
            row.update(payload.get("results", {}))
            rows.append(row)
        print_table(rows, f"{len(results)} jobs via {args.server} "
                          f"({len(failed)} failed)")
        for result in failed:
            print(f"{result.job_id} FAILED: {result.error}",
                  file=sys.stderr)
    return 1 if failed else 0


def cmd_chaos(args) -> int:
    from .harness.chaos import KILL_POINTS, run_chaos

    points = list(KILL_POINTS) if args.point == "all" else [args.point]
    kernels = args.kernels or ["vadd", "dot"]
    outcomes = run_chaos(points, kernels, n=args.n, workdir=args.workdir,
                         timeout_s=args.timeout, verbose=args.verbose)
    if args.as_json:
        print(json.dumps({"outcomes": [o.row() for o in outcomes]},
                         indent=2))
    else:
        print_table([o.row() for o in outcomes],
                    "chaos: SIGKILL + journal-replay recovery, "
                    "differential vs an uninterrupted control run")
    failed = [o for o in outcomes if not o.ok]
    for outcome in failed:
        print(f"chaos {outcome.point}: FAILED: {outcome.error}",
              file=sys.stderr)
    return 1 if failed else 0


SWEEP_KERNELS = ("daxpy", "vadd", "dot", "fir4", "stencil3", "ll7_state",
                 "count_matches", "state_machine")


def cmd_sweep(args) -> int:
    from .harness import run_sweep

    telemetry = args.as_json or bool(args.events_out)
    tracer = Tracer(events=bool(args.events_out)) if telemetry else None
    # one shared tracer across the sweep: per-row telemetry stays off,
    # the combined report carries the totals (folded in kernel order,
    # so the report is identical at any --jobs setting)
    results = run_sweep([_spec(args, name) for name in SWEEP_KERNELS],
                        jobs=args.jobs, tracer=tracer,
                        use_cache=not args.no_cache,
                        cache_dir=args.cache_dir,
                        batch=args.batch, lanes=args.lanes,
                        chunk=args.chunk)
    if tracer is not None:
        combined = Telemetry.from_tracer(tracer, meta={
            "kernels": list(SWEEP_KERNELS), "n": args.n,
            "config": f"TRACE {7 * args.pairs}/200",
            "unroll": args.unroll})
        if args.events_out:
            combined.write_events(args.events_out)
        if args.as_json:
            print(json.dumps(sweep_report(results, combined), indent=2))
            return 0
    print_table([r.row() for r in results],
                f"kernel sweep (n={args.n}, "
                f"TRACE {7 * args.pairs}/200, unroll {args.unroll})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The Multiflow TRACE and its Trace Scheduling compiler")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads").set_defaults(fn=cmd_list)

    p = sub.add_parser("measure", help="measure one kernel on all executors")
    p.add_argument("kernel", choices=sorted(ALL_KERNELS))
    _add_machine_args(p)
    _add_report_args(p)
    _add_cache_args(p)
    p.set_defaults(fn=cmd_measure)

    p = sub.add_parser("stats",
                       help="measure one kernel and print its telemetry")
    p.add_argument("kernel", choices=sorted(ALL_KERNELS))
    _add_machine_args(p)
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit one machine-readable JSON report")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("schedule", help="print a kernel's compiled schedule")
    p.add_argument("kernel", choices=sorted(ALL_KERNELS))
    _add_machine_args(p)
    p.set_defaults(fn=cmd_schedule)

    p = sub.add_parser("compile", help="compile a TinyFlow source file")
    p.add_argument("file")
    p.add_argument("--run", help="function to execute after compiling")
    p.add_argument("--args", nargs="*", default=[],
                   help="arguments for --run")
    _add_machine_args(p)
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser(
        "explain-deps",
        help="dump the scheduling core's dependence graphs for a kernel "
             "or TinyFlow file (edge kind, latency, distance, verdict)")
    p.add_argument("target",
                   help="kernel name or path to a TinyFlow source file")
    p.add_argument("func", nargs="?", default=None,
                   help="function to explain (default: the kernel's entry "
                        "function, or the file's only function)")
    p.add_argument("-n", type=int, default=16,
                   help="problem size for kernel targets (default 16)")
    p.add_argument("--pairs", type=int, choices=(1, 2, 4), default=4,
                   help="I-F board pairs (default 4 = TRACE 28/200)")
    p.add_argument("--unroll", type=int, default=0,
                   help="unroll factor before building graphs (default 0: "
                        "rolled loops, so modulo graphs stay readable)")
    p.add_argument("--no-speculation", action="store_true")
    p.add_argument("--no-join-motion", action="store_true")
    p.add_argument("--fast-fp", action="store_true",
                   help="fast floating-point exception mode")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit one machine-readable JSON report")
    p.set_defaults(fn=cmd_explain_deps)

    p = sub.add_parser(
        "audit",
        help="optimality-gap audit: prove or beat the heuristic "
             "schedulers' trace lengths and IIs with the exact engine, "
             "kernel by kernel")
    p.add_argument("--max-nodes", type=int, default=20_000, metavar="N",
                   help="exact-engine node budget per decision "
                        "(default 20000; results are deterministic at "
                        "a fixed budget)")
    p.add_argument("--tiny", action="store_true",
                   help="small-graph subset only (the CI smoke set)")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="wall-clock deadline per audit case (worker "
                        "processes only, i.e. with --jobs > 1)")
    p.add_argument("--out", metavar="FILE", default="BENCH_optimal.json",
                   help="gap-table report path "
                        "(default BENCH_optimal.json)")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help="compare against a baseline report; exit "
                        "nonzero if any case's gap grew or its proof "
                        "status worsened")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="print the JSON report instead of the table")
    _add_jobs_arg(p)
    p.set_defaults(fn=cmd_audit)

    p = sub.add_parser(
        "tune",
        help="autotune the scheduling-priority heuristics: search the "
             "HeuristicParams space over a corpus, score every candidate "
             "against the DEFAULT baseline and the exact oracle's bounds")
    p.add_argument("--corpus", choices=("generated", "kernels"),
                   default="generated",
                   help="what to score on: the generated-program seeds "
                        "(default) or the audit's kernel corpus")
    p.add_argument("--seeds", type=int, default=None, metavar="N",
                   help="generated-corpus seed count (default 400, "
                        "--tiny 12)")
    p.add_argument("--kernels", nargs="*", default=None,
                   help="restrict the kernel corpus to these kernels")
    p.add_argument("--tiny", action="store_true",
                   help="tiny search (the CI smoke set): few cases, "
                        "few candidates")
    p.add_argument("--no-grid", action="store_true",
                   help="skip the structured weight grid")
    p.add_argument("--random", type=int, default=0, metavar="N",
                   help="seeded random candidates to add (default 0)")
    p.add_argument("--random-seed", type=int, default=0, metavar="S",
                   help="seed for --random sampling (default 0)")
    p.add_argument("--starts", type=int, default=0, metavar="N",
                   help="multi-start restarts: DEFAULT weights with "
                        "tie seeds 1..N")
    p.add_argument("--max-nodes", type=int, default=20_000, metavar="N",
                   help="exact-engine node budget per decision "
                        "(default 20000)")
    p.add_argument("--no-oracle", action="store_true",
                   help="skip the exact bounds (baseline-only scoring)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip re-deriving winners from scratch")
    p.add_argument("--out", metavar="FILE", default="BENCH_tune.json",
                   help="report path (default BENCH_tune.json)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="print the JSON report instead of the table")
    _add_jobs_arg(p)
    _add_cache_args(p)
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser(
        "fuzz", help="differential fuzzing with fault injection")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; case i uses seed+i (default 0)")
    p.add_argument("--count", type=int, default=50,
                   help="number of differential cases (default 50)")
    p.add_argument("--pairs", type=int, choices=(1, 2, 4), default=4,
                   help="I-F board pairs (default 4 = TRACE 28/200)")
    p.add_argument("--no-faults", action="store_true",
                   help="clean differential runs only, no injection")
    p.add_argument("--strategy", choices=("trace", "pipeline", "auto", "optimal"),
                   default="trace",
                   help="loop engine under test; 'pipeline' runs the "
                        "pipeline-vs-trace differential scenario")
    p.add_argument("--verbose", action="store_true",
                   help="report failing seeds as they happen")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit one machine-readable JSON report")
    _add_jobs_arg(p)
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser(
        "sweep", help="quick E1-style kernel sweep",
        epilog="The simulator execution path is chosen per process via "
               "$REPRO_SIM_PATH=interp|fast|compiled (default: compiled "
               "for batched sweeps, fast elsewhere); the chosen path is "
               "recorded in telemetry as a sim.path.* counter.")
    _add_machine_args(p)
    _add_report_args(p)
    _add_jobs_arg(p)
    _add_cache_args(p)
    p.add_argument("--no-batch", action="store_false", dest="batch",
                   help="run each sweep point as an individual "
                        "measurement instead of one batched simulator "
                        "call per kernel")
    p.add_argument("--lanes", type=int, default=1, metavar="N",
                   help="input sets per batched kernel run; lane 0 is "
                        "the spec's own inputs, lanes 1..N-1 perturb "
                        "the float data (default 1)")
    p.add_argument("--chunk", type=int, default=None, metavar="K",
                   help="tasks per worker dispatch when --jobs > 1 "
                        "(default: task count / (jobs * 4))")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "cache", help="inspect, prune, or clear the content-addressed "
                      "compile cache shared by measure/sweep/serve")
    p.add_argument("cache_command", choices=("stats", "prune", "clear"),
                   help="stats: show hit/miss counters and the disk "
                        "tier's footprint; prune: evict LRU entries "
                        "until under --max-mb; clear: drop every entry")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="cache directory (default $REPRO_CACHE_DIR or "
                        "~/.cache/repro-compile)")
    p.add_argument("--max-mb", type=float, default=None, metavar="MB",
                   help="disk quota for prune (default "
                        "$REPRO_CACHE_MAX_MB)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit machine-readable JSON")
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser(
        "serve", help="run the compile service: a job-queue daemon with "
                      "dedup, a shared warm cache, and backpressure")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="listen port (default 8787; 0 = ephemeral)")
    p.add_argument("--max-queue", type=int, default=64, metavar="N",
                   help="bounded queue: batches beyond this are "
                        "rejected with 429 + Retry-After (default 64)")
    p.add_argument("--batch", type=int, default=8, metavar="N",
                   help="jobs dispatched per executor wave (default 8)")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="wall-clock deadline per job attempt")
    p.add_argument("--cache-max-mb", type=float, default=None,
                   metavar="MB",
                   help="disk quota for the shared store, pruned "
                        "LRU-by-use after every dispatch wave")
    p.add_argument("--journal", metavar="FILE", default=None,
                   help="write-ahead job journal: accepted jobs are "
                        "fsync'd here before they are acknowledged, and "
                        "a restarted daemon replays the file to resume "
                        "its queue (default: off, in-memory only)")
    p.add_argument("--max-attempts", type=int, default=2, metavar="N",
                   help="dispatch attempts per job (crashes included) "
                        "before it is quarantined as failed (default 2)")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request")
    _add_jobs_arg(p)
    _add_cache_args(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "submit", help="submit jobs to a running `repro serve` daemon "
                       "and wait for the results")
    p.add_argument("kernels", nargs="*",
                   help="kernels to submit (default: the sweep suite)")
    p.add_argument("--server", default="127.0.0.1:8787",
                   metavar="HOST:PORT")
    p.add_argument("--compile-only", action="store_true",
                   help="submit compile jobs (no simulation) — e.g. to "
                        "warm the service cache")
    p.add_argument("--timeout", type=float, default=300.0, metavar="S",
                   help="seconds to wait for results (default 300)")
    p.add_argument("--busy-retries", type=int, default=0, metavar="N",
                   help="sit out backpressure and resubmit up to N "
                        "times (default 0 = surface 429 immediately)")
    p.add_argument("--stats", action="store_true",
                   help="print the server's queue/cache stats and exit")
    p.add_argument("--shutdown", action="store_true",
                   help="stop the server and exit")
    _add_machine_args(p)
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit one machine-readable JSON report")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser(
        "chaos", help="crash-injection harness: SIGKILL a journaled "
                      "daemon at a seeded point, restart it on its "
                      "journal, and verify every job recovers with "
                      "payloads identical to an uninterrupted run")
    p.add_argument("kernels", nargs="*",
                   help="kernels to submit per scenario (default: "
                        "vadd dot)")
    p.add_argument("--point", default="all",
                   choices=("pre-dispatch", "mid-wave", "pre-finish",
                            "all"),
                   help="where to SIGKILL the daemon (default: every "
                        "point in turn)")
    p.add_argument("-n", type=int, default=24,
                   help="problem size per kernel (default 24)")
    p.add_argument("--workdir", metavar="DIR", default=None,
                   help="journal/cache scratch dir (default: a fresh "
                        "temporary directory)")
    p.add_argument("--timeout", type=float, default=120.0, metavar="S",
                   help="per-scenario budget (default 120)")
    p.add_argument("--verbose", action="store_true",
                   help="narrate each scenario's kill/restart cycle")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit one machine-readable JSON report")
    p.set_defaults(fn=cmd_chaos)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
