"""The durable job journal: a write-ahead log under ``repro serve``.

PR 6's daemon held its whole queue in memory, so a crash or redeploy
mid-wave stranded every queued and RUNNING job.  This module makes the
queue a *restartable* data structure: every job lifecycle transition is
appended to an append-only JSONL file — fsync'd before the caller
proceeds — and a restarted daemon replays the file to re-enqueue
unfinished work and re-serve retained results.

The log speaks the same schema as everything else: requests travel in
their :mod:`repro.api` wire form, results as ``JobResult.to_json()``
payloads, and every record carries the ``API_VERSION`` stamp.  A journal
written by a future or unknown schema is *refused* with a clear error
instead of half-parsed (a partial replay would silently drop jobs).

Record grammar (one JSON object per line, sorted keys):

* ``{"v": 1, "event": "submitted", "job_id", "ident", "key",
  "request": <request json>, "ts"}`` — appended before the submit
  reply is sent; the job is durable from this moment.
* ``{"v": 1, "event": "dispatched", "job_id", "attempt", "ts"}`` —
  appended before a wave executes, so a crash mid-wave is charged
  against the job's bounded retry budget on replay (a poison job that
  keeps killing its host quarantines instead of looping forever).
* ``{"v": 1, "event": "done" | "failed", "job_id",
  "result": <JobResult json>, "ts"}`` — terminal; ``done`` records are
  what lets a restarted daemon serve retained results byte-identically.

Durability mechanics:

* **fsync on append** — ``append`` (and the batched ``sync``) push the
  record through the OS cache before returning, so an acknowledged job
  survives SIGKILL.  A crash can still tear the *last* record mid-write;
  replay tolerates exactly that — an undecodable tail is truncated and
  counted, while a corrupt record anywhere else is an error.
* **Single-writer flock** — opening a journal takes a non-blocking
  exclusive ``flock``; a second daemon pointed at the same journal file
  fails fast with :class:`JournalError` instead of interleaving records
  (daemons *share* a cache directory, but each owns its journal).
  Worker processes forked mid-wave close their inherited handle via an
  ``os.register_at_fork`` hook so an orphaned worker can never hold the
  lock after the daemon dies.
* **Compaction + rotation** — startup replay rewrites the file down to
  live records (one ``submitted``/``dispatched``/terminal line per
  remembered job, oldest finished jobs dropped beyond ``keep_done``),
  and any append that pushes the file past ``max_bytes`` triggers the
  same rewrite, so the journal is size-bounded no matter how long the
  daemon runs.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field

from ..api import API_VERSION
from ..errors import ReproError

try:
    import fcntl
except ImportError:                                  # non-POSIX hosts
    fcntl = None  # type: ignore[assignment]

#: Journal event names (the only values ``event`` may take).
EV_SUBMITTED = "submitted"
EV_DISPATCHED = "dispatched"
EV_DONE = "done"
EV_FAILED = "failed"
EVENTS = (EV_SUBMITTED, EV_DISPATCHED, EV_DONE, EV_FAILED)

#: Default rotation bound; compaction rewrites the file when crossed.
DEFAULT_MAX_BYTES = 8 * 1024 * 1024


class JournalError(ReproError):
    """The journal cannot be opened, parsed, or safely replayed."""


@dataclass
class JournalJob:
    """One job's replayed state: what the log remembers about it."""

    job_id: str
    ident: str
    key: str
    request: dict
    #: dispatch attempts charged so far (crashes included)
    attempts: int = 0
    #: terminal ``JobResult`` payload, or ``None`` while unfinished
    result: dict | None = None
    ok: bool = False
    submitted_ts: float = field(default=0.0)

    @property
    def finished(self) -> bool:
        return self.result is not None


# journals open in this process, closed in forked children so a worker
# never inherits (and outlives the daemon holding) the flock
_OPEN_JOURNALS: "weakref.WeakSet[JobJournal]" = weakref.WeakSet()
_FORK_HOOK_INSTALLED = False


def _close_in_child() -> None:
    for journal in list(_OPEN_JOURNALS):
        journal._close_handle_only()


def _install_fork_hook() -> None:
    global _FORK_HOOK_INSTALLED
    if _FORK_HOOK_INSTALLED or not hasattr(os, "register_at_fork"):
        return
    os.register_at_fork(after_in_child=_close_in_child)
    _FORK_HOOK_INSTALLED = True


class JobJournal:
    """An append-only JSONL write-ahead log of job lifecycle records.

    Opening the journal loads (and validates) every existing record into
    :attr:`jobs`, truncates a torn tail left by a crash mid-append, and
    takes the single-writer lock.  The caller replays :attr:`jobs`, then
    usually calls :meth:`compact` to rewrite the file down to live
    records before appending new ones.

    Args:
        path: the journal file (created, with parents, if missing).
        fsync: push every synced append through the OS cache (leave on;
            tests/benchmarks may disable for speed at durability's cost).
        max_bytes: rotation bound — appends crossing it trigger
            :meth:`compact`.
        keep_done: finished jobs retained through compaction (oldest
            dropped first); mirrors the server's ``keep_results``.
    """

    def __init__(self, path: str, *, fsync: bool = True,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 keep_done: int = 256) -> None:
        self.path = path
        self.fsync = fsync
        self.max_bytes = max_bytes
        self.keep_done = keep_done
        self.jobs: "OrderedDict[str, JournalJob]" = OrderedDict()
        self.torn_tail = False
        self.compactions = 0
        self.records_loaded = 0
        self._lock = threading.Lock()
        self._handle = None
        self._bytes = 0
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._handle = open(path, "a+b")
        try:
            self._flock(self._handle)
            self._load()
        except BaseException:
            self._handle.close()
            self._handle = None
            raise
        _install_fork_hook()
        _OPEN_JOURNALS.add(self)

    # ------------------------------------------------------------------
    # open/lock/load
    # ------------------------------------------------------------------
    def _flock(self, handle) -> None:
        """Non-blocking exclusive lock: one daemon per journal file."""
        if fcntl is None:
            return
        try:
            fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as exc:
            raise JournalError(
                f"journal {self.path!r} is locked by another daemon "
                f"(two servers must not share one journal): {exc}"
            ) from exc

    def _load(self) -> None:
        """Parse every record; truncate a torn tail; refuse bad schema."""
        self._handle.seek(0)
        raw = self._handle.read()
        good = 0
        lines = raw.split(b"\n")
        # a file ending in "\n" yields a final empty chunk; a torn
        # append yields a non-empty chunk with no newline after it
        body, tail = lines[:-1], lines[-1]
        for lineno, line in enumerate(body, start=1):
            if not line.strip():
                good += len(line) + 1
                continue
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
            except (ValueError, UnicodeDecodeError) as exc:
                if lineno == len(body) and not tail:
                    # the crash tore the final record: drop it
                    self.torn_tail = True
                    break
                raise JournalError(
                    f"corrupt journal record at {self.path}:{lineno}: "
                    f"{exc}") from None
            self._validate(record, lineno)
            self._apply(record, lineno)
            self.records_loaded += 1
            good += len(line) + 1
        if tail:
            self.torn_tail = True
        if self.torn_tail:
            self._handle.truncate(good)
        self._bytes = good
        self._handle.seek(0, os.SEEK_END)

    def _validate(self, record: dict, lineno: int) -> None:
        version = record.get("v")
        if version != API_VERSION:
            raise JournalError(
                f"journal {self.path} record at line {lineno} carries "
                f"schema v{version!r}, but this daemon speaks "
                f"v{API_VERSION}; refusing to replay a journal written "
                f"by an unknown schema")
        if record.get("event") not in EVENTS:
            raise JournalError(
                f"journal {self.path}:{lineno}: unknown event "
                f"{record.get('event')!r} (expected one of {EVENTS})")

    def _apply(self, record: dict, lineno: int) -> None:
        event = record["event"]
        job_id = record.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise JournalError(
                f"journal {self.path}:{lineno}: record has no job_id")
        if event == EV_SUBMITTED:
            if job_id in self.jobs:
                raise JournalError(
                    f"journal {self.path}:{lineno}: duplicate submitted "
                    f"record for {job_id}")
            request = record.get("request")
            if not isinstance(request, dict):
                raise JournalError(
                    f"journal {self.path}:{lineno}: submitted record "
                    f"for {job_id} carries no request object")
            self.jobs[job_id] = JournalJob(
                job_id=job_id, ident=record.get("ident", ""),
                key=record.get("key", ""), request=request,
                submitted_ts=record.get("ts", 0.0))
            return
        job = self.jobs.get(job_id)
        if job is None:
            raise JournalError(
                f"journal {self.path}:{lineno}: {event} record for "
                f"unknown job {job_id} (no submitted record precedes it)")
        if event == EV_DISPATCHED:
            job.attempts = max(job.attempts, int(record.get("attempt", 1)))
        else:
            job.result = record.get("result")
            if not isinstance(job.result, dict):
                raise JournalError(
                    f"journal {self.path}:{lineno}: terminal record for "
                    f"{job_id} carries no result payload")
            job.ok = event == EV_DONE

    # ------------------------------------------------------------------
    # appends (the write-ahead side)
    # ------------------------------------------------------------------
    def submitted(self, job_id: str, ident: str, key: str,
                  request: dict, sync: bool = True) -> None:
        """Journal one accepted job *before* its submit reply is sent."""
        self._append({"v": API_VERSION, "event": EV_SUBMITTED,
                      "job_id": job_id, "ident": ident, "key": key,
                      "request": request, "ts": time.time()}, sync)

    def dispatched(self, job_id: str, attempt: int,
                   sync: bool = True) -> None:
        """Charge one dispatch attempt *before* the wave executes."""
        self._append({"v": API_VERSION, "event": EV_DISPATCHED,
                      "job_id": job_id, "attempt": attempt,
                      "ts": time.time()}, sync)

    def finished(self, job_id: str, result: dict, ok: bool,
                 sync: bool = True) -> None:
        """Journal a terminal result (``done`` or ``failed``)."""
        self._append({"v": API_VERSION,
                      "event": EV_DONE if ok else EV_FAILED,
                      "job_id": job_id, "result": result,
                      "ts": time.time()}, sync)

    def _append(self, record: dict, sync: bool) -> None:
        with self._lock:
            if self._handle is None:
                raise JournalError(f"journal {self.path} is closed")
            line = (json.dumps(record, sort_keys=True) + "\n").encode()
            self._handle.write(line)
            self._handle.flush()
            if sync and self.fsync:
                os.fsync(self._handle.fileno())
            self._bytes += len(line)
            # mirror the record into the jobs map *before* the rotation
            # check, still under the lock: compaction rewrites the file
            # from self.jobs, so a rotation triggered by this very
            # append must already see the event it is rotating away
            self._track(record)
            if self._bytes > self.max_bytes:
                self._compact_locked()

    def _track(self, record: dict) -> None:
        """Fold one just-appended record into ``jobs`` (lock held)."""
        event, job_id = record["event"], record["job_id"]
        if event == EV_SUBMITTED:
            self.jobs[job_id] = JournalJob(
                job_id=job_id, ident=record["ident"], key=record["key"],
                request=record["request"], submitted_ts=record["ts"])
            return
        job = self.jobs.get(job_id)
        if job is None:
            return
        if event == EV_DISPATCHED:
            job.attempts = max(job.attempts, record["attempt"])
        else:
            job.result = record["result"]
            job.ok = event == EV_DONE

    def sync(self) -> None:
        """Fsync everything appended so far (covers ``sync=False``
        appends — one barrier per batch instead of one per record)."""
        with self._lock:
            if self._handle is not None and self.fsync:
                os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    # compaction / rotation
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Rewrite the journal down to live records; bytes afterwards.

        Keeps, per remembered job: its ``submitted`` record, one
        ``dispatched`` record carrying the attempt high-water mark, and
        its terminal record.  Finished jobs beyond ``keep_done`` are
        dropped oldest-first (they are also gone from the server's
        retention window).  The rewrite is atomic (tmp + ``os.replace``)
        and re-locks the fresh file before releasing the old one.
        """
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        if self._handle is None:
            raise JournalError(f"journal {self.path} is closed")
        finished = [j.job_id for j in self.jobs.values() if j.finished]
        for job_id in finished[:max(0, len(finished) - self.keep_done)]:
            del self.jobs[job_id]
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".journal.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                for job in self.jobs.values():
                    self._write_job(handle, job)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            # take the lock on the replacement before retiring the old
            # inode so no other daemon can slip in between
            fresh = open(tmp, "a+b")
            try:
                self._flock(fresh)
                os.replace(tmp, self.path)
            except BaseException:
                fresh.close()
                raise
            old, self._handle = self._handle, fresh
            old.close()
            if self.fsync:
                self._fsync_dir(directory)
        except JournalError:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        except OSError:
            # a full or read-only disk must not take the daemon down;
            # the oversized journal stays valid, just unrotated
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            return self._bytes
        self._handle.seek(0, os.SEEK_END)
        self._bytes = self._handle.tell()
        self.compactions += 1
        return self._bytes

    def _write_job(self, handle, job: JournalJob) -> None:
        def emit(record: dict) -> None:
            handle.write((json.dumps(record, sort_keys=True)
                          + "\n").encode())

        ts = job.submitted_ts or time.time()
        emit({"v": API_VERSION, "event": EV_SUBMITTED,
              "job_id": job.job_id, "ident": job.ident, "key": job.key,
              "request": job.request, "ts": ts})
        if job.attempts:
            emit({"v": API_VERSION, "event": EV_DISPATCHED,
                  "job_id": job.job_id, "attempt": job.attempts,
                  "ts": ts})
        if job.finished:
            emit({"v": API_VERSION,
                  "event": EV_DONE if job.ok else EV_FAILED,
                  "job_id": job.job_id, "result": job.result, "ts": ts})

    @staticmethod
    def _fsync_dir(directory: str) -> None:
        with contextlib.suppress(OSError):
            fd = os.open(directory, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush, fsync, and release the journal (clean shutdown)."""
        with self._lock:
            if self._handle is None:
                return
            self._handle.flush()
            if self.fsync:
                with contextlib.suppress(OSError):
                    os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
        _OPEN_JOURNALS.discard(self)

    def crash(self) -> None:
        """Drop the handle with no flush/compaction — the SIGKILL twin,
        for tests and the chaos harness (a real crash never cleans up)."""
        self._close_handle_only()

    def _close_handle_only(self) -> None:
        with self._lock:
            if self._handle is not None:
                with contextlib.suppress(OSError):
                    self._handle.close()
                self._handle = None
        _OPEN_JOURNALS.discard(self)

    @property
    def closed(self) -> bool:
        return self._handle is None

    def pending(self) -> list[JournalJob]:
        """Replayed jobs with no terminal record, submission order."""
        return [j for j in self.jobs.values() if not j.finished]

    def stats(self) -> dict:
        finished = sum(1 for j in self.jobs.values() if j.finished)
        return {
            "path": self.path,
            "bytes": self._bytes,
            "jobs": len(self.jobs),
            "finished": finished,
            "pending": len(self.jobs) - finished,
            "records_loaded": self.records_loaded,
            "torn_tail": self.torn_tail,
            "compactions": self.compactions,
        }
