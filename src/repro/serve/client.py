"""The service client: ``repro.api.Client`` and the ``repro submit`` CLI.

A thin, dependency-free HTTP client over :mod:`repro.serve.protocol`.
Requests go out and results come back as the :mod:`repro.api`
dataclasses — the client never invents its own schema.

Transport failures are typed: every connection-level error surfaces as
:class:`ServerUnavailable` (a :class:`~repro.errors.ReproError`), never
a raw ``ConnectionRefusedError`` or ``socket.timeout``.  The waiting
entry points — :meth:`Client.result` and the submit phase of
:meth:`Client.submit_and_wait` — ride out unavailability with
exponential backoff and jitter inside their deadline, so a client
polling a daemon through a crash-and-restart (the journal re-serves its
jobs) sees nothing but a slower answer.  Resubmitting after a restart
is safe by construction: the server dedups on job identity, so the
retried batch aliases onto the recovered jobs.
"""

from __future__ import annotations

import http.client
import random
import time

from ..api import (CompileRequest, JobResult, JobStatus, MeasureRequest,
                   request_from_json)
from ..errors import ReproError
from . import protocol


class ServerBusy(ReproError):
    """The server rejected a batch under backpressure (HTTP 429)."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServerError(ReproError):
    """Any other non-2xx reply from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"server replied {status}: {message}")
        self.status = status


class ServerUnavailable(ReproError):
    """The daemon could not be reached (refused, reset, or timed out).

    Wraps the underlying transport error so callers branch on one typed
    failure ("is the daemon up?") instead of the OS error zoo, and the
    CLI prints one clean line instead of a traceback.
    """

    def __init__(self, host: str, port: int, cause: Exception) -> None:
        super().__init__(f"cannot reach repro serve at {host}:{port}: "
                         f"{cause}")
        self.host = host
        self.port = port
        self.cause = cause


def _backoff_s(attempt: int, base: float = 0.05, cap: float = 2.0) -> float:
    """Exponential backoff with jitter: ``base * 2^attempt`` capped at
    ``cap``, scaled by a random factor in [0.5, 1.0) so a herd of
    clients retrying a restarted daemon does not arrive in lockstep."""
    return min(cap, base * (2 ** attempt)) * (0.5 + random.random() * 0.5)


class Client:
    """A handle on one running ``repro serve`` daemon.

    Args:
        address: ``host:port`` (an ``http://`` prefix is tolerated).
        timeout_s: socket timeout per HTTP call.  Long polls bound their
            ``wait`` below this so a slow job never looks like a dead
            socket.
    """

    def __init__(self, address: str = "127.0.0.1:8787",
                 timeout_s: float = 30.0) -> None:
        self.host, self.port = protocol.split_address(address)
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    def _call(self, method: str, path: str, body=None):
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            payload = protocol.encode(body) if body is not None else None
            headers = {"Content-Type": protocol.CONTENT_TYPE} \
                if payload is not None else {}
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                obj = protocol.decode(response.read())
            except (OSError, http.client.HTTPException) as exc:
                raise ServerUnavailable(self.host, self.port, exc) from exc
        finally:
            conn.close()
        if response.status == protocol.BUSY:
            raise ServerBusy(obj.get("error", "server busy"),
                             float(obj.get("retry_after_s", 1.0)))
        if response.status not in (protocol.OK, protocol.ACCEPTED):
            message = obj.get("error", "") if isinstance(obj, dict) else ""
            raise ServerError(response.status, message)
        return response.status, obj

    # ------------------------------------------------------------------
    def submit(self, requests: list[CompileRequest]) -> list[JobStatus]:
        """Submit a batch; raises :class:`ServerBusy` on backpressure
        and :class:`ServerUnavailable` if the daemon is unreachable
        (no transparent retry here: a one-shot submit must not silently
        double-send — use :meth:`submit_and_wait` for riding out
        restarts)."""
        _, obj = self._call("POST", protocol.SUBMIT,
                            {"jobs": [r.to_json() for r in requests]})
        return [JobStatus.from_json(s) for s in obj["statuses"]]

    def status(self, job_id: str) -> JobStatus:
        _, obj = self._call("GET", protocol.job_path(job_id))
        return JobStatus.from_json(obj)

    def result(self, job_id: str, timeout_s: float = 300.0) -> JobResult:
        """Long-poll one job until it finishes; its :class:`JobResult`.

        Rides out daemon unavailability with jittered exponential
        backoff inside the deadline: a daemon that crashes and is
        restarted on its journal re-serves the job, so transient
        connection failures here mean "keep trying", not "give up".

        Raises :class:`ReproError` if the job is still unfinished when
        ``timeout_s`` runs out (the job keeps running server-side), or
        :class:`ServerUnavailable` if the daemon never comes back.
        """
        deadline = time.monotonic() + timeout_s
        down_attempts = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ReproError(f"timed out waiting for {job_id} "
                                 f"after {timeout_s:g}s")
            wait = min(remaining, max(self.timeout_s - 5.0, 1.0))
            try:
                status, obj = self._call(
                    "GET", protocol.result_path(job_id, wait_s=wait))
            except ServerUnavailable:
                pause = _backoff_s(down_attempts)
                down_attempts += 1
                if deadline - time.monotonic() <= pause:
                    raise
                time.sleep(pause)
                continue
            down_attempts = 0
            if status == protocol.OK:
                return JobResult.from_json(obj)

    def results(self, job_ids: list[str],
                timeout_s: float = 300.0) -> list[JobResult]:
        deadline = time.monotonic() + timeout_s
        return [self.result(job_id,
                            max(deadline - time.monotonic(), 0.001))
                for job_id in job_ids]

    def submit_and_wait(self, requests: list[CompileRequest],
                        timeout_s: float = 300.0,
                        busy_retries: int = 0) -> list[JobResult]:
        """Submit then collect, riding out backpressure and restarts.

        ``busy_retries`` > 0 sleeps out the server's retry-after hint and
        resubmits that many times before giving up.  Unavailability
        during the submit phase is retried with jittered backoff inside
        ``timeout_s`` — safe even if an earlier attempt's batch was
        accepted before the daemon died, because the server dedups on
        job identity and the journal makes accepted jobs durable: the
        resubmission aliases onto the recovered jobs.
        """
        deadline = time.monotonic() + timeout_s
        down_attempts = 0
        busy_attempts = 0
        while True:
            try:
                statuses = self.submit(requests)
                break
            except ServerBusy as busy:
                if busy_attempts >= busy_retries:
                    raise
                busy_attempts += 1
                time.sleep(busy.retry_after_s)
            except ServerUnavailable:
                pause = _backoff_s(down_attempts)
                down_attempts += 1
                if deadline - time.monotonic() <= pause:
                    raise
                time.sleep(pause)
        return self.results([s.job_id for s in statuses],
                            max(deadline - time.monotonic(), 0.001))

    def stats(self) -> dict:
        _, obj = self._call("GET", protocol.STATS)
        return obj

    def health(self) -> dict:
        """Liveness probe (``GET /healthz``)."""
        _, obj = self._call("GET", protocol.HEALTH)
        return obj

    def ready(self) -> dict:
        """Readiness probe (``GET /readyz``); ``{"ready": bool, ...}``.

        A 503 (not ready) is reported in the body, not raised — only
        transport failure raises :class:`ServerUnavailable`.
        """
        try:
            _, obj = self._call("GET", protocol.READY)
        except ServerError as exc:
            if exc.status != protocol.UNAVAILABLE:
                raise
            return {"ready": False, "reason": str(exc)}
        return obj

    def shutdown(self) -> dict:
        """Graceful stop; the reply (``{"ok": ..., "dispatcher_stuck":
        ...}``) so callers can see a dispatcher that failed to drain."""
        _, obj = self._call("POST", protocol.SHUTDOWN)
        return obj if isinstance(obj, dict) else {"ok": True}


# re-exported so `repro.api` can hand these out without importing HTTP
# machinery at its own import time
__all__ = ["Client", "ServerBusy", "ServerError", "ServerUnavailable",
           "CompileRequest", "MeasureRequest", "request_from_json"]
