"""The service client: ``repro.api.Client`` and the ``repro submit`` CLI.

A thin, dependency-free HTTP client over :mod:`repro.serve.protocol`.
Requests go out and results come back as the :mod:`repro.api`
dataclasses — the client never invents its own schema.
"""

from __future__ import annotations

import http.client
import time

from ..api import (CompileRequest, JobResult, JobStatus, MeasureRequest,
                   request_from_json)
from ..errors import ReproError
from . import protocol


class ServerBusy(ReproError):
    """The server rejected a batch under backpressure (HTTP 429)."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServerError(ReproError):
    """Any other non-2xx reply from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"server replied {status}: {message}")
        self.status = status


class Client:
    """A handle on one running ``repro serve`` daemon.

    Args:
        address: ``host:port`` (an ``http://`` prefix is tolerated).
        timeout_s: socket timeout per HTTP call.  Long polls bound their
            ``wait`` below this so a slow job never looks like a dead
            socket.
    """

    def __init__(self, address: str = "127.0.0.1:8787",
                 timeout_s: float = 30.0) -> None:
        self.host, self.port = protocol.split_address(address)
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    def _call(self, method: str, path: str, body=None):
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            payload = protocol.encode(body) if body is not None else None
            headers = {"Content-Type": protocol.CONTENT_TYPE} \
                if payload is not None else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            obj = protocol.decode(response.read())
        finally:
            conn.close()
        if response.status == protocol.BUSY:
            raise ServerBusy(obj.get("error", "server busy"),
                             float(obj.get("retry_after_s", 1.0)))
        if response.status not in (protocol.OK, protocol.ACCEPTED):
            message = obj.get("error", "") if isinstance(obj, dict) else ""
            raise ServerError(response.status, message)
        return response.status, obj

    # ------------------------------------------------------------------
    def submit(self, requests: list[CompileRequest]) -> list[JobStatus]:
        """Submit a batch; raises :class:`ServerBusy` on backpressure."""
        _, obj = self._call("POST", protocol.SUBMIT,
                            {"jobs": [r.to_json() for r in requests]})
        return [JobStatus.from_json(s) for s in obj["statuses"]]

    def status(self, job_id: str) -> JobStatus:
        _, obj = self._call("GET", protocol.job_path(job_id))
        return JobStatus.from_json(obj)

    def result(self, job_id: str, timeout_s: float = 300.0) -> JobResult:
        """Long-poll one job until it finishes; its :class:`JobResult`.

        Raises :class:`ReproError` if the job is still unfinished when
        ``timeout_s`` runs out (the job keeps running server-side).
        """
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ReproError(f"timed out waiting for {job_id} "
                                 f"after {timeout_s:g}s")
            wait = min(remaining, max(self.timeout_s - 5.0, 1.0))
            status, obj = self._call(
                "GET", protocol.result_path(job_id, wait_s=wait))
            if status == protocol.OK:
                return JobResult.from_json(obj)

    def results(self, job_ids: list[str],
                timeout_s: float = 300.0) -> list[JobResult]:
        deadline = time.monotonic() + timeout_s
        return [self.result(job_id,
                            max(deadline - time.monotonic(), 0.001))
                for job_id in job_ids]

    def submit_and_wait(self, requests: list[CompileRequest],
                        timeout_s: float = 300.0,
                        busy_retries: int = 0) -> list[JobResult]:
        """Submit then collect, optionally sitting out backpressure.

        ``busy_retries`` > 0 sleeps out the server's retry-after hint and
        resubmits that many times before giving up.
        """
        for attempt in range(busy_retries + 1):
            try:
                statuses = self.submit(requests)
                break
            except ServerBusy as busy:
                if attempt == busy_retries:
                    raise
                time.sleep(busy.retry_after_s)
        return self.results([s.job_id for s in statuses], timeout_s)

    def stats(self) -> dict:
        _, obj = self._call("GET", protocol.STATS)
        return obj

    def shutdown(self) -> None:
        self._call("POST", protocol.SHUTDOWN)


# re-exported so `repro.api` can hand these out without importing HTTP
# machinery at its own import time
__all__ = ["Client", "ServerBusy", "ServerError",
           "CompileRequest", "MeasureRequest", "request_from_json"]
