"""The compile service's wire protocol, shared by server and client.

The transport is deliberately boring: HTTP over a local socket, JSON
bodies, and the :mod:`repro.api` dataclasses as the only schema.  One
module owns the paths and the body shapes so the server handler and the
client can never drift apart.

Endpoints:

* ``POST /submit`` — body ``{"jobs": [<request json>, ...]}``.  Replies
  ``200 {"job_ids": [...], "statuses": [<JobStatus json>, ...]}``, or
  ``429 {"error": ..., "retry_after_s": t}`` (plus a ``Retry-After``
  header) when the bounded queue cannot take the batch, or
  ``400 {"error": ...}`` on a malformed request.
* ``GET /jobs/<id>`` — ``200 <JobStatus json>`` or ``404``.
* ``GET /jobs/<id>/result?wait=<seconds>`` — long-polls up to ``wait``
  seconds (clamped server-side to 60 s per poll; a non-numeric ``wait``
  is a 400); ``200 <JobResult json>`` once finished, else
  ``202 <JobStatus json>``.
* ``GET /stats`` — queue depth, per-state job counts, the server's
  aggregate counters, readiness, journal stats, and the shared cache's
  disk footprint.
* ``GET /healthz`` — liveness: ``200 {"ok": true}`` whenever the
  process answers at all.
* ``GET /readyz`` — readiness: ``200 {"ready": true, "reason": "ok"}``
  once the journal is replayed and the dispatcher is live, else
  ``503 {"ready": false, "reason": ...}``.
* ``POST /shutdown`` — graceful drain; replies
  ``200 {"ok": true, "dispatcher_stuck": bool}`` after the dispatcher
  has joined (or been declared stuck), then stops the listener.
"""

from __future__ import annotations

import json

#: Paths (kept as constants so client and server agree by construction).
SUBMIT = "/submit"
JOBS = "/jobs"
STATS = "/stats"
SHUTDOWN = "/shutdown"
HEALTH = "/healthz"
READY = "/readyz"

#: HTTP statuses the service uses deliberately.
OK = 200
ACCEPTED = 202
BAD_REQUEST = 400
NOT_FOUND = 404
BUSY = 429
UNAVAILABLE = 503

CONTENT_TYPE = "application/json"


def encode(obj) -> bytes:
    """Canonical body encoding: sorted-key JSON, UTF-8."""
    return json.dumps(obj, sort_keys=True).encode("utf-8")


def decode(body: bytes):
    return json.loads(body.decode("utf-8")) if body else None


def job_path(job_id: str) -> str:
    return f"{JOBS}/{job_id}"


def result_path(job_id: str, wait_s: float = 0.0) -> str:
    path = f"{JOBS}/{job_id}/result"
    return f"{path}?wait={wait_s:g}" if wait_s else path


def split_address(address: str) -> tuple[str, int]:
    """``host:port`` (with or without an ``http://`` prefix) split up."""
    addr = address.removeprefix("http://").rstrip("/")
    host, _, port = addr.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected host:port, got {address!r}")
    return host, int(port)
