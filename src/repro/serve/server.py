"""The ``repro serve`` daemon: a crash-safe job queue over the runner.

The server turns the one-shot harness into an *offered capability*: many
clients submit compile/measure jobs against one warm compile cache, and
the trace-scheduling cost is paid once per distinct piece of work no
matter how many tenants ask for it.

Four mechanisms carry that promise:

* **Dedup through the cache key.**  Every request resolves to the same
  content-addressed :func:`~repro.cache.compile_key` the compile cache
  uses, widened to a *job identity* that also covers the request facets
  the compile key cannot see (the request ``kind`` and its ``check``
  flag — a measure job is never aliased onto a compile-only job).  A
  submitted job whose identity is already queued or running becomes an
  *alias* of the earlier job — when the primary finishes, every alias
  completes with the primary's payload verbatim and ``cache.hit`` in its
  telemetry.  An identity whose result is still retained completes
  instantly the same way.  Two concurrent clients asking for the same
  compile therefore cost exactly one compile.
* **The work-queue executor.**  Queued jobs dispatch in waves through
  :func:`~repro.harness.run_tasks` (the same executor behind
  ``--jobs``), so the service inherits its per-task isolation, deadline
  policing, and deterministic counter folding.
* **Backpressure.**  The queue is bounded; a batch that does not fit is
  rejected whole with a retry-after hint (HTTP 429 on the wire) instead
  of letting latency grow without bound.
* **Durability.**  With a :class:`~repro.serve.journal.JobJournal`
  configured, every accepted job is journaled *before* its submit reply
  goes out, every dispatch attempt is charged to the log before the
  wave runs, and every terminal result is recorded.  A restarted daemon
  replays the journal: finished jobs are re-served byte-identically,
  unfinished ones are re-enqueued (deduping against each other and
  against retained results through the same identity), and a job whose
  attempts already exhausted ``max_attempts`` — it keeps killing
  whatever runs it — is quarantined as FAILED (``serve.quarantined``)
  instead of crash-looping the daemon.  Re-executed work completes from
  the shared compile cache, so recovery costs simulation, not
  recompilation.

Everything observable goes through the usual tracer: ``serve.*``
counters for queue behavior, per-job counters on each
:class:`~repro.api.JobResult`, ``serve.dispatch`` spans per wave, and
``/healthz`` / ``/readyz`` endpoints for process supervisors.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import signal
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..api import (JOB_DONE, JOB_FAILED, JOB_QUEUED, JOB_RUNNING, ApiError,
                   CompileRequest, JobResult, JobStatus, request_from_json)
from ..errors import ReproError
from ..obs import Tracer
from . import protocol
from .journal import JobJournal

#: Chaos injection points (see :mod:`repro.harness.chaos`): a daemon
#: started with ``$REPRO_CHAOS_KILL`` set to one of these SIGKILLs
#: itself the first time the dispatcher reaches that point — a genuine
#: crash at a deterministic place, used to prove recovery end to end.
CHAOS_PRE_DISPATCH = "pre-dispatch"
CHAOS_MID_WAVE = "mid-wave"
CHAOS_PRE_FINISH = "pre-finish"
CHAOS_POINTS = (CHAOS_PRE_DISPATCH, CHAOS_MID_WAVE, CHAOS_PRE_FINISH)


def _chaos_point(point: str) -> None:
    """SIGKILL ourselves if chaos injection is armed for ``point``.

    SIGKILL — not an exception, not ``sys.exit`` — because the whole
    point is that no cleanup code runs: the journal must carry recovery
    alone, exactly as it would after ``kill -9`` or an OOM kill.
    """
    if os.environ.get("REPRO_CHAOS_KILL") == point:
        os.kill(os.getpid(), signal.SIGKILL)


class QueueFull(ReproError):
    """The bounded job queue cannot take the batch right now."""

    def __init__(self, depth: int, limit: int, retry_after_s: float) -> None:
        super().__init__(f"job queue full ({depth}/{limit} queued); "
                         f"retry in {retry_after_s:g}s")
        self.retry_after_s = retry_after_s


class UnknownJob(ReproError):
    """No such job id (never submitted, or its result has been retired)."""


@dataclass
class ServeConfig:
    """Everything one service instance needs, as one record."""

    host: str = "127.0.0.1"
    port: int = 8787
    #: worker processes per dispatch wave (1 = run jobs inline)
    jobs: int = 1
    #: bounded queue: queued-but-not-dispatched jobs beyond this are
    #: rejected with a retry-after hint
    max_queue: int = 64
    #: jobs dispatched per executor wave
    batch: int = 8
    #: the retry hint handed back on rejection
    retry_after_s: float = 1.0
    #: wall-clock deadline per job attempt (None = no deadline)
    timeout_s: float | None = None
    use_cache: bool = True
    cache_dir: str | None = None
    #: disk quota for the shared store; enforced between waves, at most
    #: once per ``prune_interval_s``
    cache_max_mb: float | None = None
    #: minimum seconds between quota prunes (a prune is a full store
    #: scan under the store lock — keep it off the per-wave hot path)
    prune_interval_s: float = 30.0
    #: finished job records retained for polling/dedup (oldest retired)
    keep_results: int = 256
    #: write-ahead job journal; ``None`` keeps the PR-6 in-memory queue
    journal_path: str | None = None
    #: fsync every journal barrier (disable only where durability is
    #: not the point, e.g. replay benchmarks)
    journal_fsync: bool = True
    #: journal rotation bound in bytes
    journal_max_bytes: int = 8 * 1024 * 1024
    #: total dispatch attempts per job (across crashes and worker
    #: deaths) before it is quarantined as FAILED
    max_attempts: int = 2
    #: base backoff before re-dispatching a crashed job (doubles per
    #: attempt)
    retry_backoff_s: float = 0.25
    #: how long shutdown waits for the dispatcher to finish its wave
    #: before declaring it stuck (surfaced, never silently leaked)
    shutdown_join_s: float = 30.0


def _job_ident(request: CompileRequest, key: str) -> str:
    """The dedup identity of one request.

    The compile ``cache_key`` names the *artifact*; two requests with
    the same key can still ask for different work (compile-only versus
    a full measurement, output checking on or off).  Aliasing across
    those would hand a measure client a compile report, so the identity
    jobs dedup on covers the kind and check facets as well.
    """
    check = "check" if getattr(request, "check", False) else "nocheck"
    return f"{request.kind}:{check}:{key}"


@dataclass
class _Job:
    """The server's private record of one submitted job."""

    id: str
    request: CompileRequest
    key: str
    #: dedup identity: the cache key plus kind/check (see _job_ident)
    ident: str
    state: str = JOB_QUEUED
    deduped: bool = False
    submitted_s: float = field(default_factory=time.time)
    started_s: float | None = None
    finished_s: float | None = None
    result: JobResult | None = None
    #: dispatch attempts charged so far (journal replay included)
    attempts: int = 0
    #: this job was rebuilt from the journal after a restart
    recovered: bool = False
    #: earliest monotonic time the next attempt may dispatch (backoff)
    not_before: float = 0.0

    def status(self) -> JobStatus:
        return JobStatus(
            job_id=self.id, state=self.state, kind=self.request.kind,
            kernel=self.request.kernel, key=self.key, deduped=self.deduped,
            submitted_s=self.submitted_s, started_s=self.started_s,
            finished_s=self.finished_s,
            error=self.result.error if self.result is not None else None,
            attempts=self.attempts, recovered=self.recovered)


def _alias_result(primary: JobResult, alias: _Job) -> JobResult:
    """A dedup alias's result: the primary's payload verbatim, with the
    served-from-shared-work hit recorded in the alias's telemetry.

    ``kind`` and ``key`` come from the alias's *own* request — identical
    to the primary's by construction (the dedup identity covers both),
    but never inherited, so a labeling bug can't survive a refactor.
    """
    counters = dict(primary.counters)
    counters["cache.hit"] = counters.get("cache.hit", 0) + 1
    counters.pop("cache.miss", None)
    return JobResult(job_id=alias.id, ok=primary.ok,
                     kind=alias.request.kind, key=alias.key,
                     result=primary.result, error=primary.error,
                     counters=counters, duration_s=primary.duration_s,
                     cache_hit=True)


class CompileServer:
    """The job-queue core (transport-free; HTTP wraps it below)."""

    def __init__(self, config: ServeConfig | None = None,
                 tracer: Tracer | None = None) -> None:
        self.config = config or ServeConfig()
        self.tracer = tracer or Tracer()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)   # queue activity
        self._done = threading.Condition(self._lock)   # job completion
        self._jobs: dict[str, _Job] = {}
        self._queue: deque[str] = deque()
        self._inflight_by_ident: dict[str, str] = {}
        self._waiters_by_ident: dict[str, list[str]] = {}
        self._done_by_ident: OrderedDict[str, str] = OrderedDict()
        self._retired: deque[str] = deque()
        self._last_prune_s = float("-inf")
        self._ids = itertools.count(1)
        self._paused = False
        self._stopping = False
        self._shutdown_stuck = False
        self._journal_closed = False
        self._dispatcher: threading.Thread | None = None
        for name in ("submitted", "rejected", "dedup_inflight",
                     "dedup_done", "dispatched", "completed", "failed",
                     "dispatch_errors", "journal_errors", "prune_errors",
                     "recovered", "replayed_done", "retried",
                     "quarantined", "shutdown_stuck"):
            self.tracer.counters.inc(f"serve.{name}", 0)
        self._journal: JobJournal | None = None
        if self.config.journal_path:
            self._journal = JobJournal(
                self.config.journal_path,
                fsync=self.config.journal_fsync,
                max_bytes=self.config.journal_max_bytes,
                keep_done=self.config.keep_results)
            self._recover()
            self._journal.compact()

    # ------------------------------------------------------------------
    # journal replay
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild queue and retained results from the replayed journal.

        Runs before the dispatcher starts (and before the HTTP listener
        binds), so no client can observe a half-replayed queue.  The
        recovery state machine per journaled job:

        * terminal record present → re-serve it: the job re-enters the
          retained-result window (and the dedup index, if it succeeded);
        * no terminal, ``attempts >= max_attempts`` → quarantine: the
          job has already taken down whatever ran it that many times,
          so it completes FAILED instead of crash-looping the daemon;
        * no terminal, identity already finished OK → complete as a
          dedup alias of the retained result (the work outlived the
          crash even though this job's record did not);
        * otherwise → re-enqueue, deduping in-flight identities against
          each other exactly like fresh submissions.
        """
        journal = self._journal
        assert journal is not None
        max_seq = 0
        pending: list[_Job] = []
        for jjob in journal.jobs.values():
            with contextlib.suppress(ValueError):
                max_seq = max(max_seq, int(jjob.job_id.rsplit("-", 1)[-1]))
            request = request_from_json(jjob.request)
            job = _Job(id=jjob.job_id, request=request, key=jjob.key,
                       ident=jjob.ident, attempts=jjob.attempts,
                       recovered=True,
                       submitted_s=jjob.submitted_ts or time.time())
            self._jobs[job.id] = job
            if jjob.finished:
                result = JobResult.from_json(jjob.result)
                job.result = result
                job.state = JOB_DONE if result.ok else JOB_FAILED
                job.deduped = result.cache_hit
                if result.ok and job.ident not in self._done_by_ident:
                    self._done_by_ident[job.ident] = job.id
                self._retired.append(job.id)
                self.tracer.counters.inc("serve.replayed_done")
            else:
                pending.append(job)
        self._ids = itertools.count(max_seq + 1)
        for job in pending:
            if job.attempts >= self.config.max_attempts:
                self.tracer.counters.inc("serve.quarantined")
                self._finish(job, JobResult(
                    job_id=job.id, ok=False, kind=job.request.kind,
                    key=job.key,
                    error=f"quarantined: job crashed its host on "
                          f"{job.attempts} of {self.config.max_attempts} "
                          f"allowed attempts"))
            elif job.ident in self._done_by_ident:
                done = self._jobs[self._done_by_ident[job.ident]]
                job.deduped = True
                self.tracer.counters.inc("serve.dedup_done")
                self._finish(job, _alias_result(done.result, job))
            elif job.ident in self._inflight_by_ident:
                job.deduped = True
                self._waiters_by_ident.setdefault(
                    job.ident, []).append(job.id)
                self.tracer.counters.inc("serve.dedup_inflight")
            else:
                self._inflight_by_ident[job.ident] = job.id
                self._queue.append(job.id)
                self.tracer.counters.inc("serve.recovered")
        self._trim_retained()

    # ------------------------------------------------------------------
    def start(self) -> "CompileServer":
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatch", daemon=True)
        self._dispatcher.start()
        return self

    def shutdown(self) -> bool:
        """Stop the service; ``True`` if the dispatcher failed to stop.

        Graceful drain: submissions are refused from this point, the
        dispatcher finishes (and journals) the wave it is executing,
        and the journal is flushed and released.  Without a journal,
        queued-but-unstarted jobs fail cleanly as before; *with* one
        they stay journaled as pending — a restarted daemon resumes
        them, so a redeploy never strands accepted work.

        A dispatcher that does not join within ``shutdown_join_s`` is
        counted (``serve.shutdown_stuck``) and reported to the caller
        (the HTTP layer surfaces it in the shutdown reply) instead of
        being silently leaked; the journal is then left open, since the
        runaway wave may still have terminal records to write.
        """
        with self._work:
            self._stopping = True
            self._work.notify_all()
        dispatcher = self._dispatcher
        if dispatcher is not None and dispatcher.is_alive():
            dispatcher.join(timeout=self.config.shutdown_join_s)
            if dispatcher.is_alive() and not self._shutdown_stuck:
                self._shutdown_stuck = True
                self.tracer.counters.inc("serve.shutdown_stuck")
        with self._done:
            if self._journal is None:
                while self._queue:
                    job = self._jobs[self._queue.popleft()]
                    self._fail_unstarted(job, "server shutting down")
            self._done.notify_all()
        if (self._journal is not None and not self._shutdown_stuck
                and not self._journal_closed):
            self._journal_closed = True
            self._journal.close()
        return self._shutdown_stuck

    def pause(self) -> None:
        """Hold dispatch (drain control; submissions still queue)."""
        with self._work:
            self._paused = True

    def resume(self) -> None:
        with self._work:
            self._paused = False
            self._work.notify_all()

    def ready(self) -> tuple[bool, str]:
        """Readiness: journal replayed (a constructed server always has)
        and the dispatcher live.  ``(ready, reason)``."""
        if self._stopping:
            return False, "shutting down"
        if self._dispatcher is None:
            return False, "dispatcher not started"
        if not self._dispatcher.is_alive():
            return False, "dispatcher dead"
        return True, "ok"

    # ------------------------------------------------------------------
    def submit(self, requests: list[CompileRequest]) -> list[JobStatus]:
        """Queue a batch; statuses in request order.

        The batch is atomic with respect to backpressure: either every
        genuinely-new job fits in the bounded queue or the whole batch
        is rejected with :class:`QueueFull` (dedup aliases and
        already-retained results never count against the bound).  With
        a journal configured, every job in the batch is durable —
        fsync'd — before this method returns its statuses (and before
        the HTTP layer sends its reply).
        """
        for request in requests:
            request.validate()
        # keys involve a module build + hash; compute outside the lock
        keys = [request.cache_key() for request in requests]
        idents = [_job_ident(request, key)
                  for request, key in zip(requests, keys)]
        with self._work:
            if self._stopping:
                raise QueueFull(len(self._queue), self.config.max_queue,
                                self.config.retry_after_s)
            fresh = {ident for ident in idents
                     if ident not in self._inflight_by_ident
                     and ident not in self._done_by_ident}
            if len(self._queue) + len(fresh) > self.config.max_queue:
                self.tracer.counters.inc("serve.rejected", len(requests))
                raise QueueFull(len(self._queue), self.config.max_queue,
                                self.config.retry_after_s)
            statuses = []
            for request, key, ident in zip(requests, keys, idents):
                job = _Job(id=f"job-{next(self._ids):06d}",
                           request=request, key=key, ident=ident)
                self._jobs[job.id] = job
                self.tracer.counters.inc("serve.submitted")
                if self._journal is not None:
                    # write-ahead: the job exists before anyone is told
                    # about it (one fsync barrier per batch, below)
                    self._journal.submitted(job.id, ident, key,
                                            request.to_json(), sync=False)
                primary_id = self._inflight_by_ident.get(ident)
                if primary_id is not None:
                    job.deduped = True
                    self._waiters_by_ident.setdefault(
                        ident, []).append(job.id)
                    self.tracer.counters.inc("serve.dedup_inflight")
                elif ident in self._done_by_ident:
                    done = self._jobs[self._done_by_ident[ident]]
                    job.deduped = True
                    self._finish(job, _alias_result(done.result, job))
                    self.tracer.counters.inc("serve.dedup_done")
                else:
                    self._inflight_by_ident[ident] = job.id
                    self._queue.append(job.id)
                statuses.append(job.status())
            if self._journal is not None:
                self._journal.sync()
            self._work.notify_all()
            self._done.notify_all()
            return statuses

    # ------------------------------------------------------------------
    def status(self, job_id: str) -> JobStatus:
        with self._lock:
            return self._job(job_id).status()

    def result(self, job_id: str, wait_s: float = 0.0) -> JobResult | None:
        """The job's result, long-polling up to ``wait_s`` seconds.

        ``None`` means "not finished yet" — the HTTP layer maps that to
        202 so clients can poll without treating it as an error.
        """
        deadline = time.monotonic() + wait_s
        with self._done:
            while True:
                job = self._job(job_id)
                if job.result is not None:
                    return job.result
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._done.wait(min(remaining, 0.5))

    def stats(self) -> dict:
        """Queue depth, per-state job counts, counters, disk footprint."""
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            ready, reason = self.ready()
            report = {
                "queue_depth": len(self._queue),
                "jobs": dict(sorted(states.items())),
                "retained_results": len(self._done_by_ident),
                "counters": self.tracer.counters.as_dict(),
                "ready": ready,
                "ready_reason": reason,
                "config": {
                    "jobs": self.config.jobs,
                    "max_queue": self.config.max_queue,
                    "batch": self.config.batch,
                    "cache_max_mb": self.config.cache_max_mb,
                    "max_attempts": self.config.max_attempts,
                },
            }
            if self._journal is not None:
                report["journal"] = self._journal.stats()
        if self.config.use_cache:
            report["cache"] = self._cache_view().stats().row()
        return report

    def _cache_view(self):
        """A stats/prune handle on the shared disk store (no LRU use)."""
        from ..cache import CompileCache, default_cache_dir

        return CompileCache(
            directory=self.config.cache_dir or default_cache_dir(),
            max_disk_mb=self.config.cache_max_mb)

    # ------------------------------------------------------------------
    def _job(self, job_id: str) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(f"unknown or retired job {job_id!r}")
        return job

    def _collect_wave(self) -> list[_Job]:
        """Pop up to ``batch`` dispatchable jobs (lock held).

        Jobs sitting out a retry backoff are skipped in place — their
        queue order is preserved — so one crashed job cannot head-block
        fresh work behind it.
        """
        cfg = self.config
        now = time.monotonic()
        wave: list[_Job] = []
        deferred: list[str] = []
        while self._queue and len(wave) < cfg.batch:
            job = self._jobs[self._queue.popleft()]
            if job.not_before > now:
                deferred.append(job.id)
                continue
            job.state = JOB_RUNNING
            job.started_s = time.time()
            job.attempts += 1
            wave.append(job)
        for job_id in reversed(deferred):
            self._queue.appendleft(job_id)
        return wave

    def _dispatch_loop(self) -> None:
        from ..harness.runner import run_tasks

        cfg = self.config
        while True:
            with self._work:
                while not self._stopping and (self._paused
                                              or not self._queue):
                    self._work.wait(0.5)
                if self._stopping:
                    return
                wave = self._collect_wave()
                if not wave:
                    # everything queued is sitting out a backoff
                    self._work.wait(0.1)
                    continue
                self.tracer.counters.inc("serve.dispatched", len(wave))
            _chaos_point(CHAOS_PRE_DISPATCH)
            if self._journal is not None:
                # charge the attempts before the wave runs: a crash
                # from here on counts against each job's retry budget.
                # A journal write failure (ENOSPC, read-only disk) must
                # fail the wave, never the dispatcher thread — a dead
                # dispatcher strands RUNNING jobs with clients
                # long-polling a queue nothing drains
                try:
                    for job in wave:
                        self._journal.dispatched(job.id, job.attempts,
                                                 sync=False)
                    self._journal.sync()
                except Exception as exc:
                    self.tracer.counters.inc("serve.journal_errors")
                    self.tracer.counters.inc("serve.dispatch_errors")
                    with self._done:
                        for job in wave:
                            self._finish(job, JobResult(
                                job_id=job.id, ok=False,
                                kind=job.request.kind, key=job.key,
                                error=f"journal write failed: {exc!r}"))
                        self._done.notify_all()
                    continue
            _chaos_point(CHAOS_MID_WAVE)
            # the dispatcher must outlive any single wave: an unexpected
            # exception here fails the wave's jobs, never the thread —
            # a dead dispatcher would strand RUNNING jobs and leave
            # clients long-polling a queue nothing drains
            try:
                payloads = [(job.request.to_json(), cfg.use_cache,
                             cfg.cache_dir) for job in wave]
                with self.tracer.span("serve.dispatch", cat="serve",
                                      jobs=len(wave)):
                    # retries=0: the serve layer owns the retry budget
                    # (attempts must be journaled to survive a crash).
                    # cfg.jobs passes through unclamped — the runner caps
                    # workers at the wave size, and jobs>1 must keep
                    # process isolation even for a one-job wave so a
                    # poison job kills a worker, never the daemon
                    outcomes = run_tasks(
                        "api", payloads, jobs=cfg.jobs,
                        timeout_s=cfg.timeout_s, retries=0,
                        tracer=self.tracer)
            except Exception as exc:
                self.tracer.counters.inc("serve.dispatch_errors")
                with self._done:
                    for job in wave:
                        self._finish(job, JobResult(
                            job_id=job.id, ok=False,
                            kind=job.request.kind, key=job.key,
                            error=f"dispatch failed: {exc!r}"))
                    self._done.notify_all()
                continue
            _chaos_point(CHAOS_PRE_FINISH)
            with self._done:
                for job, outcome in zip(wave, outcomes):
                    if not outcome.ok and outcome.crashed:
                        self._handle_crashed(job)
                        continue
                    self._finish(job, JobResult(
                        job_id=job.id, ok=outcome.ok,
                        kind=job.request.kind, key=job.key,
                        result=outcome.value if outcome.ok else None,
                        error=outcome.error,
                        counters=dict(outcome.counters),
                        duration_s=outcome.duration_s,
                        cache_hit=outcome.counters.get("cache.hit", 0) > 0))
                self._done.notify_all()
                self._work.notify_all()
            self._maybe_prune_store()

    def _handle_crashed(self, job: _Job) -> None:
        """Handle a job whose attempt killed its worker (lock held).

        Within budget: re-enqueue with exponential backoff.  Budget
        exhausted: quarantine as FAILED — the job is poison, and
        looping it would keep killing workers.
        """
        if job.attempts < self.config.max_attempts:
            job.state = JOB_QUEUED
            job.started_s = None
            job.not_before = (time.monotonic() + self.config.retry_backoff_s
                              * (2 ** (job.attempts - 1)))
            self._queue.append(job.id)
            self.tracer.counters.inc("serve.retried")
            return
        self.tracer.counters.inc("serve.quarantined")
        self._finish(job, JobResult(
            job_id=job.id, ok=False, kind=job.request.kind, key=job.key,
            error=f"quarantined: job killed its worker on "
                  f"{job.attempts} of {self.config.max_attempts} "
                  f"allowed attempts"))

    def _maybe_prune_store(self) -> None:
        """Quota enforcement between waves, throttled to at most one
        full-store scan per ``prune_interval_s`` (the store may briefly
        overshoot its quota between prunes; that is the trade)."""
        cfg = self.config
        if not cfg.use_cache or cfg.cache_max_mb is None:
            return
        now = time.monotonic()
        if now - self._last_prune_s < cfg.prune_interval_s:
            return
        self._last_prune_s = now
        try:
            self._cache_view().prune()
        except Exception:
            # never let store trouble take the dispatcher down
            self.tracer.counters.inc("serve.prune_errors")

    # both completion paths arrive here with the lock held
    def _finish(self, job: _Job, result: JobResult) -> None:
        job.result = result
        job.state = JOB_DONE if result.ok else JOB_FAILED
        job.finished_s = time.time()
        self.tracer.counters.inc(
            "serve.completed" if result.ok else "serve.failed")
        if self._journal is not None and not self._journal.closed:
            try:
                self._journal.finished(job.id, result.to_json(), result.ok)
            except Exception:
                # an unrecorded terminal means the job re-runs on replay
                # (and completes from cache) — a degraded outcome, but
                # never a dead dispatcher or an unserved completion
                self.tracer.counters.inc("serve.journal_errors")
        if result.ok and job.ident not in self._done_by_ident:
            self._done_by_ident[job.ident] = job.id
        if self._inflight_by_ident.get(job.ident) == job.id:
            del self._inflight_by_ident[job.ident]
            for waiter_id in self._waiters_by_ident.pop(job.ident, []):
                waiter = self._jobs[waiter_id]
                self._finish(waiter, _alias_result(result, waiter))
        self._retired.append(job.id)
        self._trim_retained()

    def _fail_unstarted(self, job: _Job, reason: str) -> None:
        self._finish(job, JobResult(
            job_id=job.id, ok=False, kind=job.request.kind, key=job.key,
            error=reason))

    def _trim_retained(self) -> None:
        """Bound finished-job memory: retire oldest records first."""
        while len(self._retired) > self.config.keep_results:
            job_id = self._retired.popleft()
            job = self._jobs.pop(job_id, None)
            if (job is not None
                    and self._done_by_ident.get(job.ident) == job_id):
                del self._done_by_ident[job.ident]


# ----------------------------------------------------------------------
# the HTTP transport
# ----------------------------------------------------------------------
class ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    core: CompileServer


#: Hard cap on one long-poll's server-side wait: a client asking for
#: more (``?wait=inf``, ``?wait=1e9``) pins an HTTP handler thread, so
#: the server clamps and lets the client re-poll.
MAX_WAIT_S = 60.0


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # quiet by default; the CLI flips this on with --verbose
    def log_message(self, fmt, *args):
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    # ------------------------------------------------------------------
    def _reply(self, code: int, obj, headers: dict | None = None) -> None:
        body = protocol.encode(obj)
        self.send_response(code)
        self.send_header("Content-Type", protocol.CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _body(self):
        length = int(self.headers.get("Content-Length", 0))
        return protocol.decode(self.rfile.read(length))

    @property
    def core(self) -> CompileServer:
        return self.server.core  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def do_POST(self) -> None:
        path = urlparse(self.path).path
        if path == protocol.SUBMIT:
            try:
                body = self._body() or {}
                if not isinstance(body, dict) \
                        or not isinstance(body.get("jobs", []), list):
                    raise ApiError("submit body must be an object "
                                   "with a 'jobs' list")
                requests = [request_from_json(obj)
                            for obj in body.get("jobs", [])]
                statuses = self.core.submit(requests)
            except QueueFull as exc:
                self._reply(protocol.BUSY,
                            {"error": str(exc),
                             "retry_after_s": exc.retry_after_s},
                            {"Retry-After": f"{exc.retry_after_s:g}"})
            except (ApiError, ValueError) as exc:
                self._reply(protocol.BAD_REQUEST, {"error": str(exc)})
            else:
                self._reply(protocol.OK, {
                    "job_ids": [s.job_id for s in statuses],
                    "statuses": [s.to_json() for s in statuses]})
            return
        if path == protocol.SHUTDOWN:
            # drain synchronously so the reply can report a dispatcher
            # that failed to stop instead of silently leaking it
            stuck = self.core.shutdown()
            self._reply(protocol.OK,
                        {"ok": True, "dispatcher_stuck": stuck})
            threading.Thread(target=self.server.shutdown,
                             daemon=True).start()
            return
        self._reply(protocol.NOT_FOUND, {"error": f"no route {path!r}"})

    def do_GET(self) -> None:
        url = urlparse(self.path)
        if url.path == protocol.STATS:
            self._reply(protocol.OK, self.core.stats())
            return
        if url.path == protocol.HEALTH:
            # liveness: the process answers; nothing about readiness
            self._reply(protocol.OK, {"ok": True})
            return
        if url.path == protocol.READY:
            ready, reason = self.core.ready()
            self._reply(protocol.OK if ready else protocol.UNAVAILABLE,
                        {"ready": ready, "reason": reason})
            return
        if url.path.startswith(protocol.JOBS + "/"):
            parts = url.path[len(protocol.JOBS) + 1:].split("/")
            try:
                if len(parts) == 1:
                    self._reply(protocol.OK,
                                self.core.status(parts[0]).to_json())
                    return
                if len(parts) == 2 and parts[1] == "result":
                    raw = parse_qs(url.query).get("wait", ["0"])[0]
                    try:
                        wait = float(raw)
                    except ValueError:
                        wait = float("nan")
                    if wait != wait:             # unparsable or NaN
                        self._reply(protocol.BAD_REQUEST,
                                    {"error": "wait must be a finite "
                                              f"number, got {raw!r}"})
                        return
                    wait = max(0.0, min(wait, MAX_WAIT_S))
                    result = self.core.result(parts[0], wait_s=wait)
                    if result is None:
                        self._reply(protocol.ACCEPTED,
                                    self.core.status(parts[0]).to_json())
                    else:
                        self._reply(protocol.OK, result.to_json())
                    return
            except UnknownJob as exc:
                self._reply(protocol.NOT_FOUND, {"error": str(exc)})
                return
        self._reply(protocol.NOT_FOUND, {"error": f"no route {url.path!r}"})


def start_server(config: ServeConfig | None = None,
                 tracer: Tracer | None = None
                 ) -> tuple[CompileServer, ServiceHTTPServer]:
    """Bind and start the service; ``(core, httpd)``.

    The HTTP listener runs on a daemon thread; the returned ``httpd``
    reports the bound address (``httpd.server_address``), which matters
    when ``config.port`` is 0 (tests bind an ephemeral port).  Stop with
    ``core.shutdown(); httpd.shutdown()``.
    """
    cfg = config or ServeConfig()
    core = CompileServer(cfg, tracer).start()
    httpd = ServiceHTTPServer((cfg.host, cfg.port), _Handler)
    httpd.core = core
    threading.Thread(target=httpd.serve_forever, name="serve-http",
                     daemon=True).start()
    return core, httpd


def serve_forever(config: ServeConfig | None = None,
                  verbose: bool = False) -> int:
    """The CLI entry: run in the foreground until a signal or /shutdown.

    SIGTERM and SIGINT both trigger a graceful drain: the listener
    stops accepting, the dispatcher finishes (and journals) its
    in-flight wave, queued jobs stay durable in the journal, and the
    process exits 0 — so a supervisor's ordinary stop/restart cycle
    never loses accepted work.
    """
    cfg = config or ServeConfig()
    core = CompileServer(cfg).start()
    httpd = ServiceHTTPServer((cfg.host, cfg.port), _Handler)
    httpd.core = core
    httpd.verbose = verbose
    host, port = httpd.server_address[:2]
    print(f"repro serve: listening on http://{host}:{port} "
          f"(queue {cfg.max_queue}, batch {cfg.batch}, jobs {cfg.jobs}, "
          f"cache {'off' if not cfg.use_cache else cfg.cache_dir or 'default'}, "
          f"journal {cfg.journal_path or 'off'})",
          flush=True)
    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    previous: dict[int, object] = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(ValueError):   # non-main-thread embed
            previous[sig] = signal.signal(sig, _on_signal)
    listener = threading.Thread(target=httpd.serve_forever,
                                name="serve-http", daemon=True)
    listener.start()
    try:
        # wake regularly: the /shutdown endpoint stops the listener
        # thread, and signals set the event
        while not stop.is_set() and listener.is_alive():
            stop.wait(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        for sig, handler in previous.items():
            with contextlib.suppress(ValueError):
                signal.signal(sig, handler)
        core.shutdown()
        httpd.shutdown()
        httpd.server_close()
    return 0
