"""The compile service: ``repro serve`` and its clients.

The daemon (:mod:`.server`) is a bounded, crash-safe job queue over the
work-queue executor and the content-addressed compile cache; its
durability layer (:mod:`.journal`) is a write-ahead JSONL job journal a
restarted daemon replays; the wire protocol (:mod:`.protocol`) is HTTP
+ the :mod:`repro.api` schema; the client (:mod:`.client`) is what
``repro submit`` and ``repro.api.Client`` use.  See DESIGN.md's
service-layer diagram for how the pieces stack.
"""

from .client import Client, ServerBusy, ServerError, ServerUnavailable
from .journal import JobJournal, JournalError
from .server import (CHAOS_POINTS, CompileServer, QueueFull, ServeConfig,
                     UnknownJob, serve_forever, start_server)

__all__ = [
    "Client", "ServerBusy", "ServerError", "ServerUnavailable",
    "JobJournal", "JournalError",
    "CHAOS_POINTS", "CompileServer", "QueueFull", "ServeConfig",
    "UnknownJob", "serve_forever", "start_server",
]
