"""Automatic inline substitution of subroutines.

The paper relies on inlining (plus a clever register discipline) instead of
hardware procedure-call support: "We decided to rely on the compiler to be
clever with its use of registers and procedure inlining."  This pass
substitutes small, non-recursive callees at their call sites, renaming every
callee register and block to keep the caller's name space clean.
"""

from __future__ import annotations

import itertools

from ..ir import (Function, Module, Opcode, Operation, VReg, make_jmp)
from .transforms import clone_operations, move_op_for_class

_inline_counter = itertools.count()


def _is_recursive(module: Module, name: str,
                  seen: frozenset[str] = frozenset()) -> bool:
    """Does ``name`` (transitively) call itself?"""
    if name in seen:
        return True
    func = module.functions.get(name)
    if func is None:
        return False
    callees = {op.callee for op in func.operations() if op.is_call}
    return any(_is_recursive(module, c, seen | {name}) for c in callees if c)


def inline_call(func: Function, module: Module, block_name: str,
                call_index: int) -> None:
    """Inline the CALL at ``block.ops[call_index]`` into ``func``.

    The containing block is split at the call; the callee's blocks are
    cloned in with fresh register/block names; parameters become moves and
    returns become a move (when a value is produced) plus a jump to the
    continuation.
    """
    block = func.block(block_name)
    call = block.ops[call_index]
    callee = module.function(call.callee)
    tag = next(_inline_counter)

    # fresh names for every callee register and block
    rename = {reg: func.fresh_vreg(reg.cls, f"inl{tag}.{reg.name}")
              for reg in callee.all_vregs()}
    label_map = {bname: func.fresh_block_name(f"inl{tag}.{bname}")
                 for bname in callee.blocks}

    cont_name = func.fresh_block_name(f"{block_name}.cont")
    cont = func.add_block(cont_name)
    cont.ops = block.ops[call_index + 1:]

    block.ops = block.ops[:call_index]
    for param, arg in zip(callee.params, call.srcs):
        block.append(Operation(move_op_for_class(param.cls),
                               rename[param], [arg]))
    block.append(make_jmp(label_map[callee.entry.name]))

    for bname, cblock in callee.blocks.items():
        new_block = func.add_block(label_map[bname])
        for op in clone_operations(cblock.ops, rename, label_map):
            if op.opcode is Opcode.RET:
                if call.dest is not None:
                    if not op.srcs:
                        raise AssertionError(
                            f"void return feeding a valued call: {call}")
                    new_block.append(Operation(
                        move_op_for_class(call.dest.cls), call.dest,
                        [op.srcs[0]]))
                new_block.append(make_jmp(cont_name))
            else:
                new_block.append(op)


class Inliner:
    """Inline small non-recursive callees, bottom-up by call site.

    Args:
        max_callee_ops: only callees at most this many operations are
            substituted (the unrolling/inlining growth heuristics the paper
            says were "tuned to avoid undue code growth").
        max_growth_ops: stop once the function has grown by this many ops.
    """

    name = "inline"

    def __init__(self, max_callee_ops: int = 48,
                 max_growth_ops: int = 2000) -> None:
        self.max_callee_ops = max_callee_ops
        self.max_growth_ops = max_growth_ops

    def run(self, func: Function, module: Module) -> bool:
        initial = func.op_count()
        changed = False
        progress = True
        while progress and func.op_count() - initial < self.max_growth_ops:
            progress = False
            for bname in list(func.blocks):
                block = func.block(bname)
                for i, op in enumerate(block.ops):
                    if not op.is_call or op.callee == func.name:
                        continue
                    callee = module.functions.get(op.callee)
                    if callee is None:
                        continue
                    if callee.op_count() > self.max_callee_ops:
                        continue
                    if _is_recursive(module, op.callee):
                        continue
                    inline_call(func, module, bname, i)
                    changed = True
                    progress = True
                    break
                if progress:
                    break
        return changed
