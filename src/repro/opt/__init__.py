"""Classical optimizations, loop unrolling, and inlining.

``classical_pipeline`` assembles the paper's pre-scheduling pass order;
individual passes can be composed freely through :class:`PassManager`.
"""

from .constant_fold import ConstantFold
from .copyprop import CopyPropagation
from .cse import LocalCSE
from .dce import DeadCodeElimination
from .inline import Inliner, inline_call
from .licm import LoopInvariantCodeMotion
from .pass_manager import PassManager, classical_pipeline
from .strength import InductionVariableSimplify
from .transforms import (clone_operations, ensure_preheader,
                         insert_block_before)
from .unroll import LoopUnroll, UnrollReport

__all__ = [
    "ConstantFold", "CopyPropagation", "LocalCSE", "DeadCodeElimination",
    "Inliner", "inline_call", "LoopInvariantCodeMotion",
    "PassManager", "classical_pipeline", "InductionVariableSimplify",
    "clone_operations", "ensure_preheader", "insert_block_before",
    "LoopUnroll", "UnrollReport",
]
