"""Local common-subexpression elimination via per-block value numbering.

Pure operations with identical opcode and value-numbered operands reuse the
earlier result.  Loads participate too, guarded by a per-block *memory
generation* counter bumped at stores and calls, so a load is only reused
when no store can have intervened.
"""

from __future__ import annotations

from ..ir import (Function, Imm, Module, Opcode, Operation, Symbol, VReg)

_UNSAFE = (Opcode.CALL, Opcode.NOP)


class LocalCSE:
    """Per-block value-numbering CSE."""

    name = "local-cse"

    def run(self, func: Function, module: Module) -> bool:
        changed = False
        for block in func.blocks.values():
            changed |= self._run_block(block)
        return changed

    def _run_block(self, block) -> bool:
        changed = False
        version: dict[VReg, int] = {}
        mem_generation = 0
        table: dict[tuple, VReg] = {}

        def operand_key(src):
            if isinstance(src, VReg):
                return ("r", src.name, src.cls.value, version.get(src, 0))
            if isinstance(src, Imm):
                return ("i", repr(src.value), src.cls.value)
            if isinstance(src, Symbol):
                return ("s", src.name)
            return ("?", repr(src))

        for i, op in enumerate(block.ops):
            info = op.info
            eligible = (op.dest is not None
                        and not info.side_effect
                        and not op.is_terminator
                        and op.opcode not in _UNSAFE
                        and not op.is_store)
            key = None
            if eligible:
                srcs = list(op.srcs)
                if info.commutative:
                    srcs = sorted(srcs, key=lambda s: repr(operand_key(s)))
                key_parts = [op.opcode.value] + [operand_key(s) for s in srcs]
                if op.is_load:
                    key_parts.append(("mem", mem_generation))
                key = tuple(key_parts)
                # table entries are dropped when their register is redefined,
                # and operand versions are baked into the key, so a hit is
                # always still valid here
                prior = table.get(key)
                if prior is not None:
                    mov = {"i": Opcode.MOV, "f": Opcode.FMOV,
                           "p": Opcode.PMOV}[op.dest.cls.value]
                    block.ops[i] = Operation(mov, op.dest, [prior])
                    op = block.ops[i]
                    changed = True
                    key = None     # keep the existing mapping to `prior`

            if op.dest is not None:
                version[op.dest] = version.get(op.dest, 0) + 1
                # invalidate table entries that named the redefined register
                stale = [k for k, v in table.items() if v == op.dest]
                for k in stale:
                    del table[k]
            if key is not None:
                # record the value only after the redefinition bookkeeping,
                # or the entry would be removed as stale immediately
                table[key] = op.dest
            if op.is_store or op.is_call:
                mem_generation += 1
        return changed
