"""Induction-variable simplification (strength reduction).

Rewrites ``t = iv << c`` / ``t = iv * m`` inside a counted loop into an
additive recurrence: ``t`` is initialised in the preheader and bumped by a
constant after each IV update, removing a multiply/shift from the loop body
— one of the "classical" optimizations the paper lists.
"""

from __future__ import annotations

from ..analysis import (CFG, compute_liveness, find_basic_ivs, find_loops)
from ..ir import Function, Imm, Module, Opcode, Operation, VReg, wrap32
from .transforms import ensure_preheader


class InductionVariableSimplify:
    """Strength-reduce derived induction variables in counted loops."""

    name = "iv-simplify"

    def run(self, func: Function, module: Module) -> bool:
        changed = False
        for loop in find_loops(func):
            changed |= self._reduce_loop(func, loop)
        return changed

    def _reduce_loop(self, func: Function, loop) -> bool:
        ivs = {iv.reg: iv for iv in find_basic_ivs(func, loop)}
        if not ivs:
            return False

        def_count: dict[VReg, int] = {}
        for op in func.operations():
            if op.dest is not None:
                def_count[op.dest] = def_count.get(op.dest, 0) + 1

        liveness = compute_liveness(func)

        candidates = []
        for bname in loop.body:
            block = func.block(bname)
            for index, op in enumerate(block.body):
                delta = self._match(op, ivs)
                if delta is None:
                    continue
                iv, step_delta = delta
                if def_count.get(op.dest, 0) != 1:
                    continue
                update = ivs[iv].update_op
                if update not in block.ops:
                    continue        # IV updated in a different block
                update_index = block.ops.index(update)
                if index >= update_index:
                    continue        # def after the IV update: values differ
                def_index = block.ops.index(op)
                if not self._uses_confined(func, block, op.dest,
                                           def_index, update_index):
                    continue
                if self._live_at_exits(func, loop, op.dest, liveness):
                    continue
                candidates.append((bname, op, iv, step_delta, update))

        if not candidates:
            return False

        pre_name = ensure_preheader(func, loop)
        pre = func.block(pre_name)
        for bname, op, iv, step_delta, update in candidates:
            block = func.block(bname)
            # initialise t from the IV's entry value, in the preheader
            pre.insert(len(pre.ops) - 1, op.copy())
            # remove the in-loop def; bump t right after the IV update
            block.ops.remove(op)
            bump = Operation(Opcode.ADD, op.dest,
                             [op.dest, Imm(wrap32(step_delta))])
            block.ops.insert(block.ops.index(update) + 1, bump)
        return True

    # ------------------------------------------------------------------
    @staticmethod
    def _match(op: Operation, ivs) -> tuple[VReg, int] | None:
        """Match t = iv << c  or  t = iv * m; return (iv, per-step delta)."""
        if op.opcode is Opcode.SHL:
            a, b = op.srcs
            if isinstance(a, VReg) and a in ivs and isinstance(b, Imm):
                return a, ivs[a].step << (int(b.value) & 31)
        elif op.opcode is Opcode.MUL:
            a, b = op.srcs
            if isinstance(a, VReg) and a in ivs and isinstance(b, Imm):
                return a, ivs[a].step * int(b.value)
            if isinstance(b, VReg) and b in ivs and isinstance(a, Imm):
                return b, ivs[b].step * int(a.value)
        return None

    @staticmethod
    def _uses_confined(func: Function, block, reg: VReg,
                       def_index: int, update_index: int) -> bool:
        """All uses of reg sit in ``block`` between its def and the IV update.

        Uses before the def would have read the *previous* iteration's value
        and uses after the update would need the *next* one; both would
        change meaning under the additive-recurrence rewrite.
        """
        for bname in func.blocks:
            blk = func.block(bname)
            for i, op in enumerate(blk.ops):
                if reg in op.reg_srcs():
                    if blk is not block or not (def_index < i < update_index):
                        return False
        return True

    @staticmethod
    def _live_at_exits(func: Function, loop, reg: VReg, liveness) -> bool:
        return any(reg in liveness.live_in.get(outside, set())
                   for _, outside in loop.exits)
