"""Loop-invariant code motion.

Hoists pure, non-trapping operations whose operands are loop-invariant into
a preheader.  To stay sound in the non-SSA IR, a hoisted op's destination
must be defined exactly once in the whole function (so hoisting cannot
clobber another value) — the builder's single-assignment temporaries
qualify, which is where the paper-relevant wins (address and bound
computations) live.
"""

from __future__ import annotations

from ..analysis import CFG, compute_liveness, find_loops, loop_invariant_regs
from ..ir import Function, Module, VReg
from .transforms import ensure_preheader


class LoopInvariantCodeMotion:
    """Hoist invariant pure ops to loop preheaders (innermost first)."""

    name = "licm"

    def run(self, func: Function, module: Module) -> bool:
        changed = False
        # Innermost loops first, so invariants bubble outward.  Loop
        # structures are re-discovered after every successful hoist: a new
        # inner preheader belongs to the enclosing loop's body, and hoisting
        # against a stale body set could lift a use above its def.
        progress = True
        while progress:
            progress = False
            loops = sorted(find_loops(func), key=lambda lp: -lp.depth)
            for loop in loops:
                if self._hoist_loop(func, loop):
                    changed = True
                    progress = True
                    break
        return changed

    def _hoist_loop(self, func: Function, loop) -> bool:
        def_count: dict[VReg, int] = {}
        for op in func.operations():
            if op.dest is not None:
                def_count[op.dest] = def_count.get(op.dest, 0) + 1

        invariant = loop_invariant_regs(func, loop)
        hoistable = []
        for bname in sorted(loop.body):
            block = func.block(bname)
            for op in block.body:
                if op.dest is None or op.has_side_effect or op.is_memory \
                        or op.is_call or op.can_trap:
                    continue
                if def_count.get(op.dest, 0) != 1:
                    continue
                if all(src in invariant or src not in def_count
                       for src in op.reg_srcs()) and \
                        all(src in invariant for src in op.reg_srcs()):
                    hoistable.append((bname, op))

        if not hoistable:
            return False

        pre_name = ensure_preheader(func, loop)
        pre = func.block(pre_name)
        # Hoisting may enable hoisting of dependents; iterate inside this
        # loop until stable.
        moved = True
        any_moved = False
        pending = list(hoistable)
        while moved and pending:
            moved = False
            for bname, op in list(pending):
                # operands must now all be defined outside the loop
                still_inside = any(
                    self._defined_in_loop(func, loop, src)
                    for src in op.reg_srcs())
                if still_inside:
                    continue
                func.block(bname).ops.remove(op)
                pre.insert(len(pre.ops) - 1, op)   # before the jmp
                pending.remove((bname, op))
                moved = True
                any_moved = True
        return any_moved

    @staticmethod
    def _defined_in_loop(func: Function, loop, reg: VReg) -> bool:
        for bname in loop.body:
            for op in func.block(bname).ops:
                if op.dest == reg:
                    return True
        return False
