"""Automatic loop unrolling.

The paper: "Automatic loop unrolling and automatic inline substitution of
subroutines are both incorporated in Multiflow's compilers; the compiler
heuristically determines the amount of unrolling ... substantially
increasing the parallelism that can be exploited."

This pass unrolls *counted* loops of the canonical two-block shape

    head:  p = cmp(iv, bound); br p, body, exit
    body:  ...work...; iv = iv + step; ...; jmp head

into a k-wide main loop plus the original loop as the remainder:

    uhead: t = iv + (k-1)*step; p' = cmp(t, bound); br p', ubody, head
    ubody: copy0 ... copy(k-1); all IVs += k*step; jmp uhead
    head:  (original, handles the last < k iterations)

Every *basic induction variable* of the loop (the counter, plus any byte
offsets materialised by strength reduction) is treated symmetrically: in
copy *c* its uses are rewritten to a fresh ``iv + c*step`` register — k
independent 1-beat adds the scheduler can issue in parallel — and a single
merged ``iv += k*step`` closes the block.  Block-local temporaries are
renamed per copy; genuinely loop-carried registers (accumulators) keep
their names, since the serial chain they represent is semantic.
Memory-reference annotations are shifted by ``coeff(v) * c * step(v)`` for
every annotation variable ``v`` naming one of the loop's IVs, so the
disambiguator keeps exact knowledge of each copy's address.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import (CFG, Loop, compute_liveness, find_basic_ivs,
                        find_loops, match_counted_loop)
from ..ir import (Function, Imm, Label, Module, Opcode, Operation, RegClass,
                  VReg, make_jmp, wrap32)
from .transforms import clone_operations, insert_block_before

#: Compares usable as an unroll guard, keyed by (opcode, iv_operand_index):
#: the continue-condition must become monotonically *harder* to satisfy as
#: the IV advances in its step direction.
_GUARDS_POS_STEP = {(Opcode.CMPLT, 0), (Opcode.CMPLE, 0),
                    (Opcode.CMPGT, 1), (Opcode.CMPGE, 1)}
_GUARDS_NEG_STEP = {(Opcode.CMPGT, 0), (Opcode.CMPGE, 0),
                    (Opcode.CMPLT, 1), (Opcode.CMPLE, 1)}


@dataclass
class UnrollReport:
    """What the unroller did to one function (for tests and code-size data)."""

    loops_unrolled: int = 0
    copies_added: int = 0


class LoopUnroll:
    """Unroll counted loops by a fixed factor or a size heuristic.

    Args:
        factor: unroll factor; 0 selects automatically from body size
            (8 for tiny bodies, then 4, then 2 — the heuristic knob the
            paper says was "tuned to avoid undue code growth").
        max_body_ops: loops with larger bodies are left alone.
    """

    name = "loop-unroll"

    def __init__(self, factor: int = 0, max_body_ops: int = 64,
                 split_accumulators: bool = True,
                 reassociate_float: bool = False) -> None:
        self.factor = factor
        self.max_body_ops = max_body_ops
        #: split integer reduction accumulators (``s = s + x``) into one
        #: partial per unrolled copy, combined at loop exit — breaks the
        #: serial chain that otherwise pins reductions at 1 op/latency.
        #: Exact for integers (associative).
        self.split_accumulators = split_accumulators
        #: also split FADD accumulators.  Float addition is not
        #: associative, so this changes results in the last bits — off by
        #: default; the Multiflow compilers offered the same trade under a
        #: switch.
        self.reassociate_float = reassociate_float
        self.last_report = UnrollReport()
        # headers already unrolled by this pass instance: the remainder loop
        # keeps the original header name and must not be unrolled again on a
        # later pipeline round
        self._unrolled: set[tuple[str, str]] = set()

    def run(self, func: Function, module: Module) -> bool:
        self.last_report = UnrollReport()
        changed = False
        for loop in list(find_loops(func)):
            if self._unroll_one(func, loop):
                changed = True
        return changed

    # ------------------------------------------------------------------
    def _choose_factor(self, body_ops: int) -> int:
        if self.factor:
            return self.factor
        if body_ops <= 10:
            return 8
        if body_ops <= 24:
            return 4
        if body_ops <= self.max_body_ops:
            return 2
        return 1

    def _unroll_one(self, func: Function, loop: Loop) -> bool:
        if (func.name, loop.header) in self._unrolled:
            return False
        shape = self._match_shape(func, loop)
        if shape is None:
            return False
        head_name, body_name, tc = shape
        head = func.block(head_name)
        body = func.block(body_name)
        factor = self._choose_factor(len(body.body))
        if factor <= 1 or len(body.body) * factor > 4 * self.max_body_ops:
            return False
        if head_name == func.entry.name:
            return False

        # --- the loop's induction variables ----------------------------
        ivs = find_basic_ivs(func, loop)
        iv_regs = {iv.reg for iv in ivs}
        steps = {iv.reg: iv.step for iv in ivs}
        updates = {iv.reg: iv.update_op for iv in ivs}
        primary = tc.iv.reg
        if primary not in iv_regs:
            return False
        # every IV update must live in the body block, and no op may read an
        # IV after its update (it would see the advanced value)
        for reg, update in updates.items():
            if update not in body.ops:
                return False
            update_index = body.ops.index(update)
            for later in body.ops[update_index + 1:]:
                if reg in later.reg_srcs() and later is not update:
                    return False

        # --- guard-direction check --------------------------------------
        compare = tc.compare_op
        step = steps[primary]
        iv_index = next(
            (i for i, s in enumerate(compare.srcs) if s == primary), None)
        if iv_index is None:
            return False
        guards = _GUARDS_POS_STEP if step > 0 else _GUARDS_NEG_STEP
        if (compare.opcode, iv_index) not in guards:
            return False
        bound = compare.srcs[1 - iv_index]
        if isinstance(bound, VReg) and self._defined_in(func, loop, bound):
            return False
        # head body will be duplicated into uhead: must be pure
        if any(op.is_memory or op.is_call or op.has_side_effect or op.can_trap
               for op in head.body):
            return False
        # a head-defined register read in the body would reach the copies
        # as the uhead clone's value — computed from the probe IV, not the
        # copy's iteration; such loops are left alone
        head_defs = {op.dest for op in head.body if op.dest is not None}
        if head_defs and any(src in head_defs
                             for op in body.ops for src in op.reg_srcs()):
            return False
        if head.terminator.labels[0].name != body_name:
            return False

        # --- classify body registers ------------------------------------
        liveness = compute_liveness(func)
        carried = set(liveness.live_in[head_name]) - iv_regs
        locals_: set[VReg] = set()
        for op in body.body:
            if op.dest is not None and op.dest not in carried \
                    and op.dest not in iv_regs:
                locals_.add(op.dest)

        # --- reduction accumulators eligible for splitting ----------------
        reductions = self._find_reductions(func, head, body, carried) \
            if self.split_accumulators else {}

        # --- build the unrolled blocks -----------------------------------
        uhead_name = func.fresh_block_name(f"{head_name}.u{factor}h")
        ubody_name = func.fresh_block_name(f"{head_name}.u{factor}b")
        uhead = insert_block_before(func, uhead_name, head_name)
        ubody = insert_block_before(func, ubody_name, head_name)

        probe = func.fresh_vreg(RegClass.INT, f"{primary.name}.probe")
        uhead.append(Operation(Opcode.ADD, probe,
                               [primary, Imm(wrap32((factor - 1) * step))]))
        for op in clone_operations(head.body, rename={}):
            op.replace_src(primary, probe)
            uhead.append(op)
        uterm = head.terminator.copy()
        exit_label = head_name
        uhead.append(uterm)

        partials: dict[VReg, list[VReg]] = {
            reg: [reg] + [func.fresh_vreg(reg.cls, f"{reg.name}.acc{c}")
                          for c in range(1, factor)]
            for reg in reductions}

        work_ops = [op for op in body.body
                    if op not in updates.values()]
        for c in range(factor):
            rename = {reg: func.fresh_vreg(reg.cls, f"{reg.name}.u{c}")
                      for reg in locals_}
            if c > 0:
                for reg, parts in partials.items():
                    rename[reg] = parts[c]
            clones = clone_operations(work_ops, rename)
            iv_copies: dict[VReg, VReg] = {}
            if c > 0:
                used_here = set()
                for op in clones:
                    used_here.update(op.reg_srcs())
                for reg in iv_regs & used_here:
                    copy_reg = func.fresh_vreg(
                        reg.cls, f"{reg.name}.it{c}")
                    ubody.append(Operation(
                        Opcode.ADD, copy_reg,
                        [reg, Imm(wrap32(c * steps[reg]))]))
                    iv_copies[reg] = copy_reg
            iv_names = {reg.name: steps[reg] for reg in iv_regs}
            for op in clones:
                for reg, copy_reg in iv_copies.items():
                    op.replace_src(reg, copy_reg)
                if op.memref is not None and c > 0:
                    shift = sum(coeff * c * iv_names[var]
                                for var, coeff in op.memref.coeffs
                                if var in iv_names)
                    if shift:
                        op.memref = op.memref.shifted(shift)
                ubody.append(op)
            self.last_report.copies_added += 1

        for reg in sorted(iv_regs, key=lambda r: r.name):
            ubody.append(Operation(
                Opcode.ADD, reg, [reg, Imm(wrap32(factor * steps[reg]))]))
        ubody.append(make_jmp(uhead_name))

        # --- accumulator splitting plumbing -------------------------------
        entry_name = uhead_name
        combine_name = None
        if partials:
            setup_name = func.fresh_block_name(f"{head_name}.u{factor}s")
            setup = insert_block_before(func, setup_name, uhead_name)
            for reg, parts in partials.items():
                init = Imm(0.0, RegClass.FLT) if reg.cls is RegClass.FLT \
                    else Imm(0)
                mov = Opcode.FMOV if reg.cls is RegClass.FLT else Opcode.MOV
                for part in parts[1:]:
                    setup.append(Operation(mov, part, [init]))
            setup.append(make_jmp(uhead_name))
            entry_name = setup_name

            combine_name = func.fresh_block_name(f"{head_name}.u{factor}c")
            combine = insert_block_before(func, combine_name, head_name)
            for reg, parts in partials.items():
                opcode = reductions[reg]
                for part in parts[1:]:
                    combine.append(Operation(opcode, reg, [reg, part]))
            combine.append(make_jmp(head_name))
            exit_label = combine_name
        uterm.labels = (Label(ubody_name), Label(exit_label))

        # --- redirect outside entries to the unrolled loop ----------------
        cfg = CFG.build(func)
        internal = {uhead_name, ubody_name, entry_name, combine_name}
        for pred in list(cfg.preds[head_name]):
            if pred not in loop.body and pred not in internal:
                func.block(pred).retarget(head_name, entry_name)

        self.last_report.loops_unrolled += 1
        self._unrolled.add((func.name, head_name))
        self._unrolled.add((func.name, uhead_name))
        return True

    # ------------------------------------------------------------------
    def _find_reductions(self, func: Function, head, body,
                         carried: set[VReg]) -> dict[VReg, Opcode]:
        """Loop-carried accumulators safe to split into partials.

        Eligibility: the register's only appearance in the loop is its own
        single update ``r = op(r, x)`` with an associative op (integer ADD
        always; FADD only when reassociation is enabled).
        """
        out: dict[VReg, Opcode] = {}
        for reg in carried:
            if reg.cls is RegClass.INT:
                wanted = Opcode.ADD
            elif reg.cls is RegClass.FLT and self.reassociate_float:
                wanted = Opcode.FADD
            else:
                continue
            defs = [op for op in body.body if op.dest == reg]
            if len(defs) != 1 or defs[0].opcode is not wanted:
                continue
            update = defs[0]
            operands = [s for s in update.srcs if s == reg]
            if len(operands) != 1:
                continue
            used_elsewhere = any(
                reg in op.reg_srcs()
                for op in body.ops if op is not update)
            used_in_head = any(reg in op.reg_srcs() for op in head.ops)
            if used_elsewhere or used_in_head:
                continue
            out[reg] = wanted
        return out

    # ------------------------------------------------------------------
    def _match_shape(self, func: Function, loop: Loop):
        """The canonical two-block counted loop, or None."""
        if len(loop.body) != 2 or len(loop.latches) != 1:
            return None
        tc = match_counted_loop(func, loop)
        if tc is None:
            return None
        body_name = loop.latches[0]
        if body_name == loop.header:
            return None
        body = func.block(body_name)
        term = body.terminator
        if term is None or term.opcode is not Opcode.JMP \
                or term.labels[0].name != loop.header:
            return None
        if any(op.is_call for op in body.body):
            return None
        return loop.header, body_name, tc

    @staticmethod
    def _defined_in(func: Function, loop: Loop, reg: VReg) -> bool:
        return any(op.dest == reg
                   for bname in loop.body
                   for op in func.block(bname).ops)
