"""Copy propagation: local (within blocks) plus a global single-def pass.

The builder front end produces many single-use temporaries; propagating
copies both shortens dependence chains for the scheduler and exposes more
constant folding.
"""

from __future__ import annotations

from ..ir import (Function, Imm, Module, Opcode, Operation, Symbol, VReg)

_COPY_OPCODES = (Opcode.MOV, Opcode.FMOV, Opcode.PMOV)


def _is_copy(op: Operation) -> bool:
    return (op.opcode in _COPY_OPCODES
            and isinstance(op.srcs[0], (Imm, VReg, Symbol)))


class CopyPropagation:
    """Forward-propagate MOV sources into uses."""

    name = "copy-propagation"

    def run(self, func: Function, module: Module) -> bool:
        changed = self._local(func)
        changed |= self._global_single_def(func)
        return changed

    # ------------------------------------------------------------------
    def _local(self, func: Function) -> bool:
        """Per-block copy propagation with kill-on-redefine."""
        changed = False
        for block in func.blocks.values():
            available: dict[VReg, object] = {}
            for op in block.ops:
                for i, src in enumerate(op.srcs):
                    if isinstance(src, VReg) and src in available:
                        op.srcs[i] = available[src]
                        changed = True
                if op.dest is not None:
                    dest = op.dest
                    # the new def kills copies reading or writing dest
                    available.pop(dest, None)
                    for key in [k for k, v in available.items() if v == dest]:
                        del available[key]
                    if _is_copy(op) and op.srcs[0] != dest:
                        available[dest] = op.srcs[0]
        return changed

    # ------------------------------------------------------------------
    def _global_single_def(self, func: Function) -> bool:
        """Propagate copies whose source can never change.

        Safe cases: the copied register has exactly one def in the whole
        function, and the copy source is an immediate, a symbol, a parameter
        that is never redefined, or another single-def register.  Because the
        source value is immutable over the whole execution, every use of the
        destination may read the source directly regardless of control flow.
        """
        def_count: dict[VReg, int] = {}
        def_op: dict[VReg, Operation] = {}
        for op in func.operations():
            if op.dest is not None:
                def_count[op.dest] = def_count.get(op.dest, 0) + 1
                def_op[op.dest] = op

        def immutable(value) -> bool:
            if isinstance(value, (Imm, Symbol)):
                return True
            if isinstance(value, VReg):
                if value in func.params and def_count.get(value, 0) == 0:
                    return True
                return def_count.get(value, 0) == 1
            return False

        replacements: dict[VReg, object] = {}
        for reg, op in def_op.items():
            if def_count[reg] == 1 and _is_copy(op) and immutable(op.srcs[0]):
                replacements[reg] = op.srcs[0]

        # resolve chains (a = b, c = a): follow until fixpoint
        def resolve(value):
            seen = set()
            while isinstance(value, VReg) and value in replacements \
                    and value not in seen:
                seen.add(value)
                value = replacements[value]
            return value

        changed = False
        for op in func.operations():
            for i, src in enumerate(op.srcs):
                if isinstance(src, VReg) and src in replacements:
                    op.srcs[i] = resolve(src)
                    changed = True
        return changed
