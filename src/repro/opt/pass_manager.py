"""Pass management: ordered function passes with optional verification.

Mirrors the paper's pipeline: "After performing a complete set of
'classical' optimizations, including loop-invariant motion, common
subexpression elimination, and induction variable simplification, the
compiler builds a flow graph of the program..." — the PassManager runs the
classical set (plus unrolling/inlining) before the trace scheduler takes
over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from ..ir import Function, Module, verify_function
from ..obs import get_tracer


class FunctionPass(Protocol):
    """A pass transforms one function; returns True if it changed the IR."""

    name: str

    def run(self, func: Function, module: Module) -> bool: ...


@dataclass
class PassManager:
    """Runs passes in order, optionally to a fixpoint, verifying after each.

    Args:
        passes: the pass objects to run.
        verify: run the IR verifier after every pass (on by default; the
            test suite depends on it to localise pass bugs).
        max_rounds: when > 1, repeat the whole pipeline until no pass
            reports a change or the round budget is exhausted.
        tracer: optional :class:`~repro.obs.Tracer`; each pass gets a
            timed ``opt.<name>`` span and ``opt.*`` counters (runs,
            changes, ops-changed delta).
    """

    passes: list = field(default_factory=list)
    verify: bool = True
    max_rounds: int = 1
    tracer: object = None

    def add(self, pass_obj) -> "PassManager":
        self.passes.append(pass_obj)
        return self

    def run(self, module: Module,
            only: str | None = None) -> dict[str, list[str]]:
        """Run on every function (or just ``only``); returns change log."""
        log: dict[str, list[str]] = {}
        functions = ([module.function(only)] if only is not None
                     else list(module.functions.values()))
        for func in functions:
            log[func.name] = self.run_function(func, module)
        return log

    def run_function(self, func: Function, module: Module) -> list[str]:
        tracer = get_tracer(self.tracer)
        counters = tracer.counters
        changed_passes: list[str] = []
        for _ in range(max(1, self.max_rounds)):
            any_change = False
            for pass_obj in self.passes:
                ops_before = func.op_count()
                with tracer.span(f"opt.{pass_obj.name}", cat="opt",
                                 function=func.name):
                    changed = pass_obj.run(func, module)
                counters.inc(f"opt.{pass_obj.name}.runs")
                if changed:
                    any_change = True
                    changed_passes.append(pass_obj.name)
                    counters.inc(f"opt.{pass_obj.name}.changes")
                    counters.inc("opt.ops_delta",
                                 func.op_count() - ops_before)
                if self.verify:
                    try:
                        verify_function(func, module)
                    except Exception as exc:
                        raise type(exc)(
                            f"after pass {pass_obj.name!r}: {exc}") from exc
            if not any_change:
                break
        return changed_passes


def classical_pipeline(unroll_factor: int = 0,
                       inline_budget: int = 0,
                       verify: bool = True,
                       tracer=None) -> PassManager:
    """The standard pre-scheduling pipeline.

    ``unroll_factor`` 0/1 disables unrolling; ``inline_budget`` 0 disables
    inlining.  The classical set runs twice so simplifications exposed by
    unrolling are picked up (the paper's compiler similarly iterates).
    """
    from .constant_fold import ConstantFold
    from .copyprop import CopyPropagation
    from .cse import LocalCSE
    from .dce import DeadCodeElimination
    from .inline import Inliner
    from .licm import LoopInvariantCodeMotion
    from .strength import InductionVariableSimplify
    from .unroll import LoopUnroll

    pm = PassManager(verify=verify, max_rounds=2, tracer=tracer)
    if inline_budget:
        pm.add(Inliner(max_callee_ops=inline_budget))
    pm.add(ConstantFold())
    pm.add(CopyPropagation())
    pm.add(LocalCSE())
    pm.add(LoopInvariantCodeMotion())
    pm.add(InductionVariableSimplify())
    if unroll_factor and unroll_factor > 1:
        pm.add(LoopUnroll(factor=unroll_factor))
    pm.add(ConstantFold())
    pm.add(CopyPropagation())
    pm.add(LocalCSE())
    pm.add(DeadCodeElimination())
    return pm
