"""Constant folding and algebraic simplification.

Folds operations whose operands are all immediates, simplifies identities
(``x + 0``, ``x * 1``, ``x * 0`` …), and turns branches on constant
predicates into unconditional jumps (removing then-unreachable blocks).
"""

from __future__ import annotations

import math

from ..analysis import remove_unreachable_blocks
from ..errors import TrapError
from ..ir import (Function, Imm, Module, Opcode, Operation, RegClass,
                  make_jmp, wrap32)


def _fold_pure(op: Operation) -> Imm | None:
    """Evaluate an all-immediate pure op; None when not foldable."""
    if not all(isinstance(s, Imm) for s in op.srcs):
        return None
    vals = [s.value for s in op.srcs]
    opc = op.opcode
    try:
        if opc is Opcode.ADD:
            return Imm(wrap32(vals[0] + vals[1]))
        if opc is Opcode.SUB:
            return Imm(wrap32(vals[0] - vals[1]))
        if opc is Opcode.MUL:
            return Imm(wrap32(vals[0] * vals[1]))
        if opc is Opcode.DIV and vals[1] != 0:
            return Imm(wrap32(int(vals[0] / vals[1])))
        if opc is Opcode.REM and vals[1] != 0:
            return Imm(wrap32(vals[0] - int(vals[0] / vals[1]) * vals[1]))
        if opc is Opcode.AND:
            return Imm(wrap32(vals[0] & vals[1]))
        if opc is Opcode.OR:
            return Imm(wrap32(vals[0] | vals[1]))
        if opc is Opcode.XOR:
            return Imm(wrap32(vals[0] ^ vals[1]))
        if opc is Opcode.SHL:
            return Imm(wrap32(vals[0] << (vals[1] & 31)))
        if opc is Opcode.SHR:
            return Imm(wrap32(vals[0] >> (vals[1] & 31)))
        if opc is Opcode.SHRU:
            return Imm(wrap32((vals[0] & 0xFFFFFFFF) >> (vals[1] & 31)))
        if opc is Opcode.NEG:
            return Imm(wrap32(-vals[0]))
        if opc is Opcode.NOT:
            return Imm(wrap32(~vals[0]))
        if opc is Opcode.MOV:
            return Imm(wrap32(vals[0]))
        if opc is Opcode.CMPEQ:
            return Imm(int(vals[0] == vals[1]), RegClass.PRED)
        if opc is Opcode.CMPNE:
            return Imm(int(vals[0] != vals[1]), RegClass.PRED)
        if opc is Opcode.CMPLT:
            return Imm(int(vals[0] < vals[1]), RegClass.PRED)
        if opc is Opcode.CMPLE:
            return Imm(int(vals[0] <= vals[1]), RegClass.PRED)
        if opc is Opcode.CMPGT:
            return Imm(int(vals[0] > vals[1]), RegClass.PRED)
        if opc is Opcode.CMPGE:
            return Imm(int(vals[0] >= vals[1]), RegClass.PRED)
        if opc is Opcode.FADD:
            return Imm(vals[0] + vals[1], RegClass.FLT)
        if opc is Opcode.FSUB:
            return Imm(vals[0] - vals[1], RegClass.FLT)
        if opc is Opcode.FMUL:
            return Imm(vals[0] * vals[1], RegClass.FLT)
        if opc is Opcode.FNEG:
            return Imm(-vals[0], RegClass.FLT)
        if opc is Opcode.FABS:
            return Imm(abs(vals[0]), RegClass.FLT)
        if opc is Opcode.FMOV:
            return Imm(float(vals[0]), RegClass.FLT)
        if opc is Opcode.CVTIF:
            return Imm(float(vals[0]), RegClass.FLT)
        if opc is Opcode.PAND:
            return Imm(vals[0] & vals[1], RegClass.PRED)
        if opc is Opcode.POR:
            return Imm(vals[0] | vals[1], RegClass.PRED)
        if opc is Opcode.PNOT:
            return Imm(1 - (1 if vals[0] else 0), RegClass.PRED)
        if opc is Opcode.PMOV:
            return Imm(1 if vals[0] else 0, RegClass.PRED)
        if opc in (Opcode.SELECT, Opcode.FSELECT):
            cls = RegClass.FLT if opc is Opcode.FSELECT else RegClass.INT
            return Imm(vals[1] if vals[0] else vals[2], cls)
        # FDIV/CVTFI intentionally skipped: they can trap at runtime and we
        # must not fold a trap away (nor introduce one at compile time).
    except (OverflowError, ValueError):
        return None
    return None


def _simplify_identity(op: Operation) -> Operation | None:
    """Algebraic identities; returns a replacement op (a MOV) or None."""
    opc = op.opcode
    a, b = (op.srcs + [None, None])[:2]

    def imm_eq(x, v) -> bool:
        return isinstance(x, Imm) and x.value == v

    if opc is Opcode.ADD:
        if imm_eq(b, 0):
            return Operation(Opcode.MOV, op.dest, [a])
        if imm_eq(a, 0):
            return Operation(Opcode.MOV, op.dest, [b])
    elif opc is Opcode.SUB and imm_eq(b, 0):
        return Operation(Opcode.MOV, op.dest, [a])
    elif opc is Opcode.MUL:
        if imm_eq(b, 1):
            return Operation(Opcode.MOV, op.dest, [a])
        if imm_eq(a, 1):
            return Operation(Opcode.MOV, op.dest, [b])
        if imm_eq(a, 0) or imm_eq(b, 0):
            return Operation(Opcode.MOV, op.dest, [Imm(0)])
    elif opc in (Opcode.SHL, Opcode.SHR, Opcode.SHRU) and imm_eq(b, 0):
        return Operation(Opcode.MOV, op.dest, [a])
    elif opc is Opcode.OR and (imm_eq(b, 0) or imm_eq(a, 0)):
        keep = a if imm_eq(b, 0) else b
        return Operation(Opcode.MOV, op.dest, [keep])
    elif opc is Opcode.AND and (imm_eq(b, -1) or imm_eq(a, -1)):
        keep = a if imm_eq(b, -1) else b
        return Operation(Opcode.MOV, op.dest, [keep])
    elif opc is Opcode.XOR and (imm_eq(b, 0) or imm_eq(a, 0)):
        keep = a if imm_eq(b, 0) else b
        return Operation(Opcode.MOV, op.dest, [keep])
    elif opc is Opcode.FMUL and (imm_eq(b, 1.0) or imm_eq(a, 1.0)):
        keep = a if imm_eq(b, 1.0) else b
        return Operation(Opcode.FMOV, op.dest, [keep])
    elif opc in (Opcode.FADD, Opcode.FSUB) and imm_eq(b, 0.0):
        # x + 0.0 / x - 0.0 keep x's sign for finite x; (-0.0 subtleties are
        # out of scope for this reproduction and unexercised by workloads)
        return Operation(Opcode.FMOV, op.dest, [a])
    return None


class ConstantFold:
    """Fold constants, simplify identities, resolve constant branches."""

    name = "constant-fold"

    def run(self, func: Function, module: Module) -> bool:
        changed = False
        for block in func.blocks.values():
            for i, op in enumerate(block.ops):
                if op.dest is None:
                    continue
                folded = _fold_pure(op)
                if folded is not None:
                    mov = {RegClass.INT: Opcode.MOV, RegClass.FLT: Opcode.FMOV,
                           RegClass.PRED: Opcode.PMOV}[op.dest.cls]
                    if not (op.opcode is mov and op.srcs == [folded]):
                        block.ops[i] = Operation(mov, op.dest, [folded])
                        changed = True
                    continue
                simplified = _simplify_identity(op)
                if simplified is not None:
                    block.ops[i] = simplified
                    changed = True

            term = block.terminator
            if term is not None and term.opcode is Opcode.BR and \
                    isinstance(term.srcs[0], Imm):
                target = term.labels[0 if term.srcs[0].value else 1]
                block.set_terminator(make_jmp(target.name))
                changed = True

        if changed:
            remove_unreachable_blocks(func)
        return changed
