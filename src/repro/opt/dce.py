"""Dead-code elimination: drop value-producing ops whose results are unused.

Iterates to a fixpoint so chains of dead temporaries disappear.  Operations
with side effects (stores, calls), terminators, and trapping operations are
never removed — a DIV that might trap is an observable effect under the
machine's precise exception mode.
"""

from __future__ import annotations

from ..ir import Function, Module, VReg


class DeadCodeElimination:
    """Use-count-driven dead code removal."""

    name = "dce"

    def __init__(self, remove_trapping: bool = False) -> None:
        #: when True, unused trapping ops (e.g. DIV) are also deleted; the
        #: default preserves trap behaviour exactly.
        self.remove_trapping = remove_trapping

    def run(self, func: Function, module: Module) -> bool:
        changed = False
        while self._sweep(func):
            changed = True
        return changed

    def _sweep(self, func: Function) -> bool:
        used: set[VReg] = set()
        for op in func.operations():
            used.update(op.reg_srcs())

        removed = False
        for block in func.blocks.values():
            kept = []
            for op in block.ops:
                removable = (op.dest is not None
                             and op.dest not in used
                             and not op.has_side_effect
                             and not op.is_terminator
                             and (self.remove_trapping or not op.can_trap))
                if removable:
                    removed = True
                else:
                    kept.append(op)
            block.ops = kept
        return removed
