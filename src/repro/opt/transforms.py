"""Shared CFG-transformation utilities used by the transforming passes."""

from __future__ import annotations

from ..analysis import CFG, Loop
from ..ir import (BasicBlock, Function, Label, Operation, RegClass, VReg,
                  make_jmp)


def insert_block_before(func: Function, new_name: str,
                        before: str) -> BasicBlock:
    """Create a block and position it just before ``before`` in block order.

    Block order is cosmetic except that the first block is the entry, so
    this matters when the new block must become the entry.
    """
    block = BasicBlock(new_name)
    names = list(func.blocks)
    index = names.index(before)
    rebuilt: dict[str, BasicBlock] = {}
    for i, name in enumerate(names):
        if i == index:
            rebuilt[new_name] = block
        rebuilt[name] = func.blocks[name]
    func.blocks = rebuilt
    return block


def ensure_preheader(func: Function, loop: Loop,
                     cfg: CFG | None = None) -> str:
    """Return the name of a preheader block, creating one if necessary.

    A preheader is the unique out-of-loop predecessor of the loop header
    whose only successor is the header.
    """
    if cfg is None:
        cfg = CFG.build(func)
    outside = [p for p in cfg.preds[loop.header] if p not in loop.body]
    if len(outside) == 1:
        candidate = func.block(outside[0])
        if cfg.succs[outside[0]] == [loop.header]:
            return outside[0]

    name = func.fresh_block_name(f"{loop.header}.ph")
    pre = insert_block_before(func, name, loop.header)
    pre.append(make_jmp(loop.header))
    for pred_name in outside:
        func.block(pred_name).retarget(loop.header, name)
    return name


def clone_operations(ops, rename: dict[VReg, VReg],
                     label_map: dict[str, str] | None = None) -> list[Operation]:
    """Clone a list of operations with register renaming and label mapping.

    Registers appearing in ``rename`` are substituted in both source and
    destination positions; labels are rewritten through ``label_map`` when
    present (unmapped labels are kept).
    """
    clones: list[Operation] = []
    for op in ops:
        clone = op.copy()
        if clone.dest is not None and clone.dest in rename:
            clone.dest = rename[clone.dest]
        for i, src in enumerate(clone.srcs):
            if isinstance(src, VReg) and src in rename:
                clone.srcs[i] = rename[src]
        if label_map and clone.labels:
            clone.labels = tuple(
                Label(label_map.get(lbl.name, lbl.name))
                for lbl in clone.labels)
        clones.append(clone)
    return clones


def move_op_for_class(cls: RegClass):
    """The move opcode matching a register class."""
    from ..ir import Opcode
    return {RegClass.INT: Opcode.MOV, RegClass.FLT: Opcode.FMOV,
            RegClass.PRED: Opcode.PMOV}[cls]
