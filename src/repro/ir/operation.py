"""The Operation class: one three-address IR operation.

Every operation that ends up in the final program is an ``Operation``; the
trace scheduler moves, copies (compensation code) and renames these objects,
tracking provenance through the ``origin`` field.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import IRError
from .memref import MemRef
from .opcodes import OP_INFO, Category, Opcode, OpInfo
from .values import Imm, Label, Operand, RegClass, Symbol, VReg

_op_ids = itertools.count(1)


@dataclass(eq=False)
class Operation:
    """A single IR operation.

    Attributes:
        opcode: the :class:`Opcode`.
        dest: destination virtual register (``None`` for stores/branches).
        srcs: source operands (registers, immediates, symbols).
        labels: control-flow targets (``BR``: then/else, ``JMP``: target).
        callee: called function name, for ``CALL`` only.
        memref: symbolic address info for memory operations (may be None).
        origin: id of the operation this one was copied from (compensation
            code provenance); ``None`` for original program operations.
        uid: process-unique integer identity.
    """

    opcode: Opcode
    dest: Optional[VReg] = None
    srcs: list = field(default_factory=list)
    labels: tuple = ()
    callee: Optional[str] = None
    memref: Optional[MemRef] = None
    origin: Optional[int] = None
    uid: int = field(default_factory=lambda: next(_op_ids))

    # ------------------------------------------------------------------
    @property
    def info(self) -> OpInfo:
        """Static metadata for this operation's opcode."""
        return OP_INFO[self.opcode]

    @property
    def category(self) -> Category:
        return self.info.category

    @property
    def is_terminator(self) -> bool:
        return self.info.is_terminator

    @property
    def is_memory(self) -> bool:
        return self.category in (Category.LOAD, Category.STORE)

    @property
    def is_load(self) -> bool:
        return self.category is Category.LOAD

    @property
    def is_store(self) -> bool:
        return self.category is Category.STORE

    @property
    def is_branch(self) -> bool:
        return self.category is Category.BRANCH

    @property
    def is_call(self) -> bool:
        return self.category is Category.CALL

    @property
    def has_side_effect(self) -> bool:
        return self.info.side_effect

    @property
    def can_trap(self) -> bool:
        return self.info.can_trap

    @property
    def is_speculative(self) -> bool:
        return self.info.speculative

    # ------------------------------------------------------------------
    def reg_srcs(self) -> list[VReg]:
        """Source operands that are virtual registers."""
        return [s for s in self.srcs if isinstance(s, VReg)]

    def defs(self) -> list[VReg]:
        """Registers defined by this operation (0 or 1)."""
        return [self.dest] if self.dest is not None else []

    def replace_src(self, old: VReg, new: Operand) -> int:
        """Replace every occurrence of ``old`` among sources; return count."""
        count = 0
        for i, s in enumerate(self.srcs):
            if s == old:
                self.srcs[i] = new
                count += 1
        return count

    def rename_dest(self, new: VReg) -> None:
        if self.dest is None:
            raise IRError(f"{self} has no destination to rename")
        self.dest = new

    def copy(self, origin: Optional[int] = None) -> "Operation":
        """A fresh Operation with the same fields and a new uid.

        ``origin`` defaults to this op's provenance root, so chains of
        compensation copies all point back at the original program op.
        """
        if origin is None:
            origin = self.origin if self.origin is not None else self.uid
        return Operation(self.opcode, self.dest, list(self.srcs), self.labels,
                         self.callee, self.memref, origin)

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts = []
        if self.dest is not None:
            parts.append(f"{self.dest} = ")
        parts.append(self.opcode.value)
        operands = [str(s) for s in self.srcs]
        if self.callee is not None:
            operands.insert(0, f"${self.callee}")
        operands += [str(lbl) for lbl in self.labels]
        if operands:
            parts.append(" " + ", ".join(operands))
        if self.memref is not None:
            parts.append(f"  ; {self.memref}")
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<op#{self.uid} {self}>"


# ---------------------------------------------------------------------------
# Convenience constructors


def make_br(pred: Operand, then_label: str, else_label: str) -> Operation:
    """Conditional branch: to ``then_label`` when ``pred`` is true."""
    return Operation(Opcode.BR, None, [pred],
                     (Label(then_label), Label(else_label)))


def make_jmp(target: str) -> Operation:
    return Operation(Opcode.JMP, None, [], (Label(target),))


def make_ret(value: Operand | None = None) -> Operation:
    return Operation(Opcode.RET, None, [] if value is None else [value])


def make_call(dest: VReg | None, callee: str, args: list) -> Operation:
    return Operation(Opcode.CALL, dest, list(args), callee=callee)
