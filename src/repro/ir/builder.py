"""A fluent builder for constructing IR functions programmatically.

Example::

    module = Module("example")
    b = IRBuilder(module)
    f = b.function("add3", [("a", RegClass.INT)], ret_class=RegClass.INT)
    b.block("entry")
    t = b.add(b.param("a"), 3)
    b.ret(t)

Workloads (:mod:`repro.workloads`) and many tests are written against this
API; the tiny-language front end lowers onto it as well.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from ..errors import IRError
from .block import BasicBlock
from .function import Function, Module
from .memref import MemRef
from .opcodes import OP_INFO, Opcode
from .operation import Operation, make_br, make_call, make_jmp, make_ret
from .values import Imm, Label, Operand, RegClass, Symbol, VReg

#: Values the builder coerces into operands: raw ints/floats become Imm.
Coercible = Union[VReg, Imm, Symbol, int, float]


def _coerce(value: Coercible, cls: RegClass) -> Operand:
    """Coerce a Python value to an IR operand of the requested class."""
    if isinstance(value, (VReg, Imm, Symbol)):
        return value
    if isinstance(value, bool):
        return Imm(int(value), cls)
    if isinstance(value, int):
        if cls is RegClass.FLT:
            return Imm(float(value), RegClass.FLT)
        return Imm(value, cls)
    if isinstance(value, float):
        return Imm(value, RegClass.FLT)
    raise IRError(f"cannot use {value!r} as an operand")


class IRBuilder:
    """Builds operations into the current block of the current function."""

    def __init__(self, module: Module | None = None) -> None:
        self.module = module if module is not None else Module()
        self.func: Function | None = None
        self.cur: BasicBlock | None = None

    # -- structure ------------------------------------------------------
    def function(self, name: str,
                 params: Sequence[tuple[str, RegClass]] = (),
                 ret_class: RegClass | None = None) -> Function:
        """Start a new function; it becomes the builder's current function."""
        vregs = [VReg(pname, pcls) for pname, pcls in params]
        self.func = self.module.add_function(Function(name, vregs, ret_class))
        self.cur = None
        return self.func

    def block(self, name: str | None = None) -> BasicBlock:
        """Create a block in the current function and make it current."""
        self.cur = self._func().add_block(name)
        return self.cur

    def switch_to(self, block: BasicBlock | str) -> BasicBlock:
        """Make an existing block the insertion point."""
        if isinstance(block, str):
            block = self._func().block(block)
        self.cur = block
        return block

    def param(self, name: str) -> VReg:
        for p in self._func().params:
            if p.name == name:
                return p
        raise IRError(f"no parameter {name!r} in {self._func().name}")

    def _func(self) -> Function:
        if self.func is None:
            raise IRError("no current function")
        return self.func

    def _block(self) -> BasicBlock:
        if self.cur is None:
            raise IRError("no current block")
        return self.cur

    # -- generic emission -------------------------------------------------
    def emit(self, opcode: Opcode, srcs: Sequence[Coercible] = (),
             dest: VReg | None = None, memref: MemRef | None = None,
             labels: tuple = (), callee: str | None = None) -> Operation:
        """Emit an operation, creating a fresh destination if needed."""
        info = OP_INFO[opcode]
        if (opcode not in (Opcode.CALL, Opcode.RET)
                and len(srcs) != len(info.src_classes)):
            raise IRError(f"{opcode.value}: expected "
                          f"{len(info.src_classes)} operands, got {len(srcs)}")
        coerced = [_coerce(s, c) for s, c in zip(srcs, info.src_classes)]
        if dest is None and info.dest_class is not None:
            dest = self._func().fresh_vreg(info.dest_class)
        op = Operation(opcode, dest, coerced, labels, callee, memref)
        self._block().append(op)
        return op

    def _value(self, opcode: Opcode, srcs: Sequence[Coercible],
               dest: VReg | None = None,
               memref: MemRef | None = None) -> VReg:
        op = self.emit(opcode, srcs, dest, memref)
        assert op.dest is not None
        return op.dest

    # -- integer ----------------------------------------------------------
    def add(self, a, b, dest=None): return self._value(Opcode.ADD, [a, b], dest)
    def sub(self, a, b, dest=None): return self._value(Opcode.SUB, [a, b], dest)
    def mul(self, a, b, dest=None): return self._value(Opcode.MUL, [a, b], dest)
    def div(self, a, b, dest=None): return self._value(Opcode.DIV, [a, b], dest)
    def rem(self, a, b, dest=None): return self._value(Opcode.REM, [a, b], dest)
    def and_(self, a, b, dest=None): return self._value(Opcode.AND, [a, b], dest)
    def or_(self, a, b, dest=None): return self._value(Opcode.OR, [a, b], dest)
    def xor(self, a, b, dest=None): return self._value(Opcode.XOR, [a, b], dest)
    def shl(self, a, b, dest=None): return self._value(Opcode.SHL, [a, b], dest)
    def shr(self, a, b, dest=None): return self._value(Opcode.SHR, [a, b], dest)
    def shru(self, a, b, dest=None): return self._value(Opcode.SHRU, [a, b], dest)
    def neg(self, a, dest=None): return self._value(Opcode.NEG, [a], dest)
    def not_(self, a, dest=None): return self._value(Opcode.NOT, [a], dest)
    def mov(self, a, dest=None): return self._value(Opcode.MOV, [a], dest)

    def select(self, pred, a, b, dest=None):
        return self._value(Opcode.SELECT, [pred, a, b], dest)

    # -- compares -----------------------------------------------------------
    def cmpeq(self, a, b, dest=None): return self._value(Opcode.CMPEQ, [a, b], dest)
    def cmpne(self, a, b, dest=None): return self._value(Opcode.CMPNE, [a, b], dest)
    def cmplt(self, a, b, dest=None): return self._value(Opcode.CMPLT, [a, b], dest)
    def cmple(self, a, b, dest=None): return self._value(Opcode.CMPLE, [a, b], dest)
    def cmpgt(self, a, b, dest=None): return self._value(Opcode.CMPGT, [a, b], dest)
    def cmpge(self, a, b, dest=None): return self._value(Opcode.CMPGE, [a, b], dest)

    def fcmpeq(self, a, b, dest=None): return self._value(Opcode.FCMPEQ, [a, b], dest)
    def fcmpne(self, a, b, dest=None): return self._value(Opcode.FCMPNE, [a, b], dest)
    def fcmplt(self, a, b, dest=None): return self._value(Opcode.FCMPLT, [a, b], dest)
    def fcmple(self, a, b, dest=None): return self._value(Opcode.FCMPLE, [a, b], dest)
    def fcmpgt(self, a, b, dest=None): return self._value(Opcode.FCMPGT, [a, b], dest)
    def fcmpge(self, a, b, dest=None): return self._value(Opcode.FCMPGE, [a, b], dest)

    # -- float ----------------------------------------------------------------
    def fadd(self, a, b, dest=None): return self._value(Opcode.FADD, [a, b], dest)
    def fsub(self, a, b, dest=None): return self._value(Opcode.FSUB, [a, b], dest)
    def fmul(self, a, b, dest=None): return self._value(Opcode.FMUL, [a, b], dest)
    def fdiv(self, a, b, dest=None): return self._value(Opcode.FDIV, [a, b], dest)
    def fneg(self, a, dest=None): return self._value(Opcode.FNEG, [a], dest)
    def fabs(self, a, dest=None): return self._value(Opcode.FABS, [a], dest)
    def fmov(self, a, dest=None): return self._value(Opcode.FMOV, [a], dest)
    def cvtif(self, a, dest=None): return self._value(Opcode.CVTIF, [a], dest)
    def cvtfi(self, a, dest=None): return self._value(Opcode.CVTFI, [a], dest)

    def fselect(self, pred, a, b, dest=None):
        return self._value(Opcode.FSELECT, [pred, a, b], dest)

    # -- memory ---------------------------------------------------------------
    def load(self, base, offset=0, dest=None, memref: MemRef | None = None):
        """32-bit integer load from byte address ``base + offset``."""
        return self._value(Opcode.LOAD, [base, offset], dest, memref)

    def fload(self, base, offset=0, dest=None, memref: MemRef | None = None):
        """64-bit float load from byte address ``base + offset``."""
        return self._value(Opcode.FLOAD, [base, offset], dest, memref)

    def store(self, value, base, offset=0, memref: MemRef | None = None):
        return self.emit(Opcode.STORE, [value, base, offset], memref=memref)

    def fstore(self, value, base, offset=0, memref: MemRef | None = None):
        return self.emit(Opcode.FSTORE, [value, base, offset], memref=memref)

    def addr(self, symbol: str) -> VReg:
        """Materialise the address of a data object into an int register."""
        return self._value(Opcode.MOV, [Symbol(symbol)])

    # -- control ------------------------------------------------------------
    def br(self, pred: Coercible, then_label: str, else_label: str) -> Operation:
        op = make_br(_coerce(pred, RegClass.PRED), then_label, else_label)
        return self._block().append(op)

    def jmp(self, target: str) -> Operation:
        return self._block().append(make_jmp(target))

    def ret(self, value: Coercible | None = None) -> Operation:
        func = self._func()
        operand = None
        if value is not None:
            if func.ret_class is None:
                raise IRError(f"{func.name} returns no value")
            operand = _coerce(value, func.ret_class)
        return self._block().append(make_ret(operand))

    def halt(self) -> Operation:
        return self._block().append(Operation(Opcode.HALT))

    def call(self, callee: str, args: Sequence[Coercible] = (),
             ret_class: RegClass | None = None) -> VReg | None:
        """Call ``callee``; returns the result register if ret_class given.

        Argument classes are taken from the callee's signature when the
        callee is already present in the module, else inferred from values.
        """
        target = self.module.functions.get(callee)
        coerced: list[Operand] = []
        for i, a in enumerate(args):
            if target is not None and i < len(target.params):
                cls = target.params[i].cls
            elif isinstance(a, (VReg, Imm)):
                cls = a.cls
            else:
                cls = RegClass.FLT if isinstance(a, float) else RegClass.INT
            coerced.append(_coerce(a, cls))
        if ret_class is None and target is not None:
            ret_class = target.ret_class
        dest = self._func().fresh_vreg(ret_class) if ret_class else None
        self._block().append(make_call(dest, callee, coerced))
        return dest
