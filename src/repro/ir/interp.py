"""Reference interpreter for the IR, plus the memory image loader.

The interpreter defines the *observable semantics* every simulator and every
compiled artifact must reproduce: final memory contents, returned value, and
trap behaviour.  It also collects an edge :class:`Profile`, which is exactly
the branch statistics the Trace Scheduling compiler feeds to trace selection
(the paper: "estimates of branch directions obtained automatically through
heuristics or profiling").
"""

from __future__ import annotations

import math
import struct
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..errors import InterpError, IRError, TrapError
from .function import Function, Module
from .opcodes import ACCESS_SIZE, Category, Opcode
from .operation import Operation
from .values import Imm, Label, RegClass, Symbol, VReg, wrap32

#: Value written to the target of a dismissable load whose address faulted
#: (the paper: "the target register is loaded with a 'funny number' to help
#: catch bugs").
FUNNY_INT = wrap32(0xDEADBEEF)
FUNNY_FLOAT = float("nan")

#: Lowest address handed to data objects; page 0 stays unmapped so null
#: dereferences trap like the paper's "Bus Error".
DATA_BASE = 0x1000


class MemoryImage:
    """A loaded module's data memory: flat, byte-addressed, little-endian.

    Data objects are laid out contiguously (respecting alignment) starting
    at :data:`DATA_BASE`; a scratch region beyond them serves as heap/stack
    for workloads that need one.
    """

    def __init__(self, module: Module | None = None,
                 scratch_bytes: int = 1 << 16) -> None:
        self.layout: dict[str, int] = {}
        cursor = DATA_BASE
        objects = list(module.data.values()) if module is not None else []
        for obj in objects:
            align = max(obj.align, 1)
            cursor = (cursor + align - 1) // align * align
            self.layout[obj.name] = cursor
            cursor += obj.size
        cursor = (cursor + 7) // 8 * 8
        self.scratch_base = cursor
        self.size = cursor + scratch_bytes
        self.data = bytearray(self.size)
        for obj in objects:
            self._apply_init(obj)

    def _apply_init(self, obj) -> None:
        base = self.layout[obj.name]
        if obj.init is None:
            return
        if isinstance(obj.init, bytes):
            self.data[base:base + len(obj.init)] = obj.init
            return
        for offset, width, value in obj.init:
            if isinstance(value, float) or width == 8 and not isinstance(value, int):
                self.store_float(base + offset, float(value), check=False)
            elif width == 8:
                self.data[base + offset:base + offset + 8] = struct.pack(
                    "<q", value)
            else:
                self.store_int(base + offset, int(value), check=False)

    def clone(self) -> "MemoryImage":
        """An independent byte-level copy with the same layout.

        Batched lanes need N private images of one module; copying the
        already-loaded bytes skips re-walking every data object's
        initializer list, which dominates construction for real
        workloads.
        """
        other = MemoryImage.__new__(MemoryImage)
        other.layout = dict(self.layout)
        other.scratch_base = self.scratch_base
        other.size = self.size
        other.data = bytearray(self.data)
        return other

    # ------------------------------------------------------------------
    def address_of(self, symbol: str) -> int:
        try:
            return self.layout[symbol]
        except KeyError:
            raise InterpError(f"unknown symbol {symbol!r}") from None

    def check(self, addr: int, size: int) -> bool:
        """Is [addr, addr+size) a valid, aligned data access?"""
        return (DATA_BASE <= addr and addr + size <= self.size
                and addr % size == 0)

    def _guard(self, addr: int, size: int, check: bool) -> None:
        if check and not self.check(addr, size):
            raise TrapError("bus_error", f"addr=0x{addr:x} size={size}")

    def load_int(self, addr: int, check: bool = True) -> int:
        self._guard(addr, 4, check)
        return struct.unpack_from("<i", self.data, addr)[0]

    def store_int(self, addr: int, value: int, check: bool = True) -> None:
        self._guard(addr, 4, check)
        struct.pack_into("<i", self.data, addr, wrap32(value))

    def load_float(self, addr: int, check: bool = True) -> float:
        self._guard(addr, 8, check)
        return struct.unpack_from("<d", self.data, addr)[0]

    def store_float(self, addr: int, value: float, check: bool = True) -> None:
        self._guard(addr, 8, check)
        struct.pack_into("<d", self.data, addr, value)

    def read_array(self, symbol: str, n: int, elem_size: int = 4) -> list:
        """Read back an array's contents (for test assertions)."""
        base = self.address_of(symbol)
        reader = self.load_int if elem_size == 4 else self.load_float
        return [reader(base + i * elem_size) for i in range(n)]

    def snapshot(self) -> bytes:
        return bytes(self.data)


@dataclass
class Profile:
    """Branch/block execution statistics gathered by a training run."""

    edge_counts: Counter = field(default_factory=Counter)
    block_counts: Counter = field(default_factory=Counter)

    def record_edge(self, func: str, src: str, dst: str) -> None:
        self.edge_counts[(func, src, dst)] += 1

    def record_block(self, func: str, block: str) -> None:
        self.block_counts[(func, block)] += 1

    def edge_probability(self, func: str, src: str, dst: str) -> float | None:
        """P(src -> dst | src executed), or None if src never ran."""
        total = self.block_counts.get((func, src), 0)
        if total == 0:
            return None
        return self.edge_counts.get((func, src, dst), 0) / total

    def merge(self, other: "Profile") -> None:
        self.edge_counts.update(other.edge_counts)
        self.block_counts.update(other.block_counts)


@dataclass
class InterpStats:
    """Dynamic operation counts from an interpreter run."""

    ops_executed: int = 0
    by_category: Counter = field(default_factory=Counter)
    branches: int = 0
    taken_branches: int = 0
    loads: int = 0
    stores: int = 0
    calls: int = 0


@dataclass
class RunResult:
    """Everything observable from one interpreter run."""

    value: Any
    memory: MemoryImage
    stats: InterpStats
    profile: Profile


class Interpreter:
    """Executes IR functions over a :class:`MemoryImage`.

    Args:
        module: the module to execute.
        fp_mode: ``"precise"`` traps on float divide-by-zero and bad
            conversions (the machine's default exception mode); ``"fast"``
            propagates IEEE infinities/NaNs without trapping (the paper's
            *fast mode*, section 7).
        fuel: maximum operations to execute before declaring runaway.
    """

    def __init__(self, module: Module, fp_mode: str = "precise",
                 fuel: int = 50_000_000) -> None:
        if fp_mode not in ("precise", "fast"):
            raise InterpError(f"bad fp_mode {fp_mode!r}")
        self.module = module
        self.fp_mode = fp_mode
        self.fuel = fuel
        self.stats = InterpStats()
        self.profile = Profile()

    # ------------------------------------------------------------------
    def run(self, func_name: str, args: Sequence = (),
            memory: MemoryImage | None = None) -> RunResult:
        """Run ``func_name`` with ``args``; returns the full result record."""
        if memory is None:
            memory = MemoryImage(self.module)
        self.memory = memory
        value = self._call(self.module.function(func_name), list(args))
        return RunResult(value, memory, self.stats, self.profile)

    # ------------------------------------------------------------------
    def _call(self, func: Function, args: list) -> Any:
        if len(args) != len(func.params):
            raise InterpError(
                f"{func.name} wants {len(func.params)} args, got {len(args)}")
        env: dict[VReg, Any] = {}
        for param, arg in zip(func.params, args):
            env[param] = self._coerce_arg(param, arg)

        block = func.entry
        prev_name: str | None = None
        while True:
            self.profile.record_block(func.name, block.name)
            next_name = self._run_block(func, block, env)
            if next_name is _RETURN:
                return env.get(_RETVAL)
            if next_name is _HALT:
                return None
            self.profile.record_edge(func.name, block.name, next_name)
            block = func.block(next_name)

    def _coerce_arg(self, param: VReg, arg) -> Any:
        if param.cls is RegClass.FLT:
            return float(arg)
        if param.cls is RegClass.PRED:
            return 1 if arg else 0
        if isinstance(arg, str):
            return self.memory.address_of(arg)
        return wrap32(int(arg))

    # ------------------------------------------------------------------
    def _run_block(self, func: Function, block, env) -> Any:
        for i, op in enumerate(block.ops):
            self.stats.ops_executed += 1
            self.stats.by_category[op.category] += 1
            if self.stats.ops_executed > self.fuel:
                raise InterpError(f"fuel exhausted in {func.name}")
            try:
                result = self._execute(func, op, env)
            except TrapError as exc:
                # the interpreter has no clock, so only the program
                # location is attached; simulators add the beat
                exc.locate(pc=f"{func.name}:{block.name}:{i}")
                raise
            if result is not None:
                return result
        raise IRError(f"{func.name}:{block.name} fell off the end")

    def _operand(self, env, src) -> Any:
        if isinstance(src, VReg):
            try:
                return env[src]
            except KeyError:
                raise InterpError(f"use of undefined register {src}") from None
        if isinstance(src, Imm):
            return src.value
        if isinstance(src, Symbol):
            return self.memory.address_of(src.name)
        raise InterpError(f"cannot evaluate operand {src!r}")

    # ------------------------------------------------------------------
    def _execute(self, func: Function, op: Operation, env) -> Any:
        """Execute one op; returns a control-flow token or None."""
        opc = op.opcode
        vals = [self._operand(env, s) for s in op.srcs]

        if opc is Opcode.BR:
            self.stats.branches += 1
            taken = bool(vals[0])
            if taken:
                self.stats.taken_branches += 1
            return op.labels[0].name if taken else op.labels[1].name
        if opc is Opcode.JMP:
            return op.labels[0].name
        if opc is Opcode.RET:
            env[_RETVAL] = vals[0] if vals else None
            return _RETURN
        if opc is Opcode.HALT:
            return _HALT
        if opc is Opcode.CALL:
            self.stats.calls += 1
            callee = self.module.function(op.callee)
            result = self._call(callee, vals)
            if op.dest is not None:
                env[op.dest] = result
            return None
        if opc is Opcode.NOP:
            return None

        if op.is_memory:
            self._execute_memory(op, vals, env)
            return None

        env[op.dest] = self._compute(opc, vals)
        return None

    def _execute_memory(self, op: Operation, vals, env) -> None:
        size = ACCESS_SIZE[op.opcode]
        if op.is_store:
            value, base, offset = vals
            addr = wrap32(base + offset)
            self.stats.stores += 1
            if size == 8:
                self.memory.store_float(addr, value)
            else:
                self.memory.store_int(addr, value)
            return
        base, offset = vals
        addr = wrap32(base + offset)
        self.stats.loads += 1
        if op.is_speculative and not self.memory.check(addr, size):
            env[op.dest] = FUNNY_FLOAT if size == 8 else FUNNY_INT
            return
        if size == 8:
            env[op.dest] = self.memory.load_float(addr)
        else:
            env[op.dest] = self.memory.load_int(addr)

    # ------------------------------------------------------------------
    def _compute(self, opc: Opcode, v: list) -> Any:
        """Pure (register-only) operation semantics."""
        if opc is Opcode.ADD:
            return wrap32(v[0] + v[1])
        if opc is Opcode.SUB:
            return wrap32(v[0] - v[1])
        if opc is Opcode.MUL:
            return wrap32(v[0] * v[1])
        if opc is Opcode.DIV:
            if v[1] == 0:
                raise TrapError("int_divide_by_zero")
            return wrap32(int(v[0] / v[1]))  # truncate toward zero
        if opc is Opcode.REM:
            if v[1] == 0:
                raise TrapError("int_divide_by_zero")
            return wrap32(v[0] - int(v[0] / v[1]) * v[1])
        if opc is Opcode.AND:
            return wrap32(v[0] & v[1])
        if opc is Opcode.OR:
            return wrap32(v[0] | v[1])
        if opc is Opcode.XOR:
            return wrap32(v[0] ^ v[1])
        if opc is Opcode.SHL:
            return wrap32(v[0] << (v[1] & 31))
        if opc is Opcode.SHR:
            return wrap32(v[0] >> (v[1] & 31))
        if opc is Opcode.SHRU:
            return wrap32((v[0] & 0xFFFFFFFF) >> (v[1] & 31))
        if opc is Opcode.NEG:
            return wrap32(-v[0])
        if opc is Opcode.NOT:
            return wrap32(~v[0])
        if opc in (Opcode.MOV, Opcode.PMOV):
            return v[0]
        if opc in (Opcode.SELECT, Opcode.FSELECT):
            return v[1] if v[0] else v[2]
        if opc is Opcode.EXTRACT:
            return wrap32(((v[0] & 0xFFFFFFFF) >> (v[1] & 31))
                          & ((1 << (v[2] & 31)) - 1))
        if opc is Opcode.MERGE:
            width = v[3] & 31
            pos = v[2] & 31
            mask = ((1 << width) - 1) << pos
            return wrap32((v[0] & ~mask) | ((v[1] << pos) & mask))

        if opc is Opcode.CMPEQ:
            return int(v[0] == v[1])
        if opc is Opcode.CMPNE:
            return int(v[0] != v[1])
        if opc is Opcode.CMPLT:
            return int(v[0] < v[1])
        if opc is Opcode.CMPLE:
            return int(v[0] <= v[1])
        if opc is Opcode.CMPGT:
            return int(v[0] > v[1])
        if opc is Opcode.CMPGE:
            return int(v[0] >= v[1])

        if opc is Opcode.PAND:
            return v[0] & v[1]
        if opc is Opcode.POR:
            return v[0] | v[1]
        if opc is Opcode.PNOT:
            return 1 - (1 if v[0] else 0)
        if opc is Opcode.PTOI:
            return 1 if v[0] else 0
        if opc is Opcode.ITOP:
            return int(v[0] != 0)

        if opc is Opcode.FADD:
            return v[0] + v[1]
        if opc is Opcode.FSUB:
            return v[0] - v[1]
        if opc is Opcode.FMUL:
            return v[0] * v[1]
        if opc is Opcode.FDIV:
            return self._fdiv(v[0], v[1])
        if opc is Opcode.FNEG:
            return -v[0]
        if opc is Opcode.FABS:
            return abs(v[0])
        if opc is Opcode.FMOV:
            return v[0]

        if opc is Opcode.FCMPEQ:
            return int(v[0] == v[1])
        if opc is Opcode.FCMPNE:
            return int(v[0] != v[1])
        if opc is Opcode.FCMPLT:
            return int(v[0] < v[1])
        if opc is Opcode.FCMPLE:
            return int(v[0] <= v[1])
        if opc is Opcode.FCMPGT:
            return int(v[0] > v[1])
        if opc is Opcode.FCMPGE:
            return int(v[0] >= v[1])

        if opc is Opcode.CVTIF:
            return float(v[0])
        if opc is Opcode.CVTFI:
            if math.isnan(v[0]) or math.isinf(v[0]) or not (
                    -(2.0 ** 31) <= v[0] < 2.0 ** 31):
                if self.fp_mode == "precise":
                    raise TrapError("float_convert", repr(v[0]))
                return FUNNY_INT
            return wrap32(int(v[0]))

        raise InterpError(f"unimplemented opcode {opc}")  # pragma: no cover

    def _fdiv(self, a: float, b: float) -> float:
        if b == 0.0:
            if self.fp_mode == "precise":
                raise TrapError("float_divide_by_zero")
            if a == 0.0 or math.isnan(a):
                return float("nan")
            return math.copysign(float("inf"), a) * math.copysign(1.0, b)
        return a / b


_RETURN = object()
_HALT = object()
_RETVAL = VReg("__retval__", RegClass.INT)


def run_module(module: Module, func_name: str, args: Sequence = (),
               fp_mode: str = "precise",
               memory: MemoryImage | None = None) -> RunResult:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    return Interpreter(module, fp_mode=fp_mode).run(func_name, args, memory)
