"""Opcode definitions and static metadata for the IR.

The opcode repertoire mirrors the TRACE instruction set described in the
paper: a load/store three-address architecture with

* ~80 integer opcodes (arithmetic, logical, compare, shift/extract/merge —
  we carry the representative subset used by compiled code),
* compare-*predicate* operations writing one-bit branch-bank values instead
  of condition codes (paper section 6.5.2),
* a branching ``SELECT`` operation giving the semantics of C's ``?:``
  without a jump (section 6.2),
* pipelined loads/stores, including the special *dismissable* load opcodes
  used when the compiler speculates a load above a conditional branch
  (section 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .values import RegClass


class Category(Enum):
    """Semantic category, used to map opcodes onto functional-unit classes."""

    INT_ALU = "int_alu"      # 1-beat integer operations
    INT_MUL = "int_mul"      # pipelined integer multiply
    INT_DIV = "int_div"      # integer divide (iterative)
    INT_CMP = "int_cmp"      # compare-predicate, integer operands
    PRED = "pred"            # branch-bank bit manipulation
    FLT_ADD = "flt_add"      # floating adder/ALU pipeline
    FLT_MUL = "flt_mul"      # floating multiplier pipeline
    FLT_DIV = "flt_div"      # floating divide (shares the multiplier)
    FLT_CMP = "flt_cmp"      # compare-predicate, float operands
    CVT = "cvt"              # int<->float conversions
    LOAD = "load"            # memory read (7-beat pipeline)
    STORE = "store"          # memory write
    BRANCH = "branch"        # conditional branch (terminator)
    JUMP = "jump"            # unconditional jump (terminator)
    RET = "ret"              # function return (terminator)
    CALL = "call"            # procedure call (scheduling barrier)
    MISC = "misc"            # NOP / HALT


class Opcode(Enum):
    """Every operation the IR (and the modeled machine) understands."""

    # --- integer ALU ------------------------------------------------------
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"      # arithmetic shift right
    SHRU = "shru"    # logical shift right
    NEG = "neg"
    NOT = "not"
    MOV = "mov"
    SELECT = "select"      # select(pred, a, b) -> a if pred else b
    EXTRACT = "extract"    # extract(x, pos, width) bit-field read
    MERGE = "merge"        # merge(x, y, pos, width): insert low bits of y into x

    # --- integer compare-predicate ---------------------------------------
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPGT = "cmpgt"
    CMPGE = "cmpge"

    # --- predicate (branch bank) ------------------------------------------
    PAND = "pand"
    POR = "por"
    PNOT = "pnot"
    PMOV = "pmov"
    PTOI = "ptoi"    # predicate -> 0/1 integer
    ITOP = "itop"    # integer -> predicate (nonzero test)

    # --- floating point -----------------------------------------------------
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    FABS = "fabs"
    FMOV = "fmov"
    FSELECT = "fselect"

    FCMPEQ = "fcmpeq"
    FCMPNE = "fcmpne"
    FCMPLT = "fcmplt"
    FCMPLE = "fcmple"
    FCMPGT = "fcmpgt"
    FCMPGE = "fcmpge"

    CVTIF = "cvtif"  # int -> float
    CVTFI = "cvtfi"  # float -> int (truncate toward zero)

    # --- memory -------------------------------------------------------------
    LOAD = "load"        # load(base, offset) -> int32
    STORE = "store"      # store(value, base, offset)
    FLOAD = "fload"      # load(base, offset) -> float64
    FSTORE = "fstore"    # store(value, base, offset)
    LOADS = "loads"      # dismissable int load (speculative; traps dismissed)
    FLOADS = "floads"    # dismissable float load

    # --- control ------------------------------------------------------------
    BR = "br"        # br(pred, @then, @else)
    JMP = "jmp"      # jmp(@target)
    RET = "ret"      # ret([value])
    CALL = "call"    # call dest?, $func, args...
    HALT = "halt"
    NOP = "nop"


@dataclass(frozen=True, slots=True)
class OpInfo:
    """Static description of one opcode.

    ``src_classes`` lists register classes for register/immediate operands;
    label/symbol operands are described by ``n_labels``/``callee`` handling
    in the verifier rather than here.
    """

    category: Category
    src_classes: tuple[RegClass, ...]
    dest_class: RegClass | None
    commutative: bool = False
    side_effect: bool = False       # stores, calls, halt
    can_trap: bool = True           # may raise a machine trap
    is_terminator: bool = False
    speculative: bool = False       # dismissable-load variants
    extra: dict = field(default_factory=dict)


_I = RegClass.INT
_F = RegClass.FLT
_P = RegClass.PRED

OP_INFO: dict[Opcode, OpInfo] = {
    # integer ALU: single-beat, never traps (wraps at 32 bits)
    Opcode.ADD: OpInfo(Category.INT_ALU, (_I, _I), _I, commutative=True, can_trap=False),
    Opcode.SUB: OpInfo(Category.INT_ALU, (_I, _I), _I, can_trap=False),
    Opcode.MUL: OpInfo(Category.INT_MUL, (_I, _I), _I, commutative=True, can_trap=False),
    Opcode.DIV: OpInfo(Category.INT_DIV, (_I, _I), _I),  # traps on /0
    Opcode.REM: OpInfo(Category.INT_DIV, (_I, _I), _I),
    Opcode.AND: OpInfo(Category.INT_ALU, (_I, _I), _I, commutative=True, can_trap=False),
    Opcode.OR: OpInfo(Category.INT_ALU, (_I, _I), _I, commutative=True, can_trap=False),
    Opcode.XOR: OpInfo(Category.INT_ALU, (_I, _I), _I, commutative=True, can_trap=False),
    Opcode.SHL: OpInfo(Category.INT_ALU, (_I, _I), _I, can_trap=False),
    Opcode.SHR: OpInfo(Category.INT_ALU, (_I, _I), _I, can_trap=False),
    Opcode.SHRU: OpInfo(Category.INT_ALU, (_I, _I), _I, can_trap=False),
    Opcode.NEG: OpInfo(Category.INT_ALU, (_I,), _I, can_trap=False),
    Opcode.NOT: OpInfo(Category.INT_ALU, (_I,), _I, can_trap=False),
    Opcode.MOV: OpInfo(Category.INT_ALU, (_I,), _I, can_trap=False),
    Opcode.SELECT: OpInfo(Category.INT_ALU, (_P, _I, _I), _I, can_trap=False),
    Opcode.EXTRACT: OpInfo(Category.INT_ALU, (_I, _I, _I), _I, can_trap=False),
    Opcode.MERGE: OpInfo(Category.INT_ALU, (_I, _I, _I, _I), _I, can_trap=False),

    Opcode.CMPEQ: OpInfo(Category.INT_CMP, (_I, _I), _P, commutative=True, can_trap=False),
    Opcode.CMPNE: OpInfo(Category.INT_CMP, (_I, _I), _P, commutative=True, can_trap=False),
    Opcode.CMPLT: OpInfo(Category.INT_CMP, (_I, _I), _P, can_trap=False),
    Opcode.CMPLE: OpInfo(Category.INT_CMP, (_I, _I), _P, can_trap=False),
    Opcode.CMPGT: OpInfo(Category.INT_CMP, (_I, _I), _P, can_trap=False),
    Opcode.CMPGE: OpInfo(Category.INT_CMP, (_I, _I), _P, can_trap=False),

    Opcode.PAND: OpInfo(Category.PRED, (_P, _P), _P, commutative=True, can_trap=False),
    Opcode.POR: OpInfo(Category.PRED, (_P, _P), _P, commutative=True, can_trap=False),
    Opcode.PNOT: OpInfo(Category.PRED, (_P,), _P, can_trap=False),
    Opcode.PMOV: OpInfo(Category.PRED, (_P,), _P, can_trap=False),
    Opcode.PTOI: OpInfo(Category.INT_ALU, (_P,), _I, can_trap=False),
    Opcode.ITOP: OpInfo(Category.INT_CMP, (_I,), _P, can_trap=False),

    Opcode.FADD: OpInfo(Category.FLT_ADD, (_F, _F), _F, commutative=True),
    Opcode.FSUB: OpInfo(Category.FLT_ADD, (_F, _F), _F),
    Opcode.FMUL: OpInfo(Category.FLT_MUL, (_F, _F), _F, commutative=True),
    Opcode.FDIV: OpInfo(Category.FLT_DIV, (_F, _F), _F),
    Opcode.FNEG: OpInfo(Category.FLT_ADD, (_F,), _F, can_trap=False),
    Opcode.FABS: OpInfo(Category.FLT_ADD, (_F,), _F, can_trap=False),
    Opcode.FMOV: OpInfo(Category.FLT_ADD, (_F,), _F, can_trap=False),
    Opcode.FSELECT: OpInfo(Category.FLT_ADD, (_P, _F, _F), _F, can_trap=False),

    Opcode.FCMPEQ: OpInfo(Category.FLT_CMP, (_F, _F), _P, commutative=True, can_trap=False),
    Opcode.FCMPNE: OpInfo(Category.FLT_CMP, (_F, _F), _P, commutative=True, can_trap=False),
    Opcode.FCMPLT: OpInfo(Category.FLT_CMP, (_F, _F), _P, can_trap=False),
    Opcode.FCMPLE: OpInfo(Category.FLT_CMP, (_F, _F), _P, can_trap=False),
    Opcode.FCMPGT: OpInfo(Category.FLT_CMP, (_F, _F), _P, can_trap=False),
    Opcode.FCMPGE: OpInfo(Category.FLT_CMP, (_F, _F), _P, can_trap=False),

    Opcode.CVTIF: OpInfo(Category.CVT, (_I,), _F, can_trap=False),
    Opcode.CVTFI: OpInfo(Category.CVT, (_F,), _I),  # traps on NaN/overflow

    Opcode.LOAD: OpInfo(Category.LOAD, (_I, _I), _I),
    Opcode.STORE: OpInfo(Category.STORE, (_I, _I, _I), None, side_effect=True),
    Opcode.FLOAD: OpInfo(Category.LOAD, (_I, _I), _F),
    Opcode.FSTORE: OpInfo(Category.STORE, (_F, _I, _I), None, side_effect=True),
    Opcode.LOADS: OpInfo(Category.LOAD, (_I, _I), _I, can_trap=False, speculative=True),
    Opcode.FLOADS: OpInfo(Category.LOAD, (_I, _I), _F, can_trap=False, speculative=True),

    Opcode.BR: OpInfo(Category.BRANCH, (_P,), None, can_trap=False, is_terminator=True),
    Opcode.JMP: OpInfo(Category.JUMP, (), None, can_trap=False, is_terminator=True),
    Opcode.RET: OpInfo(Category.RET, (), None, can_trap=False, is_terminator=True),
    Opcode.CALL: OpInfo(Category.CALL, (), None, side_effect=True),
    Opcode.HALT: OpInfo(Category.MISC, (), None, side_effect=True, can_trap=False,
                        is_terminator=True),
    Opcode.NOP: OpInfo(Category.MISC, (), None, can_trap=False),
}

#: Compare opcodes and their negations, used when the trace scheduler or the
#: branch lowering needs to invert a test instead of inserting a PNOT.
CMP_NEGATION: dict[Opcode, Opcode] = {
    Opcode.CMPEQ: Opcode.CMPNE, Opcode.CMPNE: Opcode.CMPEQ,
    Opcode.CMPLT: Opcode.CMPGE, Opcode.CMPGE: Opcode.CMPLT,
    Opcode.CMPLE: Opcode.CMPGT, Opcode.CMPGT: Opcode.CMPLE,
    Opcode.FCMPEQ: Opcode.FCMPNE, Opcode.FCMPNE: Opcode.FCMPEQ,
    Opcode.FCMPLT: Opcode.FCMPGE, Opcode.FCMPGE: Opcode.FCMPLT,
    Opcode.FCMPLE: Opcode.FCMPGT, Opcode.FCMPGT: Opcode.FCMPLE,
}

#: Map each plain load opcode to its dismissable (speculative) variant.
SPECULATIVE_LOAD: dict[Opcode, Opcode] = {
    Opcode.LOAD: Opcode.LOADS,
    Opcode.FLOAD: Opcode.FLOADS,
}

#: Byte width of the memory access performed by each memory opcode.
ACCESS_SIZE: dict[Opcode, int] = {
    Opcode.LOAD: 4, Opcode.LOADS: 4, Opcode.STORE: 4,
    Opcode.FLOAD: 8, Opcode.FLOADS: 8, Opcode.FSTORE: 8,
}


def opcode_by_name(name: str) -> Opcode:
    """Look up an opcode from its textual mnemonic (raises KeyError)."""
    return Opcode(name)
