"""Textual serialisation of IR modules/functions.

The format round-trips through :mod:`repro.ir.parser`; it exists so tests
can assert on readable dumps and so examples can show compiler stages.
"""

from __future__ import annotations

from .function import DataObject, Function, Module
from .memref import MemRef
from .operation import Operation


def format_memref(ref: MemRef) -> str:
    base = ref.base if ref.base is not None else "?"
    if ref.base_unknown_mod and ref.base is not None:
        base += "?"
    parts = [base, str(ref.size), str(ref.const)]
    parts += [f"{v}={c}" for v, c in ref.coeffs]
    return f"!mem({','.join(parts)})"


def format_operation(op: Operation) -> str:
    parts = []
    if op.dest is not None:
        parts.append(f"{op.dest} = ")
    parts.append(op.opcode.value)
    operands = []
    if op.callee is not None:
        operands.append(f"${op.callee}")
    operands += [str(s) for s in op.srcs]
    operands += [str(lbl) for lbl in op.labels]
    if operands:
        parts.append(" " + ", ".join(operands))
    if op.memref is not None:
        parts.append(" " + format_memref(op.memref))
    return "".join(parts)


def format_function(func: Function) -> str:
    params = ", ".join(str(p) for p in func.params)
    ret = f" -> {func.ret_class.value}" if func.ret_class else ""
    lines = [f"func {func.name}({params}){ret} {{"]
    for block in func.blocks.values():
        lines.append(f"{block.name}:")
        lines += [f"  {format_operation(op)}" for op in block.ops]
    lines.append("}")
    return "\n".join(lines)


def format_data(obj: DataObject) -> str:
    head = f"data {obj.name} {obj.size} align {obj.align}"
    if obj.init is None:
        return head
    if isinstance(obj.init, bytes):
        return f"{head} bytes {obj.init.hex()}"
    triples = " ".join(f"({off},{width},{value!r})"
                       for off, width, value in obj.init)
    return f"{head} init {triples}"


def format_module(module: Module) -> str:
    chunks = [f"module {module.name}"]
    chunks += [format_data(obj) for obj in module.data.values()]
    chunks += [format_function(func) for func in module.functions.values()]
    return "\n\n".join(chunks) + "\n"
