"""Parser for the textual IR format produced by :mod:`repro.ir.printer`."""

from __future__ import annotations

import re

from ..errors import ParseError
from .function import DataObject, Function, Module
from .memref import MemRef
from .opcodes import OP_INFO, Opcode
from .operation import Operation
from .values import Imm, Label, RegClass, Symbol, VReg

_VREG_RE = re.compile(r"%([A-Za-z0-9_.$-]+):([ifp])$")
_INT_RE = re.compile(r"-?\d+$")
_FLOAT_RE = re.compile(r"-?(\d+\.\d*([eE][-+]?\d+)?|\d+[eE][-+]?\d+|inf|nan)$")
_MEM_RE = re.compile(r"!mem\(([^)]*)\)")
_FUNC_RE = re.compile(r"func\s+([A-Za-z0-9_.$-]+)\(([^)]*)\)\s*(->\s*([ifp]))?\s*\{$")
_DATA_RE = re.compile(
    r"data\s+(\S+)\s+(\d+)\s+align\s+(\d+)(?:\s+(init|bytes)\s+(.*))?$")
_TRIPLE_RE = re.compile(r"\((\d+),(\d+),([^)]+)\)")


def _parse_vreg(text: str, line: int) -> VReg:
    m = _VREG_RE.match(text)
    if not m:
        raise ParseError(f"bad register {text!r}", line)
    return VReg(m.group(1), RegClass(m.group(2)))


def _parse_operand(text: str, line: int):
    text = text.strip()
    if text.startswith("%"):
        return _parse_vreg(text, line)
    if text.startswith("@"):
        return Label(text[1:])
    if text.startswith("$"):
        return Symbol(text[1:])
    if _INT_RE.match(text):
        return Imm(int(text))
    if _FLOAT_RE.match(text):
        return Imm(float(text), RegClass.FLT)
    raise ParseError(f"bad operand {text!r}", line)


def parse_memref(text: str, line: int = 0) -> MemRef:
    """Parse the ``base,size,const[,var=coeff]*`` body of a !mem annotation."""
    parts = [p.strip() for p in text.split(",") if p.strip()]
    if len(parts) < 3:
        raise ParseError(f"bad !mem annotation {text!r}", line)
    base_text = parts[0]
    unknown_mod = base_text.endswith("?") and base_text != "?"
    base_text = base_text.rstrip("?") or None
    if parts[0] == "?":
        base_text = None
    coeffs = {}
    for item in parts[3:]:
        var, _, coeff = item.partition("=")
        coeffs[var] = int(coeff)
    return MemRef.make(base_text, coeffs, const=int(parts[2]),
                       size=int(parts[1]), base_unknown_mod=unknown_mod)


def parse_operation(text: str, line: int = 0) -> Operation:
    """Parse one operation line (without leading whitespace)."""
    memref = None
    mem_match = _MEM_RE.search(text)
    if mem_match:
        memref = parse_memref(mem_match.group(1), line)
        text = text[:mem_match.start()].strip()

    dest = None
    if "= " in text and text.startswith("%"):
        dest_text, _, text = text.partition("=")
        dest = _parse_vreg(dest_text.strip(), line)
        text = text.strip()

    mnemonic, _, rest = text.partition(" ")
    try:
        opcode = Opcode(mnemonic.strip())
    except ValueError:
        raise ParseError(f"unknown opcode {mnemonic!r}", line) from None

    operands = [_parse_operand(tok, line)
                for tok in rest.split(",")] if rest.strip() else []

    callee = None
    if opcode is Opcode.CALL:
        if not operands or not isinstance(operands[0], Symbol):
            raise ParseError("call needs a $callee first operand", line)
        callee = operands.pop(0).name

    labels = tuple(o for o in operands if isinstance(o, Label))
    srcs = [o for o in operands if not isinstance(o, Label)]

    # Immediate operand classes come from opcode metadata (e.g. `1` used as
    # a predicate or float immediate).
    info = OP_INFO[opcode]
    for i, src in enumerate(srcs):
        if isinstance(src, Imm) and i < len(info.src_classes):
            want = info.src_classes[i]
            if src.cls is not want and not isinstance(src.value, float):
                srcs[i] = Imm(src.value, want)
            elif want is RegClass.FLT and src.cls is not RegClass.FLT:
                srcs[i] = Imm(float(src.value), RegClass.FLT)
    return Operation(opcode, dest, srcs, labels, callee, memref)


def parse_module(text: str) -> Module:
    """Parse a whole module dump back into IR objects."""
    module: Module | None = None
    func: Function | None = None
    block = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip() if not raw.strip().startswith(
            "!") else raw.strip()
        if not line:
            continue
        if line.startswith("module "):
            module = Module(line.split(None, 1)[1].strip())
        elif line.startswith("data "):
            if module is None:
                raise ParseError("data before module header", lineno)
            m = _DATA_RE.match(line)
            if not m:
                raise ParseError(f"bad data line {line!r}", lineno)
            name, size, align, kind, body = m.groups()
            init = None
            if kind == "bytes":
                init = bytes.fromhex(body.strip())
            elif kind == "init":
                init = []
                for off, width, value in _TRIPLE_RE.findall(body):
                    parsed = float(value) if ("." in value or "e" in value
                                              or "E" in value) else int(value)
                    init.append((int(off), int(width), parsed))
            module.add_data(DataObject(name, int(size), init, int(align)))
        elif line.startswith("func "):
            if module is None:
                raise ParseError("func before module header", lineno)
            m = _FUNC_RE.match(line)
            if not m:
                raise ParseError(f"bad func header {line!r}", lineno)
            name, params_text, _, ret = m.groups()
            params = [_parse_vreg(p.strip(), lineno)
                      for p in params_text.split(",") if p.strip()]
            func = Function(name, params, RegClass(ret) if ret else None)
            module.add_function(func)
            block = None
        elif line == "}":
            func = None
            block = None
        elif line.endswith(":") and " " not in line:
            if func is None:
                raise ParseError("label outside function", lineno)
            block = func.add_block(line[:-1])
        else:
            if block is None:
                raise ParseError(f"operation outside block: {line!r}", lineno)
            block.append(parse_operation(line, lineno))

    if module is None:
        raise ParseError("no module header found")
    return module
