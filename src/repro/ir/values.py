"""Value kinds used by IR operations: virtual registers, immediates, labels.

The IR is a conventional three-address virtual-register code.  Registers are
typed by :class:`RegClass`, mirroring the TRACE's physically distinct
register banks:

* ``INT``  — 32-bit integers (I-board general registers),
* ``FLT``  — 64-bit IEEE floats (F-board general registers),
* ``PRED`` — one-bit compare results (the paper's *branch bank* elements).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Union


class RegClass(Enum):
    """The bank class of a register or immediate."""

    INT = "i"
    FLT = "f"
    PRED = "p"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegClass.{self.name}"


@dataclass(frozen=True, slots=True)
class VReg:
    """A virtual register, unique by (name, cls) within a function."""

    name: str
    cls: RegClass

    def __str__(self) -> str:
        return f"%{self.name}:{self.cls.value}"


@dataclass(frozen=True, slots=True)
class Imm:
    """An immediate constant operand.

    Integer immediates model the TRACE's 6/17/32-bit immediate fields;
    float immediates are materialised by the backend (the real machine
    builds them from 32-bit halves).
    """

    value: Union[int, float]
    cls: RegClass = RegClass.INT

    def __post_init__(self) -> None:
        if self.cls is RegClass.FLT and not isinstance(self.value, float):
            object.__setattr__(self, "value", float(self.value))

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class Label:
    """A reference to a basic block, used by branch terminators."""

    name: str

    def __str__(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True, slots=True)
class Symbol:
    """The address of a module-level data object (array/scalar in memory).

    A ``Symbol`` evaluates to the byte address assigned to the object when
    the module is loaded.  The disambiguator treats distinct symbols as
    provably non-aliasing bases.
    """

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


#: Anything that may appear in an operation's source-operand list.
Operand = Union[VReg, Imm, Label, Symbol]


def operand_str(op: Operand) -> str:
    """Render any operand in the textual IR syntax."""
    return str(op)


INT32_MIN = -(1 << 31)
INT32_MAX = (1 << 31) - 1


def wrap32(value: int) -> int:
    """Wrap a Python int to signed 32-bit two's-complement range.

    All integer arithmetic in the IR (and on the simulated TRACE, whose
    integer datapaths are 32 bits wide) wraps at 32 bits.
    """
    value &= 0xFFFFFFFF
    if value > INT32_MAX:
        value -= 1 << 32
    return value
