"""Basic blocks: straight-line operation sequences ending in a terminator."""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import IRError
from .opcodes import Opcode
from .operation import Operation
from .values import Label


class BasicBlock:
    """A named basic block.

    The last operation must be a terminator (``BR``/``JMP``/``RET``/``HALT``)
    once the function is complete; the builder allows blocks to be open while
    under construction.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.ops: list[Operation] = []

    # ------------------------------------------------------------------
    def append(self, op: Operation) -> Operation:
        if self.is_terminated:
            raise IRError(f"appending to terminated block {self.name}")
        self.ops.append(op)
        return op

    def insert(self, index: int, op: Operation) -> Operation:
        self.ops.insert(index, op)
        return op

    @property
    def terminator(self) -> Operation | None:
        """The terminating operation, or None while under construction."""
        if self.ops and self.ops[-1].is_terminator:
            return self.ops[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    @property
    def body(self) -> list[Operation]:
        """All operations except the terminator."""
        if self.is_terminated:
            return self.ops[:-1]
        return list(self.ops)

    def successors(self) -> list[str]:
        """Successor block names, in (taken, fallthrough) order for BR."""
        term = self.terminator
        if term is None:
            raise IRError(f"block {self.name} has no terminator")
        return [lbl.name for lbl in term.labels]

    def set_terminator(self, op: Operation) -> None:
        """Replace (or install) the terminator."""
        if not op.is_terminator:
            raise IRError(f"{op} is not a terminator")
        if self.is_terminated:
            self.ops[-1] = op
        else:
            self.ops.append(op)

    def retarget(self, old: str, new: str) -> int:
        """Rewrite terminator labels ``old`` -> ``new``; return #rewritten."""
        term = self.terminator
        if term is None:
            return 0
        count = 0
        labels = list(term.labels)
        for i, lbl in enumerate(labels):
            if lbl.name == old:
                labels[i] = Label(new)
                count += 1
        term.labels = tuple(labels)
        return count

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __str__(self) -> str:
        lines = [f"{self.name}:"]
        lines += [f"  {op}" for op in self.ops]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<block {self.name} ({len(self.ops)} ops)>"
