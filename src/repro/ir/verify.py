"""IR verifier: structural and type checks over functions and modules.

The compiler pipeline runs the verifier after every pass when
``repro.opt.pass_manager.PassManager(verify=True)`` is used (the default in
tests), so a pass that corrupts the IR fails loudly at the point of damage.
"""

from __future__ import annotations

from ..errors import IRError
from .function import Function, Module
from .opcodes import OP_INFO, Opcode
from .operation import Operation
from .values import Imm, RegClass, Symbol, VReg


def verify_operation(op: Operation, where: str) -> None:
    """Check operand counts/classes of a single operation."""
    info = OP_INFO[op.opcode]

    if op.opcode is Opcode.RET:
        if len(op.srcs) > 1:
            raise IRError(f"{where}: ret takes at most one value: {op}")
    elif op.opcode is Opcode.CALL:
        if op.callee is None:
            raise IRError(f"{where}: call without callee: {op}")
    else:
        if len(op.srcs) != len(info.src_classes):
            raise IRError(
                f"{where}: {op.opcode.value} wants {len(info.src_classes)}"
                f" operands, has {len(op.srcs)}: {op}")
        for i, (src, want) in enumerate(zip(op.srcs, info.src_classes)):
            if isinstance(src, VReg) and src.cls is not want:
                raise IRError(
                    f"{where}: operand {i} of {op} is {src.cls.name},"
                    f" wants {want.name}")
            if isinstance(src, Imm) and src.cls is not want:
                raise IRError(
                    f"{where}: immediate operand {i} of {op} is"
                    f" {src.cls.name}, wants {want.name}")
            if isinstance(src, Symbol) and want is not RegClass.INT:
                raise IRError(f"{where}: symbol operand in non-int slot: {op}")

    if op.opcode not in (Opcode.CALL,):
        if info.dest_class is None and op.dest is not None:
            raise IRError(f"{where}: {op.opcode.value} cannot define: {op}")
        if (info.dest_class is not None and op.dest is not None
                and op.dest.cls is not info.dest_class):
            raise IRError(
                f"{where}: dest of {op} is {op.dest.cls.name},"
                f" wants {info.dest_class.name}")

    expected_labels = {Opcode.BR: 2, Opcode.JMP: 1}.get(op.opcode, 0)
    if len(op.labels) != expected_labels:
        raise IRError(f"{where}: {op.opcode.value} wants {expected_labels}"
                      f" labels, has {len(op.labels)}: {op}")


def verify_function(func: Function, module: Module | None = None) -> None:
    """Verify one function; pass the module to also check calls/symbols."""
    if not func.blocks:
        raise IRError(f"function {func.name} has no blocks")

    for bname, block in func.blocks.items():
        where = f"{func.name}:{bname}"
        if block.terminator is None:
            raise IRError(f"{where}: block is not terminated")
        for i, op in enumerate(block.ops):
            if op.is_terminator and i != len(block.ops) - 1:
                raise IRError(f"{where}: terminator {op} mid-block")
            verify_operation(op, where)
            for src in op.srcs:
                if isinstance(src, Symbol) and module is not None:
                    if src.name not in module.data:
                        raise IRError(f"{where}: unknown symbol {src}")
            if op.opcode is Opcode.CALL and module is not None:
                callee = module.functions.get(op.callee or "")
                if callee is None:
                    raise IRError(f"{where}: call to unknown {op.callee!r}")
                if len(op.srcs) != len(callee.params):
                    raise IRError(
                        f"{where}: call {op.callee} wants"
                        f" {len(callee.params)} args, has {len(op.srcs)}")
                for arg, param in zip(op.srcs, callee.params):
                    cls = arg.cls if isinstance(arg, (VReg, Imm)) else RegClass.INT
                    if cls is not param.cls:
                        raise IRError(f"{where}: arg class mismatch in {op}")
                if op.dest is not None and callee.ret_class is not op.dest.cls:
                    raise IRError(f"{where}: call result class mismatch: {op}")
            if op.opcode is Opcode.RET and module is not None:
                if func.ret_class is None and op.srcs:
                    raise IRError(f"{where}: ret with value in void function")
                if func.ret_class is not None and not op.srcs:
                    raise IRError(f"{where}: ret without value")

    # All branch targets must exist (predecessors() also validates this).
    func.predecessors()


def verify_module(module: Module) -> None:
    """Verify every function in the module."""
    for func in module.functions.values():
        verify_function(func, module)
