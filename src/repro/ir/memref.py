"""Symbolic memory-reference descriptions attached to loads and stores.

The paper's *disambiguator* (section 6.4.2) "builds derivation trees for
array index expressions and attempts to solve the diophantine equations in
terms of the loop induction variables."  We carry the derivation result on
each memory operation as a :class:`MemRef`: an affine form

    address = base + sum(coeff_i * var_i) + const        (bytes)

over symbolic terms (loop induction variables, unknown arguments).  The
front end and the unroller keep these up to date; the disambiguator consumes
them.  A memory operation without a ``MemRef`` is treated as "may conflict
with anything" (the conservative "yes/maybe" answer).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MemRef:
    """An affine symbolic address description.

    Attributes:
        base: symbolic base region name (array/symbol name), or ``None`` when
            the base is statically unknown (e.g. an arbitrary pointer).  Two
            refs with distinct non-None bases can never alias (distinct
            module-level objects); a ``None`` base may alias anything.
        coeffs: mapping from symbolic variable name to integer byte
            coefficient (e.g. ``{"i": 8}`` for ``a[i]`` with 8-byte elems).
        const: constant byte offset.
        size: access width in bytes (4 or 8).
        base_unknown_mod: True when the base address itself is not known even
            modulo the bank interleave (an argument array) — the case the
            paper's *relative* disambiguation was invented for.
    """

    base: str | None
    coeffs: tuple[tuple[str, int], ...] = ()
    const: int = 0
    size: int = 4
    base_unknown_mod: bool = False

    @staticmethod
    def make(base: str | None, coeffs: dict[str, int] | None = None,
             const: int = 0, size: int = 4,
             base_unknown_mod: bool = False) -> "MemRef":
        """Build a MemRef from a dict of coefficients (normalised, sorted)."""
        items = tuple(sorted((v, c) for v, c in (coeffs or {}).items() if c != 0))
        return MemRef(base, items, const, size, base_unknown_mod)

    def coeff_dict(self) -> dict[str, int]:
        """The affine coefficients as a fresh dict."""
        return dict(self.coeffs)

    def shifted(self, delta: int) -> "MemRef":
        """This reference with ``delta`` bytes added to the constant term.

        Used by the loop unroller: the copy of ``a[i]`` in unrolled
        iteration *k* becomes ``a[i] + k*stride``.
        """
        return MemRef(self.base, self.coeffs, self.const + delta, self.size,
                      self.base_unknown_mod)

    def substituted(self, var: str, replacement_coeffs: dict[str, int],
                    replacement_const: int) -> "MemRef":
        """Substitute ``var := affine(replacement)`` into this reference."""
        coeffs = self.coeff_dict()
        k = coeffs.pop(var, 0)
        const = self.const + k * replacement_const
        for v, c in replacement_coeffs.items():
            coeffs[v] = coeffs.get(v, 0) + k * c
        return MemRef.make(self.base, coeffs, const, self.size,
                           self.base_unknown_mod)

    def __str__(self) -> str:
        terms = [f"{c}*{v}" for v, c in self.coeffs]
        terms.append(str(self.const))
        base = self.base if self.base is not None else "?"
        mod = "?" if self.base_unknown_mod else ""
        return f"[{base}{mod} + {' + '.join(terms)} /{self.size}]"
