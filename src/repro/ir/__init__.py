"""IR subsystem: values, operations, blocks, functions, builder, interpreter.

This package defines the compiler's intermediate representation — a
virtual-register three-address code over an explicit CFG — together with a
textual format, a verifier, and a reference interpreter that fixes the
observable semantics all simulators must match.
"""

from .block import BasicBlock
from .builder import IRBuilder
from .function import DataObject, Function, Module
from .interp import (FUNNY_FLOAT, FUNNY_INT, Interpreter, InterpStats,
                     MemoryImage, Profile, RunResult, run_module)
from .memref import MemRef
from .opcodes import (ACCESS_SIZE, CMP_NEGATION, OP_INFO, SPECULATIVE_LOAD,
                      Category, Opcode, OpInfo)
from .operation import (Operation, make_br, make_call, make_jmp, make_ret)
from .parser import parse_module, parse_operation
from .printer import format_function, format_module, format_operation
from .values import (Imm, Label, Operand, RegClass, Symbol, VReg, wrap32)
from .verify import verify_function, verify_module, verify_operation

__all__ = [
    "BasicBlock", "IRBuilder", "DataObject", "Function", "Module",
    "Interpreter", "InterpStats", "MemoryImage", "Profile", "RunResult",
    "run_module", "FUNNY_FLOAT", "FUNNY_INT", "MemRef",
    "ACCESS_SIZE", "CMP_NEGATION", "OP_INFO", "SPECULATIVE_LOAD",
    "Category", "Opcode", "OpInfo",
    "Operation", "make_br", "make_call", "make_jmp", "make_ret",
    "parse_module", "parse_operation",
    "format_function", "format_module", "format_operation",
    "Imm", "Label", "Operand", "RegClass", "Symbol", "VReg", "wrap32",
    "verify_function", "verify_module", "verify_operation",
]
