"""Functions (CFGs of basic blocks) and modules (functions + data objects)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import IRError
from .block import BasicBlock
from .opcodes import Opcode
from .operation import Operation
from .values import RegClass, VReg


@dataclass
class DataObject:
    """A module-level memory object (array or scalar).

    Attributes:
        name: symbol name referenced by :class:`~repro.ir.values.Symbol`.
        size: size in bytes.
        init: optional initial contents — list of (byte_offset, width, value)
            triples, or a bytes object.
        align: required alignment in bytes (default 8).
    """

    name: str
    size: int
    init: list[tuple[int, int, int | float]] | bytes | None = None
    align: int = 8


class Function:
    """A function: parameter registers plus an ordered CFG of basic blocks.

    Block order matters only for printing and for the entry block (first).
    """

    def __init__(self, name: str, params: list[VReg] | None = None,
                 ret_class: RegClass | None = None) -> None:
        self.name = name
        self.params: list[VReg] = list(params or [])
        self.ret_class = ret_class
        self.blocks: dict[str, BasicBlock] = {}
        self._tmp_counter = itertools.count()
        self._block_counter = itertools.count()

    # ------------------------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return next(iter(self.blocks.values()))

    def add_block(self, name: str | None = None) -> BasicBlock:
        if name is None:
            name = self.fresh_block_name()
        if name in self.blocks:
            raise IRError(f"duplicate block name {name!r} in {self.name}")
        block = BasicBlock(name)
        self.blocks[name] = block
        return block

    def remove_block(self, name: str) -> None:
        del self.blocks[name]

    def block(self, name: str) -> BasicBlock:
        try:
            return self.blocks[name]
        except KeyError:
            raise IRError(f"no block {name!r} in function {self.name}") from None

    def fresh_block_name(self, hint: str = "bb") -> str:
        while True:
            name = f"{hint}{next(self._block_counter)}"
            if name not in self.blocks:
                return name

    def fresh_vreg(self, cls: RegClass, hint: str = "t") -> VReg:
        """A virtual register with a name unused in this function."""
        return VReg(f"{hint}.{next(self._tmp_counter)}", cls)

    # ------------------------------------------------------------------
    def operations(self) -> Iterator[Operation]:
        """All operations in block order."""
        for block in self.blocks.values():
            yield from block.ops

    def predecessors(self) -> dict[str, list[str]]:
        """Map block name -> predecessor block names (in block order)."""
        preds: dict[str, list[str]] = {name: [] for name in self.blocks}
        for name, block in self.blocks.items():
            for succ in block.successors():
                if succ not in preds:
                    raise IRError(
                        f"{self.name}:{name} targets unknown block {succ!r}")
                preds[succ].append(name)
        return preds

    def all_vregs(self) -> set[VReg]:
        regs: set[VReg] = set(self.params)
        for op in self.operations():
            regs.update(op.reg_srcs())
            regs.update(op.defs())
        return regs

    def op_count(self) -> int:
        """Number of operations, excluding NOPs."""
        return sum(1 for op in self.operations() if op.opcode is not Opcode.NOP)

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        ret = f" -> {self.ret_class.value}" if self.ret_class else ""
        lines = [f"func {self.name}({params}){ret} {{"]
        for block in self.blocks.values():
            lines.append(str(block))
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<func {self.name} ({len(self.blocks)} blocks)>"


class Module:
    """A compilation unit: functions plus module-level data objects."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}
        self.data: dict[str, DataObject] = {}

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise IRError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        return func

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function {name!r} in module") from None

    def add_data(self, obj: DataObject) -> DataObject:
        if obj.name in self.data:
            raise IRError(f"duplicate data object {obj.name!r}")
        self.data[obj.name] = obj
        return obj

    def add_array(self, name: str, n_elems: int, elem_size: int = 4,
                  init: Iterable[int | float] | None = None) -> DataObject:
        """Convenience: declare an array of ``n_elems`` fixed-size elements."""
        init_triples = None
        if init is not None:
            init_triples = [(i * elem_size, elem_size, v)
                            for i, v in enumerate(init)]
        return self.add_data(DataObject(name, n_elems * elem_size, init_triples))

    def __str__(self) -> str:
        lines = [f"module {self.name}"]
        for obj in self.data.values():
            lines.append(f"data {obj.name}[{obj.size}]")
        for func in self.functions.values():
            lines.append(str(func))
        return "\n\n".join(lines)
