"""The TRACE machine model: configurations, resources, schedules, encoding."""

from .config import (MachineConfig, TRACE_7_200, TRACE_14_200, TRACE_28_200)
from .encoding import (BLOCK_INSTRUCTIONS, MASK_WORDS, DecodedOp,
                       PackedProgram, decode_op_word, encode_function,
                       encode_instruction, encode_op_word, pack_program,
                       unpack_program)
from .resources import (F_UNITS, IALU_UNITS, Placement, ReservationTable,
                        Unit, imm_value, latency_of, latency_table,
                        needs_imm_word, units_for)
from .schedule import (BranchTest, CompiledFunction, CompiledProgram,
                       LongInstruction, ScheduledOp, format_compiled,
                       is_phys, phys_index, phys_reg)

__all__ = [
    "MachineConfig", "TRACE_7_200", "TRACE_14_200", "TRACE_28_200",
    "BLOCK_INSTRUCTIONS", "MASK_WORDS", "DecodedOp", "PackedProgram",
    "decode_op_word", "encode_function", "encode_instruction",
    "encode_op_word", "pack_program", "unpack_program",
    "F_UNITS", "IALU_UNITS", "Placement", "ReservationTable", "Unit",
    "imm_value", "latency_of", "latency_table", "needs_imm_word",
    "units_for",
    "BranchTest", "CompiledFunction", "CompiledProgram", "LongInstruction",
    "ScheduledOp", "format_compiled", "is_phys", "phys_index", "phys_reg",
]
