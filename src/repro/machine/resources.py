"""Functional-unit slots, latencies, and the scheduler's reservation table.

The compiler has *sole* responsibility for resource usage on the TRACE, so
this table is the machine's whole synchronization story: if an operation
fits the table, the hardware will execute it conflict-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import ScheduleError
from ..ir import Category, Opcode, Operation
from .config import MachineConfig


class Unit(Enum):
    """One functional-unit slot within an I-F pair's instruction slice."""

    IALU0_E = "ialu0.e"   # I-board ALU0, early beat
    IALU1_E = "ialu1.e"   # I-board ALU1, early beat
    IALU0_L = "ialu0.l"   # I-board ALU0, late beat
    IALU1_L = "ialu1.l"   # I-board ALU1, late beat
    FALU = "falu"         # F-board adder/ALU-A pipeline
    FMUL = "fmul"         # F-board multiplier/ALU-M pipeline

    @property
    def beat_offset(self) -> int:
        """Beat within the instruction at which the unit issues (0 or 1)."""
        return 1 if self.value.endswith(".l") else 0

    @property
    def is_integer_unit(self) -> bool:
        return self.value.startswith("ialu")


#: Integer-board slots in issue order (early slots first: results one beat
#: earlier), then float-board slots.
IALU_UNITS = (Unit.IALU0_E, Unit.IALU1_E, Unit.IALU0_L, Unit.IALU1_L)
F_UNITS = (Unit.FALU, Unit.FMUL)

#: Which units may execute each operation category.  The F-board ALUs run
#: 1-beat integer operations too ("fast moves", SELECT — paper section 6.2),
#: after the integer slots are preferred.
_CATEGORY_UNITS: dict[Category, tuple[Unit, ...]] = {
    Category.INT_ALU: IALU_UNITS + F_UNITS,
    Category.INT_CMP: IALU_UNITS,          # compare feeds branch banks
    Category.PRED: IALU_UNITS + F_UNITS,
    Category.INT_MUL: IALU_UNITS,          # 16-bit multiply primitives
    Category.INT_DIV: IALU_UNITS,
    Category.FLT_ADD: (Unit.FALU,),
    Category.FLT_MUL: (Unit.FMUL,),
    Category.FLT_DIV: (Unit.FMUL,),        # divide shares the multiplier
    Category.FLT_CMP: (Unit.FALU,),
    Category.CVT: (Unit.FALU,),
    Category.LOAD: IALU_UNITS,             # memory issues from the I board
    Category.STORE: IALU_UNITS,
}


def units_for(op: Operation) -> tuple[Unit, ...]:
    """Units able to execute ``op`` (empty for control/call pseudo-ops)."""
    return _CATEGORY_UNITS.get(op.category, ())


#: config -> category latency table; configs are frozen dataclasses, so a
#: table never goes stale and every simulator shares the same few entries
_LATENCY_TABLES: dict[MachineConfig, dict[Category, int]] = {}


def latency_table(config: MachineConfig) -> dict[Category, int]:
    """The category->beats latency table for ``config`` (built once)."""
    table = _LATENCY_TABLES.get(config)
    if table is None:
        table = {
            Category.INT_ALU: config.lat_int_alu,
            Category.INT_CMP: config.lat_int_alu,
            Category.PRED: config.lat_int_alu,
            Category.INT_MUL: config.lat_int_mul,
            Category.INT_DIV: config.lat_int_div,
            Category.FLT_ADD: config.lat_flt_add,
            Category.FLT_MUL: config.lat_flt_mul,
            Category.FLT_DIV: config.lat_flt_div,
            Category.FLT_CMP: config.lat_flt_cmp,
            Category.CVT: config.lat_cvt,
            Category.LOAD: config.lat_mem,
            Category.STORE: 0,
        }
        _LATENCY_TABLES[config] = table
    return table


def latency_of(op: Operation, config: MachineConfig) -> int:
    """Result latency in beats from the unit's issue beat."""
    return latency_table(config).get(op.category, 1)


@dataclass
class Placement:
    """Where one operation landed in the schedule."""

    instruction: int          # long-instruction index within the trace
    pair: int                 # I-F pair 0..n_pairs-1
    unit: Unit

    @property
    def issue_beat(self) -> int:
        return self.instruction * 2 + self.unit.beat_offset


class ReservationTable:
    """Tracks slot/bus/immediate usage over a trace's instructions.

    Cheap-to-grow row-per-instruction structure; the list scheduler probes
    ``try_place`` for the earliest legal slot.
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self._units: dict[tuple[int, int, Unit], bool] = {}
        #: per (instruction, beat_offset): count of memory refs issued by
        #: each pair's I board (max 1 per board per beat)
        self._mem_issue: dict[tuple[int, int, int], bool] = {}
        #: 32-bit bus reservations per absolute beat, per bus kind
        self._buses: dict[tuple[str, int], int] = {}
        #: shared 32-bit immediate word per (instruction, pair, beat_offset)
        self._imm: dict[tuple[int, int, int], object] = {}
        #: branch test per (instruction, pair)
        self._branch: dict[tuple[int, int], bool] = {}

    # -- units ------------------------------------------------------------
    def unit_free(self, instruction: int, pair: int, unit: Unit) -> bool:
        return not self._units.get((instruction, pair, unit), False)

    def take_unit(self, instruction: int, pair: int, unit: Unit) -> None:
        key = (instruction, pair, unit)
        if self._units.get(key):
            raise ScheduleError(f"unit double-booked: {key}")
        self._units[key] = True

    # -- memory issue ports -------------------------------------------------
    def mem_issue_free(self, instruction: int, pair: int,
                       beat_offset: int) -> bool:
        return not self._mem_issue.get((instruction, pair, beat_offset), False)

    def take_mem_issue(self, instruction: int, pair: int,
                       beat_offset: int) -> None:
        key = (instruction, pair, beat_offset)
        if self._mem_issue.get(key):
            raise ScheduleError(f"memory port double-booked: {key}")
        self._mem_issue[key] = True

    # -- buses ---------------------------------------------------------------
    def bus_free(self, kind: str, beat: int, beats: int = 1) -> bool:
        limit = {"iload": self.config.n_load_buses,
                 "fload": self.config.n_load_buses,
                 "store": self.config.n_store_buses}[kind]
        return all(self._buses.get((kind, beat + i), 0) < limit
                   for i in range(beats))

    def take_bus(self, kind: str, beat: int, beats: int = 1) -> None:
        if not self.bus_free(kind, beat, beats):
            raise ScheduleError(f"bus oversubscribed: {kind}@{beat}")
        for i in range(beats):
            self._buses[(kind, beat + i)] = \
                self._buses.get((kind, beat + i), 0) + 1

    # -- immediates ------------------------------------------------------------
    def imm_free(self, instruction: int, pair: int, beat_offset: int,
                 value) -> bool:
        """One 32-bit immediate word per pair per beat, shareable by value."""
        current = self._imm.get((instruction, pair, beat_offset), _NO_IMM)
        return current is _NO_IMM or current == value

    def take_imm(self, instruction: int, pair: int, beat_offset: int,
                 value) -> None:
        if not self.imm_free(instruction, pair, beat_offset, value):
            raise ScheduleError("immediate word conflict")
        self._imm[(instruction, pair, beat_offset)] = value

    # -- branches ------------------------------------------------------------
    def branch_free(self, instruction: int, pair: int) -> bool:
        return not self._branch.get((instruction, pair), False)

    def take_branch(self, instruction: int, pair: int) -> None:
        key = (instruction, pair)
        if self._branch.get(key):
            raise ScheduleError(f"branch slot double-booked: {key}")
        self._branch[key] = True

    def branches_in(self, instruction: int) -> int:
        return sum(1 for (ins, _), used in self._branch.items()
                   if ins == instruction and used)


_NO_IMM = object()


def needs_imm_word(op: Operation) -> bool:
    """Does the op require the pair's shared 32-bit immediate field?

    Small integer immediates (6-bit signed, paper's short form) ride inside
    the source-register field; anything larger — any float immediate, and
    any symbol address — claims the shared word.
    """
    return imm_value(op) is not _NO_IMM


def imm_value(op: Operation):
    """The value that would occupy the shared immediate word.

    Returns the sentinel ``_NO_IMM`` (exported via :func:`needs_imm_word`)
    when the op carries no wide immediate.
    """
    from ..ir import Imm, Symbol
    for src in op.srcs:
        if isinstance(src, Symbol):
            return ("sym", src.name)
        if isinstance(src, Imm):
            if isinstance(src.value, float) or not -32 <= int(src.value) <= 31:
                return src.value
    return _NO_IMM
