"""Functional-unit slots, latencies, and the scheduler's reservation table.

The compiler has *sole* responsibility for resource usage on the TRACE, so
this table is the machine's whole synchronization story: if an operation
fits the table, the hardware will execute it conflict-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import ScheduleError
from ..ir import Category, Opcode, Operation
from .config import MachineConfig


class Unit(Enum):
    """One functional-unit slot within an I-F pair's instruction slice."""

    IALU0_E = "ialu0.e"   # I-board ALU0, early beat
    IALU1_E = "ialu1.e"   # I-board ALU1, early beat
    IALU0_L = "ialu0.l"   # I-board ALU0, late beat
    IALU1_L = "ialu1.l"   # I-board ALU1, late beat
    FALU = "falu"         # F-board adder/ALU-A pipeline
    FMUL = "fmul"         # F-board multiplier/ALU-M pipeline

    @property
    def beat_offset(self) -> int:
        """Beat within the instruction at which the unit issues (0 or 1)."""
        return 1 if self.value.endswith(".l") else 0

    @property
    def is_integer_unit(self) -> bool:
        return self.value.startswith("ialu")


#: Integer-board slots in issue order (early slots first: results one beat
#: earlier), then float-board slots.
IALU_UNITS = (Unit.IALU0_E, Unit.IALU1_E, Unit.IALU0_L, Unit.IALU1_L)
F_UNITS = (Unit.FALU, Unit.FMUL)

#: Which units may execute each operation category.  The F-board ALUs run
#: 1-beat integer operations too ("fast moves", SELECT — paper section 6.2),
#: after the integer slots are preferred.
_CATEGORY_UNITS: dict[Category, tuple[Unit, ...]] = {
    Category.INT_ALU: IALU_UNITS + F_UNITS,
    Category.INT_CMP: IALU_UNITS,          # compare feeds branch banks
    Category.PRED: IALU_UNITS + F_UNITS,
    Category.INT_MUL: IALU_UNITS,          # 16-bit multiply primitives
    Category.INT_DIV: IALU_UNITS,
    Category.FLT_ADD: (Unit.FALU,),
    Category.FLT_MUL: (Unit.FMUL,),
    Category.FLT_DIV: (Unit.FMUL,),        # divide shares the multiplier
    Category.FLT_CMP: (Unit.FALU,),
    Category.CVT: (Unit.FALU,),
    Category.LOAD: IALU_UNITS,             # memory issues from the I board
    Category.STORE: IALU_UNITS,
}


def units_for(op: Operation) -> tuple[Unit, ...]:
    """Units able to execute ``op`` (empty for control/call pseudo-ops)."""
    return _CATEGORY_UNITS.get(op.category, ())


#: config -> category latency table; configs are frozen dataclasses, so a
#: table never goes stale and every simulator shares the same few entries
_LATENCY_TABLES: dict[MachineConfig, dict[Category, int]] = {}


def latency_table(config: MachineConfig) -> dict[Category, int]:
    """The category->beats latency table for ``config`` (built once)."""
    table = _LATENCY_TABLES.get(config)
    if table is None:
        table = {
            Category.INT_ALU: config.lat_int_alu,
            Category.INT_CMP: config.lat_int_alu,
            Category.PRED: config.lat_int_alu,
            Category.INT_MUL: config.lat_int_mul,
            Category.INT_DIV: config.lat_int_div,
            Category.FLT_ADD: config.lat_flt_add,
            Category.FLT_MUL: config.lat_flt_mul,
            Category.FLT_DIV: config.lat_flt_div,
            Category.FLT_CMP: config.lat_flt_cmp,
            Category.CVT: config.lat_cvt,
            Category.LOAD: config.lat_mem,
            Category.STORE: 0,
        }
        _LATENCY_TABLES[config] = table
    return table


def latency_of(op: Operation, config: MachineConfig) -> int:
    """Result latency in beats from the unit's issue beat."""
    return latency_table(config).get(op.category, 1)


@dataclass
class Placement:
    """Where one operation landed in the schedule."""

    instruction: int          # long-instruction index within the trace
    pair: int                 # I-F pair 0..n_pairs-1
    unit: Unit

    @property
    def issue_beat(self) -> int:
        return self.instruction * 2 + self.unit.beat_offset


class ReservationTable:
    """Tracks slot/bus/immediate usage over a run of instructions.

    This is the single booking structure for compiler-owned resources:
    the trace list scheduler and the modulo scheduler both reach it
    through :class:`repro.sched.reservation.ReservationModel` (flat keys
    for the trace, keys mod II for the kernel), and the pipeline
    emitter's section packer uses it directly.

    Every ``take_*`` records an *owner* token (default ``True``), so a
    booking can later be given back with the matching ``release_*`` —
    the iterative modulo scheduler evicts and re-places ops.  The
    ``*_free`` / ``take_*``-raises-on-conflict surface is unchanged for
    callers that never release.
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self._units: dict[tuple[int, int, Unit], object] = {}
        #: per (instruction, pair, beat_offset): the memory ref issued by
        #: that pair's I board (max 1 per board per beat)
        self._mem_issue: dict[tuple[int, int, int], object] = {}
        #: 32-bit bus reservations per beat, per bus kind: owner list in
        #: booking order (capacity checks count the list)
        self._buses: dict[tuple[str, int], list] = {}
        #: shared 32-bit immediate word per (instruction, pair,
        #: beat_offset): [value, owner set] — shareable by equal value
        self._imm: dict[tuple[int, int, int], list] = {}
        #: branch test per (instruction, pair)
        self._branch: dict[tuple[int, int], object] = {}

    def bus_limit(self, kind: str) -> int:
        return {"iload": self.config.n_load_buses,
                "fload": self.config.n_load_buses,
                "store": self.config.n_store_buses}[kind]

    # -- units ------------------------------------------------------------
    def unit_free(self, instruction: int, pair: int, unit: Unit) -> bool:
        return (instruction, pair, unit) not in self._units

    def unit_owner(self, instruction: int, pair: int, unit: Unit):
        """The booking's owner token, or None when the slot is free."""
        return self._units.get((instruction, pair, unit))

    def take_unit(self, instruction: int, pair: int, unit: Unit,
                  owner=True) -> None:
        key = (instruction, pair, unit)
        if key in self._units:
            raise ScheduleError(f"unit double-booked: {key}")
        self._units[key] = owner

    def release_unit(self, instruction: int, pair: int, unit: Unit) -> None:
        self._units.pop((instruction, pair, unit), None)

    # -- memory issue ports -------------------------------------------------
    def mem_issue_free(self, instruction: int, pair: int,
                       beat_offset: int) -> bool:
        return (instruction, pair, beat_offset) not in self._mem_issue

    def mem_issue_owner(self, instruction: int, pair: int, beat_offset: int):
        return self._mem_issue.get((instruction, pair, beat_offset))

    def take_mem_issue(self, instruction: int, pair: int,
                       beat_offset: int, owner=True) -> None:
        key = (instruction, pair, beat_offset)
        if key in self._mem_issue:
            raise ScheduleError(f"memory port double-booked: {key}")
        self._mem_issue[key] = owner

    def release_mem_issue(self, instruction: int, pair: int,
                          beat_offset: int) -> None:
        self._mem_issue.pop((instruction, pair, beat_offset), None)

    # -- buses ---------------------------------------------------------------
    def bus_free(self, kind: str, beat: int, beats: int = 1) -> bool:
        limit = self.bus_limit(kind)
        return all(len(self._buses.get((kind, beat + i), ())) < limit
                   for i in range(beats))

    def bus_holders(self, kind: str, beat: int) -> list:
        """Owner tokens holding the bus at this beat, in booking order."""
        return self._buses.get((kind, beat), [])

    def take_bus(self, kind: str, beat: int, beats: int = 1,
                 owner=True) -> None:
        if not self.bus_free(kind, beat, beats):
            raise ScheduleError(f"bus oversubscribed: {kind}@{beat}")
        for i in range(beats):
            self._buses.setdefault((kind, beat + i), []).append(owner)

    def release_bus(self, kind: str, beat: int, owner=True) -> None:
        holders = self._buses.get((kind, beat))
        if holders and owner in holders:
            holders.remove(owner)
            if not holders:
                del self._buses[(kind, beat)]

    # -- immediates ------------------------------------------------------------
    def imm_free(self, instruction: int, pair: int, beat_offset: int,
                 value) -> bool:
        """One 32-bit immediate word per pair per beat, shareable by value."""
        current = self._imm.get((instruction, pair, beat_offset))
        return current is None or current[0] == value

    def imm_entry(self, instruction: int, pair: int, beat_offset: int):
        """``[value, owner set]`` for the booked word, or None when free."""
        return self._imm.get((instruction, pair, beat_offset))

    def take_imm(self, instruction: int, pair: int, beat_offset: int,
                 value, owner=True) -> None:
        if not self.imm_free(instruction, pair, beat_offset, value):
            raise ScheduleError("immediate word conflict")
        entry = self._imm.setdefault((instruction, pair, beat_offset),
                                     [value, set()])
        entry[1].add(owner)

    def release_imm(self, instruction: int, pair: int, beat_offset: int,
                    owner=True) -> None:
        key = (instruction, pair, beat_offset)
        entry = self._imm.get(key)
        if entry is not None:
            entry[1].discard(owner)
            if not entry[1]:
                del self._imm[key]

    # -- branches ------------------------------------------------------------
    def branch_free(self, instruction: int, pair: int) -> bool:
        return (instruction, pair) not in self._branch

    def take_branch(self, instruction: int, pair: int, owner=True) -> None:
        key = (instruction, pair)
        if key in self._branch:
            raise ScheduleError(f"branch slot double-booked: {key}")
        self._branch[key] = owner

    def release_branch(self, instruction: int, pair: int) -> None:
        self._branch.pop((instruction, pair), None)

    def branches_in(self, instruction: int) -> int:
        return sum(1 for (ins, _pair) in self._branch if ins == instruction)


_NO_IMM = object()


def needs_imm_word(op: Operation) -> bool:
    """Does the op require the pair's shared 32-bit immediate field?

    Small integer immediates (6-bit signed, paper's short form) ride inside
    the source-register field; anything larger — any float immediate, and
    any symbol address — claims the shared word.
    """
    return imm_value(op) is not _NO_IMM


def imm_value(op: Operation):
    """The value that would occupy the shared immediate word.

    Returns the sentinel ``_NO_IMM`` (exported via :func:`needs_imm_word`)
    when the op carries no wide immediate.
    """
    from ..ir import Imm, Symbol
    for src in op.srcs:
        if isinstance(src, Symbol):
            return ("sym", src.name)
        if isinstance(src, Imm):
            if isinstance(src.value, float) or not -32 <= int(src.value) <= 31:
                return src.value
    return _NO_IMM
