"""Instruction-word encoding (paper Figure 3) and the mask-word memory
format (paper section 6.5.1).

The architecture has a *fixed-length* instruction — 8 32-bit words per I-F
pair, wired straight to the functional units from the instruction cache —
but a *variable-length* main-memory representation: instructions are stored
in blocks of four, each block preceded by four 32-bit mask words whose bits
say which 32-bit instruction fields are present; absent fields are no-ops
and cost no memory.  This module implements both, plus the refill-engine
unpacking, and is the measurement instrument for the paper's code-size
results (section 9).

Word layout per pair (Figure 3):

====  =================================
word  contents
====  =================================
0     I ALU0, early beat
1     32-bit immediate constant (early)
2     I ALU1, early beat
3     F adder / ALU-A control
4     I ALU0, late beat
5     32-bit immediate constant (late)
6     I ALU1, late beat
7     F multiplier / ALU-M control
====  =================================

Within an operation word (documented approximation of Figure 3's fields)::

    [31:25] opcode+1   (0 means empty slot / no-op)
    [24:19] dest register index
    [18:17] dest bank  (0 int, 1 float, 2 branch bank)
    [16]    imm flag   (src2 field is a 6-bit signed immediate)
    [15:10] src1 register index
    [9:4]   src2 register index or small immediate (biased +32)
    [3:0]   branch test: branch-bank element + 1 (0 = no test)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..errors import EncodingError
from ..ir import Imm, Opcode, Operation, RegClass, Symbol, VReg
from .config import MachineConfig
from .resources import Unit
from .schedule import (BranchTest, CompiledFunction, LongInstruction,
                       ScheduledOp, phys_index)

#: Stable opcode numbering for the 7-bit opcode field.
OPCODE_INDEX: dict[Opcode, int] = {op: i for i, op in enumerate(Opcode)}
INDEX_OPCODE: dict[int, Opcode] = {i: op for op, i in OPCODE_INDEX.items()}

#: Unit -> word index within a pair's 8-word slice.
UNIT_WORD = {Unit.IALU0_E: 0, Unit.IALU1_E: 2, Unit.FALU: 3,
             Unit.IALU0_L: 4, Unit.IALU1_L: 6, Unit.FMUL: 7}
WORD_UNIT = {w: u for u, w in UNIT_WORD.items()}
IMM_WORDS = (1, 5)          # early, late
WORDS_PER_PAIR = 8

_BANK_CODE = {RegClass.INT: 0, RegClass.FLT: 1, RegClass.PRED: 2}
_CODE_BANK = {v: k for k, v in _BANK_CODE.items()}


def _small_imm(value) -> int | None:
    """Encode an inline 6-bit signed immediate, or None if it won't fit."""
    if isinstance(value, float):
        return None
    if -32 <= value <= 31:
        return value + 32
    return None


def encode_op_word(so: ScheduledOp, branch_elem: int = 0) -> int:
    """Encode one scheduled operation into its 32-bit control word."""
    op = so.op
    word = (OPCODE_INDEX[op.opcode] + 1) << 25
    if op.dest is not None:
        word |= (phys_index(op.dest) & 0x3F) << 19
        word |= _BANK_CODE[op.dest.cls] << 17

    regs = [s for s in op.srcs if isinstance(s, VReg)
            and s.cls is not RegClass.PRED]
    imms = [s for s in op.srcs if isinstance(s, (Imm, Symbol))]
    preds = [s for s in op.srcs if isinstance(s, VReg)
             and s.cls is RegClass.PRED]

    if regs:
        word |= (phys_index(regs[0]) & 0x3F) << 10
    if len(regs) >= 2:
        word |= (phys_index(regs[1]) & 0x3F) << 4
    elif imms:
        small = _small_imm(imms[0].value) if isinstance(imms[0], Imm) else None
        if small is not None:
            word |= 1 << 16
            word |= (small & 0x3F) << 4
        # wide immediates live in the shared immediate word; nothing here
    if preds:
        # predicate source rides the branch-test field (SELECT and friends
        # read the branch bank, like branches do)
        word |= (min(phys_index(preds[0]), 13) + 1) & 0xF
    elif branch_elem:
        word |= branch_elem & 0xF
    return word


@dataclass
class DecodedOp:
    """Structural decode of one control word (for tests and the refill
    engine; execution uses :class:`ScheduledOp` objects directly)."""

    opcode: Opcode
    dest_index: int
    dest_bank: RegClass
    src1_index: int
    src2_index: int
    imm_flag: bool
    branch_test: int


def decode_op_word(word: int) -> DecodedOp | None:
    """Decode a control word; None for an empty (no-op) slot."""
    code = word >> 25
    if code == 0:
        return None
    return DecodedOp(
        opcode=INDEX_OPCODE[code - 1],
        dest_index=(word >> 19) & 0x3F,
        dest_bank=_CODE_BANK.get((word >> 17) & 0x3, RegClass.INT),
        src1_index=(word >> 10) & 0x3F,
        src2_index=(word >> 4) & 0x3F,
        imm_flag=bool((word >> 16) & 1),
        branch_test=word & 0xF,
    )


def _imm_word_value(value, layout: dict[str, int] | None) -> int:
    """The 32-bit contents of a shared immediate word."""
    if isinstance(value, tuple) and value and value[0] == "sym":
        return (layout or {}).get(value[1], 0) & 0xFFFFFFFF
    if isinstance(value, float):
        # the hardware splits doubles across both immediate beats; we store
        # the binary32 approximation (documented approximation)
        return struct.unpack("<I", struct.pack("<f", value))[0]
    return int(value) & 0xFFFFFFFF


def encode_instruction(li: LongInstruction, config: MachineConfig,
                       layout: dict[str, int] | None = None) -> list[int]:
    """Encode one long instruction into ``8 * n_pairs`` 32-bit words."""
    words = [0] * (WORDS_PER_PAIR * config.n_pairs)

    # branch tests: one per pair, encoded on that pair's ALU0-early word
    branch_by_pair: dict[int, BranchTest] = {}
    for bt in li.branches:
        if bt.pair in branch_by_pair:
            raise EncodingError("two branch tests on one pair")
        branch_by_pair[bt.pair] = bt

    used: dict[tuple[int, int], bool] = {}
    for so in li.ops:
        word_index = so.pair * WORDS_PER_PAIR + UNIT_WORD[so.unit]
        if used.get((so.pair, UNIT_WORD[so.unit])):
            raise EncodingError(
                f"unit word reused: pair {so.pair} unit {so.unit}")
        used[(so.pair, UNIT_WORD[so.unit])] = True
        words[word_index] = encode_op_word(so)

        # wide immediates / symbols go to the pair's shared immediate word
        from .resources import imm_value, needs_imm_word
        if needs_imm_word(so.op):
            imm_index = so.pair * WORDS_PER_PAIR + IMM_WORDS[so.issue_offset]
            value = _imm_word_value(imm_value(so.op), layout)
            if words[imm_index] not in (0, value):
                raise EncodingError("conflicting shared immediates")
            words[imm_index] = value

    for pair, bt in branch_by_pair.items():
        word_index = pair * WORDS_PER_PAIR + UNIT_WORD[Unit.IALU0_E]
        if isinstance(bt.pred, VReg):
            elem = (min(phys_index(bt.pred), 13) + 1) & 0xF
        else:
            elem = 15       # constant-true test (assembler pseudo-form)
        if words[word_index] >> 25 == 0:
            # no op in the slot: a bare branch word carries just the test
            words[word_index] = elem
        else:
            words[word_index] |= elem
    return words


# ---------------------------------------------------------------------------
# Mask-word main-memory representation (section 6.5.1)

#: Instructions per mask block.
BLOCK_INSTRUCTIONS = 4
#: Mask words per block (4 x 32 bits = 128 field-presence bits).
MASK_WORDS = 4


@dataclass
class PackedProgram:
    """A program in the variable-length main-memory representation."""

    words: list[int]                       # masks + present fields only
    n_instructions: int
    words_per_instruction: int
    #: bookkeeping for size accounting
    mask_words: int = 0
    field_words: int = 0

    @property
    def packed_bytes(self) -> int:
        return 4 * len(self.words)

    @property
    def unpacked_bytes(self) -> int:
        return 4 * self.n_instructions * self.words_per_instruction


def pack_program(instruction_words: list[list[int]],
                 config: MachineConfig) -> PackedProgram:
    """Pack encoded instructions into the mask-word memory format."""
    wpi = WORDS_PER_PAIR * config.n_pairs
    if wpi * BLOCK_INSTRUCTIONS > 32 * MASK_WORDS:
        raise EncodingError("mask block too small for this configuration")
    out: list[int] = []
    mask_words = 0
    field_words = 0
    for start in range(0, len(instruction_words), BLOCK_INSTRUCTIONS):
        block = instruction_words[start:start + BLOCK_INSTRUCTIONS]
        bits: list[int] = [0] * MASK_WORDS
        fields: list[int] = []
        position = 0
        for words in block:
            for word in words:
                if word != 0:
                    bits[position // 32] |= 1 << (position % 32)
                    fields.append(word)
                position += 1
        out.extend(bits)
        out.extend(fields)
        mask_words += MASK_WORDS
        field_words += len(fields)
    return PackedProgram(out, len(instruction_words), wpi,
                         mask_words, field_words)


def unpack_program(packed: PackedProgram) -> list[list[int]]:
    """The cache-refill engine's job: expand masks back to full words."""
    wpi = packed.words_per_instruction
    out: list[list[int]] = []
    cursor = 0
    remaining = packed.n_instructions
    while remaining > 0:
        bits = packed.words[cursor:cursor + MASK_WORDS]
        cursor += MASK_WORDS
        count = min(BLOCK_INSTRUCTIONS, remaining)
        block_words = []
        for position in range(count * wpi):
            if bits[position // 32] >> (position % 32) & 1:
                block_words.append(packed.words[cursor])
                cursor += 1
            else:
                block_words.append(0)
        for i in range(count):
            out.append(block_words[i * wpi:(i + 1) * wpi])
        remaining -= count
    return out


def encode_function(cf: CompiledFunction,
                    layout: dict[str, int] | None = None) -> PackedProgram:
    """Encode and pack a whole compiled function."""
    words = [encode_instruction(li, cf.config, layout)
             for li in cf.instructions]
    return pack_program(words, cf.config)
