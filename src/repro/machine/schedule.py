"""Containers for compiled VLIW code: scheduled ops, long instructions,
compiled functions and programs.

A :class:`CompiledFunction` is the unit the beat-accurate simulator
executes; it is produced by the trace-scheduling backend and carries
physical-register operations placed on specific functional units.

Physical registers use a naming convention over :class:`~repro.ir.VReg`:
``i<N>``, ``f<N>``, ``b<N>`` for the integer, float, and branch-bank files.
Register ``*0`` holds the return value; parameters arrive in ``*1`` upward,
assigned per class in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..errors import MachineError
from ..ir import Imm, Opcode, Operation, RegClass, VReg
from .config import MachineConfig
from .resources import Unit


def phys_reg(cls: RegClass, index: int) -> VReg:
    """The physical register ``index`` of class ``cls``."""
    prefix = {RegClass.INT: "i", RegClass.FLT: "f", RegClass.PRED: "b"}[cls]
    return VReg(f"{prefix}{index}", cls)


def phys_index(reg: VReg) -> int:
    """Inverse of :func:`phys_reg` (raises for non-physical names)."""
    try:
        return int(reg.name[1:])
    except ValueError:
        raise MachineError(f"not a physical register: {reg}") from None


def is_phys(reg: VReg) -> bool:
    return (len(reg.name) >= 2 and reg.name[0] in "ifb"
            and reg.name[1:].isdigit())


@dataclass
class ScheduledOp:
    """One operation bound to a functional-unit slot."""

    op: Operation
    pair: int
    unit: Unit
    #: memory ops: which return/store bus class they use ("iload"/"fload"/
    #: "store"); None for non-memory ops
    bus: Optional[str] = None
    #: memory op scheduled into a potentially conflicting slot on a "maybe"
    #: disambiguator answer — the hardware bank-stall covers it (§6.4.4)
    gamble: bool = False

    @property
    def issue_offset(self) -> int:
        return self.unit.beat_offset


@dataclass
class BranchTest:
    """One of up to four parallel branch tests (priority = list order)."""

    pred: object              # physical VReg or Imm
    target: str               # label, resolved through label_map at run time
    pair: int = 0
    #: branch taken when the predicate is FALSE (the fallthrough side of the
    #: original IR branch stayed on-trace)
    negate: bool = False


@dataclass
class LongInstruction:
    """One very long instruction word (2 beats of machine time)."""

    ops: list[ScheduledOp] = field(default_factory=list)
    branches: list[BranchTest] = field(default_factory=list)
    #: explicit fallthrough label when control does not continue to the next
    #: instruction (end of a trace); None = sequential
    next_label: Optional[str] = None
    #: special terminator: ("ret", operand|None) / ("halt",) /
    #: ("call", Operation) — calls are scheduling barriers
    special: Optional[tuple] = None

    def op_count(self) -> int:
        return len(self.ops) + len(self.branches) + (1 if self.special else 0)

    def is_empty(self) -> bool:
        return not self.ops and not self.branches and self.special is None \
            and self.next_label is None


@dataclass
class CompiledFunction:
    """A trace-scheduled function ready for the VLIW simulator."""

    name: str
    config: MachineConfig
    instructions: list[LongInstruction] = field(default_factory=list)
    #: block-entry label -> instruction index
    label_map: dict[str, int] = field(default_factory=dict)
    param_regs: list[VReg] = field(default_factory=list)
    ret_reg: Optional[VReg] = None
    #: scheduling statistics filled by the backend
    meta: dict = field(default_factory=dict)

    def resolve(self, label: str) -> int:
        try:
            return self.label_map[label]
        except KeyError:
            raise MachineError(
                f"{self.name}: unresolved label {label!r}") from None

    def op_count(self) -> int:
        return sum(li.op_count() for li in self.instructions)

    def slots_total(self) -> int:
        """Total op slots available over the function's instructions."""
        return len(self.instructions) * self.config.ops_per_instruction

    def fill_ratio(self) -> float:
        """Fraction of instruction slots holding real operations."""
        total = self.slots_total()
        return self.op_count() / total if total else 0.0

    def __iter__(self) -> Iterator[LongInstruction]:
        return iter(self.instructions)


@dataclass
class CompiledProgram:
    """All compiled functions of a module plus the data image layout."""

    functions: dict[str, CompiledFunction] = field(default_factory=dict)
    config: MachineConfig = field(default_factory=MachineConfig)

    def add(self, func: CompiledFunction) -> CompiledFunction:
        self.functions[func.name] = func
        return func

    def function(self, name: str) -> CompiledFunction:
        try:
            return self.functions[name]
        except KeyError:
            raise MachineError(f"no compiled function {name!r}") from None


def format_compiled(cf: CompiledFunction) -> str:
    """Human-readable schedule dump (one line per long instruction)."""
    by_index: dict[int, list[str]] = {}
    labels_at: dict[int, list[str]] = {}
    for label, index in cf.label_map.items():
        labels_at.setdefault(index, []).append(label)
    lines = [f"compiled {cf.name} ({cf.config.n_pairs} pairs,"
             f" {len(cf.instructions)} instructions)"]
    for i, li in enumerate(cf.instructions):
        for label in labels_at.get(i, []):
            lines.append(f"{label}:")
        cells = [f"{so.pair}.{so.unit.value}: {so.op}" for so in li.ops]
        for bt in li.branches:
            cells.append(f"br {bt.pred} -> @{bt.target}")
        if li.special is not None:
            cells.append(" ".join(str(x) for x in li.special))
        if li.next_label is not None:
            cells.append(f"goto @{li.next_label}")
        body = " | ".join(cells) if cells else "nop"
        lines.append(f"  [{i:4d}] {body}")
    return "\n".join(lines)
