"""Machine configuration: the TRACE family (1, 2, or 4 I-F board pairs).

Numbers follow the paper:

* an instruction executes in two 65 ns minor cycles ("beats");
* each I-F pair contributes a 256-bit instruction slice: two I-board ALUs
  with unique early- and late-beat operations (4 integer ops), a floating
  adder and a floating multiplier (1 op each per instruction, and both can
  run 1-beat integer ALU ops — "fast moves" and SELECT), one branch test,
  and one memory reference per beat from the I board;
* pipeline latencies: integer ALU 1 beat, floating adder 6 beats (64-bit),
  multiplier 7 beats, divide 25 beats, memory 7 beats load-to-use;
* the backplane carries `n_pairs` ILoad, FLoad and Store buses (4 each in
  the full machine); a 64-bit transfer holds a 32-bit bus for two beats;
* up to 8 memory controllers of up to 8 banks; a touched bank stays busy
  4 beats.

Deviation from the hardware (documented in DESIGN.md): register files are
modeled as machine-wide pools (64 int / 32 float64 / 14 branch-bank bits
per pair) rather than per-board banks; the paper's ``dest_bank`` field
already lets any unit write any bank, and we idealise reads instead of
implementing cluster assignment in the register allocator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MachineError


@dataclass(frozen=True)
class MachineConfig:
    """One point in the TRACE configuration space."""

    n_pairs: int = 4                 # I-F board pairs: 1, 2 or 4
    n_controllers: int = 8           # memory controllers (<= 8)
    banks_per_controller: int = 8    # RAM banks per controller (<= 8)
    beat_ns: float = 65.0            # minor cycle time
    beats_per_instruction: int = 2

    # functional-unit latencies, in beats
    lat_int_alu: int = 1
    lat_int_mul: int = 2
    lat_int_div: int = 16
    lat_flt_add: int = 6
    lat_flt_mul: int = 7
    lat_flt_div: int = 25
    lat_flt_cmp: int = 2
    lat_cvt: int = 6
    lat_mem: int = 7                 # load issue to data-usable

    bank_busy_beats: int = 4         # bank occupancy per access
    icache_instructions: int = 8192  # 8K instructions (paper section 6.5)

    # register files (pooled across pairs; see module docstring)
    int_regs_per_pair: int = 64
    flt_regs_per_pair: int = 32      # 64 x 32-bit used in pairs
    pred_regs_per_pair: int = 14     # two 7-element branch banks

    # modeled procedure-call overhead in instructions (block register
    # save/restore "special subroutines", paper section 9)
    call_overhead_instructions: int = 8

    def __post_init__(self) -> None:
        if self.n_pairs not in (1, 2, 4):
            raise MachineError(f"n_pairs must be 1, 2 or 4: {self.n_pairs}")
        if not 1 <= self.n_controllers <= 8:
            raise MachineError("n_controllers must be in 1..8")
        if not 1 <= self.banks_per_controller <= 8:
            raise MachineError("banks_per_controller must be in 1..8")

    @classmethod
    def from_pairs(cls, pairs: int) -> "MachineConfig":
        """The product-line configuration with ``pairs`` I-F board pairs.

        ``from_pairs(1)``/``(2)``/``(4)`` are the TRACE 7/200, 14/200 and
        28/200 — the single source of truth for the pairs→config mapping
        (the 7/200 shipped with a half-populated memory of 4 controllers).
        """
        return cls(n_pairs=pairs, n_controllers=4 if pairs == 1 else 8)

    # -- derived figures --------------------------------------------------
    @property
    def instruction_bits(self) -> int:
        """256 bits per pair: the paper's 256/512/1024-bit words."""
        return 256 * self.n_pairs

    @property
    def ops_per_instruction(self) -> int:
        """Peak operations per instruction: 7 per pair (paper: 28 at 4)."""
        return 7 * self.n_pairs

    @property
    def total_banks(self) -> int:
        return self.n_controllers * self.banks_per_controller

    @property
    def int_regs(self) -> int:
        return self.int_regs_per_pair * self.n_pairs

    @property
    def flt_regs(self) -> int:
        return self.flt_regs_per_pair * self.n_pairs

    @property
    def pred_regs(self) -> int:
        return self.pred_regs_per_pair * self.n_pairs

    @property
    def n_load_buses(self) -> int:
        """ILoad buses (and FLoad buses) — one per pair."""
        return self.n_pairs

    @property
    def n_store_buses(self) -> int:
        return self.n_pairs

    @property
    def mem_refs_per_beat(self) -> int:
        """One address generator per I board per beat."""
        return self.n_pairs

    def instruction_ns(self) -> float:
        return self.beat_ns * self.beats_per_instruction

    def peak_mflops(self) -> float:
        """Peak MFLOPS: one FADD + one FMUL per pair per instruction."""
        return 2 * self.n_pairs / (self.instruction_ns() * 1e-3)

    def peak_vliw_mips(self) -> float:
        """Peak native operations per second, in millions."""
        return self.ops_per_instruction / (self.instruction_ns() * 1e-3)

    def peak_memory_bandwidth_mb_s(self) -> float:
        """Peak 64-bit reference rate: refs/beat * 8 bytes / beat time."""
        return self.mem_refs_per_beat * 8 / (self.beat_ns * 1e-3)


#: The product line's standard configurations (TRACE 7/200, 14/200, 28/200).
TRACE_7_200 = MachineConfig.from_pairs(1)
TRACE_14_200 = MachineConfig.from_pairs(2)
TRACE_28_200 = MachineConfig.from_pairs(4)
