"""Reaching definitions and def-use chains.

Copy propagation, CSE and the induction-variable analysis consume these.
A definition is identified by its operation uid (operations are unique
objects, stable across passes that don't clone them).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Function, Operation, VReg
from .cfg import CFG
from .dataflow import solve_forward


@dataclass
class ReachingDefs:
    """Solved reaching-definition facts.

    ``reach_in[block]`` is the set of op uids whose definitions reach the
    block entry; ``def_ops`` maps uid -> Operation; ``defs_of`` maps a
    register to every op uid defining it anywhere in the function.
    """

    reach_in: dict[str, set[int]]
    reach_out: dict[str, set[int]]
    def_ops: dict[int, Operation]
    defs_of: dict[VReg, set[int]]

    def reaching_defs_of(self, block: str, reg: VReg) -> set[int]:
        """Uids of defs of ``reg`` reaching the entry of ``block``."""
        return {uid for uid in self.reach_in.get(block, set())
                if self.def_ops[uid].dest == reg}


def compute_reaching(func: Function, cfg: CFG | None = None) -> ReachingDefs:
    if cfg is None:
        cfg = CFG.build(func)

    def_ops: dict[int, Operation] = {}
    defs_of: dict[VReg, set[int]] = {}
    for op in func.operations():
        if op.dest is not None:
            def_ops[op.uid] = op
            defs_of.setdefault(op.dest, set()).add(op.uid)

    gen: dict[str, set[int]] = {}
    kill: dict[str, set[int]] = {}
    for name, block in func.blocks.items():
        g: set[int] = set()
        k: set[int] = set()
        for op in block.ops:
            if op.dest is None:
                continue
            same_reg = defs_of[op.dest]
            g -= same_reg
            g.add(op.uid)
            k |= same_reg - {op.uid}
        gen[name] = g
        kill[name] = k

    def transfer(name: str, in_set: set[int]) -> set[int]:
        return gen[name] | (in_set - kill[name])

    result = solve_forward(cfg, transfer)
    return ReachingDefs(result.block_in, result.block_out, def_ops, defs_of)


def single_reaching_def(reaching: ReachingDefs, block: str,
                        reg: VReg) -> Operation | None:
    """The unique def of ``reg`` reaching ``block``'s entry, if exactly one."""
    uids = reaching.reaching_defs_of(block, reg)
    if len(uids) != 1:
        return None
    return reaching.def_ops[next(iter(uids))]
