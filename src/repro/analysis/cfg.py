"""Control-flow-graph utilities: orderings, dominators, back edges.

These are the structural analyses the optimizer and the trace selector rely
on.  Dominators use the iterative algorithm of Cooper, Harvey & Kennedy
("A Simple, Fast Dominance Algorithm"), which is comfortably fast at the
function sizes this compiler sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import IRError
from ..ir import Function


@dataclass
class CFG:
    """A materialised view of a function's control-flow graph.

    The view is a snapshot: mutate the function and build a new CFG.
    """

    func: Function
    succs: dict[str, list[str]] = field(default_factory=dict)
    preds: dict[str, list[str]] = field(default_factory=dict)

    @staticmethod
    def build(func: Function, tolerant: bool = False) -> "CFG":
        """Build the CFG.

        With ``tolerant=True``, terminator targets that are not blocks of
        this function are silently dropped (treated as exits).  The trace
        compiler uses this on its working function, where compiled blocks
        have been removed and their labels resolve through the link-time
        label map instead.
        """
        cfg = CFG(func)
        cfg.preds = {name: [] for name in func.blocks}
        for name, block in func.blocks.items():
            succs = block.successors()
            if tolerant:
                succs = [s for s in succs if s in func.blocks]
            cfg.succs[name] = succs
            for s in succs:
                if s not in cfg.preds:
                    raise IRError(f"{func.name}:{name} targets unknown {s!r}")
                cfg.preds[s].append(name)
        return cfg

    # ------------------------------------------------------------------
    @property
    def entry(self) -> str:
        return self.func.entry.name

    def postorder(self) -> list[str]:
        """Depth-first postorder from the entry (unreachable blocks absent)."""
        seen: set[str] = set()
        order: list[str] = []

        def visit(name: str) -> None:
            # Iterative DFS to survive deep CFGs (long unrolled chains).
            stack = [(name, iter(self.succs[name]))]
            seen.add(name)
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.succs[succ])))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        visit(self.entry)
        return order

    def reverse_postorder(self) -> list[str]:
        return list(reversed(self.postorder()))

    def reachable(self) -> set[str]:
        return set(self.postorder())

    # ------------------------------------------------------------------
    def immediate_dominators(self) -> dict[str, str | None]:
        """idom for every reachable block (entry maps to None)."""
        rpo = self.reverse_postorder()
        index = {name: i for i, name in enumerate(rpo)}
        idom: dict[str, str | None] = {self.entry: self.entry}

        def intersect(a: str, b: str) -> str:
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]  # type: ignore[assignment]
                while index[b] > index[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for name in rpo:
                if name == self.entry:
                    continue
                preds = [p for p in self.preds[name]
                         if p in index and p in idom]
                if not preds:
                    continue
                new = preds[0]
                for p in preds[1:]:
                    new = intersect(new, p)
                if idom.get(name) != new:
                    idom[name] = new
                    changed = True
        result: dict[str, str | None] = dict(idom)
        result[self.entry] = None
        return result

    def dominators(self) -> dict[str, set[str]]:
        """Full dominator sets (block -> set of blocks dominating it)."""
        idom = self.immediate_dominators()
        doms: dict[str, set[str]] = {}
        for name in idom:
            chain = {name}
            cursor = idom[name]
            while cursor is not None:
                chain.add(cursor)
                cursor = idom[cursor]
            doms[name] = chain
        return doms

    def dominates(self, a: str, b: str,
                  doms: dict[str, set[str]] | None = None) -> bool:
        if doms is None:
            doms = self.dominators()
        return a in doms.get(b, set())

    def back_edges(self) -> list[tuple[str, str]]:
        """Edges (u, v) where v dominates u — loop back edges."""
        doms = self.dominators()
        edges = []
        for u in self.reachable():
            for v in self.succs[u]:
                if v in doms.get(u, set()):
                    edges.append((u, v))
        return edges

    def edges(self) -> list[tuple[str, str]]:
        return [(u, v) for u, succs in self.succs.items() for v in succs]


def remove_unreachable_blocks(func: Function) -> int:
    """Delete blocks not reachable from the entry; returns count removed."""
    cfg = CFG.build(func)
    reachable = cfg.reachable()
    dead = [name for name in func.blocks if name not in reachable]
    for name in dead:
        func.remove_block(name)
    return len(dead)
