"""Register liveness: per-block live-in/out and per-operation queries.

Trace scheduling needs liveness at *edges*: an operation may only be
speculated above an on-trace branch if its destination is **not live** on the
off-trace edge (else it would clobber a value the other path still reads),
unless the scheduler renames it first.  Register allocation uses the same
facts for interference.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Function, VReg
from .cfg import CFG
from .dataflow import solve_backward


@dataclass
class Liveness:
    """Solved liveness facts for one function."""

    live_in: dict[str, set[VReg]]
    live_out: dict[str, set[VReg]]
    use: dict[str, set[VReg]]
    defs: dict[str, set[VReg]]

    def live_on_edge(self, src: str, dst: str) -> set[VReg]:
        """Registers live along the CFG edge src -> dst.

        With a union meet this is exactly the destination's live-in.
        """
        return self.live_in.get(dst, set())


def block_use_def(func: Function) -> tuple[dict[str, set[VReg]],
                                           dict[str, set[VReg]]]:
    """Upward-exposed uses and defs for each block."""
    use: dict[str, set[VReg]] = {}
    defs: dict[str, set[VReg]] = {}
    for name, block in func.blocks.items():
        u: set[VReg] = set()
        d: set[VReg] = set()
        for op in block.ops:
            for src in op.reg_srcs():
                if src not in d:
                    u.add(src)
            for dst in op.defs():
                d.add(dst)
        use[name] = u
        defs[name] = d
    return use, defs


def compute_liveness(func: Function, cfg: CFG | None = None) -> Liveness:
    """Solve backward liveness over the function."""
    if cfg is None:
        cfg = CFG.build(func)
    use, defs = block_use_def(func)

    def transfer(name: str, out_set: set[VReg]) -> set[VReg]:
        return use[name] | (out_set - defs[name])

    result = solve_backward(cfg, transfer)
    return Liveness(result.block_in, result.block_out, use, defs)


def live_before_each_op(func: Function, block_name: str,
                        liveness: Liveness) -> list[set[VReg]]:
    """Registers live immediately *before* each op of a block, in order."""
    block = func.block(block_name)
    live = set(liveness.live_out[block_name])
    before: list[set[VReg]] = [set()] * len(block.ops)
    for i in range(len(block.ops) - 1, -1, -1):
        op = block.ops[i]
        live -= set(op.defs())
        live |= set(op.reg_srcs())
        before[i] = set(live)
    return before
