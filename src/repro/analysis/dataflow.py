"""A small generic iterative dataflow framework.

Liveness and reaching definitions are instances; passes may define their own
problems.  Facts are Python ``frozenset``-compatible sets; the solver is the
classic round-robin worklist over basic blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Hashable, TypeVar

from .cfg import CFG

T = TypeVar("T", bound=Hashable)


@dataclass
class DataflowResult(Generic[T]):
    """Per-block IN/OUT fact sets from a solved dataflow problem."""

    block_in: dict[str, set[T]]
    block_out: dict[str, set[T]]


def solve_forward(cfg: CFG,
                  transfer: Callable[[str, set[T]], set[T]],
                  entry_fact: set[T] | None = None,
                  meet_union: bool = True) -> DataflowResult[T]:
    """Solve a forward dataflow problem.

    Args:
        cfg: the control-flow graph.
        transfer: ``transfer(block_name, in_set) -> out_set``.
        entry_fact: IN fact of the entry block (default empty).
        meet_union: True for may-problems (union), False for must-problems
            (intersection).
    """
    order = cfg.reverse_postorder()
    block_in: dict[str, set[T]] = {name: set() for name in order}
    block_out: dict[str, set[T]] = {name: set() for name in order}
    block_in[cfg.entry] = set(entry_fact or set())

    changed = True
    while changed:
        changed = False
        for name in order:
            preds = [p for p in cfg.preds[name] if p in block_out]
            if name != cfg.entry:
                if preds:
                    acc = set(block_out[preds[0]])
                    for p in preds[1:]:
                        if meet_union:
                            acc |= block_out[p]
                        else:
                            acc &= block_out[p]
                else:
                    acc = set()
                block_in[name] = acc
            new_out = transfer(name, block_in[name])
            if new_out != block_out[name]:
                block_out[name] = new_out
                changed = True
    return DataflowResult(block_in, block_out)


def solve_backward(cfg: CFG,
                   transfer: Callable[[str, set[T]], set[T]],
                   exit_fact: set[T] | None = None,
                   meet_union: bool = True) -> DataflowResult[T]:
    """Solve a backward dataflow problem (facts flow against edges).

    ``transfer(block_name, out_set) -> in_set``.  Blocks with no successors
    (returns) get ``exit_fact`` as OUT.
    """
    order = cfg.postorder()
    block_in: dict[str, set[T]] = {name: set() for name in order}
    block_out: dict[str, set[T]] = {name: set() for name in order}

    changed = True
    while changed:
        changed = False
        for name in order:
            succs = [s for s in cfg.succs[name] if s in block_in]
            if not cfg.succs[name]:
                acc = set(exit_fact or set())
            elif succs:
                acc = set(block_in[succs[0]])
                for s in succs[1:]:
                    if meet_union:
                        acc |= block_in[s]
                    else:
                        acc &= block_in[s]
            else:
                acc = set()
            block_out[name] = acc
            new_in = transfer(name, acc)
            if new_in != block_in[name]:
                block_in[name] = new_in
                changed = True
    return DataflowResult(block_in, block_out)
