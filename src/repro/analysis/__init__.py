"""Program analyses: CFG structure, dataflow, liveness, loops, reaching defs."""

from .cfg import CFG, remove_unreachable_blocks
from .dataflow import DataflowResult, solve_backward, solve_forward
from .liveness import (Liveness, block_use_def, compute_liveness,
                       live_before_each_op)
from .loops import (BasicIV, Loop, TripCount, find_basic_ivs, find_loops,
                    loop_invariant_regs, match_counted_loop)
from .reaching import ReachingDefs, compute_reaching, single_reaching_def

__all__ = [
    "CFG", "remove_unreachable_blocks",
    "DataflowResult", "solve_backward", "solve_forward",
    "Liveness", "block_use_def", "compute_liveness", "live_before_each_op",
    "BasicIV", "Loop", "TripCount", "find_basic_ivs", "find_loops",
    "loop_invariant_regs", "match_counted_loop",
    "ReachingDefs", "compute_reaching", "single_reaching_def",
]
