"""Natural-loop detection and induction-variable analysis.

The unroller, LICM, and the memory disambiguator all work in terms of
loops and their *basic induction variables*: registers updated exactly once
per iteration by ``i = i + c`` for a loop-invariant constant ``c``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import Function, Imm, Opcode, Operation, VReg
from .cfg import CFG


@dataclass
class Loop:
    """One natural loop.

    Attributes:
        header: loop header block name (target of the back edges).
        body: every block in the loop, including the header.
        latches: blocks with a back edge to the header.
        exits: (inside_block, outside_block) edges leaving the loop.
        parent: enclosing loop, or None for top-level loops.
    """

    header: str
    body: set[str]
    latches: list[str]
    exits: list[tuple[str, str]] = field(default_factory=list)
    parent: "Loop | None" = None
    children: list["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        d = 1
        cursor = self.parent
        while cursor is not None:
            d += 1
            cursor = cursor.parent
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<loop @{self.header} ({len(self.body)} blocks)>"


@dataclass
class BasicIV:
    """A basic induction variable: ``reg = reg + step`` once per iteration."""

    reg: VReg
    step: int
    update_op: Operation


def find_loops(func: Function, cfg: CFG | None = None) -> list[Loop]:
    """All natural loops, outermost-first, with nesting links.

    Back edges sharing a header are merged into a single loop (standard
    natural-loop construction).
    """
    if cfg is None:
        cfg = CFG.build(func)
    back = cfg.back_edges()

    by_header: dict[str, Loop] = {}
    for latch, header in back:
        loop = by_header.get(header)
        if loop is None:
            loop = Loop(header, {header}, [])
            by_header[header] = loop
        loop.latches.append(latch)
        # walk predecessors back from the latch until the header
        stack = [latch]
        while stack:
            node = stack.pop()
            if node in loop.body:
                continue
            loop.body.add(node)
            stack.extend(cfg.preds[node])

    loops = list(by_header.values())
    for loop in loops:
        for node in loop.body:
            for succ in cfg.succs[node]:
                if succ not in loop.body:
                    loop.exits.append((node, succ))

    # nesting: the parent is the smallest strictly-containing loop
    for loop in loops:
        candidates = [other for other in loops
                      if other is not loop and loop.body < other.body]
        if candidates:
            loop.parent = min(candidates, key=lambda o: len(o.body))
            loop.parent.children.append(loop)

    loops.sort(key=lambda lp: (lp.depth, lp.header))
    return loops


def loop_invariant_regs(func: Function, loop: Loop) -> set[VReg]:
    """Registers not defined anywhere inside the loop (hence invariant)."""
    defined: set[VReg] = set()
    for name in loop.body:
        for op in func.block(name).ops:
            defined.update(op.defs())
    used: set[VReg] = set()
    for name in loop.body:
        for op in func.block(name).ops:
            used.update(op.reg_srcs())
    return (used | set(func.params)) - defined


def find_basic_ivs(func: Function, loop: Loop) -> list[BasicIV]:
    """Basic induction variables of a loop.

    A register qualifies when it has exactly one definition inside the loop
    and that definition is ``reg = reg + imm`` or ``reg = reg - imm``.
    """
    defs_in_loop: dict[VReg, list[Operation]] = {}
    for name in loop.body:
        for op in func.block(name).ops:
            if op.dest is not None:
                defs_in_loop.setdefault(op.dest, []).append(op)

    ivs: list[BasicIV] = []
    for reg, ops in defs_in_loop.items():
        if len(ops) != 1:
            continue
        op = ops[0]
        if op.opcode is Opcode.ADD:
            a, b = op.srcs
            if a == reg and isinstance(b, Imm):
                ivs.append(BasicIV(reg, int(b.value), op))
            elif b == reg and isinstance(a, Imm):
                ivs.append(BasicIV(reg, int(a.value), op))
        elif op.opcode is Opcode.SUB:
            a, b = op.srcs
            if a == reg and isinstance(b, Imm):
                ivs.append(BasicIV(reg, -int(b.value), op))
    return ivs


@dataclass
class TripCount:
    """A compile-time-known trip structure: ``for (i = start; i < bound; i += step)``.

    ``bound`` may be a register (runtime bound) or a constant; what matters
    for unrolling is that the loop has a single conditional exit controlled
    by a compare against the IV.
    """

    iv: BasicIV
    compare_op: Operation
    exit_block: str
    known_trips: int | None = None


def match_counted_loop(func: Function, loop: Loop,
                       cfg: CFG | None = None) -> TripCount | None:
    """Match the canonical counted-loop shape used by the unroller.

    Requirements: single latch; the header ends in ``BR(cmp(iv, bound))``
    where the false edge leaves the loop; ``iv`` is a basic IV of the loop.
    Returns None when the loop doesn't match.
    """
    if len(loop.latches) != 1:
        return None
    header = func.block(loop.header)
    term = header.terminator
    if term is None or term.opcode is not Opcode.BR:
        return None
    then_name, else_name = (lbl.name for lbl in term.labels)
    if then_name in loop.body and else_name not in loop.body:
        exit_block = else_name
    elif else_name in loop.body and then_name not in loop.body:
        exit_block = then_name
    else:
        return None

    pred = term.srcs[0]
    if not isinstance(pred, VReg):
        return None
    compare = None
    for op in header.body:
        if op.dest == pred:
            compare = op
    if compare is None or compare.category.value != "int_cmp":
        return None

    ivs = {iv.reg: iv for iv in find_basic_ivs(func, loop)}
    for src in compare.reg_srcs():
        if src in ivs:
            return TripCount(ivs[src], compare, exit_block)
    return None
