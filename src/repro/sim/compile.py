"""Closure-compiled fast path: specialized Python code per instruction.

The pre-decoded path (``sim/decode.py``) removed per-beat *rediscovery*
of link-time facts, but it still pays interpretive overhead on every
instruction: tuple unpacking, tag dispatch, operand-kind tests, a
``dict`` register file keyed by :class:`~repro.ir.VReg` (whose hash
dominates profiles), and a per-opcode if-chain in ``_compute``.  This
module removes that layer too, by *generating Python source* for each
long instruction — a specialized step closure with operands, latencies,
branch targets, and bank arithmetic baked in — and dispatching the beat
loop through a flat closure list.

Two-stage compilation keeps the artifact cacheable:

1. :func:`compile_program_source` emits **layout-independent** source —
   symbol addresses are left as parameters (``S0``, ``S1`` …) and
   registers become integer slots in a program-wide registry.  The
   resulting :class:`ProgramSource` is plain picklable data (source
   text, slot table, call metadata) and is stored on the
   :class:`~repro.machine.CompiledProgram` (``_fastpath_source``), so it
   rides through the compile cache under the existing key schema.
2. :func:`compiled_exec` ``exec``-utes each function's source once per
   process and *binds* it to a concrete memory layout by calling the
   generated ``_make(syms)`` — a cheap per-layout step that returns the
   flat tuple of per-PC step closures.  Both stages are memoized
   (per-program, per-layout), so a 96-lane batch compiles once.

Semantics are guaranteed by construction plus differential testing: the
generated code mirrors ``VliwSimulator._execute_fast`` statement for
statement (landing discipline, issue-beat arithmetic, bank-stall pending
shifts, branch priority with cumulative counters), and the register file
is pre-seeded with each slot's *funny number* — semantically identical
to the ``MISSING``-check the other paths perform, because the funny
value is exactly what a never-written read substitutes.  Controller
conflict checks are emitted only for instructions with two or more
memory references in one issue beat (with fewer, a conflict is
impossible).  ``tests/test_batch_compile.py`` holds this path
bit-identical to the interpretive reference across kernels, strategies,
device models, faults, and checkpoint/resume.

The per-run architectural state a step touches is passed in explicitly
(``f``, ``regs``, ``pending``, ``st`` counters, ``memory``,
``bank_busy``, ``tlb``, ``ev``), so one compiled program serves any
number of concurrent lanes — the foundation of ``sim/batch.py``.
"""

from __future__ import annotations

import math
import struct
import weakref
from operator import itemgetter

from ..errors import SimError, TrapError
from ..ir import ACCESS_SIZE, FUNNY_INT, Imm, Symbol, VReg, wrap32
from ..ir.interp import DATA_BASE
from ..machine.resources import latency_table
from .decode import NEVER, funny_for, layout_key

#: Bump when the generated-source contract changes (signatures, slot
#: encoding, stat indexes); stale pickled sources are then regenerated.
#: 2: group-0 latency-1 ALU results bypass the pending list (applied as
#: direct register stores at the group-1 land point).
#: 3: memory accesses inline the bounds/alignment guard and the struct
#: pack/unpack against hoisted ``memory.data``/``memory.size`` locals;
#: the MemoryImage accessors are only called on the (raising) trap path.
SOURCE_VERSION = 3

#: step-return tags for special terminators (a normal step returns the
#: new beat as a plain int)
R_RET = 1
R_HALT = 2
R_CALL = 3

#: indexes into the flat stat-counter list the generated code increments
#: (cheaper than attribute access on the VliwStats dataclass; the driver
#: folds them back via :func:`flush_stats`)
ST_INSTRUCTIONS = 0
ST_BEATS = 1
ST_OPS = 2
ST_LOADS = 3
ST_STORES = 4
ST_BRANCHES = 5
ST_TAKEN = 6
ST_BANK_STALL = 7
ST_GAMBLE = 8
ST_UNEXPECTED = 9
ST_DISMISSED = 10
ST_CALLS = 11
ST_N = 12

#: call-argument spec kinds (evaluated by the driver at call time, after
#: the drain — calls are rare, so these stay interpreted)
A_LIT = 0
A_SLOT = 1
A_SYM = 2


def flush_stats(stats, st: list) -> None:
    """Fold the flat counter list into a ``VliwStats`` and zero it."""
    stats.instructions += st[0]
    stats.beats += st[1]
    stats.ops += st[2]
    stats.loads += st[3]
    stats.stores += st[4]
    stats.branches += st[5]
    stats.taken_branches += st[6]
    stats.bank_stall_beats += st[7]
    stats.gamble_refs += st[8]
    stats.unexpected_bank_stalls += st[9]
    stats.dismissed_loads += st[10]
    stats.calls += st[11]
    for i in range(ST_N):
        st[i] = 0


# ----------------------------------------------------------------------
# runtime helpers referenced by generated code
# ----------------------------------------------------------------------
_BY_LAND = itemgetter(0)


def _land(f, regs: list, beat, pending: list) -> None:
    """Slot-file twin of ``VliwSimulator._land_frame``: apply due writes
    in land-beat order (ties in issue order), refresh ``next_land``.

    This is the hottest helper on the compiled path (every in-flight
    write funnels through it), so both branches stay on C-level
    primitives: list comprehensions for the partition, a stable sort
    with an ``itemgetter`` key (ties keep issue order), and
    ``min(map(...))`` for the ``next_land`` refresh.  The single-entry
    case (one write in flight, necessarily due — callers guard on
    ``next_land <= beat``) skips the partition machinery entirely.
    """
    if len(pending) == 1:
        b, slot, value = pending[0]
        if b <= beat:
            regs[slot] = value
            del pending[:]
            f.next_land = NEVER
            return
    leftover = [item for item in pending if item[0] > beat]
    if leftover:
        ready = [item for item in pending if item[0] <= beat]
        ready.sort(key=_BY_LAND)
        for _b, slot, value in ready:
            regs[slot] = value
        pending[:] = leftover
        f.next_land = min(map(_BY_LAND, leftover))
    else:                          # common case: everything lands
        pending.sort(key=_BY_LAND)
        for _b, slot, value in pending:
            regs[slot] = value
        del pending[:]
        f.next_land = NEVER


def _idiv(a, b):
    if b == 0:
        raise TrapError("int_divide_by_zero")
    return wrap32(int(a / b))  # truncate toward zero


def _irem(a, b):
    if b == 0:
        raise TrapError("int_divide_by_zero")
    return wrap32(a - int(a / b) * b)


def _extract(x, pos, width):
    return wrap32(((x & 0xFFFFFFFF) >> (pos & 31)) & ((1 << (width & 31)) - 1))


def _merge(x, y, pos, width):
    width &= 31
    pos &= 31
    mask = ((1 << width) - 1) << pos
    return wrap32((x & ~mask) | ((y << pos) & mask))


def _cvtfi(v, ev):
    if math.isnan(v) or math.isinf(v) or not (-(2.0 ** 31) <= v < 2.0 ** 31):
        if ev.fp_mode == "precise":
            raise TrapError("float_convert", repr(v))
        return FUNNY_INT
    return wrap32(int(v))


def _ctlerr(controller, op):
    raise SimError(
        f"two references hit controller {controller} in one beat "
        f"(disambiguator/compiler bug): {op}")


#: names injected into every generated function's exec namespace
_BASE_NS = {
    "_land": _land, "_idiv": _idiv, "_irem": _irem, "_extract": _extract,
    "_merge": _merge, "_cvtfi": _cvtfi, "_ctlerr": _ctlerr,
    "_upf": struct.unpack_from, "_pki": struct.pack_into,
    "_NAN": float("nan"), "_INF": float("inf"),
    "TrapError": TrapError, "SimError": SimError,
}


# ----------------------------------------------------------------------
# picklable source artifacts
# ----------------------------------------------------------------------
class FunctionSource:
    """One function's generated source plus its binding metadata."""

    def __init__(self, name: str, source: str, symbols: list[str],
                 param_slots: list[int], entry_pc: int, calls: dict,
                 ops: list) -> None:
        self.name = name
        #: layout-independent source text defining ``_make(syms)``
        self.source = source
        #: symbol names, in ``syms`` binding order
        self.symbols = symbols
        self.param_slots = param_slots
        self.entry_pc = entry_pc
        #: pc -> (callee name, arg specs, dest slot | None); arg specs
        #: are (A_LIT, value) / (A_SLOT, slot) / (A_SYM, name)
        self.calls = calls
        #: the Operation objects generated code cites in diagnostics
        self.ops = ops


class ProgramSource:
    """Layout-independent compiled-path artifact for a whole program.

    Plain picklable data; persisted on the compiled program as
    ``_fastpath_source`` so the compile cache carries it.
    """

    def __init__(self, slot_regs: list[VReg], funny: list,
                 functions: dict[str, FunctionSource]) -> None:
        self.version = SOURCE_VERSION
        #: slot index -> register (the program-wide registry)
        self.slot_regs = slot_regs
        #: per-slot funny value; copied as each frame's initial file
        self.funny = funny
        self.functions = functions

    @property
    def slot_of(self) -> dict[VReg, int]:
        return {reg: i for i, reg in enumerate(self.slot_regs)}


# ----------------------------------------------------------------------
# source generation
# ----------------------------------------------------------------------
def _lit(value) -> str:
    """A source literal for an immediate operand (parenthesized so it
    composes into any expression)."""
    if isinstance(value, float):
        if value != value:
            return "_NAN"
        if value == float("inf"):
            return "_INF"
        if value == float("-inf"):
            return "(-_INF)"
    return f"({value!r})"


class _Emitter:
    """Generates one program's worth of step-function source."""

    def __init__(self, program) -> None:
        self.program = program
        self.config = program.config
        self.lat_table = latency_table(program.config)
        self.slot_regs: list[VReg] = []
        self.slot_of: dict[VReg, int] = {}

    def _slot(self, reg: VReg) -> int:
        slot = self.slot_of.get(reg)
        if slot is None:
            slot = len(self.slot_regs)
            self.slot_of[reg] = slot
            self.slot_regs.append(reg)
        return slot

    # -- per-function state ------------------------------------------
    def _sym(self, name: str) -> str:
        idx = self._sym_of.get(name)
        if idx is None:
            idx = len(self._symbols)
            self._sym_of[name] = idx
            self._symbols.append(name)
        return f"S{idx}"

    def _op_index(self, op) -> int:
        self._ops.append(op)
        return len(self._ops) - 1

    def _expr(self, src) -> str:
        if isinstance(src, VReg):
            return f"regs[{self._slot(src)}]"
        if isinstance(src, Imm):
            return _lit(src.value)
        if isinstance(src, Symbol):
            return self._sym(src.name)
        raise SimError(f"bad operand {src!r}")

    # -- opcode bodies -----------------------------------------------
    _WRAP = ("_t &= 4294967295", "if _t > 2147483647:",
             "    _t -= 4294967296")

    def _alu_lines(self, op) -> list[str]:
        """Statements leaving the op's result in ``_t`` — a verbatim
        inlining of ``Interpreter._compute`` for this opcode."""
        from ..ir import Opcode as O
        v = [self._expr(s) for s in op.srcs]
        opc = op.opcode
        wrap = list(self._WRAP)
        if opc is O.ADD:
            return [f"_t = {v[0]} + {v[1]}"] + wrap
        if opc is O.SUB:
            return [f"_t = {v[0]} - {v[1]}"] + wrap
        if opc is O.MUL:
            return [f"_t = {v[0]} * {v[1]}"] + wrap
        if opc is O.DIV:
            return [f"_t = _idiv({v[0]}, {v[1]})"]
        if opc is O.REM:
            return [f"_t = _irem({v[0]}, {v[1]})"]
        if opc is O.AND:
            return [f"_t = {v[0]} & {v[1]}"] + wrap
        if opc is O.OR:
            return [f"_t = {v[0]} | {v[1]}"] + wrap
        if opc is O.XOR:
            return [f"_t = {v[0]} ^ {v[1]}"] + wrap
        if opc is O.SHL:
            return [f"_t = {v[0]} << ({v[1]} & 31)"] + wrap
        if opc is O.SHR:
            return [f"_t = {v[0]} >> ({v[1]} & 31)"] + wrap
        if opc is O.SHRU:
            return [f"_t = ({v[0]} & 4294967295) >> ({v[1]} & 31)"] + wrap
        if opc is O.NEG:
            return [f"_t = -{v[0]}"] + wrap
        if opc is O.NOT:
            return [f"_t = ~{v[0]}"] + wrap
        if opc in (O.MOV, O.PMOV, O.FMOV):
            return [f"_t = {v[0]}"]
        if opc in (O.SELECT, O.FSELECT):
            return [f"_t = {v[1]} if {v[0]} else {v[2]}"]
        if opc is O.EXTRACT:
            return [f"_t = _extract({v[0]}, {v[1]}, {v[2]})"]
        if opc is O.MERGE:
            return [f"_t = _merge({v[0]}, {v[1]}, {v[2]}, {v[3]})"]
        cmp = {O.CMPEQ: "==", O.CMPNE: "!=", O.CMPLT: "<", O.CMPLE: "<=",
               O.CMPGT: ">", O.CMPGE: ">=", O.FCMPEQ: "==", O.FCMPNE: "!=",
               O.FCMPLT: "<", O.FCMPLE: "<=", O.FCMPGT: ">",
               O.FCMPGE: ">="}.get(opc)
        if cmp is not None:
            return [f"_t = 1 if {v[0]} {cmp} {v[1]} else 0"]
        if opc is O.PAND:
            return [f"_t = {v[0]} & {v[1]}"]
        if opc is O.POR:
            return [f"_t = {v[0]} | {v[1]}"]
        if opc is O.PNOT:
            return [f"_t = 0 if {v[0]} else 1"]
        if opc is O.PTOI:
            return [f"_t = 1 if {v[0]} else 0"]
        if opc is O.ITOP:
            return [f"_t = 1 if {v[0]} != 0 else 0"]
        if opc is O.FADD:
            return [f"_t = {v[0]} + {v[1]}"]
        if opc is O.FSUB:
            return [f"_t = {v[0]} - {v[1]}"]
        if opc is O.FMUL:
            return [f"_t = {v[0]} * {v[1]}"]
        if opc is O.FDIV:
            return [f"_t = ev._fdiv({v[0]}, {v[1]})"]
        if opc is O.FNEG:
            return [f"_t = -{v[0]}"]
        if opc is O.FABS:
            return [f"_t = abs({v[0]})"]
        if opc is O.CVTIF:
            return [f"_t = float({v[0]})"]
        if opc is O.CVTFI:
            return [f"_t = _cvtfi({v[0]}, ev)"]
        # safety net for anything exotic: fall back to the reference
        # evaluator (same semantics, interpreted speed)
        k = self._op_index(op)
        return [f"_t = ev._compute(_OPS[{k}].opcode, [{', '.join(v)}])"]

    # -- op emission -------------------------------------------------
    def _emit_alu(self, w, op, buffered=None) -> None:
        for line in self._alu_lines(op):
            w(line)
        lat = self.lat_table.get(op.category, 1)
        slot = self._slot(op.dest)
        if buffered is not None and lat == 1:
            # Group-0 latency-1 result: lands exactly at the group-1
            # land point (bank stalls shift in-flight land beats and
            # the land point by the same amount), so it can skip the
            # pending list and be applied as a direct register store
            # right after the group-1 ``_land`` — after every earlier-
            # issued due write, exactly where the reference's land-beat
            # order (ties in issue order) would put it.
            temp = f"_w{len(buffered)}"
            w(f"{temp} = _t")
            buffered.append((temp, slot))
            return
        w(f"_lb = ib + {lat}")
        w(f"pending.append((_lb, {slot}, _t))")
        w("if _lb < f.next_land:")
        w("    f.next_land = _lb")

    def _emit_mem(self, w, so, first_mem: bool, track_ctl: bool) -> None:
        op = so.op
        size = ACCESS_SIZE[op.opcode]
        if op.is_store:
            value_expr, base, off = (self._expr(s) for s in op.srcs)
        else:
            base, off = (self._expr(s) for s in op.srcs)
        w(f"_a = {base} + {off}")
        w("_a &= 4294967295")
        w("if _a > 2147483647:")
        w("    _a -= 4294967296")
        w("if tlb is not None:")
        w("    tlb.access(_a)")
        w("_w = _a // 8 if _a >= 0 else 0")
        if track_ctl:
            w(f"_c = _w % {self.config.n_controllers}")
            if first_mem:
                w("_ctl = {_c}")
            else:
                w("if _c in _ctl:")
                w(f"    _ctlerr(_c, _OPS[{self._op_index(op)}])")
                w("_ctl.add(_c)")
        w(f"_bk = _w % {self.config.total_banks}")
        w("_bu = bank_busy.get(_bk, -1)")
        w("if _bu > ib:")
        if not so.gamble:
            w(f"    st[{ST_UNEXPECTED}] += 1")
        w("    _ex = _bu - ib")
        w("    pending[:] = [(_pb + _ex, _pr, _pv)"
          " for _pb, _pr, _pv in pending]")
        w("    f.next_land += _ex")
        w("    stall += _ex")
        w("    ib = _bu")
        w(f"bank_busy[_bk] = ib + {self.config.bank_busy_beats}")
        # The guard below inlines ``MemoryImage.check`` with ``_md`` /
        # ``_ms`` (``memory.data`` / ``memory.size``, hoisted once per
        # step); the accessor method is only called on the failing
        # path, purely to raise its canonical bus-error trap.
        fmt = '"<d"' if size == 8 else '"<i"'
        if op.is_store:
            w(f"_v = {value_expr}")
            if size != 8:              # store_int wraps; store_float doesn't
                w("_v &= 4294967295")
                w("if _v > 2147483647:")
                w("    _v -= 4294967296")
            store = "store_float" if size == 8 else "store_int"
            w(f"if _a < {DATA_BASE} or _a + {size} > _ms or _a % {size}:")
            w(f"    memory.{store}(_a, _v)")
            w("else:")
            w(f"    _pki({fmt}, _md, _a, _v)")
            return
        load = "load_float" if size == 8 else "load_int"
        if op.is_speculative:
            w(f"if _a >= {DATA_BASE} and _a + {size} <= _ms"
              f" and not _a % {size}:")
            w(f"    _t = _upf({fmt}, _md, _a)[0]")
            w("else:")
            w(f"    st[{ST_DISMISSED}] += 1")
            w("    _t = " + ("_NAN" if size == 8 else _lit(FUNNY_INT)))
        else:
            w(f"if _a < {DATA_BASE} or _a + {size} > _ms or _a % {size}:")
            w(f"    memory.{load}(_a)")
            w(f"_t = _upf({fmt}, _md, _a)[0]")
        w(f"_lb = ib + {self.config.lat_mem}")
        w(f"pending.append((_lb, {self._slot(op.dest)}, _t))")
        w("if _lb < f.next_land:")
        w("    f.next_land = _lb")

    # -- instruction emission ----------------------------------------
    def _emit_inst(self, pc: int, li, cf) -> list[str]:
        body: list[str] = []
        w = body.append
        w("if f.next_land <= beat:")
        w("    _land(f, regs, beat, pending)")

        # branch predicates and the return value read beat-2t state —
        # before any group-1 landing can overwrite registers
        branches = []              # ("dyn", var, negate, target_pc) |
        for k, bt in enumerate(li.branches):   # ("static", taken, target_pc)
            target_pc = cf.resolve(bt.target)
            if isinstance(bt.pred, VReg):
                w(f"_b{k} = regs[{self._slot(bt.pred)}]")
                branches.append(("dyn", f"_b{k}", bt.negate, target_pc))
            else:
                pred = bt.pred.value
                taken = (not pred) if bt.negate else bool(pred)
                branches.append(("static", taken, None, target_pc))
        sp = li.special
        ret_expr = None
        if sp is not None and sp[0] == "ret" and sp[1] is not None:
            if isinstance(sp[1], VReg):
                w(f"_rv = regs[{self._slot(sp[1])}]")
                ret_expr = "_rv"
            else:
                ret_expr = self._expr(sp[1])

        ops0 = [so for so in li.ops if not so.unit.beat_offset]
        ops1 = [so for so in li.ops if so.unit.beat_offset]
        has_mem = any(so.op.is_memory for so in li.ops)
        if has_mem:
            w("stall = 0")
            w("_md = memory.data")
            w("_ms = memory.size")
        # group-0 latency-1 results may be buffered in locals and
        # applied at the group-1 land point; without a group-1 there is
        # no in-step land point, so they stay in ``pending`` (a
        # boundary checkpoint must see them in flight, as the
        # reference paths do)
        buffered: list | None = [] if ops1 else None
        for offset, ops in ((0, ops0), (1, ops1)):
            if not ops:
                continue
            if offset == 0:
                # the top-of-step landing already ran at this beat, so
                # next_land > beat here — no group-0 land check needed
                w("ib = beat")
            else:
                w("ib = beat + 1 + stall" if has_mem else "ib = beat + 1")
                w("if f.next_land <= ib:")
                w("    _land(f, regs, ib, pending)")
                for temp, slot in buffered or ():
                    w(f"regs[{slot}] = {temp}")
            n_mem = sum(1 for so in ops if so.op.is_memory)
            seen_mem = 0
            for so in ops:
                if so.op.is_memory:
                    self._emit_mem(w, so, first_mem=seen_mem == 0,
                                   track_ctl=n_mem > 1)
                    seen_mem += 1
                else:
                    self._emit_alu(w, so.op,
                                   buffered if offset == 0 else None)

        # constant per-instruction counter increments (totals at the
        # instruction boundary match the per-op increments of the
        # reference paths exactly)
        w(f"st[{ST_INSTRUCTIONS}] += 1")
        w(f"st[{ST_BEATS}] += 2 + stall" if has_mem
          else f"st[{ST_BEATS}] += 2")
        if has_mem:
            w(f"st[{ST_BANK_STALL}] += stall")
        n_loads = sum(1 for so in li.ops
                      if so.op.is_memory and not so.op.is_store)
        n_stores = sum(1 for so in li.ops if so.op.is_store)
        n_gambles = sum(1 for so in li.ops if so.gamble)
        if li.ops:
            w(f"st[{ST_OPS}] += {len(li.ops)}")
        if n_loads:
            w(f"st[{ST_LOADS}] += {n_loads}")
        if n_stores:
            w(f"st[{ST_STORES}] += {n_stores}")
        if n_gambles:
            w(f"st[{ST_GAMBLE}] += {n_gambles}")
        w("_nb = beat + 2 + stall" if has_mem else "_nb = beat + 2")

        # control transfer: priority branches with cumulative counters
        terminated = False
        for k, br in enumerate(branches):
            if br[0] == "dyn":
                _, var, negate, target_pc = br
                w(f"if not {var}:" if negate else f"if {var}:")
                w(f"    st[{ST_BRANCHES}] += {k + 1}")
                w(f"    st[{ST_TAKEN}] += 1")
                w(f"    f.pc = {target_pc}")
                w("    return _nb")
            elif br[1]:            # statically taken: unconditional
                w(f"st[{ST_BRANCHES}] += {k + 1}")
                w(f"st[{ST_TAKEN}] += 1")
                w(f"f.pc = {br[3]}")
                w("return _nb")
                terminated = True
                break
        if not terminated:
            if branches:
                w(f"st[{ST_BRANCHES}] += {len(branches)}")
            if sp is not None:
                kind = sp[0]
                if kind == "ret":
                    w(f"return ({R_RET}, {ret_expr or 'None'}, _nb)")
                elif kind == "halt":
                    w(f"return ({R_HALT}, None, _nb)")
                else:              # call — the driver finishes it
                    w(f"return ({R_CALL}, None, _nb)")
            else:
                fall_pc = (cf.resolve(li.next_label)
                           if li.next_label is not None else pc + 1)
                w(f"f.pc = {fall_pc}")
                w("return _nb")
        return body

    # -- function emission -------------------------------------------
    def emit_function(self, cf) -> FunctionSource:
        self._symbols: list[str] = []
        self._sym_of: dict[str, int] = {}
        self._ops: list = []
        calls: dict[int, tuple] = {}
        lines = ["def _make(syms):"]
        for pc, li in enumerate(cf.instructions):
            if li.special is not None and li.special[0] == "call":
                call = li.special[1]
                specs = []
                for s in call.srcs:
                    if isinstance(s, VReg):
                        specs.append((A_SLOT, self._slot(s)))
                    elif isinstance(s, Imm):
                        specs.append((A_LIT, s.value))
                    else:
                        specs.append((A_SYM, s.name))
                dest = (self._slot(call.dest)
                        if call.dest is not None else None)
                calls[pc] = (call.callee, tuple(specs), dest)
            body = self._emit_inst(pc, li, cf)
            lines.append(
                f"    def _s{pc}(f, regs, pending, beat, st, memory,"
                " bank_busy, tlb, ev):")
            lines.extend("        " + line for line in body)
        # symbol hoists go first, but are only known after emission
        hoists = [f"    S{i} = syms[{i}]"
                  for i in range(len(self._symbols))]
        step_names = ", ".join(f"_s{pc}"
                               for pc in range(len(cf.instructions)))
        lines[1:1] = hoists
        lines.append(f"    return ({step_names}{',' * (len(cf.instructions) == 1)})")
        param_slots = [self._slot(r) for r in cf.param_regs]
        entry_pc = cf.label_map.get(cf.meta.get("entry_label", ""), 0)
        return FunctionSource(cf.name, "\n".join(lines), self._symbols,
                              param_slots, entry_pc, calls, self._ops)


def compile_program_source(program) -> ProgramSource:
    """Generate layout-independent step source for a whole program."""
    emitter = _Emitter(program)
    functions = {name: emitter.emit_function(cf)
                 for name, cf in program.functions.items()}
    funny = [funny_for(reg.cls) for reg in emitter.slot_regs]
    return ProgramSource(emitter.slot_regs, funny, functions)


def ensure_program_source(program) -> ProgramSource:
    """The program's compiled-path source, generating (and attaching) it
    on first use.  The attribute travels with the program through the
    compile cache's pickle, so a cache hit skips generation too."""
    src = getattr(program, "_fastpath_source", None)
    if isinstance(src, ProgramSource) \
            and getattr(src, "version", None) == SOURCE_VERSION:
        return src
    src = compile_program_source(program)
    program._fastpath_source = src
    return src


# ----------------------------------------------------------------------
# binding: source -> executable step closures
# ----------------------------------------------------------------------
class CompiledFunctionExec:
    """One function bound to a concrete memory layout."""

    __slots__ = ("cf", "steps", "calls", "param_slots", "entry_pc")

    def __init__(self, cf, steps, calls, param_slots, entry_pc) -> None:
        self.cf = cf
        self.steps = steps
        self.calls = calls
        self.param_slots = param_slots
        self.entry_pc = entry_pc


class CompiledProgramExec:
    """A whole program's bound step closures plus the slot registry."""

    __slots__ = ("functions", "slot_regs", "slot_of", "funny")

    def __init__(self, functions, slot_regs, slot_of, funny) -> None:
        self.functions = functions
        self.slot_regs = slot_regs
        self.slot_of = slot_of
        self.funny = funny


#: ``id(FunctionSource) -> (weakref, maker)`` — one ``exec`` per source
#: object per process, however many layouts it gets bound to
_MAKERS: dict[int, tuple] = {}

#: ``id(program) -> (weakref, {layout_key: CompiledProgramExec})``
_EXEC_MEMO: dict[int, tuple] = {}


def _maker(fsrc: FunctionSource):
    fid = id(fsrc)
    entry = _MAKERS.get(fid)
    if entry is not None and entry[0]() is fsrc:
        return entry[1]
    ns = dict(_BASE_NS)
    ns["_OPS"] = fsrc.ops
    exec(compile(fsrc.source, f"<fastpath:{fsrc.name}>", "exec"), ns)
    make = ns["_make"]

    def _evict(_ref, _fid=fid):
        _MAKERS.pop(_fid, None)
    _MAKERS[fid] = (weakref.ref(fsrc, _evict), make)
    return make


def compiled_exec(program, memory) -> CompiledProgramExec:
    """Bind (memoized) the program's compiled path to a memory layout."""
    pid = id(program)
    entry = _EXEC_MEMO.get(pid)
    if entry is None or entry[0]() is not program:
        def _evict(_ref, _pid=pid):
            _EXEC_MEMO.pop(_pid, None)
        entry = (weakref.ref(program, _evict), {})
        _EXEC_MEMO[pid] = entry
    key = layout_key(memory)
    ex = entry[1].get(key)
    if ex is not None:
        return ex
    src = ensure_program_source(program)
    functions = {}
    for name, fsrc in src.functions.items():
        syms = [memory.address_of(s) for s in fsrc.symbols]
        steps = _maker(fsrc)(syms)
        functions[name] = CompiledFunctionExec(
            program.functions[name], steps, fsrc.calls, fsrc.param_slots,
            fsrc.entry_pc)
    ex = CompiledProgramExec(functions, src.slot_regs, src.slot_of,
                             src.funny)
    entry[1][key] = ex
    return ex
