"""Batched lockstep execution: one schedule, N input sets.

The paper's evaluation methodology is sweep-shaped — the same scheduled
program re-run across many input sets — and the harness does this
constantly (``repro sweep``, the fuzz corpus, service traffic).  Run
serially, every point pays full per-run setup: simulator construction,
program binding, and (pre-memoization) decode.  This module amortizes
all of it across a *batch*: the compiled/predecoded artifact is built
once (the memoized layers in ``sim/decode.py`` / ``sim/compile.py``
make every lane after the first free), and the lanes then execute in
lockstep — each advancing one long instruction per round — over fully
private architectural state (register file, memory image, PC, pipeline
state, fault injector).

Lockstep costs nothing in fidelity because lanes share *nothing*
mutable: each lane is a complete :class:`~repro.sim.VliwSimulator`
whose generator (:meth:`~repro.sim.VliwSimulator.start`) the batch
driver round-robins.  A lane that branches differently, stalls longer,
or exits early simply finishes in fewer rounds (its generator is
exhausted and dropped); the others keep going.  Results are therefore
bit-identical to N serial runs — the differential tests in
``tests/test_batch_compile.py`` pin this.

Telemetry folds deterministically: each lane records into a private
tracer and the batch merges them into the caller's tracer in lane-index
order, so batched counter totals equal the N-serial-run totals exactly
(plus the ``sim.batch.*`` markers).

Device models (icache/TLB) are deliberately not part of the batch API:
they model per-machine shared state, which is exactly what lanes must
not share.  Runs that need them use the single-run path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..ir import MemoryImage
from ..machine import CompiledProgram
from ..obs import Tracer, get_tracer
from .vliw import VliwResult, VliwSimulator


@dataclass
class BatchLane:
    """One lane's private inputs: its memory image, entry arguments, and
    (optionally) a fault injector of its own."""

    memory: MemoryImage
    args: tuple = ()
    injector: object = None


class BatchVliwSimulator:
    """Runs one compiled program over N lanes in lockstep.

    Args:
        program: the schedule every lane executes.
        fp_mode / max_beats: as for :class:`~repro.sim.VliwSimulator`,
            applied to every lane.
        tracer: the caller's tracer; lane telemetry is folded into it in
            lane-index order.
        path: execution tier for the lanes.  Defaults to the compiled
            tier (that is what batching exists to amortize) unless
            ``$REPRO_SIM_PATH`` overrides it.
    """

    def __init__(self, program: CompiledProgram, fp_mode: str = "precise",
                 max_beats: int = 200_000_000, tracer=None,
                 path: str | None = None) -> None:
        self.program = program
        self.fp_mode = fp_mode
        self.max_beats = max_beats
        self.tracer = get_tracer(tracer)
        if path is None:
            path = os.environ.get("REPRO_SIM_PATH") or "compiled"
        self.path = path

    def run(self, func_name: str, lanes: list[BatchLane]) -> list[VliwResult]:
        """Execute ``func_name`` over every lane; results in lane order.

        Lane ``i``'s result is exactly what a serial
        ``VliwSimulator(...).run(func_name, lanes[i].args)`` over the
        same memory image would produce — including interrupted runs
        (per-lane injectors may checkpoint some lanes and not others).
        """
        trc = self.tracer
        if not lanes:
            return []
        sims: list[VliwSimulator] = []
        lane_tracers: list[Tracer | None] = []
        for lane in lanes:
            lt = (Tracer(events=trc.collect_events)
                  if trc.enabled else None)
            lane_tracers.append(lt)
            sims.append(VliwSimulator(
                self.program, lane.memory, self.fp_mode,
                max_beats=self.max_beats, tracer=lt,
                injector=lane.injector, path=self.path))
        results: list[VliwResult | None] = [None] * len(lanes)
        # pre-bound __next__ keeps the per-instruction round-robin to
        # one C-level call per live lane
        live = [(i, sims[i].start(func_name, lane.args).__next__)
                for i, lane in enumerate(lanes)]
        while live:
            finished = False
            for i, step in live:
                try:
                    step()
                except StopIteration:
                    results[i] = sims[i].finish()
                    finished = True
            if finished:
                live = [(i, step) for i, step in live
                        if results[i] is None]
        if trc.enabled:
            trc.counters.inc("sim.batch.calls")
            trc.counters.inc("sim.batch.lanes", len(lanes))
            for lt in lane_tracers:
                if lt is None:
                    continue
                trc.counters.merge(lt.counters)
                if trc.collect_events:
                    trc.events.extend(lt.events)
        # every lane has finished; the comprehension narrows the type
        return [r for r in results if r is not None]
