"""Instruction-cache model (paper section 6.5).

The TRACE has a physically distributed, full-width instruction cache: 8K
instructions (1 MB in the full configuration), virtually addressed and
process-tagged, refilled from the mask-word main-memory format by a
dedicated refill engine that interprets the mask words and steers fields
over the ILoad buses.

The model is a direct-mapped (configurable) cache over *instruction
indices*, charging a refill penalty proportional to the number of words the
refill engine actually moves for the missing block (masks + present fields
— absent fields cost nothing, the point of the encoding).  Process tags
(ASIDs) make flushes unnecessary on context switch; the model exposes
``switch_process`` so experiment E10 can show the difference against an
untagged cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine import (BLOCK_INSTRUCTIONS, MASK_WORDS, CompiledFunction,
                       MachineConfig, encode_instruction)
from ..obs import get_tracer


@dataclass
class ICacheStats:
    accesses: int = 0
    misses: int = 0
    refill_beats: int = 0
    flushes: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class ICacheModel:
    """Cache over (asid, function, block index) with refill-cost accounting.

    Args:
        config: supplies capacity (8K instructions) and bus width.
        tagged: process-tagged (the real machine).  Untagged caches flush
            on every process switch — the comparison of section 8.1.
        lines: overrides the number of block-granularity lines.
    """

    def __init__(self, config: MachineConfig, tagged: bool = True,
                 lines: int | None = None, tracer=None) -> None:
        self.config = config
        self.tagged = tagged
        self.n_lines = lines if lines is not None else \
            config.icache_instructions // BLOCK_INSTRUCTIONS
        self._lines: dict[int, tuple] = {}
        self._block_words: dict[tuple, int] = {}
        self.asid = 0
        self.stats = ICacheStats()
        self.tracer = get_tracer(tracer)

    # ------------------------------------------------------------------
    def register_function(self, cf: CompiledFunction,
                          layout: dict | None = None) -> None:
        """Precompute per-block refill word counts for a function."""
        words = [encode_instruction(li, self.config, layout)
                 for li in cf.instructions]
        for start in range(0, len(words), BLOCK_INSTRUCTIONS):
            block = words[start:start + BLOCK_INSTRUCTIONS]
            present = sum(1 for iw in block for w in iw if w)
            self._block_words[(cf.name, start // BLOCK_INSTRUCTIONS)] = \
                MASK_WORDS + present

    def switch_process(self, asid: int) -> None:
        """Change address space; untagged caches must flush."""
        self.asid = asid
        if not self.tagged:
            self._lines.clear()
            self.stats.flushes += 1

    # ------------------------------------------------------------------
    def access(self, func_name: str, pc: int) -> int:
        """Fetch one instruction; returns stall beats (0 on a hit)."""
        self.stats.accesses += 1
        block = pc // BLOCK_INSTRUCTIONS
        line = (hash((func_name, block)) & 0x7FFFFFFF) % self.n_lines
        tag = (self.asid if self.tagged else 0, func_name, block)
        if self._lines.get(line) == tag:
            return 0
        self.stats.misses += 1
        self._lines[line] = tag
        words = self._block_words.get((func_name, block),
                                      MASK_WORDS + BLOCK_INSTRUCTIONS * 4)
        # the refill engine streams words over the ILoad buses, one 32-bit
        # word per bus per beat, masks interpreted in parallel
        beats = -(-words // max(1, self.config.n_load_buses))
        self.stats.refill_beats += beats
        if self.tracer.enabled:
            self.tracer.counters.inc("sim.icache.misses")
            self.tracer.counters.inc("sim.icache.refill_beats", beats)
        return beats
