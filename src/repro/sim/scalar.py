"""Sequential scalar baseline: a single-issue RISC of the same technology.

The paper's headline comparison is against "a more conventional machine
built of the same implementation technology": one operation per cycle, the
same functional-unit latencies, blocking on every data hazard.  This
simulator executes the *same IR* the trace compiler consumes, charging:

* 1 instruction issue per beat-pair (one op per 2-beat cycle — a scalar
  machine of the era issued roughly one operation per cycle; we use the
  TRACE's 2-beat instruction time so the comparison is
  technology-neutral);
* full producer latency before a consumer can issue (no bypass magic the
  TRACE doesn't have either);
* one extra cycle per taken branch (refetch bubble).

The result is the denominator of experiment E1's speedups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimError, TrapError
from ..faults import CHECKPOINT, FP_TRAP, INTERRUPT
from ..ir import (ACCESS_SIZE, Function, Imm, MemoryImage, Module, Opcode,
                  Operation, RegClass, Symbol, VReg, wrap32)
from ..ir.interp import FUNNY_FLOAT, FUNNY_INT, Interpreter
from ..machine import MachineConfig
from ..machine.resources import latency_table
from ..obs import get_tracer


@dataclass
class ScalarStats:
    """Cycle and event counts from a scalar-baseline run."""

    cycles: int = 0                 # instruction cycles (2 beats each)
    ops: int = 0
    branch_bubbles: int = 0
    loads: int = 0
    stores: int = 0
    calls: int = 0
    interrupts: int = 0

    @property
    def beats(self) -> int:
        return 2 * self.cycles

    def time_us(self, config: MachineConfig) -> float:
        return self.beats * config.beat_ns * 1e-3


@dataclass
class ScalarResult:
    value: object
    memory: MemoryImage
    stats: ScalarStats


class ScalarSimulator:
    """Runs IR sequentially with latency accounting."""

    def __init__(self, module: Module, config: MachineConfig | None = None,
                 fp_mode: str = "precise",
                 max_cycles: int = 100_000_000, tracer=None,
                 injector=None) -> None:
        self.module = module
        self.config = config or MachineConfig()
        self.fp_mode = fp_mode
        self.max_cycles = max_cycles
        self.stats = ScalarStats()
        self.tracer = get_tracer(tracer)
        #: optional FaultInjector — a sequential machine drains trivially,
        #: so interrupts cost only their service time; TLB/bank faults do
        #: not apply (the baseline models neither device)
        self.injector = injector
        self._eval = Interpreter.__new__(Interpreter)
        self._eval.fp_mode = fp_mode
        # hoisted out of the per-op loop: category latency table and the
        # memory latency in cycles (both fixed by the frozen config)
        self._lat = latency_table(self.config)
        self._mem_lat_cycles = max(0, (self.config.lat_mem + 1) // 2 - 1)

    # ------------------------------------------------------------------
    def run(self, func_name: str, args=(),
            memory: MemoryImage | None = None) -> ScalarResult:
        if memory is None:
            memory = MemoryImage(self.module)
        self.memory = memory
        value = self._call(self.module.function(func_name), list(args))
        c = self.tracer.counters
        c.inc("sim.scalar.cycles", self.stats.cycles)
        c.inc("sim.scalar.beats", self.stats.beats)
        c.inc("sim.scalar.ops", self.stats.ops)
        c.inc("sim.scalar.branch_bubbles", self.stats.branch_bubbles)
        c.inc("sim.scalar.loads", self.stats.loads)
        c.inc("sim.scalar.stores", self.stats.stores)
        c.inc("sim.scalar.calls", self.stats.calls)
        return ScalarResult(value, memory, self.stats)

    # ------------------------------------------------------------------
    def _call(self, func: Function, args: list):
        regs: dict[VReg, object] = {}
        ready: dict[VReg, int] = {}     # cycle at which the value is usable
        for param, arg in zip(func.params, args):
            regs[param] = self._coerce(param, arg)

        block = func.entry
        while True:
            jump = None
            for i, op in enumerate(block.ops):
                if self.injector is not None and self.injector.pending:
                    self._deliver_faults(func, block)
                try:
                    jump = self._step(func, op, regs, ready)
                except TrapError as exc:
                    exc.locate(beat=2 * self.stats.cycles,
                               pc=f"{func.name}:{block.name}:{i}")
                    raise
                if self.stats.cycles > self.max_cycles:
                    raise SimError("scalar cycle budget exhausted")
                if jump is not None:
                    break
            if jump is None:
                raise SimError(f"{func.name}:{block.name} fell off the end")
            kind, payload = jump
            if kind == "ret":
                return payload
            block = func.block(payload)

    def _deliver_faults(self, func: Function, block) -> None:
        """Service due injector events between instructions.

        The scalar baseline has no overlapped state to drain and no
        TLB/bank models, so interrupts (checkpointing or not) cost their
        service time only and memory faults are no-ops.
        """
        beat = 2 * self.stats.cycles
        for event in self.injector.due(beat):
            if event.kind in (INTERRUPT, CHECKPOINT):
                self.stats.interrupts += 1
                self.stats.cycles += (event.service_beats + 1) // 2
            elif event.kind == FP_TRAP:
                raise TrapError("injected_fp",
                                event.detail or "fault injection",
                                beat=beat, pc=f"{func.name}:{block.name}")

    def _coerce(self, reg: VReg, arg):
        if reg.cls is RegClass.FLT:
            return float(arg)
        if isinstance(arg, str):
            return self.memory.address_of(arg)
        return wrap32(int(arg))

    def _operand(self, regs, ready, src):
        """Read an operand, stalling (cycle-wise) until it is ready."""
        if isinstance(src, VReg):
            if src not in regs:
                raise SimError(f"read of never-written register {src}")
            if ready.get(src, 0) > self.stats.cycles:
                self.stats.cycles = ready[src]
            return regs[src]
        if isinstance(src, Imm):
            return src.value
        if isinstance(src, Symbol):
            return self.memory.address_of(src.name)
        raise SimError(f"bad operand {src!r}")

    # ------------------------------------------------------------------
    def _step(self, func: Function, op: Operation, regs, ready):
        opc = op.opcode
        if opc is Opcode.NOP:
            return None
        self.stats.cycles += 1
        self.stats.ops += 1

        if opc is Opcode.BR:
            pred = self._operand(regs, ready, op.srcs[0])
            target = op.labels[0].name if pred else op.labels[1].name
            if pred:
                self.stats.cycles += 1      # taken-branch bubble
                self.stats.branch_bubbles += 1
            return ("jmp", target)
        if opc is Opcode.JMP:
            self.stats.cycles += 1
            self.stats.branch_bubbles += 1
            return ("jmp", op.labels[0].name)
        if opc is Opcode.RET:
            value = self._operand(regs, ready, op.srcs[0]) if op.srcs else None
            return ("ret", value)
        if opc is Opcode.HALT:
            return ("ret", None)
        if opc is Opcode.CALL:
            self.stats.calls += 1
            args = [self._operand(regs, ready, s) for s in op.srcs]
            self.stats.cycles += self.config.call_overhead_instructions
            result = self._call(self.module.function(op.callee), args)
            if op.dest is not None:
                regs[op.dest] = result
                ready[op.dest] = self.stats.cycles
            return None

        if op.is_memory:
            self._memory_op(op, regs, ready)
            return None

        vals = [self._operand(regs, ready, s) for s in op.srcs]
        result = self._eval._compute(opc, vals)
        regs[op.dest] = result
        # latency in beats -> cycles (2 beats each), minimum next cycle
        latency_cycles = (self._lat.get(op.category, 1) + 1) // 2
        ready[op.dest] = self.stats.cycles + max(0, latency_cycles - 1)
        return None

    def _memory_op(self, op: Operation, regs, ready) -> None:
        size = ACCESS_SIZE[op.opcode]
        if op.is_store:
            value, base, offset = (self._operand(regs, ready, s)
                                   for s in op.srcs)
            addr = wrap32(base + offset)
            self.stats.stores += 1
            if size == 8:
                self.memory.store_float(addr, value)
            else:
                self.memory.store_int(addr, value)
            return
        base, offset = (self._operand(regs, ready, s) for s in op.srcs)
        addr = wrap32(base + offset)
        self.stats.loads += 1
        if op.is_speculative and not self.memory.check(addr, size):
            result = FUNNY_FLOAT if size == 8 else FUNNY_INT
        elif size == 8:
            result = self.memory.load_float(addr)
        else:
            result = self.memory.load_int(addr)
        regs[op.dest] = result
        ready[op.dest] = self.stats.cycles + self._mem_lat_cycles


def run_scalar(module: Module, func_name: str, args=(),
               config: MachineConfig | None = None,
               fp_mode: str = "precise", tracer=None,
               injector=None) -> ScalarResult:
    """One-shot scalar baseline run."""
    return ScalarSimulator(module, config, fp_mode, tracer=tracer,
                           injector=injector).run(func_name, args)
