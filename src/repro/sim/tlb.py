"""Data-TLB model with ASID tagging and the history-queue replay cost.

Paper sections 6.1 / 6.4.3: a 4K-entry, process-tagged TLB translates
8 KB pages; misses trap to software, which reads per-I-board *history
queues* of uncompleted references, refills the TLB, and replays the
references ("up to sixteen independent TLB misses can be pending on a
single entry to the trap code").

The model charges a trap cost per *batch* of misses plus a replay cost per
missed reference — capturing exactly the amortisation the history queue
buys — and exposes ASID tagging so context-switch experiments can compare
against a flush-on-switch TLB.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine import MachineConfig

PAGE_SHIFT = 13                  # 8 KB pages
#: software trap entry/exit cost, in beats (register save, dispatch)
TRAP_OVERHEAD_BEATS = 60
#: cost of refilling one translation and replaying its reference
REPLAY_BEATS_PER_MISS = 12
#: history-queue capacity: 4 entries per I board
QUEUE_PER_BOARD = 4


@dataclass
class TlbStats:
    accesses: int = 0
    misses: int = 0
    trap_batches: int = 0
    stall_beats: int = 0
    flushes: int = 0
    injected_flushes: int = 0
    injected_evictions: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class TlbModel:
    """Set of resident (asid, page) translations with batch-miss costing.

    Misses within one instruction are batched into a single trap (the
    history queue); the batch size is capped by the queue capacity
    (4 entries x number of I boards).
    """

    def __init__(self, config: MachineConfig, entries: int = 4096,
                 tagged: bool = True) -> None:
        self.config = config
        self.entries = entries
        self.tagged = tagged
        self.asid = 0
        self._resident: dict[tuple[int, int], int] = {}
        self._clock = 0
        self.stats = TlbStats()
        self._pending_misses = 0

    def switch_process(self, asid: int) -> None:
        self.asid = asid
        if not self.tagged:
            self._resident.clear()
            self.stats.flushes += 1

    # ------------------------------------------------------------------
    def inject_flush(self) -> None:
        """Fault injection: drop every resident translation.

        Architecturally invisible — every subsequent reference misses,
        traps, refills, and replays through the history queue; only
        timing changes.
        """
        self._resident.clear()
        self.stats.flushes += 1
        self.stats.injected_flushes += 1

    def inject_evict(self, addr: int) -> None:
        """Fault injection: force the next access to ``addr``'s page to
        miss (one targeted cold miss)."""
        key = (self.asid if self.tagged else 0, addr >> PAGE_SHIFT)
        if self._resident.pop(key, None) is not None:
            self.stats.injected_evictions += 1

    # ------------------------------------------------------------------
    def access(self, addr: int) -> bool:
        """Translate one reference; returns True on a hit."""
        self.stats.accesses += 1
        key = (self.asid if self.tagged else 0, addr >> PAGE_SHIFT)
        self._clock += 1
        if key in self._resident:
            self._resident[key] = self._clock
            return True
        self.stats.misses += 1
        self._pending_misses += 1
        if len(self._resident) >= self.entries:
            victim = min(self._resident, key=self._resident.get)
            del self._resident[victim]
        self._resident[key] = self._clock
        return False

    def end_instruction(self) -> int:
        """Charge the batched trap cost for misses of this instruction."""
        if not self._pending_misses:
            return 0
        capacity = QUEUE_PER_BOARD * self.config.n_pairs
        beats = 0
        misses = self._pending_misses
        self._pending_misses = 0
        while misses > 0:
            batch = min(misses, capacity)
            beats += TRAP_OVERHEAD_BEATS + batch * REPLAY_BEATS_PER_MISS
            misses -= batch
            self.stats.trap_batches += 1
        self.stats.stall_beats += beats
        return beats
