"""Pre-decoding compiled VLIW programs for the simulator fast path.

The beat-accurate simulator's inner loop used to re-derive, on every
visit to every long instruction, facts that never change after link
time: which ops issue on the early vs. late beat, each operand's kind
(register / immediate / symbol), each result's landing latency, branch
target indices, and the fallthrough PC.  On the real TRACE all of that
is literally wiring; redoing it per beat is pure interpretive overhead.

:func:`predecode_function` flattens a
:class:`~repro.machine.CompiledFunction` once — at simulator
construction — into per-instruction issue tuples:

* operands become ``(is_literal, payload, funny)`` triples: immediates
  and symbols collapse to their literal value (the data layout is fixed
  when the simulator is built), registers carry their class's funny
  number so a never-written read needs no isinstance dispatch;
* per-op latencies come from the config's latency table, computed once;
* branch targets and ``next_label`` fallthroughs resolve to instruction
  indices, so the hot loop never touches ``label_map``;
* early/late issue groups are split once, hoisting the per-beat
  ``ops_by_beat`` rebuild out of the execute loop entirely.

The decoded form is a pure acceleration structure: it references the
original :class:`~repro.machine.ScheduledOp` objects for error messages
and never replaces the compiled program as the source of truth.
"""

from __future__ import annotations

import weakref

from ..ir import (ACCESS_SIZE, FUNNY_FLOAT, FUNNY_INT, Imm, RegClass,
                  Symbol, VReg)
from ..machine import CompiledFunction, MachineConfig
from ..machine.resources import latency_table

#: sentinel distinguishable from any architectural register value
MISSING = object()

#: "no pipeline write outstanding" marker for ``_Frame.next_land``
NEVER = float("inf")

#: decoded-op tags
ALU_OP = 0
MEM_OP = 1

#: special-terminator tags
SP_NONE = 0
SP_RET = 1
SP_HALT = 2
SP_CALL = 3


def funny_for(cls: RegClass):
    """The funny number a never-written register of ``cls`` reads as."""
    if cls is RegClass.FLT:
        return FUNNY_FLOAT
    if cls is RegClass.PRED:
        return 0
    return FUNNY_INT


def decode_operand(src, memory) -> tuple:
    """``(is_literal, payload, funny)`` for one operand.

    Literals carry their final runtime value (immediates as-is, symbols
    resolved against the memory image's layout); registers carry the
    :class:`~repro.ir.VReg` plus the funny number substituted when the
    register was never written on this path.
    """
    if isinstance(src, VReg):
        return (False, src, funny_for(src.cls))
    if isinstance(src, Imm):
        return (True, src.value, None)
    if isinstance(src, Symbol):
        return (True, memory.address_of(src.name), None)
    raise TypeError(f"bad operand {src!r}")


class PredecodedFunction:
    """One compiled function flattened into per-instruction issue tuples.

    ``insts[pc]`` is ``(ops0, ops1, branches, sp_kind, sp_arg,
    fall_pc)``:

    * ``ops0`` / ``ops1`` — early/late-beat decoded ops.  ALU ops are
      ``(ALU_OP, opcode, srcs, dest, latency)``; memory ops are
      ``(MEM_OP, is_store, size, srcs, dest, gamble, speculative, op)``
      with ``op`` kept for diagnostics.
    * ``branches`` — ``(is_literal, payload, funny, negate, target_pc,
      label)`` per parallel branch test, in priority order.
    * ``sp_kind`` / ``sp_arg`` — special terminator (``SP_RET`` with a
      decoded return operand, ``SP_HALT``, or ``SP_CALL`` with the call
      :class:`~repro.ir.Operation`).
    * ``fall_pc`` — where control goes when no branch fires and there is
      no special terminator.
    """

    __slots__ = ("cf", "insts")

    def __init__(self, cf: CompiledFunction, insts: list[tuple]) -> None:
        self.cf = cf
        self.insts = insts


def _decode_op(so, lat_table, memory) -> tuple:
    op = so.op
    srcs = tuple(decode_operand(s, memory) for s in op.srcs)
    if op.is_memory:
        return (MEM_OP, op.is_store, ACCESS_SIZE[op.opcode], srcs,
                op.dest, so.gamble, op.is_speculative, op)
    return (ALU_OP, op.opcode, srcs, op.dest,
            lat_table.get(op.category, 1))


def predecode_function(cf: CompiledFunction, config: MachineConfig,
                       memory) -> PredecodedFunction:
    """Flatten one compiled function against a fixed memory layout."""
    lat_table = latency_table(config)
    insts: list[tuple] = []
    for pc, li in enumerate(cf.instructions):
        ops0, ops1 = [], []
        for so in li.ops:
            (ops1 if so.unit.beat_offset else ops0).append(
                _decode_op(so, lat_table, memory))
        branches = tuple(
            decode_operand(bt.pred, memory)
            + (bt.negate, cf.resolve(bt.target), bt.target)
            for bt in li.branches)
        sp_kind, sp_arg = SP_NONE, None
        if li.special is not None:
            kind = li.special[0]
            if kind == "ret":
                sp_kind = SP_RET
                if li.special[1] is not None:
                    sp_arg = decode_operand(li.special[1], memory)
            elif kind == "halt":
                sp_kind = SP_HALT
            elif kind == "call":
                sp_kind, sp_arg = SP_CALL, li.special[1]
        fall_pc = (cf.resolve(li.next_label)
                   if li.next_label is not None else pc + 1)
        insts.append((tuple(ops0), tuple(ops1), branches,
                      sp_kind, sp_arg, fall_pc))
    return PredecodedFunction(cf, insts)


#: ``id(program) -> (weakref(program), {layout_key: decoded dict})``.
#: The predecode artifact is a pure function of the program object and
#: the memory image's symbol layout, so it is shared by every simulator
#: constructed over the same pair — a 96-point sweep decodes once, not
#: 96 times.  Keys are object ids (``CompiledProgram`` is an ``eq=True``
#: dataclass, hence unhashable); the weakref guards against id reuse and
#: its callback evicts the entry when the program is collected.
_MEMO: dict[int, tuple] = {}


def layout_key(memory) -> tuple:
    """A hashable fingerprint of the memory image's symbol layout (the
    only part of the image predecode reads)."""
    return tuple(memory.layout.items())


def predecode_program(program, memory,
                      memoize: bool = True) -> dict[str, PredecodedFunction]:
    """Pre-decode every function of a compiled program.

    Memoized per ``(program, symbol layout)`` by default; pass
    ``memoize=False`` to force a fresh decode (benchmarks use this to
    model the pre-memoization per-run cost).
    """
    if not memoize:
        return {name: predecode_function(cf, program.config, memory)
                for name, cf in program.functions.items()}
    pid = id(program)
    entry = _MEMO.get(pid)
    if entry is None or entry[0]() is not program:
        def _evict(_ref, _pid=pid):
            _MEMO.pop(_pid, None)
        entry = (weakref.ref(program, _evict), {})
        _MEMO[pid] = entry
    key = layout_key(memory)
    decoded = entry[1].get(key)
    if decoded is None:
        decoded = predecode_program(program, memory, memoize=False)
        entry[1][key] = decoded
    return decoded
