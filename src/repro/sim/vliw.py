"""Beat-accurate simulator for compiled TRACE code.

Executes :class:`~repro.machine.CompiledFunction` schedules with the
machine's timing model:

* one long instruction per two 65 ns beats; early/late integer slots issue
  one beat apart;
* self-draining pipelines: every destination write lands at
  ``issue_beat + latency`` regardless of what the PC does in between
  (this is what makes speculated operations and interrupts work);
* memory effects at issue, data delivery through the 7-beat pipeline;
* interleaved banks: a touched bank is busy four beats; a reference that
  finds its bank busy *bank-stalls* the whole CPU (legal only for
  compiler-marked "gamble" references — anything else is a compiler bug
  and raises :class:`~repro.errors.SimError`);
* multiway branching with software priority, negate flags, and the
  default next-PC;
* procedure calls as save/run/restore with a modeled overhead (the block
  register save/restore "special subroutines" of section 9);
* precise interrupts by self-draining (section 4): at an instruction
  boundary with an interrupt pending, the machine stops issuing, the
  pipelines drain, and the architectural state is *only* registers, PCs,
  and memory — snapshotted into a
  :class:`~repro.faults.MachineCheckpoint` that :meth:`VliwSimulator.resume`
  continues bit-identically.

The simulator double-checks the compiler: oversubscribed resources,
same-beat controller conflicts, and unproven bank conflicts on non-gamble
references all raise ``SimError`` instead of being silently arbitrated —
on the real TRACE there is no arbitration hardware to hide them.

Execution uses an explicit call-frame stack (not Python recursion) so an
interrupt can capture and rebuild the whole call chain; calls drain the
pipelines first (the block save/restore convention), so only the
innermost frame ever holds in-flight writes.

Fault injection: pass a :class:`~repro.faults.FaultInjector` and the
simulator polls it at every instruction boundary — asynchronous
interrupts (drain + service + resume, or drain + checkpoint + stop),
forced TLB flushes, poisoned banks, and injected trap-mode FP exceptions
all deliver at the only architecturally precise point the paper's
hardware offers.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, replace

from ..errors import SimError, TrapError
from ..faults import (BANK_POISON, CHECKPOINT, FP_TRAP, INTERRUPT,
                      TLB_FLUSH, FrameState, MachineCheckpoint)
from ..ir import (ACCESS_SIZE, FUNNY_FLOAT, FUNNY_INT, Imm, MemoryImage,
                  Opcode, Operation, RegClass, Symbol, VReg, wrap32)
from ..ir.interp import Interpreter
from ..machine import (CompiledFunction, CompiledProgram, MachineConfig,
                       latency_of)
from ..obs import get_tracer
from .compile import (A_LIT, A_SLOT, R_CALL, R_RET, ST_BEATS, ST_CALLS,
                      ST_N, compiled_exec, flush_stats)
from .context import ProcessTagTable
from .decode import (ALU_OP, MISSING, NEVER, SP_CALL, SP_HALT, SP_NONE,
                     SP_RET, predecode_program)

#: the three execution tiers, slowest (reference) to fastest
SIM_PATHS = ("interp", "fast", "compiled")


@dataclass
class VliwStats:
    """Timing and event counters from one simulation."""

    beats: int = 0
    instructions: int = 0
    ops: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_branches: int = 0
    bank_stall_beats: int = 0
    gamble_refs: int = 0
    unexpected_bank_stalls: int = 0
    calls: int = 0
    dismissed_loads: int = 0
    interrupts: int = 0
    interrupt_drain_beats: int = 0
    interrupt_service_beats: int = 0
    checkpoints: int = 0
    resumes: int = 0
    injected_tlb_flushes: int = 0
    injected_bank_poisons: int = 0

    @property
    def cycles(self) -> int:
        """Instruction cycles (2 beats each, including stall beats)."""
        return (self.beats + 1) // 2

    def time_us(self, config: MachineConfig) -> float:
        return self.beats * config.beat_ns * 1e-3

    def ops_per_instruction(self) -> float:
        return self.ops / self.instructions if self.instructions else 0.0


@dataclass
class VliwResult:
    value: object
    memory: MemoryImage
    stats: VliwStats
    #: True when a checkpointing interrupt stopped the run early
    interrupted: bool = False
    #: the architectural snapshot, when ``interrupted``
    checkpoint: MachineCheckpoint | None = None


@dataclass
class _Frame:
    """One live call frame of the executing machine."""

    cf: CompiledFunction
    regs: dict
    pending: list                       # (land_beat, reg, value)
    bank_busy: dict
    pc: int
    start_beat: int
    ret_dest: VReg | None = None
    #: pre-decoded twin of ``cf`` (fast path only)
    dcf: object = None
    #: earliest outstanding land beat; lets the fast path skip the
    #: pending-list rescan on the (common) beats where nothing lands
    next_land: float = NEVER


class _Evaluator(Interpreter):
    """Reuses the reference interpreter's pure-operation semantics."""

    def __init__(self, fp_mode: str) -> None:
        # bypass Interpreter.__init__: we only need _compute/_fdiv
        self.fp_mode = fp_mode


class VliwSimulator:
    """Executes a compiled program on the modeled machine."""

    def __init__(self, program: CompiledProgram,
                 memory: MemoryImage,
                 fp_mode: str = "precise",
                 max_beats: int = 200_000_000,
                 icache=None, tlb=None, tracer=None,
                 injector=None, tags: ProcessTagTable | None = None,
                 process_id: int = 0, predecode: bool = True,
                 path: str | None = None) -> None:
        self.program = program
        self.config = program.config
        self.memory = memory
        self.fp_mode = fp_mode
        self.max_beats = max_beats
        self.stats = VliwStats()
        self._eval = _Evaluator(fp_mode)
        #: optional ICacheModel — charges refill beats on misses
        self.icache = icache
        #: optional TlbModel — charges batched trap/replay beats on misses
        self.tlb = tlb
        #: optional FaultInjector — polled at instruction boundaries
        self.injector = injector
        #: ASID allocator used to tag checkpoints (shared across processes)
        self.tags = tags
        self.process_id = process_id
        self.tracer = get_tracer(tracer)
        # per-beat hooks fire only when an event-collecting tracer is
        # attached; a disabled run pays a single cached-bool test per site
        self._emit = self.tracer.enabled and self.tracer.collect_events
        # --- execution-tier selection ------------------------------
        # an explicit ``path`` argument wins; otherwise $REPRO_SIM_PATH,
        # then the default ("fast").  ``predecode=False`` pins the
        # interpretive reference loop regardless of the environment —
        # differential tests rely on it staying the reference.
        if path is None:
            path = os.environ.get("REPRO_SIM_PATH") or "fast"
            if path not in SIM_PATHS:
                raise SimError(
                    f"bad $REPRO_SIM_PATH {path!r}"
                    f" (want one of {'|'.join(SIM_PATHS)})")
            if not predecode:
                path = "interp"
        elif path not in SIM_PATHS:
            raise SimError(
                f"bad simulator path {path!r}"
                f" (want one of {'|'.join(SIM_PATHS)})")
        if path == "compiled" and self._emit:
            # per-beat event hooks are only instrumented on the
            # interpretive tiers; event-collecting runs step down
            path = "fast"
        #: the execution tier this simulator actually runs
        self.path = path
        # fast path: flatten the program once per (program, layout) —
        # memoized in sim/decode.py, so repeated constructions are free
        self._predecoded = (predecode_program(program, memory)
                            if path == "fast" else None)
        # compiled path: bind the generated step closures (sim/compile.py)
        self._compiled = (compiled_exec(program, memory)
                          if path == "compiled" else None)
        self._outcome: tuple | None = None
        if icache is not None:
            for cf in program.functions.values():
                icache.register_function(cf, getattr(memory, "layout", None))

    # ------------------------------------------------------------------
    def run(self, func_name: str, args=()) -> VliwResult:
        return self._drive(self.start(func_name, args))

    def start(self, func_name: str, args=()):
        """The run as an instruction-granularity generator.

        Each ``next()`` executes one long instruction (plus any due
        instruction-boundary work); the batch executor round-robins
        these to interleave lanes in lockstep.  After exhaustion,
        :meth:`finish` builds the :class:`VliwResult`.
        """
        cf = self.program.function(func_name)
        if self.path == "compiled":
            cfx = self._compiled.functions[func_name]
            frame = self._make_frame_compiled(cfx, list(args), 0)
            return self._execute_compiled([frame], 0)
        frame = self._make_frame(cf, list(args), start_beat=0)
        execute = (self._execute_fast if self.path == "fast"
                   else self._execute)
        return execute([frame], 0)

    def finish(self) -> VliwResult:
        """The result of an exhausted :meth:`start` generator."""
        kind, payload = self._outcome
        if kind == "interrupted":
            # counters fold on completion only: the resumed half reports
            # the whole run's totals exactly once
            return VliwResult(None, self.memory, self.stats,
                              interrupted=True, checkpoint=payload)
        self._fold_stats()
        return VliwResult(payload, self.memory, self.stats)

    def _drive(self, gen) -> VliwResult:
        self._outcome = None
        deque(gen, maxlen=0)        # exhaust at C speed
        return self.finish()

    def resume(self, checkpoint: MachineCheckpoint) -> VliwResult:
        """Continue a checkpointed run bit-identically.

        Restores memory and every call frame from the snapshot and keeps
        executing from the interrupted beat.  The resuming simulator must
        be built over the same compiled program (and a memory image of
        the same shape); it is usually a fresh instance, modeling the
        process being switched back in.  Checkpoints are path-portable:
        a run checkpointed on one execution tier resumes bit-identically
        on any other.
        """
        if len(self.memory.data) != len(checkpoint.memory_bytes):
            raise SimError(
                "resume: memory image shape differs from checkpoint "
                f"({len(self.memory.data)} != {len(checkpoint.memory_bytes)}"
                " bytes)")
        self.memory.data[:] = checkpoint.memory_bytes
        self.stats = replace(checkpoint.stats)
        self.stats.resumes += 1
        if self.tlb is not None:
            self.tlb.switch_process(checkpoint.asid)
        stack = [self._restore_frame(fs) for fs in checkpoint.frames]
        if self._emit:
            self.tracer.event("resume", cat="sim", ts=checkpoint.beat,
                              asid=checkpoint.asid, depth=len(stack))
        if self.path == "compiled":
            execute = self._execute_compiled
        elif self.path == "fast":
            execute = self._execute_fast
        else:
            execute = self._execute
        return self._drive(execute(stack, checkpoint.beat))

    def _restore_frame(self, fs: FrameState) -> _Frame:
        """Rebuild one live frame from its architectural snapshot."""
        cf = self.program.function(fs.function)
        if self.path == "compiled":
            cex = self._compiled
            slot_of = cex.slot_of
            regs = cex.funny.copy()
            for reg, value in fs.regs.items():
                regs[slot_of[reg]] = value
            pending = [(b, slot_of[r], v) for b, r, v in fs.pending]
            ret_dest = (slot_of[fs.ret_dest]
                        if fs.ret_dest is not None else None)
            frame = _Frame(cf, regs, pending, dict(fs.bank_busy), fs.pc,
                           fs.start_beat, ret_dest)
            frame.dcf = cex.functions[fs.function]
        else:
            frame = _Frame(cf, dict(fs.regs), list(fs.pending),
                           dict(fs.bank_busy), fs.pc, fs.start_beat,
                           fs.ret_dest)
            if self._predecoded is not None:
                frame.dcf = self._predecoded[cf.name]
        frame.next_land = min((item[0] for item in frame.pending),
                              default=NEVER)
        return frame

    def _fold_stats(self) -> None:
        """Accumulate event totals into the obs counter registry."""
        c = self.tracer.counters
        s = self.stats
        # which execution tier ran — makes path regressions attributable
        c.inc("sim.path." + self.path)
        c.inc("sim.vliw.beats", s.beats)
        c.inc("sim.vliw.instructions", s.instructions)
        c.inc("sim.vliw.ops", s.ops)
        c.inc("sim.vliw.loads", s.loads)
        c.inc("sim.vliw.stores", s.stores)
        c.inc("sim.vliw.branches", s.branches)
        c.inc("sim.vliw.taken_branches", s.taken_branches)
        c.inc("sim.vliw.bank_stall_beats", s.bank_stall_beats)
        c.inc("sim.vliw.gamble_refs", s.gamble_refs)
        c.inc("sim.vliw.unexpected_bank_stalls", s.unexpected_bank_stalls)
        c.inc("sim.vliw.calls", s.calls)
        c.inc("sim.vliw.dismissed_loads", s.dismissed_loads)
        c.inc("sim.vliw.interrupts", s.interrupts)
        c.inc("sim.vliw.interrupt_drain_beats", s.interrupt_drain_beats)
        c.inc("sim.vliw.interrupt_service_beats", s.interrupt_service_beats)
        c.inc("sim.vliw.checkpoints", s.checkpoints)
        c.inc("sim.vliw.resumes", s.resumes)
        c.inc("sim.vliw.injected_tlb_flushes", s.injected_tlb_flushes)
        c.inc("sim.vliw.injected_bank_poisons", s.injected_bank_poisons)
        # NOP density: issue slots the mask-word encoding leaves empty
        # (paper section 6 — absent fields cost nothing in memory but are
        # real unused issue opportunities)
        nop_slots = (s.instructions * self.config.ops_per_instruction
                     - s.ops)
        c.inc("sim.vliw.nop_slots", nop_slots)
        c.inc("sim.vliw.icache_misses",
              self.icache.stats.misses if self.icache is not None else 0)
        c.inc("sim.vliw.icache_refill_beats",
              self.icache.stats.refill_beats
              if self.icache is not None else 0)

    # ------------------------------------------------------------------
    def _make_frame(self, cf: CompiledFunction, args: list,
                    start_beat: int, ret_dest: VReg | None = None) -> _Frame:
        if len(args) != len(cf.param_regs):
            raise SimError(f"{cf.name}: expected {len(cf.param_regs)} args")
        regs: dict[VReg, object] = {}
        for reg, arg in zip(cf.param_regs, args):
            regs[reg] = self._coerce_arg(reg, arg)
        pc = cf.label_map.get(cf.meta.get("entry_label", ""), 0)
        frame = _Frame(cf, regs, [], {}, pc, start_beat, ret_dest)
        if self._predecoded is not None:
            frame.dcf = self._predecoded[cf.name]
        return frame

    def _execute(self, stack: list[_Frame], beat: int):
        """Run the frame stack to completion or to a checkpoint.

        A generator yielding once per long instruction; on exhaustion
        ``self._outcome`` holds ``("done", value)`` or ``("interrupted",
        checkpoint)``.
        """
        while stack:
            yield
            f = stack[-1]
            cf = f.cf

            # --- instruction boundary: the one precise point ------------
            if self.injector is not None and self.injector.pending:
                outcome = self._deliver_faults(stack, beat, f)
                if isinstance(outcome, MachineCheckpoint):
                    self._outcome = ("interrupted", outcome)
                    return
                beat = outcome
            if beat - f.start_beat > self.max_beats:
                raise SimError(f"{cf.name}: beat budget exhausted")
            pc = f.pc
            if pc < 0 or pc >= len(cf.instructions):
                raise SimError(f"{cf.name}: PC out of range: {pc}")
            li = cf.instructions[pc]
            self.stats.instructions += 1
            if self.icache is not None:
                fetch_stall = self.icache.access(cf.name, pc)
                if fetch_stall:
                    if self._emit:
                        self.tracer.event("icache_miss", cat="sim", ts=beat,
                                          function=cf.name, pc=pc,
                                          beats=fetch_stall)
                    f.pending[:] = [(b + fetch_stall, r, v)
                                    for b, r, v in f.pending]
                    beat += fetch_stall
                    self.stats.beats += fetch_stall

            try:
                # --- read-before-write state as of the instruction's
                # first beat: branch tests and return values see beat-2t
                # state ----------------------------------------------------
                self._land(f.pending, f.regs, beat)
                branch_vals = [self._operand(f.regs, bt.pred)
                               for bt in li.branches]
                ret_val = None
                if li.special is not None and li.special[0] == "ret" \
                        and li.special[1] is not None:
                    ret_val = self._operand(f.regs, li.special[1])

                # --- issue this instruction's operations, beat by beat --
                ops_by_beat: dict[int, list] = {0: [], 1: []}
                for so in li.ops:
                    ops_by_beat[so.unit.beat_offset].append(so)

                stall = 0
                for offset in (0, 1):
                    issue_beat = beat + offset + stall
                    self._land(f.pending, f.regs, issue_beat)
                    controllers_this_beat: set[int] = set()
                    for so in ops_by_beat[offset]:
                        extra = self._issue(so, f.regs, f.pending,
                                            issue_beat, f.bank_busy,
                                            controllers_this_beat)
                        if extra:
                            stall += extra
                            issue_beat += extra
                        self.stats.ops += 1
            except TrapError as exc:
                exc.locate(beat=beat, pc=f"{cf.name}:{pc}")
                raise

            if stall and self._emit:
                self.tracer.event("bank_stall", cat="sim", ts=beat,
                                  function=cf.name, pc=pc, beats=stall)
            beat += 2 + stall
            self.stats.beats += 2 + stall
            self.stats.bank_stall_beats += stall

            if self.tlb is not None:
                tlb_stall = self.tlb.end_instruction()
                if tlb_stall:
                    f.pending[:] = [(b + tlb_stall, r, v)
                                    for b, r, v in f.pending]
                    beat += tlb_stall
                    self.stats.beats += tlb_stall

            # --- control transfer at end of instruction ------------------
            next_pc = None
            for bt, pred in zip(li.branches, branch_vals):
                self.stats.branches += 1
                taken = (not pred) if bt.negate else bool(pred)
                if self._emit:
                    self.tracer.event("branch", cat="sim", ts=beat,
                                      function=cf.name, pc=pc, taken=taken,
                                      target=bt.target)
                if taken:
                    self.stats.taken_branches += 1
                    next_pc = cf.resolve(bt.target)
                    break
            if next_pc is None and li.special is not None:
                kind = li.special[0]
                if kind in ("ret", "halt"):
                    value = ret_val if kind == "ret" else None
                    stack.pop()
                    if not stack:
                        self._outcome = ("done", value)
                        return
                    if f.ret_dest is not None:
                        stack[-1].regs[f.ret_dest] = value
                    continue
                if kind == "call":
                    beat = self._begin_call(li.special[1], f, stack, beat,
                                            pc)
                    continue
            if next_pc is None:
                if li.next_label is not None:
                    next_pc = cf.resolve(li.next_label)
                else:
                    next_pc = pc + 1
            f.pc = next_pc
        raise SimError("empty frame stack")           # pragma: no cover

    # ------------------------------------------------------------------
    @staticmethod
    def _land_frame(f: _Frame, beat: int) -> None:
        """Fast-path landing: apply due writes, refresh ``next_land``.

        Callers gate on ``f.next_land <= beat`` so the pending list is
        only rescanned on beats where something actually lands — the
        semantics (land in beat order, ties in issue order) match
        :meth:`_land` exactly.
        """
        pending = f.pending
        ready = [item for item in pending if item[0] <= beat]
        ready.sort(key=lambda item: item[0])
        regs = f.regs
        for _, reg, value in ready:
            regs[reg] = value
        pending[:] = [item for item in pending if item[0] > beat]
        f.next_land = min((item[0] for item in pending), default=NEVER)

    def _execute_fast(self, stack: list[_Frame], beat: int):
        """The pre-decoded twin of :meth:`_execute`.

        Beat-identical and state-identical to the interpretive loop (the
        differential tests in ``tests/test_sims.py`` hold the two paths
        together); the difference is purely mechanical: decoded issue
        tuples instead of per-beat rediscovery, literals pre-resolved,
        latencies precomputed, and pending-list scans gated on
        ``next_land``.  Same generator protocol as :meth:`_execute`.
        """
        stats = self.stats
        memory = self.memory
        compute = self._eval._compute
        icache, tlb, injector = self.icache, self.tlb, self.injector
        tracer, emit = self.tracer, self._emit
        max_beats = self.max_beats
        config = self.config
        lat_mem = config.lat_mem
        n_controllers = config.n_controllers
        total_banks = config.total_banks
        bank_busy_beats = config.bank_busy_beats
        land_frame = self._land_frame

        while stack:
            yield
            f = stack[-1]
            cf = f.cf
            regs = f.regs
            pending = f.pending
            bank_busy = f.bank_busy

            # --- instruction boundary: the one precise point ------------
            if injector is not None and injector.pending:
                outcome = self._deliver_faults(stack, beat, f)
                if isinstance(outcome, MachineCheckpoint):
                    self._outcome = ("interrupted", outcome)
                    return
                beat = outcome
                for fr in stack:
                    fr.next_land = min((item[0] for item in fr.pending),
                                       default=NEVER)
            if beat - f.start_beat > max_beats:
                raise SimError(f"{cf.name}: beat budget exhausted")
            pc = f.pc
            insts = f.dcf.insts
            if pc < 0 or pc >= len(insts):
                raise SimError(f"{cf.name}: PC out of range: {pc}")
            ops0, ops1, branches, sp_kind, sp_arg, fall_pc = insts[pc]
            stats.instructions += 1
            if icache is not None:
                fetch_stall = icache.access(cf.name, pc)
                if fetch_stall:
                    if emit:
                        tracer.event("icache_miss", cat="sim", ts=beat,
                                     function=cf.name, pc=pc,
                                     beats=fetch_stall)
                    pending[:] = [(b + fetch_stall, r, v)
                                  for b, r, v in pending]
                    f.next_land += fetch_stall
                    beat += fetch_stall
                    stats.beats += fetch_stall

            try:
                # --- read-before-write state as of the instruction's
                # first beat (branch tests and return values) ------------
                if f.next_land <= beat:
                    land_frame(f, beat)
                branch_vals = None
                if branches:
                    branch_vals = []
                    for lit, payload, funny, _neg, _tpc, _lbl in branches:
                        if lit:
                            branch_vals.append(payload)
                        else:
                            value = regs.get(payload, MISSING)
                            branch_vals.append(
                                funny if value is MISSING else value)
                ret_val = None
                if sp_kind == SP_RET and sp_arg is not None:
                    lit, payload, funny = sp_arg
                    if lit:
                        ret_val = payload
                    else:
                        ret_val = regs.get(payload, MISSING)
                        if ret_val is MISSING:
                            ret_val = funny

                # --- issue the pre-split early/late groups --------------
                stall = 0
                for offset, ops in ((0, ops0), (1, ops1)):
                    if not ops:
                        continue
                    issue_beat = beat + offset + stall
                    if f.next_land <= issue_beat:
                        land_frame(f, issue_beat)
                    controllers_this_beat = None
                    for dop in ops:
                        if dop[0] == ALU_OP:
                            _, opcode, srcs, dest, latency = dop
                            vals = []
                            for lit, payload, funny in srcs:
                                if lit:
                                    vals.append(payload)
                                else:
                                    value = regs.get(payload, MISSING)
                                    vals.append(funny if value is MISSING
                                                else value)
                            land = issue_beat + latency
                            pending.append((land, dest,
                                            compute(opcode, vals)))
                            if land < f.next_land:
                                f.next_land = land
                            stats.ops += 1
                            continue
                        # ---- memory reference --------------------------
                        (_, is_store, size, srcs, dest, gamble,
                         speculative, op) = dop
                        vals = []
                        for lit, payload, funny in srcs:
                            if lit:
                                vals.append(payload)
                            else:
                                value = regs.get(payload, MISSING)
                                vals.append(funny if value is MISSING
                                            else value)
                        if is_store:
                            value, base, off = vals
                        else:
                            base, off = vals
                        addr = wrap32(base + off)
                        if tlb is not None:
                            tlb.access(addr)
                        word = addr // 8 if addr >= 0 else 0
                        controller = word % n_controllers
                        bank = word % total_banks
                        if controllers_this_beat is None:
                            controllers_this_beat = {controller}
                        elif controller in controllers_this_beat:
                            raise SimError(
                                f"two references hit controller "
                                f"{controller} in one beat "
                                f"(disambiguator/compiler bug): {op}")
                        else:
                            controllers_this_beat.add(controller)
                        busy_until = bank_busy.get(bank, -1)
                        if busy_until > issue_beat:
                            if not gamble:
                                stats.unexpected_bank_stalls += 1
                            extra = busy_until - issue_beat
                            # the bank stall freezes the CPU: shift every
                            # in-flight writeback before appending our own
                            pending[:] = [(b + extra, r, v)
                                          for b, r, v in pending]
                            f.next_land += extra
                            stall += extra
                            issue_beat = busy_until
                        if gamble:
                            stats.gamble_refs += 1
                        bank_busy[bank] = issue_beat + bank_busy_beats
                        if is_store:
                            stats.stores += 1
                            if size == 8:
                                memory.store_float(addr, value)
                            else:
                                memory.store_int(addr, value)
                        else:
                            stats.loads += 1
                            if speculative and not memory.check(addr, size):
                                stats.dismissed_loads += 1
                                result = (FUNNY_FLOAT if size == 8
                                          else FUNNY_INT)
                            elif size == 8:
                                result = memory.load_float(addr)
                            else:
                                result = memory.load_int(addr)
                            land = issue_beat + lat_mem
                            pending.append((land, dest, result))
                            if land < f.next_land:
                                f.next_land = land
                        stats.ops += 1
            except TrapError as exc:
                exc.locate(beat=beat, pc=f"{cf.name}:{pc}")
                raise

            if stall and emit:
                tracer.event("bank_stall", cat="sim", ts=beat,
                             function=cf.name, pc=pc, beats=stall)
            beat += 2 + stall
            stats.beats += 2 + stall
            stats.bank_stall_beats += stall

            if tlb is not None:
                tlb_stall = tlb.end_instruction()
                if tlb_stall:
                    pending[:] = [(b + tlb_stall, r, v)
                                  for b, r, v in pending]
                    f.next_land += tlb_stall
                    beat += tlb_stall
                    stats.beats += tlb_stall

            # --- control transfer at end of instruction -----------------
            next_pc = -1
            if branch_vals is not None:
                for decoded, pred in zip(branches, branch_vals):
                    stats.branches += 1
                    negate, target_pc, label = decoded[3], decoded[4], \
                        decoded[5]
                    taken = (not pred) if negate else bool(pred)
                    if emit:
                        tracer.event("branch", cat="sim", ts=beat,
                                     function=cf.name, pc=pc, taken=taken,
                                     target=label)
                    if taken:
                        stats.taken_branches += 1
                        next_pc = target_pc
                        break
            if next_pc < 0 and sp_kind != SP_NONE:
                if sp_kind != SP_CALL:      # SP_RET or SP_HALT
                    value = ret_val if sp_kind == SP_RET else None
                    stack.pop()
                    if not stack:
                        self._outcome = ("done", value)
                        return
                    if f.ret_dest is not None:
                        stack[-1].regs[f.ret_dest] = value
                    continue
                beat = self._begin_call(sp_arg, f, stack, beat, pc)
                continue
            f.pc = fall_pc if next_pc < 0 else next_pc
        raise SimError("empty frame stack")           # pragma: no cover

    # ------------------------------------------------------------------
    def _execute_compiled(self, stack: list[_Frame], beat: int):
        """Drive the generated step closures (see ``sim/compile.py``).

        Same generator protocol and bit-identical semantics as the other
        two executors; the per-instruction work lives in the compiled
        steps, so this loop only handles the boundary concerns steps
        cannot see — fault delivery, budget, icache/TLB device models,
        and call/return frame plumbing.  Stats accumulate in a flat list
        the steps increment and are folded into ``self.stats`` on every
        exit path (the ``finally``) and before any checkpoint snapshot.
        """
        stats = self.stats
        memory = self.memory
        ev = self._eval
        icache, tlb, injector = self.icache, self.tlb, self.injector
        max_beats = self.max_beats
        st = [0] * ST_N
        if icache is None and tlb is None and injector is None:
            # the overwhelmingly common configuration: no device models
            # and no fault plan means no boundary work at all, so run a
            # tight loop with the frame's hot attributes hoisted out of
            # the per-instruction path (they only change on call/ret).
            # Yielding every instruction would pay a suspend/resume per
            # step for nothing — lanes share no state, so the batch
            # driver only needs *bounded* interleaving; a 64-instruction
            # quantum keeps lane skew negligible while amortizing the
            # generator machinery
            q = 0
            try:
                while stack:
                    f = stack[-1]
                    steps = f.dcf.steps
                    nsteps = len(steps)
                    regs, pending = f.regs, f.pending
                    bank_busy = f.bank_busy
                    start_beat = f.start_beat
                    while True:
                        q -= 1
                        if q < 0:
                            q = 63
                            yield
                        if beat - start_beat > max_beats:
                            raise SimError(
                                f"{f.cf.name}: beat budget exhausted")
                        pc = f.pc
                        if pc < 0 or pc >= nsteps:
                            raise SimError(
                                f"{f.cf.name}: PC out of range: {pc}")
                        try:
                            r = steps[pc](f, regs, pending, beat, st,
                                          memory, bank_busy, None, ev)
                        except TrapError as exc:
                            exc.locate(beat=beat, pc=f"{f.cf.name}:{pc}")
                            raise
                        if type(r) is int:
                            beat = r
                            continue
                        kind, value, nb = r
                        beat = nb
                        break               # frame is about to change
                    if kind != R_CALL:      # R_RET or R_HALT
                        stack.pop()
                        if not stack:
                            self._outcome = ("done", value)
                            return
                        if f.ret_dest is not None:
                            stack[-1].regs[f.ret_dest] = value
                    else:
                        beat = self._begin_call_compiled(
                            f.dcf.calls[pc], f, stack, beat, pc, st)
            finally:
                flush_stats(stats, st)
            return
        try:
            while stack:
                yield
                f = stack[-1]
                cfx = f.dcf

                # --- instruction boundary: the one precise point --------
                if injector is not None and injector.pending:
                    flush_stats(stats, st)  # snapshot-accurate counters
                    outcome = self._deliver_faults(stack, beat, f)
                    if isinstance(outcome, MachineCheckpoint):
                        self._outcome = ("interrupted", outcome)
                        return
                    beat = outcome
                    for fr in stack:
                        fr.next_land = min(
                            (item[0] for item in fr.pending), default=NEVER)
                if beat - f.start_beat > max_beats:
                    raise SimError(f"{f.cf.name}: beat budget exhausted")
                pc = f.pc
                steps = cfx.steps
                if pc < 0 or pc >= len(steps):
                    raise SimError(f"{f.cf.name}: PC out of range: {pc}")
                if icache is not None:
                    fetch_stall = icache.access(f.cf.name, pc)
                    if fetch_stall:
                        f.pending[:] = [(b + fetch_stall, r, v)
                                        for b, r, v in f.pending]
                        f.next_land += fetch_stall
                        beat += fetch_stall
                        st[ST_BEATS] += fetch_stall

                try:
                    r = steps[pc](f, f.regs, f.pending, beat, st, memory,
                                  f.bank_busy, tlb, ev)
                except TrapError as exc:
                    exc.locate(beat=beat, pc=f"{f.cf.name}:{pc}")
                    raise

                tlb_stall = 0
                if tlb is not None:
                    tlb_stall = tlb.end_instruction()
                    if tlb_stall:
                        f.pending[:] = [(b + tlb_stall, r2, v)
                                        for b, r2, v in f.pending]
                        f.next_land += tlb_stall
                        st[ST_BEATS] += tlb_stall

                if type(r) is int:          # normal step: f.pc already set
                    beat = r + tlb_stall
                    continue
                kind, value, nb = r
                beat = nb + tlb_stall
                if kind != R_CALL:          # R_RET or R_HALT
                    stack.pop()
                    if not stack:
                        self._outcome = ("done", value)
                        return
                    if f.ret_dest is not None:
                        stack[-1].regs[f.ret_dest] = value
                    continue
                beat = self._begin_call_compiled(cfx.calls[pc], f, stack,
                                                 beat, pc, st)
        finally:
            flush_stats(stats, st)

    def _begin_call_compiled(self, callinfo: tuple, f: _Frame,
                             stack: list[_Frame], beat: int, pc: int,
                             st: list) -> int:
        """Compiled-path twin of :meth:`_begin_call` over slot files."""
        callee_name, argspecs, dest_slot = callinfo
        st[ST_CALLS] += 1
        pending = f.pending
        if pending:
            drain_to = max(item[0] for item in pending)
            extra = max(0, drain_to - beat)
            ready = sorted(pending, key=lambda item: item[0])
            regs = f.regs
            for _b, slot, value in ready:
                regs[slot] = value
            pending.clear()
            st[ST_BEATS] += extra
            beat += extra
        f.next_land = NEVER
        regs = f.regs
        args = []
        for kind, payload in argspecs:
            if kind == A_SLOT:
                args.append(regs[payload])
            elif kind == A_LIT:
                args.append(payload)
            else:                           # A_SYM
                args.append(self.memory.address_of(payload))
        cfx = self._compiled.functions.get(callee_name)
        if cfx is None:
            self.program.function(callee_name)      # raises MachineError
        overhead = 2 * self.config.call_overhead_instructions
        st[ST_BEATS] += overhead
        beat += overhead
        f.pc = pc + 1
        stack.append(self._make_frame_compiled(cfx, args, beat, dest_slot))
        return beat

    def _make_frame_compiled(self, cfx, args: list, start_beat: int,
                             ret_dest: int | None = None) -> _Frame:
        param_slots = cfx.param_slots
        if len(args) != len(param_slots):
            raise SimError(
                f"{cfx.cf.name}: expected {len(param_slots)} args")
        cex = self._compiled
        # the slot file starts as the funny-number vector: a never-written
        # read then sees exactly what the MISSING-check paths substitute
        regs = cex.funny.copy()
        slot_regs = cex.slot_regs
        for slot, arg in zip(param_slots, args):
            regs[slot] = self._coerce_arg(slot_regs[slot], arg)
        frame = _Frame(cfx.cf, regs, [], {}, cfx.entry_pc, start_beat,
                       ret_dest)
        frame.dcf = cfx
        return frame

    # ------------------------------------------------------------------
    def _begin_call(self, call: Operation, f: _Frame, stack: list[_Frame],
                    beat: int, pc: int) -> int:
        """Push a callee frame: drain, save, modeled overhead."""
        self.stats.calls += 1
        # drain self-draining pipelines (the save/restore convention)
        if f.pending:
            drain_to = max(item[0] for item in f.pending)
            extra = max(0, drain_to - beat)
            self._land(f.pending, f.regs, drain_to)
            self.stats.beats += extra
            beat += extra
        f.next_land = NEVER
        args = [self._operand(f.regs, s) for s in call.srcs]
        callee = self.program.function(call.callee)
        overhead = 2 * self.config.call_overhead_instructions
        self.stats.beats += overhead
        beat += overhead
        f.pc = pc + 1
        stack.append(self._make_frame(callee, args, beat, call.dest))
        return beat

    # ------------------------------------------------------------------
    def _drain(self, stack: list[_Frame], beat: int) -> tuple[int, int]:
        """Let every in-flight pipeline write land; returns
        (beat after drain, drain beats)."""
        drain_to = beat
        for f in stack:
            if f.pending:
                drain_to = max(drain_to,
                               max(item[0] for item in f.pending))
        for f in stack:
            if f.pending:
                self._land(f.pending, f.regs, drain_to)
        extra = drain_to - beat
        self.stats.beats += extra
        return drain_to, extra

    def _deliver_faults(self, stack: list[_Frame], beat: int,
                        f: _Frame):
        """Service due injector events; returns the new beat, or a
        :class:`MachineCheckpoint` when a checkpointing interrupt fires."""
        for event in self.injector.due(beat):
            if event.kind == TLB_FLUSH:
                if self.tlb is not None:
                    self.tlb.inject_flush()
                self.stats.injected_tlb_flushes += 1
                if self._emit:
                    self.tracer.event("fault_tlb_flush", cat="sim", ts=beat)
            elif event.kind == BANK_POISON:
                busy_to = beat + event.busy_beats
                if f.bank_busy.get(event.bank, -1) < busy_to:
                    f.bank_busy[event.bank] = busy_to
                self.stats.injected_bank_poisons += 1
                if self._emit:
                    self.tracer.event("fault_bank_poison", cat="sim",
                                      ts=beat, bank=event.bank,
                                      beats=event.busy_beats)
            elif event.kind == FP_TRAP:
                raise TrapError("injected_fp",
                                event.detail or "fault injection",
                                beat=beat, pc=f"{f.cf.name}:{f.pc}")
            elif event.kind == INTERRUPT:
                beat, drained = self._drain(stack, beat)
                self.stats.interrupts += 1
                self.stats.interrupt_drain_beats += drained
                self.stats.interrupt_service_beats += event.service_beats
                self.stats.beats += event.service_beats
                beat += event.service_beats
                if self._emit:
                    self.tracer.event("interrupt", cat="sim", ts=beat,
                                      drain_beats=drained,
                                      service_beats=event.service_beats)
            elif event.kind == CHECKPOINT:
                beat, drained = self._drain(stack, beat)
                self.stats.interrupts += 1
                self.stats.interrupt_drain_beats += drained
                self.stats.checkpoints += 1
                if self._emit:
                    self.tracer.event("checkpoint", cat="sim", ts=beat,
                                      drain_beats=drained,
                                      depth=len(stack))
                return self._snapshot(stack, beat, drained)
        return beat

    def _snapshot(self, stack: list[_Frame], beat: int,
                  drain_beats: int) -> MachineCheckpoint:
        """Capture the drained machine's architectural state.

        Checkpoints always use the register-keyed (VReg) form, whatever
        tier produced them, so a run checkpointed on one path resumes on
        any other.  Compiled-path slot files are converted back; slots
        still holding their funny number are omitted — a restored read
        substitutes exactly that value, so the filter is lossless.
        """
        if self.path == "compiled":
            slot_regs = self._compiled.slot_regs
            funny = self._compiled.funny
            frames = [
                FrameState(
                    f.cf.name,
                    {slot_regs[i]: v for i, v in enumerate(f.regs)
                     if not (v == funny[i] or v != v)},
                    f.pc, f.start_beat,
                    (slot_regs[f.ret_dest]
                     if f.ret_dest is not None else None),
                    dict(f.bank_busy),
                    [(b, slot_regs[s], v) for b, s, v in f.pending])
                for f in stack]
        else:
            frames = [FrameState(f.cf.name, dict(f.regs), f.pc,
                                 f.start_beat, f.ret_dest,
                                 dict(f.bank_busy), list(f.pending))
                      for f in stack]
        asid = self.tags.assign(self.process_id) \
            if self.tags is not None else 0
        return MachineCheckpoint(beat, frames, self.memory.snapshot(),
                                 replace(self.stats), asid, drain_beats)

    # ------------------------------------------------------------------
    def _coerce_arg(self, reg: VReg, arg):
        if reg.cls is RegClass.FLT:
            return float(arg)
        if isinstance(arg, str):
            return self.memory.address_of(arg)
        return wrap32(int(arg))

    @staticmethod
    def _land(pending: list, regs: dict, beat: int) -> None:
        """Apply every pipeline write that lands at or before ``beat``."""
        if not pending:
            return
        ready = [item for item in pending if item[0] <= beat]
        if not ready:
            return
        ready.sort(key=lambda item: item[0])
        for land_beat, reg, value in ready:
            regs[reg] = value
        pending[:] = [item for item in pending if item[0] > beat]

    def _operand(self, regs: dict, src):
        if isinstance(src, VReg):
            if src not in regs:
                # a speculated operation may read a register that was never
                # written on this path; its result is dead here (the
                # scheduler's liveness rule), so any value will do — the
                # real register file would hold whatever was left behind.
                # Funny numbers make an actual liveness bug loud.
                if src.cls is RegClass.FLT:
                    return FUNNY_FLOAT
                if src.cls is RegClass.PRED:
                    return 0
                return FUNNY_INT
            return regs[src]
        if isinstance(src, Imm):
            return src.value
        if isinstance(src, Symbol):
            return self.memory.address_of(src.name)
        raise SimError(f"bad operand {src!r}")

    # ------------------------------------------------------------------
    def _issue(self, so, regs: dict, pending: list, issue_beat: int,
               bank_busy: dict[int, int],
               controllers_this_beat: set[int]) -> int:
        """Issue one op; returns stall beats incurred."""
        op = so.op
        if op.is_memory:
            return self._issue_memory(so, regs, pending, issue_beat,
                                      bank_busy, controllers_this_beat)
        vals = [self._operand(regs, s) for s in op.srcs]
        result = self._eval._compute(op.opcode, vals)
        latency = latency_of(op, self.config)
        pending.append((issue_beat + latency, op.dest, result))
        return 0

    def _issue_memory(self, so, regs: dict, pending: list, issue_beat: int,
                      bank_busy: dict[int, int],
                      controllers_this_beat: set[int]) -> int:
        op = so.op
        size = ACCESS_SIZE[op.opcode]
        stall = 0

        if op.is_store:
            value, base, offset = (self._operand(regs, s) for s in op.srcs)
            addr = wrap32(base + offset)
        else:
            base, offset = (self._operand(regs, s) for s in op.srcs)
            addr = wrap32(base + offset)

        if self.tlb is not None:
            self.tlb.access(addr)

        word = addr // 8 if addr >= 0 else 0
        controller = word % self.config.n_controllers
        bank = word % self.config.total_banks

        if controller in controllers_this_beat:
            raise SimError(
                f"two references hit controller {controller} in one beat "
                f"(disambiguator/compiler bug): {op}")
        controllers_this_beat.add(controller)

        busy_until = bank_busy.get(bank, -1)
        if busy_until > issue_beat:
            # the hardware bank-stall covers every conflict; the compiler is
            # responsible only for avoiding them where provable.  Stalls on
            # references the compiler did NOT mark as gambles come from
            # cross-trace adjacency (never compared at compile time) and are
            # tracked separately so tests can bound them.
            if not so.gamble:
                self.stats.unexpected_bank_stalls += 1
            stall = busy_until - issue_beat
            # the bank stall freezes the CPU: shift every in-flight
            # writeback *before* this reference's own entry is appended
            pending[:] = [(b + stall, r, v) for b, r, v in pending]
            issue_beat = busy_until
        if so.gamble:
            self.stats.gamble_refs += 1
        bank_busy[bank] = issue_beat + self.config.bank_busy_beats

        if op.is_store:
            self.stats.stores += 1
            if size == 8:
                self.memory.store_float(addr, value)
            else:
                self.memory.store_int(addr, value)
            return stall

        self.stats.loads += 1
        if op.is_speculative and not self.memory.check(addr, size):
            self.stats.dismissed_loads += 1
            result = FUNNY_FLOAT if size == 8 else FUNNY_INT
        elif size == 8:
            result = self.memory.load_float(addr)
        else:
            result = self.memory.load_int(addr)
        pending.append((issue_beat + self.config.lat_mem, op.dest, result))
        return stall


def run_compiled(program: CompiledProgram, module, func_name: str,
                 args=(), fp_mode: str = "precise",
                 memory: MemoryImage | None = None,
                 tracer=None, injector=None, tlb=None,
                 predecode: bool = True,
                 path: str | None = None) -> VliwResult:
    """Convenience: build the memory image, run, return the result."""
    if memory is None:
        memory = MemoryImage(module)
    sim = VliwSimulator(program, memory, fp_mode, tracer=tracer,
                        injector=injector, tlb=tlb, predecode=predecode,
                        path=path)
    return sim.run(func_name, args)
