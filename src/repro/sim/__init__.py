"""Simulators: the beat-accurate TRACE VLIW, plus scalar and scoreboard
baselines used by the paper's comparative claims."""

from .batch import BatchLane, BatchVliwSimulator
from .context import (ASID_COUNT, ContextSwitchReport, ProcessTagTable,
                      asid_purge_interval, context_switch_cost,
                      register_file_words)
from .icache import ICacheModel, ICacheStats
from .scalar import ScalarResult, ScalarSimulator, ScalarStats, run_scalar
from .scoreboard import (ScoreboardResult, ScoreboardSimulator,
                         ScoreboardStats, run_scoreboard)
from .tlb import PAGE_SHIFT, TlbModel, TlbStats
from .vliw import VliwResult, VliwSimulator, VliwStats, run_compiled

__all__ = [
    "BatchLane", "BatchVliwSimulator",
    "ASID_COUNT", "ContextSwitchReport", "ProcessTagTable",
    "asid_purge_interval", "context_switch_cost", "register_file_words",
    "ICacheModel", "ICacheStats",
    "ScalarResult", "ScalarSimulator", "ScalarStats", "run_scalar",
    "ScoreboardResult", "ScoreboardSimulator", "ScoreboardStats",
    "run_scoreboard",
    "PAGE_SHIFT", "TlbModel", "TlbStats",
    "VliwResult", "VliwSimulator", "VliwStats", "run_compiled",
]
